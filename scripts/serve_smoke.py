#!/usr/bin/env python3
"""Smoke-drive a running `hsa serve` instance over its TCP socket.

Usage: serve_smoke.py <host> <port>

Exercises the serving runtime the way CI's in-process tests cannot — as a
real external client against the real binary:

  * a reference query run alone, then the same query re-run while three
    other queries are in flight: results must be bit-identical;
  * a spilling query (tight budget, tiny cache) sharing the pool: exact
    answer, `spilled_runs > 0` in its report;
  * a victim cancelled mid-stream from a separate control connection:
    must die with `class == "timeout"`, `exit_class == 3`;
  * a victim whose memory slice is far below the resident floor: must die
    with `class == "budget"`, `exit_class == 2`.

Every assertion failure raises, so the process exits non-zero on any
protocol or correctness violation. Scratch-file hygiene is checked by the
caller (the server's --spill-dir must be empty after this script exits).
"""

import json
import socket
import sys
import threading

HOST, PORT = sys.argv[1], int(sys.argv[2])


class Conn:
    def __init__(self):
        self.sock = socket.create_connection((HOST, PORT), timeout=60)
        self.f = self.sock.makefile("rwb")

    def send(self, obj):
        self.f.write((json.dumps(obj) + "\n").encode())
        self.f.flush()

    def recv(self):
        line = self.f.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    def close(self):
        self.sock.close()


def submit(c, extra=None):
    req = {"op": "submit", "aggs": [["count"], ["sum", 0]]}
    if extra:
        req.update(extra)
    c.send(req)
    r = c.recv()
    if r.get("ok") == "queued":
        r = c.recv()
    assert r.get("ok") == "admitted", f"submit failed: {r}"
    return r["query_id"]


def push(c, keys, vals):
    c.send({"op": "rows", "keys": keys, "cols": [vals]})
    return c.recv()


def finish(c):
    """Drain result blocks; returns (sorted rows, done report)."""
    c.send({"op": "finish"})
    rows = []
    while True:
        r = c.recv()
        if "block" in r:
            b = r["block"]
            rows.extend(
                (k, [col[i] for col in b["cols"]]) for i, k in enumerate(b["keys"])
            )
        elif "done" in r:
            return rows, r["done"]
        else:
            raise AssertionError(f"unexpected finish reply: {r}")


def data(n, card):
    keys = [i * 2654435761 % card for i in range(n)]
    vals = list(range(n))
    return keys, vals


def expected(keys, vals):
    acc = {}
    for k, v in zip(keys, vals):
        cnt, tot = acc.get(k, (0, 0))
        acc[k] = (cnt + 1, tot + v)
    return [(k, [c, s]) for k, (c, s) in sorted(acc.items())]


def run_query(keys, vals, chunk=4096, extra=None):
    c = Conn()
    qid = submit(c, extra)
    for at in range(0, len(keys), chunk):
        r = push(c, keys[at : at + chunk], vals[at : at + chunk])
        assert r.get("ok") == "rows", f"push failed: {r}"
    rows, done = finish(c)
    c.close()
    return qid, rows, done


def main():
    keys, vals = data(20_000, 500)
    want = expected(keys, vals)

    # Reference run, alone on the server.
    _, alone, done = run_query(keys, vals)
    assert alone == want, "solo run disagrees with the oracle"
    assert done["report"]["report_version"] == 2, done["report"]
    assert done["report"]["query_id"] == done["query_id"], done

    results = {}
    errors = []

    def survivor():
        _, rows, _ = run_query(keys, vals)
        results["survivor"] = rows

    def spiller():
        skeys, svals = data(60_000, 20_000)
        _, rows, done = run_query(
            skeys, svals, extra={"mem_budget": 1_048_576, "cache_kb": 128}
        )
        assert rows == expected(skeys, svals), "spilling run changed the answer"
        assert done["report"]["stats"]["spilled_runs"] > 0, done["report"]["stats"]
        results["spiller"] = True

    def cancel_victim(started):
        c = Conn()
        qid = submit(c)
        started["qid"] = qid
        started["event"].set()
        for at in range(0, len(keys), 512):
            r = push(c, keys[at : at + 512], vals[at : at + 512])
            if "error" in r:
                assert r["class"] == "timeout", r
                assert r["exit_class"] == 3, r
                results["cancelled"] = True
                c.close()
                return
        # Every push got through before the cancel landed; finish must fail.
        c.send({"op": "finish"})
        r = c.recv()
        assert "error" in r and r["class"] == "timeout" and r["exit_class"] == 3, r
        results["cancelled"] = True
        c.close()

    def budget_victim():
        # A 1 KiB memory slice sits far below the resident floor (the
        # output blocks alone need ~12 KiB). With the server's spill dir
        # the intermediate runs can still go to disk, so the exhaustion
        # may only surface at finish — a budget error at either point
        # counts, finishing cleanly does not.
        c = Conn()
        submit(c, extra={"mem_budget": 1024})
        r = None
        for at in range(0, len(keys), 4096):
            r = push(c, keys[at : at + 4096], vals[at : at + 4096])
            if "error" in r:
                break
        if r is None or "error" not in r:
            c.send({"op": "finish"})
            while True:
                r = c.recv()
                assert "done" not in r, "a 1 KiB slice must be exhausted"
                if "error" in r:
                    break
        assert r["class"] == "budget", r
        assert r["exit_class"] == 2, r
        results["budgeted"] = True
        c.close()

    # Build the storm: survivor + spiller + budget victim + cancel victim,
    # all in flight, with a control connection issuing the cancel.
    started = {"event": threading.Event()}

    def wrapped(fn, *args):
        def go():
            try:
                fn(*args)
            except BaseException as e:  # noqa: BLE001 - reported in main
                errors.append(f"{fn.__name__}: {e!r}")

        return go

    threads = [
        threading.Thread(target=wrapped(survivor)),
        threading.Thread(target=wrapped(spiller)),
        threading.Thread(target=wrapped(budget_victim)),
        threading.Thread(target=wrapped(cancel_victim, started)),
    ]
    for t in threads:
        t.start()

    assert started["event"].wait(30), "cancel victim never submitted"
    control = Conn()
    control.send({"op": "cancel", "query_id": started["qid"]})
    r = control.recv()
    assert r.get("ok") == "cancelled", f"cancel failed: {r}"
    control.close()

    for t in threads:
        t.join(120)
        assert not t.is_alive(), "a client thread hung"
    assert not errors, "; ".join(errors)

    assert results["survivor"] == want, "survivor result corrupted by the storm"
    assert results["survivor"] == alone, "survivor not bit-identical to the solo run"
    for key in ("spiller", "cancelled", "budgeted"):
        assert results.get(key), f"{key} scenario did not complete"
    print("serve smoke: all scenarios passed")


if __name__ == "__main__":
    main()
