#!/usr/bin/env bash
# Pre-push check: everything CI's `check` + `lint` jobs run, in one pass.
#
#   ./scripts/lint.sh
#
# 1. hsa-lint tests — analyzer unit tests + fixture workspaces
#                     (each seeded with one known violation)
# 2. hsa-lint      — workspace safety analyzer (SAFETY/ORDERING protocol
#                    annotations, atomic pairing, lock-order graph, RAII
#                    leaks, error taxonomy, frozen panic debt, std-only
#                    manifests, cold-path markers; DESIGN.md §12 and §17)
# 3. JSON smoke    — the --format json report parses and carries the
#                    stable schema_version
# 4. rustfmt       — formatting, check-only
# 5. clippy        — all targets, warnings are errors
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> hsa-lint self-tests (unit + fixtures)"
cargo test --release -q -p hsa-lint

echo "==> hsa-lint"
cargo run --release -q -p hsa-lint

echo "==> hsa-lint --format json (schema smoke check)"
cargo run --release -q -p hsa-lint -- . --format json | python3 -c '
import json, sys
report = json.load(sys.stdin)
assert report["schema_version"] == 1, report
assert report["count"] == len(report["findings"]), report
print("schema_version 1, %d finding(s)" % report["count"])
'

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "lint.sh: all clean"
