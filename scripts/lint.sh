#!/usr/bin/env bash
# Pre-push check: everything the CI `check` job runs, in the same order.
#
#   ./scripts/lint.sh
#
# 1. hsa-lint  — workspace safety analyzer (SAFETY/ORDERING comments,
#                frozen panic debt, std-only manifests, cold-path markers;
#                see DESIGN.md §12)
# 2. rustfmt   — formatting, check-only
# 3. clippy    — all targets, warnings are errors
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> hsa-lint"
cargo run --release -q -p hsa-lint

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "lint.sh: all clean"
