#!/usr/bin/env bash
# Regenerate every figure of the paper into EXPERIMENTS_RESULTS/*.tsv.
#
# Usage: scripts/run_all_figures.sh [rows_log2]
#   rows_log2 defaults to 22 (2^22 rows ≈ 32 MiB per column); the paper
#   used 2^31-2^32 on a 40-core/256 GiB box — scale up if you have one.
set -euo pipefail
cd "$(dirname "$0")/.."

ROWS=${1:-22}
OUT=EXPERIMENTS_RESULTS
mkdir -p "$OUT"

cargo build --release -p hsa-bench --bins

run() {
    local fig=$1; shift
    echo "=== $fig $* ==="
    ./target/release/"$fig" "$@" | tee "$OUT/$fig.tsv"
}

run fig01
run fig03 "$ROWS"
run fig04 "$ROWS"
run fig05 "$ROWS"
run fig06 "$ROWS" 4
run fig07 "$((ROWS - 1))"
run fig08 "$ROWS"
run fig09 "$ROWS"
run fig10 "$ROWS"
run fig11 "$ROWS"
run ablation_fill "$ROWS"
run ablation_kernels "$ROWS"
run ablation_spill "$ROWS"
run ablation_concurrency "$((ROWS - 2))"

echo "All figures written to $OUT/"
