//! # Hashing Is Sorting — cache-efficient adaptive aggregation
//!
//! A faithful, production-quality reproduction of *"Cache-Efficient
//! Aggregation: Hashing Is Sorting"* (Müller, Sanders, Lacurie, Lehner,
//! Färber — SIGMOD 2015): a relational `GROUP BY` operator that is
//! cache-efficient without prior knowledge of input skew or output
//! cardinality, built as a radix sort over hash values that switches
//! per-thread between an early-aggregating `HASHING` routine and a
//! software-write-combining `PARTITIONING` routine.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`aggregate`] / [`distinct`] and [`AggregateConfig`] / [`Strategy`] —
//!   the operator (`hsa-core`),
//! * [`AggSpec`] — the aggregate functions (COUNT/SUM/MIN/MAX/AVG) with
//!   super-aggregate handling (`hsa-agg`),
//! * [`Table`] — a small named-column table for application code
//!   (`hsa-columnar`),
//! * [`datagen`] — the paper's synthetic data distributions,
//! * [`baselines`] — the five prior-work algorithms of the Figure 8
//!   comparison,
//! * [`xmem`] — the external-memory cost model and cache simulator behind
//!   Figure 1.
//!
//! ```
//! use hashing_is_sorting::{aggregate, AggregateConfig, AggSpec};
//!
//! // SELECT k, COUNT(*), AVG(v) FROM t GROUP BY k
//! let keys = vec![10u64, 20, 10, 20, 10];
//! let vals = vec![1u64, 2, 3, 4, 5];
//! let (out, stats) = aggregate(
//!     &keys,
//!     &[&vals],
//!     &[AggSpec::count(), AggSpec::avg(0)],
//!     &AggregateConfig::default(),
//! );
//! assert_eq!(out.n_groups(), 2);
//! assert!(stats.total_hash_rows() >= 5);
//! ```

mod query;

pub use hsa_agg::{AggFn, AggSpec};
pub use hsa_columnar::{encode_composite, Column, Dictionary, Table, TableError};
pub use hsa_core::{
    aggregate, aggregate_observed, distinct, distinct_observed, merge_partials, try_aggregate,
    try_aggregate_observed, try_distinct, try_distinct_observed, try_merge_partials,
    AdaptiveParams, AdmissionConfig, AdmissionController, AdmissionDenied, AdmissionOutcome,
    AdmissionRequest, AggError, AggStream, AggregateConfig, CancelReason, CancelToken, DiskBudget,
    DiskReservation, ExecEnv, FaultInjector, FaultPlan, GroupByOutput, KernelKind, KernelPref,
    MemoryBudget, ObsConfig, OpStats, ProfileTree, QueryGrant, Reservation, RunHandle, RunReport,
    RunStore, SpillCodec, SpillConfig, SpillFault, SpillFaultKind, SpilledRun, Strategy,
    REPORT_VERSION,
};
pub use query::{AggValues, Query, QueryResult};

/// Observability building blocks: per-worker metrics, histograms, the
/// task-timeline tracer, and the dependency-free JSON value they serialize
/// through.
pub mod obs {
    pub use hsa_obs::*;
}

/// Synthetic data distributions (§6.5).
pub mod datagen {
    pub use hsa_datagen::*;
}

/// Prior-work baseline algorithms (§6.4).
pub mod baselines {
    pub use hsa_baselines::*;
}

/// External-memory cost model and cache simulator (§2).
pub mod xmem {
    pub use hsa_xmem::*;
}

/// Low-level building blocks, exposed for benchmarking and extension.
pub mod kernels {
    pub use hsa_hash::{
        digit, Fnv1a, Hasher64, Identity, Multiplicative, Murmur2, Murmur3Finalizer, FANOUT,
    };
    pub use hsa_hashtbl::{identity_of, AggTable, GrowTable, Insert, TableConfig};
    pub use hsa_kernels::{
        available_kinds, detect_best, fold_mapped, prefetch_read, prefetch_write, probe_scan,
        select, FoldOp, KernelKind, KernelPref, BATCH, FOLD_PREFETCH_AHEAD,
    };
    pub use hsa_partition::{
        memcpy_nt, partition_keys, partition_keys_mapped, partition_naive, partition_overalloc,
        partition_swc, partition_swc_with_mode, partition_unrolled, partition_unrolled_with_mode,
        scatter_by_digits, FlushMode,
    };
}
