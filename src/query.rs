//! A small fluent query layer over the operator.
//!
//! Lets application code read like the SQL the paper's introduction talks
//! about, including multi-column `GROUP BY` (fused into one key column by
//! dictionary encoding — the same trick column stores use):
//!
//! ```
//! use hashing_is_sorting::{Query, Table};
//!
//! let mut t = Table::new();
//! t.add_column("store", vec![1, 2, 1, 2, 1])
//!     .add_column("item", vec![7, 7, 8, 7, 7])
//!     .add_column("amount", vec![10, 20, 30, 40, 50]);
//!
//! // SELECT store, item, COUNT(*), SUM(amount) GROUP BY store, item
//! let result = Query::over(&t)
//!     .group_by("store")
//!     .group_by("item")
//!     .count("orders")
//!     .sum("amount", "total")
//!     .run();
//! assert_eq!(result.n_rows(), 3);
//! let rows = result.sorted_rows();
//! assert_eq!(rows[0], (vec![1, 7], vec![2.0, 60.0])); // store 1, item 7
//! ```

use crate::{
    try_aggregate_observed, AggError, AggFn, AggSpec, AggStream, AggregateConfig, ExecEnv,
    GroupByOutput, ObsConfig, RunReport, Table,
};
use hsa_columnar::encode_composite;

/// A `GROUP BY` query under construction.
pub struct Query<'t> {
    table: &'t Table,
    group_by: Vec<String>,
    aggs: Vec<(String, AggFn, Option<String>)>,
    cfg: AggregateConfig,
    obs: ObsConfig,
    env: ExecEnv,
}

impl<'t> Query<'t> {
    /// Start a query over `table`.
    pub fn over(table: &'t Table) -> Self {
        Self {
            table,
            group_by: Vec::new(),
            aggs: Vec::new(),
            cfg: AggregateConfig::default(),
            obs: ObsConfig::disabled(),
            env: ExecEnv::unrestricted(),
        }
    }

    /// Add a grouping column (call repeatedly for composite keys).
    pub fn group_by(mut self, column: &str) -> Self {
        self.group_by.push(column.to_string());
        self
    }

    /// `COUNT(*) AS name`.
    pub fn count(mut self, name: &str) -> Self {
        self.aggs.push((name.to_string(), AggFn::Count, None));
        self
    }

    /// `SUM(column) AS name`.
    pub fn sum(mut self, column: &str, name: &str) -> Self {
        self.aggs.push((name.to_string(), AggFn::Sum, Some(column.to_string())));
        self
    }

    /// `MIN(column) AS name`.
    pub fn min(mut self, column: &str, name: &str) -> Self {
        self.aggs.push((name.to_string(), AggFn::Min, Some(column.to_string())));
        self
    }

    /// `MAX(column) AS name`.
    pub fn max(mut self, column: &str, name: &str) -> Self {
        self.aggs.push((name.to_string(), AggFn::Max, Some(column.to_string())));
        self
    }

    /// `AVG(column) AS name`.
    pub fn avg(mut self, column: &str, name: &str) -> Self {
        self.aggs.push((name.to_string(), AggFn::Avg, Some(column.to_string())));
        self
    }

    /// Override the operator configuration.
    pub fn with_config(mut self, cfg: AggregateConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Collect deep observability (per-worker metrics and/or the task
    /// timeline) during `run`; see [`RunReport`].
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Run under an execution environment: memory budget, cancellation
    /// token, and (for tests) fault injection.
    pub fn with_env(mut self, env: ExecEnv) -> Self {
        self.env = env;
        self
    }

    /// Execute.
    ///
    /// Panics on unknown column names (mirroring [`Table::col`]); at least
    /// one grouping column is required. [`Query::try_run`] returns these
    /// as typed errors instead.
    pub fn run(self) -> QueryResult {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Execute, returning typed errors for unknown columns, an empty
    /// `GROUP BY`, and anything the operator reports under the query's
    /// [`ExecEnv`] (budget exhaustion, cancellation, contained panics).
    pub fn try_run(self) -> Result<QueryResult, AggError> {
        self.execute(None)
    }

    /// Execute with bounded-chunk ingestion: rows enter the operator
    /// `chunk_rows` at a time through an [`AggStream`] instead of as one
    /// slice. Combined with a memory budget and a spill directory on the
    /// query's [`ExecEnv`], the operator's resident set stays bounded
    /// while the result is identical to [`Query::run`].
    ///
    /// Panics exactly like [`Query::run`]; see [`Query::try_run_streaming`].
    pub fn run_streaming(self, chunk_rows: usize) -> QueryResult {
        self.try_run_streaming(chunk_rows).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Query::run_streaming`].
    pub fn try_run_streaming(self, chunk_rows: usize) -> Result<QueryResult, AggError> {
        self.execute(Some(chunk_rows))
    }

    fn execute(self, chunk_rows: Option<usize>) -> Result<QueryResult, AggError> {
        if self.group_by.is_empty() {
            return Err(AggError::EmptyGroupBy);
        }
        let col = |name: &str| -> Result<&[u64], AggError> {
            self.table
                .column(name)
                .map(|c| c.data.as_slice())
                .ok_or_else(|| AggError::UnknownColumn(name.to_string()))
        };
        let key_cols: Vec<&[u64]> =
            self.group_by.iter().map(|name| col(name)).collect::<Result<_, _>>()?;

        // Collect the distinct aggregate input columns.
        let mut input_names: Vec<&str> = Vec::new();
        let mut specs = Vec::with_capacity(self.aggs.len());
        for (_, func, input) in &self.aggs {
            let input_ix = match input {
                Some(name) => {
                    // Validate eagerly for a clear error site.
                    col(name)?;
                    Some(match input_names.iter().position(|n| n == name) {
                        Some(i) => i,
                        None => {
                            input_names.push(name);
                            input_names.len() - 1
                        }
                    })
                }
                None => None,
            };
            specs.push(AggSpec { func: *func, input: input_ix });
        }
        let inputs: Vec<&[u64]> = input_names.iter().map(|n| col(n)).collect::<Result<_, _>>()?;

        // One-shot or chunked ingestion over the (possibly fused) keys.
        let run = |keys: &[u64]| -> Result<(GroupByOutput, RunReport), AggError> {
            match chunk_rows {
                None => {
                    try_aggregate_observed(keys, &inputs, &specs, &self.cfg, &self.env, &self.obs)
                }
                Some(step) => {
                    let mut stream = AggStream::new(&specs, &self.cfg, &self.env, &self.obs)?;
                    let step = step.max(1);
                    let mut at = 0;
                    loop {
                        let end = (at + step).min(keys.len());
                        let chunk_inputs: Vec<&[u64]> =
                            inputs.iter().map(|c| &c[at..end]).collect();
                        stream.push(&keys[at..end], &chunk_inputs)?;
                        at = end;
                        if at >= keys.len() {
                            break;
                        }
                    }
                    stream.finish()
                }
            }
        };

        // Fuse composite keys; single-column keys pass through untouched.
        let (out, report, tuples) = if key_cols.len() == 1 {
            let (out, report) = run(key_cols[0])?;
            (out, report, None)
        } else {
            let (codes, tuples) = encode_composite(&key_cols);
            let (out, report) = run(&codes)?;
            (out, report, Some(tuples))
        };

        // Decode group keys back into per-column vectors.
        let n = out.n_groups();
        let mut group_cols: Vec<(String, Vec<u64>)> =
            self.group_by.iter().map(|name| (name.clone(), Vec::with_capacity(n))).collect();
        for &code in &out.keys {
            match &tuples {
                None => group_cols[0].1.push(code),
                Some(tuples) => {
                    for (c, &v) in group_cols.iter_mut().zip(&tuples[code as usize]) {
                        c.1.push(v);
                    }
                }
            }
        }

        let agg_cols: Vec<(String, AggValues)> = self
            .aggs
            .iter()
            .enumerate()
            .map(|(i, (name, ..))| {
                let vals = match out.column_u64(i) {
                    Some(v) => AggValues::U64(v),
                    None => AggValues::F64(out.column_f64(i)),
                };
                (name.clone(), vals)
            })
            .collect();

        Ok(QueryResult { group_cols, agg_cols, report })
    }
}

/// One aggregate output column.
#[derive(Clone, Debug, PartialEq)]
pub enum AggValues {
    /// Exact integer results (COUNT, SUM, MIN, MAX).
    U64(Vec<u64>),
    /// Fractional results (AVG).
    F64(Vec<f64>),
}

impl AggValues {
    /// Value at `row` as f64.
    pub fn get_f64(&self, row: usize) -> f64 {
        match self {
            AggValues::U64(v) => v[row] as f64,
            AggValues::F64(v) => v[row],
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            AggValues::U64(v) => v.len(),
            AggValues::F64(v) => v.len(),
        }
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Result of a [`Query`]: grouped rows in unspecified order.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Grouping columns, `(name, values)`, one value per result row.
    pub group_cols: Vec<(String, Vec<u64>)>,
    /// Aggregate columns, `(name, values)`, aligned with `group_cols`.
    pub agg_cols: Vec<(String, AggValues)>,
    /// Full run report: always-on statistics (`report.stats`) plus any
    /// deep metrics/trace requested via [`Query::with_obs`].
    pub report: RunReport,
}

impl QueryResult {
    /// Number of result rows (groups).
    pub fn n_rows(&self) -> usize {
        self.group_cols.first().map_or(0, |(_, v)| v.len())
    }

    /// Rows as `(group tuple, aggregate values as f64)`, sorted by group
    /// tuple — convenience for tests and small outputs.
    pub fn sorted_rows(&self) -> Vec<(Vec<u64>, Vec<f64>)> {
        let mut rows: Vec<(Vec<u64>, Vec<f64>)> = (0..self.n_rows())
            .map(|r| {
                (
                    self.group_cols.iter().map(|(_, v)| v[r]).collect(),
                    self.agg_cols.iter().map(|(_, v)| v.get_f64(r)).collect(),
                )
            })
            .collect();
        rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Render as an aligned text table (used by the CLI); group values can
    /// be remapped to strings via `decode` (e.g. dictionary decoding).
    pub fn format_table(&self, decode: impl Fn(usize, u64) -> String) -> String {
        let headers: Vec<String> = self
            .group_cols
            .iter()
            .map(|(n, _)| n.clone())
            .chain(self.agg_cols.iter().map(|(n, _)| n.clone()))
            .collect();
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(self.n_rows());
        for (tuple, aggs) in self.sorted_rows() {
            let mut cells: Vec<String> =
                tuple.iter().enumerate().map(|(c, &v)| decode(c, v)).collect();
            for (a, (_, col)) in aggs.iter().zip(&self.agg_cols) {
                cells.push(match col {
                    AggValues::U64(_) => format!("{}", *a as u64),
                    AggValues::F64(_) => format!("{a:.3}"),
                });
            }
            rows.push(cells);
        }
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:>w$}"));
            }
            out.push('\n');
        };
        emit(&mut out, &headers);
        for row in &rows {
            emit(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new();
        t.add_column("store", vec![1, 2, 1, 2, 1, 3])
            .add_column("item", vec![7, 7, 8, 7, 7, 9])
            .add_column("amount", vec![10, 20, 30, 40, 50, 60]);
        t
    }

    #[test]
    fn single_key_all_functions() {
        let t = table();
        let r = Query::over(&t)
            .group_by("store")
            .count("n")
            .sum("amount", "sum")
            .min("amount", "min")
            .max("amount", "max")
            .avg("amount", "avg")
            .run();
        let rows = r.sorted_rows();
        assert_eq!(rows[0], (vec![1], vec![3.0, 90.0, 10.0, 50.0, 30.0]));
        assert_eq!(rows[1], (vec![2], vec![2.0, 60.0, 20.0, 40.0, 30.0]));
        assert_eq!(rows[2], (vec![3], vec![1.0, 60.0, 60.0, 60.0, 60.0]));
    }

    #[test]
    fn composite_key() {
        let t = table();
        let r = Query::over(&t).group_by("store").group_by("item").count("n").run();
        let rows = r.sorted_rows();
        assert_eq!(
            rows,
            vec![
                (vec![1, 7], vec![2.0]),
                (vec![1, 8], vec![1.0]),
                (vec![2, 7], vec![2.0]),
                (vec![3, 9], vec![1.0]),
            ]
        );
    }

    #[test]
    fn distinct_via_empty_aggs() {
        let t = table();
        let r = Query::over(&t).group_by("item").run();
        assert_eq!(r.n_rows(), 3);
        assert!(r.agg_cols.is_empty());
    }

    #[test]
    fn format_table_aligns() {
        let t = table();
        let r = Query::over(&t).group_by("store").count("rows").run();
        let text = r.format_table(|_, v| format!("s{v}"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("store"));
        assert!(lines[0].contains("rows"));
        assert!(lines[1].trim_start().starts_with("s1"));
    }

    #[test]
    fn shared_input_column_reused() {
        // sum and avg over the same column share the Sum physical state.
        let t = table();
        let r = Query::over(&t).group_by("store").sum("amount", "s").avg("amount", "a").run();
        let rows = r.sorted_rows();
        assert_eq!(rows[0].1, vec![90.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "at least one GROUP BY")]
    fn requires_group_by() {
        let t = table();
        let _ = Query::over(&t).count("n").run();
    }

    #[test]
    #[should_panic(expected = "no column named")]
    fn unknown_column_panics() {
        let t = table();
        let _ = Query::over(&t).group_by("nope").run();
    }

    #[test]
    fn try_run_returns_typed_errors() {
        let t = table();
        let err = Query::over(&t).count("n").try_run().unwrap_err();
        assert_eq!(err, AggError::EmptyGroupBy);
        let err = Query::over(&t).group_by("nope").try_run().unwrap_err();
        assert_eq!(err, AggError::UnknownColumn("nope".to_string()));
        let err = Query::over(&t).group_by("store").sum("nope2", "x").try_run().unwrap_err();
        assert_eq!(err, AggError::UnknownColumn("nope2".to_string()));
    }

    #[test]
    fn run_streaming_matches_run() {
        let t = table();
        let whole = Query::over(&t)
            .group_by("store")
            .group_by("item")
            .count("n")
            .sum("amount", "total")
            .run();
        for chunk_rows in [1, 2, 4, 100] {
            let chunked = Query::over(&t)
                .group_by("store")
                .group_by("item")
                .count("n")
                .sum("amount", "total")
                .run_streaming(chunk_rows);
            assert_eq!(chunked.sorted_rows(), whole.sorted_rows(), "chunk_rows {chunk_rows}");
        }
    }

    #[test]
    fn run_streaming_on_empty_table() {
        let mut t = Table::new();
        t.add_column("k", vec![]);
        let r = Query::over(&t).group_by("k").count("n").run_streaming(64);
        assert_eq!(r.n_rows(), 0);
    }

    #[test]
    fn try_run_respects_a_memory_budget() {
        use crate::MemoryBudget;
        let t = table();
        let budget = MemoryBudget::limited(16);
        let err = Query::over(&t)
            .group_by("store")
            .count("n")
            .with_env(ExecEnv::unrestricted().with_budget(budget.clone()))
            .try_run()
            .unwrap_err();
        assert!(matches!(err, AggError::BudgetExceeded { .. }));
        assert_eq!(budget.outstanding(), 0, "all reservations released on failure");
    }
}
