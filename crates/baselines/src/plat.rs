//! PLAT — Partition with Local Aggregation Table (Ye et al.).
//!
//! Pass 1: each thread aggregates into a private, fixed, cache-sized
//! table; keys that find neither a match nor a free slot in their probe
//! window overflow into 256 private hash partitions. Pass 2: partitions
//! (and the private tables' contents, routed by the same digit) are merged
//! per partition across threads. Early aggregation of hot keys comes for
//! free; the 256-partition merge hits the same K ≈ 256 · cache limit as
//! PARTITION-AND-AGGREGATE.

use crate::{table_slots, Baseline, BaselineConfig, BaselineOutput, EMPTY};
use hsa_agg::StateOp;
use hsa_hash::{digit, Hasher64, Murmur2, FANOUT};
use hsa_hashtbl::GrowTable;
use hsa_tasks::{chunk_ranges, scoped_map};

/// Probe window of the private table: short, so cold keys overflow
/// quickly instead of walking long chains.
const PROBE_WINDOW: usize = 8;

/// The local-table-with-overflow-partitions baseline.
pub struct Plat;

impl Baseline for Plat {
    fn name(&self) -> &'static str {
        "PLAT"
    }

    fn passes(&self) -> u32 {
        2
    }

    fn run(&self, keys: &[u64], cfg: &BaselineConfig) -> BaselineOutput {
        let threads = cfg.threads.max(1);
        let hasher = Murmur2::default();
        let ops = if cfg.count { vec![StateOp::Count] } else { vec![] };

        // Private fixed table: cache-sized regardless of k_hint (that is
        // the design: hot groups in cache, the rest overflows).
        let slots = (cfg.cache_bytes / 16).max(64).next_power_of_two();
        let mask = slots - 1;

        // Pass 1. Result: per thread, per digit, partial (key, count)
        // aggregates — the overflowed rows plus the private table's
        // contents routed by the same digit at the end of the pass.
        let ranges = chunk_ranges(keys.len(), threads);
        let pass1: Vec<Vec<Vec<(u64, u64)>>> = scoped_map(ranges.len().max(1), |t| {
            let mut table_keys = vec![EMPTY; slots];
            let mut table_counts = vec![0u64; slots];
            let mut overflow: Vec<Vec<(u64, u64)>> = (0..FANOUT).map(|_| Vec::new()).collect();
            if let Some(range) = ranges.get(t) {
                for &key in &keys[range.clone()] {
                    debug_assert_ne!(key, EMPTY);
                    let home = (hasher.hash_u64(key) as usize) & mask;
                    let mut placed = false;
                    for i in 0..PROBE_WINDOW {
                        let slot = (home + i) & mask;
                        if table_keys[slot] == key {
                            table_counts[slot] += 1;
                            placed = true;
                            break;
                        }
                        if table_keys[slot] == EMPTY {
                            table_keys[slot] = key;
                            table_counts[slot] = 1;
                            placed = true;
                            break;
                        }
                    }
                    if !placed {
                        overflow[digit(hasher.hash_u64(key), 0)].push((key, 1));
                    }
                }
            }
            for (k, c) in table_keys.into_iter().zip(table_counts) {
                if k != EMPTY {
                    overflow[digit(hasher.hash_u64(k), 0)].push((k, c));
                }
            }
            overflow
        });

        // Pass 2: merge each digit's partial aggregates across threads,
        // one partition range per thread.
        let part_ranges = chunk_ranges(FANOUT, threads);
        let merged: Vec<Vec<(u64, u64)>> = scoped_map(part_ranges.len(), |t| {
            let mut out = Vec::new();
            for p in part_ranges[t].clone() {
                let rows: usize = pass1.iter().map(|th| th[p].len()).sum();
                if rows == 0 {
                    continue;
                }
                let mut table = GrowTable::with_capacity(
                    rows.min(table_slots(cfg, cfg.k_hint) / FANOUT).max(64),
                    &ops,
                );
                for th in &pass1 {
                    for &(k, c) in &th[p] {
                        let vals = [c];
                        table.accumulate(k, &vals[..ops.len()], true);
                    }
                }
                out.extend(table.drain().map(|(k, s)| (k, s.first().copied().unwrap_or(0))));
            }
            out
        });

        let mut out = BaselineOutput { keys: Vec::new(), counts: Vec::new() };
        for part in merged {
            for (k, c) in part {
                out.keys.push(k);
                out.counts.push(c);
            }
        }
        out
    }
}
