//! HYBRID (Cieslewicz & Ross): private cache tables with eviction into a
//! shared table.
//!
//! "Each thread aggregates its part of the input into a private hash table
//! with a size fixed to its part of the shared L3 cache. When this table
//! is full, old entries are evicted similarly to an LRU cache and inserted
//! into a global, shared hash table." One pass; hot groups stay private
//! (so it adapts to changing locality, §6.5), cold groups churn through
//! the shared atomic table once K exceeds the private capacity.

use crate::{table_slots, Baseline, BaselineConfig, BaselineOutput, EMPTY};
use hsa_hash::{Hasher64, Murmur2};
use hsa_tasks::{chunk_ranges, scoped_map};
use std::sync::atomic::{AtomicU64, Ordering};

/// Probe window of the private table; the loser of the window is the
/// eviction victim (a cheap clock-like stand-in for LRU).
const PROBE_WINDOW: usize = 8;

/// The private-table-with-eviction baseline.
pub struct Hybrid;

/// Merge one partial aggregate into the shared atomic table.
fn push_global(
    table: &[AtomicU64],
    counts: &[AtomicU64],
    mask: usize,
    hasher: Murmur2,
    key: u64,
    count: u64,
    do_count: bool,
) {
    let mut slot = (hasher.hash_u64(key) as usize) & mask;
    loop {
        let cur = table[slot].load(Ordering::Acquire);
        if cur == key {
            break;
        }
        if cur == EMPTY
            && table[slot].compare_exchange(EMPTY, key, Ordering::AcqRel, Ordering::Acquire).is_ok()
        {
            break;
        }
        if table[slot].load(Ordering::Acquire) == key {
            break;
        }
        slot = (slot + 1) & mask;
    }
    if do_count {
        counts[slot].fetch_add(count, Ordering::Relaxed);
    }
}

impl Baseline for Hybrid {
    fn name(&self) -> &'static str {
        "HYBRID"
    }

    fn passes(&self) -> u32 {
        1
    }

    fn run(&self, keys: &[u64], cfg: &BaselineConfig) -> BaselineOutput {
        let threads = cfg.threads.max(1);
        let hasher = Murmur2::default();

        // Shared table sized from the hint (grown with the input as a
        // correctness guard, like ATOMIC).
        let g_slots = table_slots(cfg, cfg.k_hint.max(keys.len().min(1 << 24)));
        let g_mask = g_slots - 1;
        let global: Vec<AtomicU64> = (0..g_slots).map(|_| AtomicU64::new(EMPTY)).collect();
        let g_counts: Vec<AtomicU64> =
            if cfg.count { (0..g_slots).map(|_| AtomicU64::new(0)).collect() } else { Vec::new() };

        // Private tables: per-thread share of the cache.
        let p_slots = (cfg.cache_bytes / 16).max(64).next_power_of_two();
        let p_mask = p_slots - 1;

        let ranges = chunk_ranges(keys.len(), threads);
        scoped_map(ranges.len().max(1), |t| {
            let mut pk = vec![EMPTY; p_slots];
            let mut pc = vec![0u64; p_slots];
            if let Some(range) = ranges.get(t) {
                for &key in &keys[range.clone()] {
                    debug_assert_ne!(key, EMPTY);
                    let home = (hasher.hash_u64(key) as usize) & p_mask;
                    let mut placed = false;
                    for i in 0..PROBE_WINDOW {
                        let slot = (home + i) & p_mask;
                        if pk[slot] == key {
                            pc[slot] += 1;
                            placed = true;
                            break;
                        }
                        if pk[slot] == EMPTY {
                            pk[slot] = key;
                            pc[slot] = 1;
                            placed = true;
                            break;
                        }
                    }
                    if !placed {
                        // Evict the home slot's tenant to the shared table
                        // and take its place — the "old entry" heuristic.
                        push_global(
                            &global, &g_counts, g_mask, hasher, pk[home], pc[home], cfg.count,
                        );
                        pk[home] = key;
                        pc[home] = 1;
                    }
                }
            }
            // Flush the surviving private entries.
            for (k, c) in pk.into_iter().zip(pc) {
                if k != EMPTY {
                    push_global(&global, &g_counts, g_mask, hasher, k, c, cfg.count);
                }
            }
        });

        let mut out = BaselineOutput { keys: Vec::new(), counts: Vec::new() };
        for slot in 0..g_slots {
            let k = global[slot].load(Ordering::Acquire);
            if k != EMPTY {
                out.keys.push(k);
                out.counts.push(if cfg.count { g_counts[slot].load(Ordering::Relaxed) } else { 0 });
            }
        }
        out
    }
}
