//! PARTITION-AND-AGGREGATE (Ye et al.): partition everything, then merge.
//!
//! Pass 1: every thread naively partitions its input slice by hash value
//! into 256 private partitions ("its partitioning uses the naive
//! implementation" — no software write-combining, which is one reason the
//! paper's operator beats it). Pass 2: one task per partition merges the
//! matching pieces of all threads into a hash table. With a single
//! partitioning pass the merge works in cache only up to K ≈ 256 · cache.

use crate::{Baseline, BaselineConfig, BaselineOutput};
use hsa_agg::StateOp;
use hsa_hash::{digit, Hasher64, Murmur2, FANOUT};
use hsa_hashtbl::GrowTable;
use hsa_tasks::{chunk_ranges, scoped_map};

/// The two-pass partition-then-aggregate baseline.
pub struct PartitionAndAggregate;

impl Baseline for PartitionAndAggregate {
    fn name(&self) -> &'static str {
        "PARTITION-AND-AGGREGATE"
    }

    fn passes(&self) -> u32 {
        2
    }

    fn run(&self, keys: &[u64], cfg: &BaselineConfig) -> BaselineOutput {
        let threads = cfg.threads.max(1);
        let hasher = Murmur2::default();
        let ops = if cfg.count { vec![StateOp::Count] } else { vec![] };

        // Pass 1: naive thread-private partitioning.
        let ranges = chunk_ranges(keys.len(), threads);
        let partitioned: Vec<Vec<Vec<u64>>> = scoped_map(ranges.len().max(1), |t| {
            let mut parts: Vec<Vec<u64>> = (0..FANOUT).map(|_| Vec::new()).collect();
            if let Some(range) = ranges.get(t) {
                for &key in &keys[range.clone()] {
                    parts[digit(hasher.hash_u64(key), 0)].push(key);
                }
            }
            parts
        });

        // Pass 2: merge each partition across threads. Parallelized by
        // giving each thread a contiguous range of partitions.
        let part_ranges = chunk_ranges(FANOUT, threads);
        let merged: Vec<Vec<(u64, u64)>> = scoped_map(part_ranges.len(), |t| {
            let mut out = Vec::new();
            for p in part_ranges[t].clone() {
                let rows: usize = partitioned.iter().map(|th| th[p].len()).sum();
                if rows == 0 {
                    continue;
                }
                let mut table = GrowTable::with_capacity(rows.min(cfg.k_hint.max(64)), &ops);
                for th in &partitioned {
                    for &key in &th[p] {
                        table.accumulate(key, if cfg.count { &[0] } else { &[] }, false);
                    }
                }
                out.extend(table.drain().map(|(k, s)| (k, s.first().copied().unwrap_or(0))));
            }
            out
        });

        let mut out = BaselineOutput { keys: Vec::new(), counts: Vec::new() };
        for part in merged {
            for (k, c) in part {
                out.keys.push(k);
                out.counts.push(c);
            }
        }
        out
    }
}
