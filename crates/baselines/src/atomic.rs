//! ATOMIC (Cieslewicz & Ross): one shared table, lock-free inserts.
//!
//! "All threads work on a single, shared hash table protected by atomic
//! instructions." Keys are claimed with a CAS on the slot's key word;
//! counts are relaxed `fetch_add`s. Its cache-efficiency limit is reached
//! when the shared table exceeds the *combined* L3 (Σ L3 in Figure 8) —
//! later than the shared-nothing designs, which is why it is the second
//! best prior algorithm for large K.

use crate::{table_slots, Baseline, BaselineConfig, BaselineOutput, EMPTY};
use hsa_hash::{Hasher64, Murmur2};
use hsa_tasks::{chunk_ranges, scoped_map};
use std::sync::atomic::{AtomicU64, Ordering};

/// The shared-atomic-table baseline.
pub struct Atomic;

impl Baseline for Atomic {
    fn name(&self) -> &'static str {
        "ATOMIC"
    }

    fn passes(&self) -> u32 {
        1
    }

    fn run(&self, keys: &[u64], cfg: &BaselineConfig) -> BaselineOutput {
        // Size from the optimizer hint; a bad hint degrades to longer
        // probe chains but stays correct as long as slots ≥ groups. To be
        // robust against gross underestimates the table also grows with
        // the input (the paper gives ATOMIC the true K).
        let slots = table_slots(cfg, cfg.k_hint.max(keys.len().min(1 << 24)));
        let mask = slots - 1;
        let table: Vec<AtomicU64> = (0..slots).map(|_| AtomicU64::new(EMPTY)).collect();
        let counts: Vec<AtomicU64> =
            if cfg.count { (0..slots).map(|_| AtomicU64::new(0)).collect() } else { Vec::new() };
        let hasher = Murmur2::default();

        let ranges = chunk_ranges(keys.len(), cfg.threads);
        scoped_map(ranges.len().max(1), |t| {
            let Some(range) = ranges.get(t) else { return };
            for &key in &keys[range.clone()] {
                debug_assert_ne!(key, EMPTY, "u64::MAX is the empty sentinel");
                let mut slot = (hasher.hash_u64(key) as usize) & mask;
                loop {
                    let cur = table[slot].load(Ordering::Acquire);
                    if cur == key {
                        break;
                    }
                    if cur == EMPTY
                        && table[slot]
                            .compare_exchange(EMPTY, key, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                    {
                        break;
                    }
                    if table[slot].load(Ordering::Acquire) == key {
                        // Lost the race to the same key.
                        break;
                    }
                    slot = (slot + 1) & mask;
                }
                if cfg.count {
                    counts[slot].fetch_add(1, Ordering::Relaxed);
                }
            }
        });

        let mut out = BaselineOutput { keys: Vec::new(), counts: Vec::new() };
        for slot in 0..slots {
            let k = table[slot].load(Ordering::Acquire);
            if k != EMPTY {
                out.keys.push(k);
                if cfg.count {
                    out.counts.push(counts[slot].load(Ordering::Relaxed));
                } else {
                    out.counts.push(0);
                }
            }
        }
        out
    }
}
