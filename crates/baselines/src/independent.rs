//! INDEPENDENT (Cieslewicz & Ross): private tables, then a parallel merge.
//!
//! Pass 1: every thread aggregates its input slice into a private growable
//! hash table. Pass 2: the hash space is cut into one range per thread and
//! each thread merges the matching entries of *all* private tables ("the
//! hash tables are split and merged in parallel"). Both passes can exceed
//! the per-thread cache, so the algorithm has *two* cache-efficiency
//! limits (L3 and 256·L3 in Figure 8).

use crate::{Baseline, BaselineConfig, BaselineOutput};
use hsa_agg::StateOp;
use hsa_hash::{Hasher64, Murmur2};
use hsa_hashtbl::GrowTable;
use hsa_tasks::{chunk_ranges, scoped_map};

/// The private-tables-and-merge baseline.
pub struct Independent;

impl Baseline for Independent {
    fn name(&self) -> &'static str {
        "INDEPENDENT"
    }

    fn passes(&self) -> u32 {
        2
    }

    fn run(&self, keys: &[u64], cfg: &BaselineConfig) -> BaselineOutput {
        let threads = cfg.threads.max(1);
        let hasher = Murmur2::default();
        let ops = if cfg.count { vec![StateOp::Count] } else { vec![] };

        // Pass 1: thread-private aggregation.
        let ranges = chunk_ranges(keys.len(), threads);
        let privates: Vec<Vec<(u64, u64)>> = scoped_map(ranges.len().max(1), |t| {
            let Some(range) = ranges.get(t) else { return Vec::new() };
            let mut table = GrowTable::with_capacity((cfg.k_hint / threads).max(64), &ops);
            for &key in &keys[range.clone()] {
                table.accumulate(key, if cfg.count { &[0] } else { &[] }, false);
            }
            table.drain().map(|(k, s)| (k, s.first().copied().unwrap_or(0))).collect()
        });

        // Pass 2: split the hash space, merge in parallel.
        let merged: Vec<Vec<(u64, u64)>> = scoped_map(threads, |t| {
            let lo = (u64::MAX / threads as u64).wrapping_mul(t as u64);
            let hi = if t + 1 == threads {
                u64::MAX
            } else {
                (u64::MAX / threads as u64).wrapping_mul(t as u64 + 1) - 1
            };
            let mut table = GrowTable::with_capacity((cfg.k_hint / threads).max(64), &ops);
            for private in &privates {
                for &(k, c) in private {
                    let h = hasher.hash_u64(k);
                    if h >= lo && h <= hi {
                        let vals = [c];
                        table.accumulate(k, &vals[..ops.len()], true);
                    }
                }
            }
            table.drain().map(|(k, s)| (k, s.first().copied().unwrap_or(0))).collect()
        });

        let mut out = BaselineOutput { keys: Vec::new(), counts: Vec::new() };
        for part in merged {
            for (k, c) in part {
                out.keys.push(k);
                out.counts.push(c);
            }
        }
        out
    }
}
