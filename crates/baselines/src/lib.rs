//! Prior-work in-memory aggregation algorithms (§6.4, Figure 8).
//!
//! Re-implementations of the five competitors the paper measures, from the
//! algorithm descriptions of Cieslewicz & Ross and Ye et al.,
//! *with the paper's own tuning modifications applied*: output structures
//! at least cache-sized (eliminates collision handling for small K),
//! compact tuples (key + count, no padding), spin-free atomics instead of
//! system mutexes, and MurmurHash2 throughout.
//!
//! | algorithm | passes | intrinsic limit (§6.4) |
//! |---|---|---|
//! | [`Atomic`] | 1 | shared table exceeds Σ L3 |
//! | [`Hybrid`] | 1 | private tables exceed per-thread L3 |
//! | [`Independent`] | 2 | private tables exceed per-thread L3; merge exceeds it again |
//! | [`PartitionAndAggregate`] | 2 | 256 partitions only reach K ≈ 256 · cache |
//! | [`Plat`] | 2 | same 256-partition merge limit |
//!
//! Every algorithm has a **fixed number of passes**, which is the paper's
//! point: beyond its design range each one "is penalized by a high number
//! of cache misses", while the recursive operator in `hsa-core` degrades
//! gracefully. All five rely on an output-cardinality hint from the
//! optimizer (`k_hint`); the paper's operator needs none.
//!
//! The unit of work here is the paper's comparison query: a DISTINCT-style
//! grouping with an optional COUNT, over a `u64` key column.

mod atomic;
mod hybrid;
mod independent;
mod partagg;
mod plat;

pub use atomic::Atomic;
pub use hybrid::Hybrid;
pub use independent::Independent;
pub use partagg::PartitionAndAggregate;
pub use plat::Plat;

/// Configuration shared by all baselines.
#[derive(Copy, Clone, Debug)]
pub struct BaselineConfig {
    /// Worker threads.
    pub threads: usize,
    /// Per-thread cache budget in bytes (sizes the private tables).
    pub cache_bytes: usize,
    /// Output-cardinality estimate from the "optimizer". The baselines
    /// size their shared/output structures from it — the prior-knowledge
    /// dependence §6.5 criticizes.
    pub k_hint: usize,
    /// Also maintain per-group row counts (false = pure DISTINCT, the
    /// paper's comparison setting where "virtually no updates occur").
    pub count: bool,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache_bytes: 2 << 20,
            k_hint: 1 << 16,
            count: true,
        }
    }
}

/// Result of a baseline run: groups in unspecified order.
#[derive(Clone, Debug)]
pub struct BaselineOutput {
    /// Distinct keys.
    pub keys: Vec<u64>,
    /// Per-key row count, aligned with `keys`; only meaningful when the
    /// run was configured with `count: true`.
    pub counts: Vec<u64>,
}

impl BaselineOutput {
    /// `(key, count)` pairs sorted by key (test helper).
    pub fn sorted_pairs(&self) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> =
            self.keys.iter().copied().zip(self.counts.iter().copied()).collect();
        v.sort_unstable_by_key(|(k, _)| *k);
        v
    }
}

/// A prior-work aggregation algorithm.
pub trait Baseline: Send + Sync {
    /// Name as used in Figure 8.
    fn name(&self) -> &'static str;

    /// Number of passes over the data (Figure 8 annotation).
    fn passes(&self) -> u32;

    /// Aggregate `keys` into distinct groups (+ counts).
    ///
    /// Keys must not be `u64::MAX` (used as the empty-slot sentinel, the
    /// compact-tuple trick from the paper's tuning).
    fn run(&self, keys: &[u64], cfg: &BaselineConfig) -> BaselineOutput;
}

/// All five baselines, in Figure 8 order.
pub fn all_baselines() -> Vec<Box<dyn Baseline>> {
    vec![
        Box::new(Hybrid),
        Box::new(Atomic),
        Box::new(Independent),
        Box::new(PartitionAndAggregate),
        Box::new(Plat),
    ]
}

/// Sentinel marking an empty slot in the open-addressing tables.
pub(crate) const EMPTY: u64 = u64::MAX;

/// Table sizing per the paper's tuning: at least the cache size, at least
/// 2× the expected number of groups, power of two.
pub(crate) fn table_slots(cfg: &BaselineConfig, groups_hint: usize) -> usize {
    let cache_slots = cfg.cache_bytes / 16; // key + count
    (groups_hint * 2).max(cache_slots).max(16).next_power_of_two()
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::collections::BTreeMap;

    pub fn reference_counts(keys: &[u64]) -> BTreeMap<u64, u64> {
        let mut m = BTreeMap::new();
        for &k in keys {
            *m.entry(k).or_insert(0u64) += 1;
        }
        m
    }

    pub fn check(baseline: &dyn super::Baseline, keys: &[u64], cfg: &super::BaselineConfig) {
        let out = baseline.run(keys, cfg);
        let reference = reference_counts(keys);
        assert_eq!(out.keys.len(), reference.len(), "{}: group count", baseline.name());
        if cfg.count {
            let got: BTreeMap<u64, u64> = out.sorted_pairs().into_iter().collect();
            assert_eq!(got, reference, "{}", baseline.name());
        } else {
            let mut got = out.keys.clone();
            got.sort_unstable();
            let expect: Vec<u64> = reference.keys().copied().collect();
            assert_eq!(got, expect, "{}", baseline.name());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::check;

    fn keys(n: usize, k: u64, seed: u64) -> Vec<u64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (s >> 33) % k
            })
            .collect()
    }

    fn small_cfg() -> BaselineConfig {
        BaselineConfig { threads: 2, cache_bytes: 64 << 10, k_hint: 4096, count: true }
    }

    #[test]
    fn all_baselines_match_reference_small_k() {
        let data = keys(30_000, 500, 1);
        for b in all_baselines() {
            check(b.as_ref(), &data, &small_cfg());
        }
    }

    #[test]
    fn all_baselines_match_reference_large_k() {
        // More groups than the private tables hold.
        let data = keys(60_000, 40_000, 2);
        let cfg = BaselineConfig { k_hint: 40_000, ..small_cfg() };
        for b in all_baselines() {
            check(b.as_ref(), &data, &cfg);
        }
    }

    #[test]
    fn all_baselines_handle_underestimated_k_hint() {
        // The optimizer guessed 64 groups; the data has ~20000. Baselines
        // must stay correct (if slower) — they grow or spill as designed.
        let data = keys(40_000, 20_000, 3);
        let cfg = BaselineConfig { k_hint: 64, ..small_cfg() };
        for b in all_baselines() {
            check(b.as_ref(), &data, &cfg);
        }
    }

    #[test]
    fn all_baselines_distinct_mode() {
        let data = keys(20_000, 3_000, 4);
        let cfg = BaselineConfig { count: false, ..small_cfg() };
        for b in all_baselines() {
            check(b.as_ref(), &data, &cfg);
        }
    }

    #[test]
    fn all_baselines_single_thread() {
        let data = keys(20_000, 2_000, 5);
        let cfg = BaselineConfig { threads: 1, ..small_cfg() };
        for b in all_baselines() {
            check(b.as_ref(), &data, &cfg);
        }
    }

    #[test]
    fn all_baselines_heavy_skew() {
        // 90% one key — stresses ATOMIC contention and HYBRID eviction.
        let mut data = vec![7u64; 27_000];
        data.extend(keys(3_000, 10_000, 6));
        for b in all_baselines() {
            check(b.as_ref(), &data, &small_cfg());
        }
    }

    #[test]
    fn all_baselines_empty_and_tiny() {
        for b in all_baselines() {
            check(b.as_ref(), &[], &small_cfg());
            check(b.as_ref(), &[42], &small_cfg());
            check(b.as_ref(), &[1, 1, 1], &small_cfg());
        }
    }

    #[test]
    fn names_and_passes() {
        let expected = [
            ("HYBRID", 1),
            ("ATOMIC", 1),
            ("INDEPENDENT", 2),
            ("PARTITION-AND-AGGREGATE", 2),
            ("PLAT", 2),
        ];
        for (b, (name, passes)) in all_baselines().iter().zip(expected) {
            assert_eq!(b.name(), name);
            assert_eq!(b.passes(), passes);
        }
    }
}
