//! Synthetic grouping-key data sets (§6.5).
//!
//! Re-implements the data generators of Cieslewicz & Ross that the paper
//! uses for its skew-resistance experiments: for any combination of `N`
//! (rows) and `K` (target number of groups) they produce keys with the
//! distributions **uniform**, **sequential**, **sorted**, **heavy-hitter**,
//! **moving-cluster**, **self-similar** (80–20 Pareto) and **zipf**
//! (exponent 0.5). As the paper notes, skewed data cannot hit `K = N`
//! exactly, so `K` is a target that skewed generators only approximate.
//!
//! ```
//! use hsa_datagen::{generate, Distribution};
//! let keys = generate(Distribution::HeavyHitter, 10_000, 64, 42);
//! assert_eq!(keys.len(), 10_000);
//! // Half of all rows carry the heavy key 1.
//! let heavy = keys.iter().filter(|&&k| k == 1).count();
//! assert!((4000..6000).contains(&heavy));
//! ```

mod prng;
mod zipf;

pub use prng::{SplitMix64, Xoshiro256StarStar};
pub use zipf::Zipf;

/// Width of the moving-cluster sliding window (Cieslewicz & Ross use 1024).
pub const CLUSTER_WINDOW: u64 = 1024;

/// The §6.5 key distributions.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Keys uniform in `[0, K)`.
    Uniform,
    /// Round-robin `i mod K` — dense, perfectly unclustered, zero skew.
    Sequential,
    /// Uniform keys, then sorted: maximal locality.
    Sorted,
    /// 50% of rows carry key 1; the rest are uniform in `[2, K]`.
    HeavyHitter,
    /// Keys uniform within a window of [`CLUSTER_WINDOW`] keys that slides
    /// across `[0, K)` as generation progresses.
    MovingCluster,
    /// Pareto 80–20: 80% of rows fall on the first 20% of keys, recursively.
    SelfSimilar,
    /// Zipf with exponent 0.5 over `[1, K]`.
    Zipf,
}

impl Distribution {
    /// All distributions, in the order Figure 9 plots them.
    pub fn all() -> [Distribution; 7] {
        [
            Distribution::HeavyHitter,
            Distribution::MovingCluster,
            Distribution::SelfSimilar,
            Distribution::Sorted,
            Distribution::Uniform,
            Distribution::Zipf,
            Distribution::Sequential,
        ]
    }

    /// Name as used in the paper's plots.
    pub fn name(&self) -> &'static str {
        match self {
            Distribution::Uniform => "uniform",
            Distribution::Sequential => "sequential",
            Distribution::Sorted => "sorted",
            Distribution::HeavyHitter => "heavy-hitter",
            Distribution::MovingCluster => "moving-cluster",
            Distribution::SelfSimilar => "self-similar",
            Distribution::Zipf => "zipf",
        }
    }
}

/// Generate `n` grouping keys targeting `k ≥ 1` distinct values.
pub fn generate(dist: Distribution, n: usize, k: u64, seed: u64) -> Vec<u64> {
    assert!(k >= 1, "need at least one group");
    let mut rng = Xoshiro256StarStar::new(seed ^ 0x5eed_0000_0000_0000);
    match dist {
        Distribution::Uniform => (0..n).map(|_| rng.below(k)).collect(),
        Distribution::Sequential => (0..n).map(|i| i as u64 % k).collect(),
        Distribution::Sorted => {
            let mut keys: Vec<u64> = (0..n).map(|_| rng.below(k)).collect();
            keys.sort_unstable();
            keys
        }
        Distribution::HeavyHitter => (0..n)
            .map(|_| {
                if rng.next_u64() & 1 == 0 {
                    1
                } else if k > 1 {
                    2 + rng.below(k - 1)
                } else {
                    1
                }
            })
            .collect(),
        Distribution::MovingCluster => {
            if k <= CLUSTER_WINDOW {
                return generate(Distribution::Uniform, n, k, seed);
            }
            let span = k - CLUSTER_WINDOW;
            (0..n)
                .map(|i| {
                    // Window start slides linearly over the key domain.
                    let lo = (i as u128 * span as u128 / n.max(1) as u128) as u64;
                    lo + rng.below(CLUSTER_WINDOW)
                })
                .collect()
        }
        Distribution::SelfSimilar => {
            // Gray et al.: 1 + ⌊K · u^(ln h / ln(1−h))⌋ with h = 0.2 puts
            // (1−h) of the weight on the first h·K keys.
            let exponent = 0.2f64.ln() / 0.8f64.ln();
            (0..n)
                .map(|_| {
                    let v = (k as f64 * rng.next_f64().powf(exponent)) as u64;
                    1 + v.min(k - 1)
                })
                .collect()
        }
        Distribution::Zipf => {
            let z = Zipf::new(k, 0.5);
            (0..n).map(|_| z.sample(&mut rng)).collect()
        }
    }
}

/// Generate an aggregate value column: uniform values in `[0, 1000)` so
/// that sums stay far from overflow at any tested `N`.
pub fn generate_values(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Xoshiro256StarStar::new(seed ^ 0x0a11_ce00_0000_0000);
    (0..n).map(|_| rng.below(1000)).collect()
}

/// Count distinct keys (test/report helper).
pub fn distinct(keys: &[u64]) -> usize {
    let mut sorted = keys.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 100_000;
    const K: u64 = 4096;

    #[test]
    fn all_distributions_produce_n_rows_and_reasonable_k() {
        for dist in Distribution::all() {
            let keys = generate(dist, N, K, 7);
            assert_eq!(keys.len(), N, "{dist:?}");
            let d = distinct(&keys);
            assert!(d > 0 && d <= K as usize + 1, "{dist:?}: {d} distinct");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for dist in Distribution::all() {
            assert_eq!(generate(dist, 1000, 64, 5), generate(dist, 1000, 64, 5), "{dist:?}");
        }
        assert_ne!(
            generate(Distribution::Uniform, 1000, 64, 5),
            generate(Distribution::Uniform, 1000, 64, 6)
        );
    }

    #[test]
    fn uniform_hits_most_groups() {
        let keys = generate(Distribution::Uniform, N, K, 1);
        assert!(distinct(&keys) as f64 > K as f64 * 0.95);
        assert!(keys.iter().all(|&k| k < K));
    }

    #[test]
    fn sequential_is_exact_round_robin() {
        let keys = generate(Distribution::Sequential, 10, 3, 0);
        assert_eq!(keys, vec![0, 1, 2, 0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn sorted_is_sorted_with_uniform_content() {
        let keys = generate(Distribution::Sorted, N, K, 2);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        assert!(distinct(&keys) as f64 > K as f64 * 0.95);
    }

    #[test]
    fn heavy_hitter_is_half_ones() {
        let keys = generate(Distribution::HeavyHitter, N, K, 3);
        let heavy = keys.iter().filter(|&&k| k == 1).count() as f64 / N as f64;
        assert!((0.48..0.52).contains(&heavy), "heavy fraction {heavy}");
        assert!(keys.iter().all(|&k| (1..=K).contains(&k)));
    }

    #[test]
    fn heavy_hitter_k1_degenerates() {
        let keys = generate(Distribution::HeavyHitter, 1000, 1, 3);
        assert!(keys.iter().all(|&k| k == 1));
    }

    #[test]
    fn moving_cluster_keys_stay_in_window() {
        let k = 1 << 16;
        let keys = generate(Distribution::MovingCluster, N, k, 4);
        let span = k - CLUSTER_WINDOW;
        for (i, &key) in keys.iter().enumerate() {
            let lo = (i as u128 * span as u128 / N as u128) as u64;
            assert!(
                (lo..lo + CLUSTER_WINDOW).contains(&key),
                "row {i}: key {key} outside window [{lo}, {})",
                lo + CLUSTER_WINDOW
            );
        }
    }

    #[test]
    fn moving_cluster_small_k_is_uniform() {
        let keys = generate(Distribution::MovingCluster, 1000, 100, 4);
        assert!(keys.iter().all(|&k| k < 100));
    }

    #[test]
    fn self_similar_80_20() {
        let keys = generate(Distribution::SelfSimilar, N, K, 5);
        let cutoff = 1 + K / 5; // first 20% of keys
        let head = keys.iter().filter(|&&k| k <= cutoff).count() as f64 / N as f64;
        assert!((0.75..0.85).contains(&head), "head mass {head}");
        assert!(keys.iter().all(|&k| (1..=K).contains(&k)));
    }

    #[test]
    fn zipf_head_heavier_than_tail() {
        let keys = generate(Distribution::Zipf, N, K, 6);
        let first = keys.iter().filter(|&&k| k == 1).count();
        let last = keys.iter().filter(|&&k| k == K).count();
        assert!(first > last, "P(1)={first} P(K)={last}");
        assert!(keys.iter().all(|&k| (1..=K).contains(&k)));
    }

    #[test]
    fn values_are_bounded() {
        let vals = generate_values(10_000, 9);
        assert_eq!(vals.len(), 10_000);
        assert!(vals.iter().all(|&v| v < 1000));
    }
}
