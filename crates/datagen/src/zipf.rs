//! Zipf sampling by rejection inversion (Hörmann & Derflinger 1996).
//!
//! The paper's `zipf` data set is a Zipfian distribution with exponent 0.5
//! over K keys (§6.5). We implement the rejection-inversion sampler used by
//! Apache Commons: O(1) per sample, no O(K) tables, exact for any exponent
//! s > 0 (including s = 1 via log branches).

use crate::prng::Xoshiro256StarStar;

/// Zipf(s) sampler over `{1, …, n}` with `P(k) ∝ k^(-s)`.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_integral_x1: f64,
    h_integral_n: f64,
    threshold: f64,
}

/// `ln(1 + x) / x`, stable near 0.
#[inline]
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x / 2.0 + x * x / 3.0
    }
}

/// `(exp(x) - 1) / x`, stable near 0.
#[inline]
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x / 2.0 * (1.0 + x / 3.0 * (1.0 + x / 4.0))
    }
}

impl Zipf {
    /// Create a sampler for `n ≥ 1` elements with exponent `s > 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one element");
        assert!(s > 0.0 && s.is_finite(), "Zipf exponent must be positive");
        let h_integral_x1 = Self::h_integral(1.5, s) - 1.0;
        let h_integral_n = Self::h_integral(n as f64 + 0.5, s);
        let threshold =
            2.0 - Self::h_integral_inverse(Self::h_integral(2.5, s) - Self::h(2.0, s), s);
        Self { n, s, h_integral_x1, h_integral_n, threshold }
    }

    /// `H(x) = ∫₁ˣ t^(-s) dt`, expressed stably for all s.
    #[inline]
    fn h_integral(x: f64, s: f64) -> f64 {
        let log_x = x.ln();
        helper2((1.0 - s) * log_x) * log_x
    }

    /// `h(x) = x^(-s)`.
    #[inline]
    fn h(x: f64, s: f64) -> f64 {
        (-s * x.ln()).exp()
    }

    /// Inverse of `h_integral`.
    #[inline]
    fn h_integral_inverse(u: f64, s: f64) -> f64 {
        let mut t = u * (1.0 - s);
        if t < -1.0 {
            // Limit of the smallest representable argument; keeps the
            // function monotone under floating-point round-off.
            t = -1.0;
        }
        (helper1(t) * u).exp()
    }

    /// Draw one sample in `{1, …, n}`.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> u64 {
        loop {
            let p = rng.next_f64();
            let u = self.h_integral_n + p * (self.h_integral_x1 - self.h_integral_n);
            let x = Self::h_integral_inverse(u, self.s);
            let mut k = (x + 0.5) as i64;
            if k < 1 {
                k = 1;
            } else if k as u64 > self.n {
                k = self.n as i64;
            }
            let kf = k as f64;
            if kf - x <= self.threshold
                || u >= Self::h_integral(kf + 0.5, self.s) - Self::h(kf, self.s)
            {
                return k as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(n: u64, s: f64, samples: usize, seed: u64) -> Vec<f64> {
        let z = Zipf::new(n, s);
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..samples {
            let k = z.sample(&mut rng);
            assert!((1..=n).contains(&k));
            counts[(k - 1) as usize] += 1;
        }
        counts.iter().map(|&c| c as f64 / samples as f64).collect()
    }

    fn theoretical(n: u64, s: f64) -> Vec<f64> {
        let weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / total).collect()
    }

    #[test]
    fn matches_theory_small_n() {
        for &s in &[0.5, 1.0, 2.0] {
            let emp = frequencies(8, s, 200_000, 99);
            let theo = theoretical(8, s);
            for (k, (e, t)) in emp.iter().zip(&theo).enumerate() {
                let rel = (e - t).abs() / t;
                assert!(rel < 0.05, "s={s} k={} emp={e} theo={t}", k + 1);
            }
        }
    }

    #[test]
    fn exponent_half_large_n_head_probability() {
        // For s = 0.5 the normalizer is ≈ 2√n, so P(1) ≈ 1/(2√n).
        let n = 10_000u64;
        let emp = frequencies(n, 0.5, 300_000, 5);
        let expected = 1.0 / (2.0 * (n as f64).sqrt());
        let rel = (emp[0] - expected).abs() / expected;
        assert!(rel < 0.2, "P(1)={} expected≈{expected}", emp[0]);
    }

    #[test]
    fn n_one_always_returns_one() {
        let z = Zipf::new(1, 0.5);
        let mut rng = Xoshiro256StarStar::new(0);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn monotone_decreasing_frequencies() {
        let emp = frequencies(16, 1.0, 400_000, 123);
        for w in emp.windows(2) {
            // Allow tiny sampling noise on the tail.
            assert!(w[0] + 0.004 > w[1], "frequencies not decreasing: {w:?}");
        }
    }

    #[test]
    #[should_panic(expected = "exponent must be positive")]
    fn rejects_nonpositive_exponent() {
        let _ = Zipf::new(10, 0.0);
    }
}
