//! Deterministic pseudo-random number generation for data synthesis.
//!
//! Benchmarks must be reproducible run-to-run and machine-to-machine, so we
//! implement the generators ourselves instead of depending on `rand`'s
//! unspecified-by-version algorithms: [`SplitMix64`] for seeding and cheap
//! streams, [`Xoshiro256StarStar`] (Blackman & Vigna) as the workhorse.

/// SplitMix64 — Steele, Lea & Flood's 64-bit mixer-based generator.
///
/// Tiny state, passes BigCrush when used as intended, and is the canonical
/// way to seed xoshiro from a single `u64`.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniform random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256** 1.0 — the general-purpose generator of Blackman & Vigna.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed via SplitMix64, as the reference implementation recommends.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Next 64 uniform random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift reduction
    /// (unbiased enough for data synthesis; bound ≪ 2⁶⁴ in practice).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_vector() {
        // First output for seed 0, from the reference implementation.
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn splitmix_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256StarStar::new(7);
        let mut b = Xoshiro256StarStar::new(7);
        let mut c = Xoshiro256StarStar::new(8);
        let mut differs = false;
        for _ in 0..100 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            differs |= x != c.next_u64();
        }
        assert!(differs);
    }

    #[test]
    fn below_respects_bound_and_hits_all_values() {
        let mut g = Xoshiro256StarStar::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = g.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = Xoshiro256StarStar::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }
}
