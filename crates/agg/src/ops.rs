//! Physical per-column state operations — the innermost loops of the whole
//! operator, so everything here is branch-light and `#[inline(always)]`.

/// A physical aggregate state operation over one `u64` state column.
///
/// Three methods cover the life of a state:
///
/// * [`StateOp::init`] — state of a brand-new group from a raw value,
/// * [`StateOp::apply`] — fold one more *raw* value in,
/// * [`StateOp::merge`] — fold a *partial aggregate* in (super-aggregate).
///
/// `Count` is the one op where `apply` and `merge` differ (`+1` vs `+s`),
/// which is the entire reason the framework tracks the `aggregated` flag on
/// runs (§3.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum StateOp {
    /// Row count; `init` = 1, ignores the input value.
    Count,
    /// Wrapping sum (documented wrap-around instead of a hot-loop panic).
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl StateOp {
    /// State for a new group seen with raw input value `v`.
    #[inline(always)]
    pub fn init(self, v: u64) -> u64 {
        match self {
            StateOp::Count => 1,
            StateOp::Sum | StateOp::Min | StateOp::Max => v,
        }
    }

    /// Fold raw input value `v` into existing state `s`.
    #[inline(always)]
    pub fn apply(self, s: u64, v: u64) -> u64 {
        match self {
            StateOp::Count => s.wrapping_add(1),
            StateOp::Sum => s.wrapping_add(v),
            StateOp::Min => s.min(v),
            StateOp::Max => s.max(v),
        }
    }

    /// Fold partial-aggregate state `other` into state `s`
    /// (the super-aggregate function: COUNT merges by SUM).
    #[inline(always)]
    pub fn merge(self, s: u64, other: u64) -> u64 {
        match self {
            StateOp::Count | StateOp::Sum => s.wrapping_add(other),
            StateOp::Min => s.min(other),
            StateOp::Max => s.max(other),
        }
    }

    /// Combine a value into state, choosing `apply` or `merge` by whether
    /// the incoming run is aggregated. Kept as one call so kernels hoist
    /// the branch out of their loops naturally (the flag is per-run).
    #[inline(always)]
    pub fn combine(self, s: u64, v: u64, incoming_aggregated: bool) -> u64 {
        if incoming_aggregated {
            self.merge(s, v)
        } else {
            self.apply(s, v)
        }
    }

    /// State for a new group from an incoming value that may already be a
    /// partial aggregate.
    #[inline(always)]
    pub fn init_from(self, v: u64, incoming_aggregated: bool) -> u64 {
        if incoming_aggregated {
            v
        } else {
            self.init(v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_apply_vs_merge_differ() {
        // Two raw rows then merging two partial counts must agree.
        let c1 = StateOp::Count.apply(StateOp::Count.init(10), 20); // 2 rows
        let c2 = StateOp::Count.apply(StateOp::Count.init(30), 40); // 2 rows
        assert_eq!(c1, 2);
        assert_eq!(StateOp::Count.merge(c1, c2), 4);
        // apply on a partial count would be wrong: 2 + 1 != 4.
        assert_ne!(StateOp::Count.apply(c1, c2), 4);
    }

    #[test]
    fn sum_is_associative_across_apply_and_merge() {
        let raw = [3u64, 9, 27, 81];
        let all = raw.iter().fold(0u64, |s, &v| StateOp::Sum.apply(s, v));
        let left = StateOp::Sum.apply(StateOp::Sum.init(3), 9);
        let right = StateOp::Sum.apply(StateOp::Sum.init(27), 81);
        assert_eq!(StateOp::Sum.merge(left, right), all);
    }

    #[test]
    fn min_max_init_and_fold() {
        assert_eq!(StateOp::Min.apply(StateOp::Min.init(5), 3), 3);
        assert_eq!(StateOp::Min.apply(StateOp::Min.init(5), 7), 5);
        assert_eq!(StateOp::Max.apply(StateOp::Max.init(5), 3), 5);
        assert_eq!(StateOp::Max.apply(StateOp::Max.init(5), 7), 7);
        // merge == apply for min/max (they are their own super-aggregate).
        assert_eq!(StateOp::Min.merge(3, 7), 3);
        assert_eq!(StateOp::Max.merge(3, 7), 7);
    }

    #[test]
    fn sum_wraps_instead_of_panicking() {
        assert_eq!(StateOp::Sum.apply(u64::MAX, 2), 1);
    }

    #[test]
    fn combine_dispatches_on_flag() {
        assert_eq!(StateOp::Count.combine(5, 100, false), 6);
        assert_eq!(StateOp::Count.combine(5, 100, true), 105);
        assert_eq!(StateOp::Count.init_from(100, false), 1);
        assert_eq!(StateOp::Count.init_from(100, true), 100);
    }
}
