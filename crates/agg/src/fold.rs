//! Vectorized mapped folds: the state-column update loops of §3.3 routed
//! through the `hsa-kernels` fold primitives.
//!
//! The key pass leaves a mapping vector (row → slot); each state column is
//! then folded in its own tight loop. [`fold_column`] is that loop with
//! kernel dispatch: scalar reference, prefetch-pipelined, or AVX2
//! gather/SIMD — all bit-identical, chosen per run by the driver.

use crate::StateOp;
use hsa_kernels::{fold_mapped, FoldOp, KernelKind};

/// The kernel-level operation corresponding to a [`StateOp`].
#[inline]
pub fn fold_op(op: StateOp) -> FoldOp {
    match op {
        StateOp::Count => FoldOp::Count,
        StateOp::Sum => FoldOp::Sum,
        StateOp::Min => FoldOp::Min,
        StateOp::Max => FoldOp::Max,
    }
}

/// Fold `vals` into `col` through `mapping` with `op`, using the kernel
/// tier `kind`. `aggregated` selects apply vs merge semantics exactly like
/// [`StateOp::combine`]: raw rows are applied, partial aggregates merged.
#[inline]
pub fn fold_column(
    kind: KernelKind,
    op: StateOp,
    aggregated: bool,
    col: &mut [u64],
    mapping: &[u32],
    vals: &[u64],
) {
    fold_mapped(kind, fold_op(op), aggregated, col, mapping, vals);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_column_agrees_with_state_op_semantics() {
        let ops = [StateOp::Count, StateOp::Sum, StateOp::Min, StateOp::Max];
        let mut s = 0x1234_5678_9ABC_DEF1u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for kind in hsa_kernels::available_kinds() {
            for &op in &ops {
                for aggregated in [false, true] {
                    let slots = 64usize;
                    let rows = 500usize;
                    let base: Vec<u64> = (0..slots as u64).map(|i| i * 7 + 1).collect();
                    let mapping: Vec<u32> =
                        (0..rows).map(|_| (rng() % slots as u64) as u32).collect();
                    let vals: Vec<u64> = (0..rows).map(|_| rng()).collect();
                    let mut got = base.clone();
                    fold_column(kind, op, aggregated, &mut got, &mapping, &vals);
                    let mut want = base;
                    for (&slot, &v) in mapping.iter().zip(&vals) {
                        let s = &mut want[slot as usize];
                        *s = op.combine(*s, v, aggregated);
                    }
                    assert_eq!(got, want, "{kind:?} {op:?} aggregated={aggregated}");
                }
            }
        }
    }
}
