//! Aggregate-function framework with super-aggregates.
//!
//! The framework mixes raw input rows and partially aggregated rows in the
//! same buckets, so combining rows needs two distinct operations (§3.1):
//!
//! * the **aggregate function** applied to raw input values, and
//! * the **super-aggregate function** (Gray et al.) applied to partial
//!   aggregates — e.g. "the super-aggregate function of COUNT is SUM".
//!
//! Only functions with O(1) intermediate state qualify for the paper's
//! merged last-pass optimization (§2.1): the *distributive* functions
//! COUNT, SUM, MIN, MAX, and the *algebraic* AVG, whose state decomposes
//! into (SUM, COUNT). MEDIAN and friends (*holistic* functions) do not and
//! are out of scope, exactly as in the paper.
//!
//! [`AggFn`] is the logical function a query asks for; [`plan`] lowers a
//! list of them to physical [`StateOp`] columns plus [`Finalizer`]s that
//! compute the visible output from the state columns.

mod fold;
mod ops;
mod planning;

pub use fold::{fold_column, fold_op};
pub use ops::StateOp;
pub use planning::{plan, AggSpec, Finalizer, PhysicalCol, Plan};

/// Logical aggregate functions supported by the operator.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AggFn {
    /// `COUNT(*)` — number of input rows per group.
    Count,
    /// `SUM(col)` — wrapping 64-bit sum.
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
    /// `AVG(col)` — algebraic: carried as (SUM, COUNT), finalized to f64.
    Avg,
}

impl AggFn {
    /// Whether the function's state is a single u64 that combines with
    /// itself (distributive) or decomposes into such parts (algebraic).
    pub fn is_distributive(&self) -> bool {
        !matches!(self, AggFn::Avg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(AggFn::Count.is_distributive());
        assert!(AggFn::Sum.is_distributive());
        assert!(AggFn::Min.is_distributive());
        assert!(AggFn::Max.is_distributive());
        assert!(!AggFn::Avg.is_distributive());
    }
}
