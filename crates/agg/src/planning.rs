//! Lowering logical aggregate specs to physical state columns.
//!
//! A query's `SUM(a), AVG(b), COUNT(*)` becomes a flat list of physical
//! `u64` state columns — `[Sum(a), Sum(b), Count, Count]` — because the
//! kernels only understand flat `u64` columns. AVG contributes two columns
//! (Gray et al.'s algebraic decomposition); duplicate COUNT columns are
//! shared. [`Finalizer`]s reconstruct the visible query output.

use crate::{AggFn, StateOp};

/// A logical aggregate requested by a query.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFn,
    /// Index of the input column carrying the aggregated values;
    /// `None` for `COUNT(*)`.
    pub input: Option<usize>,
}

impl AggSpec {
    /// `COUNT(*)`.
    pub const fn count() -> Self {
        Self { func: AggFn::Count, input: None }
    }

    /// `SUM(input)`.
    pub const fn sum(input: usize) -> Self {
        Self { func: AggFn::Sum, input: Some(input) }
    }

    /// `MIN(input)`.
    pub const fn min(input: usize) -> Self {
        Self { func: AggFn::Min, input: Some(input) }
    }

    /// `MAX(input)`.
    pub const fn max(input: usize) -> Self {
        Self { func: AggFn::Max, input: Some(input) }
    }

    /// `AVG(input)`.
    pub const fn avg(input: usize) -> Self {
        Self { func: AggFn::Avg, input: Some(input) }
    }
}

/// One physical state column the kernels maintain.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PhysicalCol {
    /// The state operation.
    pub op: StateOp,
    /// Input column feeding this state; `None` for COUNT (value ignored).
    pub input: Option<usize>,
}

/// How to compute one visible output from the physical state columns.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Finalizer {
    /// Output is state column `i` verbatim.
    State(usize),
    /// Output is `state[sum] as f64 / state[count] as f64` (AVG).
    Ratio {
        /// Index of the SUM state column.
        sum: usize,
        /// Index of the COUNT state column.
        count: usize,
    },
}

impl Finalizer {
    /// Evaluate against one group's state row.
    pub fn eval(&self, states: &[u64]) -> f64 {
        match *self {
            Finalizer::State(i) => states[i] as f64,
            Finalizer::Ratio { sum, count } => {
                if states[count] == 0 {
                    f64::NAN
                } else {
                    states[sum] as f64 / states[count] as f64
                }
            }
        }
    }

    /// Evaluate as an integer where exact (everything but AVG).
    pub fn eval_u64(&self, states: &[u64]) -> Option<u64> {
        match *self {
            Finalizer::State(i) => Some(states[i]),
            Finalizer::Ratio { .. } => None,
        }
    }
}

/// A lowered aggregation plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Plan {
    /// Physical state columns, in kernel order.
    pub cols: Vec<PhysicalCol>,
    /// One finalizer per requested [`AggSpec`], in request order.
    pub finalizers: Vec<Finalizer>,
}

/// Lower logical aggregate specs to physical columns + finalizers.
///
/// COUNT state columns are shared: `AVG(b), COUNT(*)` produces a single
/// physical Count column referenced by both finalizers, saving a state
/// column of memory traffic per duplicate — the kind of "reduce tuple size
/// and hence memory traffic" tuning §6.4 applies to the baselines too.
pub fn plan(specs: &[AggSpec]) -> Plan {
    let mut cols: Vec<PhysicalCol> = Vec::new();
    let mut finalizers = Vec::with_capacity(specs.len());

    let intern = |cols: &mut Vec<PhysicalCol>, col: PhysicalCol| -> usize {
        if let Some(i) = cols.iter().position(|c| *c == col) {
            i
        } else {
            cols.push(col);
            cols.len() - 1
        }
    };

    for spec in specs {
        match spec.func {
            AggFn::Count => {
                let i = intern(&mut cols, PhysicalCol { op: StateOp::Count, input: None });
                finalizers.push(Finalizer::State(i));
            }
            AggFn::Sum | AggFn::Min | AggFn::Max => {
                let input = spec.input.expect("SUM/MIN/MAX need an input column");
                let op = match spec.func {
                    AggFn::Sum => StateOp::Sum,
                    AggFn::Min => StateOp::Min,
                    AggFn::Max => StateOp::Max,
                    _ => unreachable!(),
                };
                let i = intern(&mut cols, PhysicalCol { op, input: Some(input) });
                finalizers.push(Finalizer::State(i));
            }
            AggFn::Avg => {
                let input = spec.input.expect("AVG needs an input column");
                let sum = intern(&mut cols, PhysicalCol { op: StateOp::Sum, input: Some(input) });
                let count = intern(&mut cols, PhysicalCol { op: StateOp::Count, input: None });
                finalizers.push(Finalizer::Ratio { sum, count });
            }
        }
    }

    Plan { cols, finalizers }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_star_plan() {
        let p = plan(&[AggSpec::count()]);
        assert_eq!(p.cols, vec![PhysicalCol { op: StateOp::Count, input: None }]);
        assert_eq!(p.finalizers, vec![Finalizer::State(0)]);
    }

    #[test]
    fn avg_decomposes_and_count_is_shared() {
        let p = plan(&[AggSpec::avg(0), AggSpec::count(), AggSpec::sum(0)]);
        // Sum(0) is also shared with AVG's sum part.
        assert_eq!(
            p.cols,
            vec![
                PhysicalCol { op: StateOp::Sum, input: Some(0) },
                PhysicalCol { op: StateOp::Count, input: None },
            ]
        );
        assert_eq!(
            p.finalizers,
            vec![Finalizer::Ratio { sum: 0, count: 1 }, Finalizer::State(1), Finalizer::State(0),]
        );
    }

    #[test]
    fn distinct_inputs_distinct_columns() {
        let p = plan(&[AggSpec::sum(0), AggSpec::sum(1), AggSpec::min(0), AggSpec::max(0)]);
        assert_eq!(p.cols.len(), 4);
    }

    #[test]
    fn finalizer_eval() {
        assert_eq!(Finalizer::State(1).eval(&[7, 9]), 9.0);
        assert_eq!(Finalizer::Ratio { sum: 0, count: 1 }.eval(&[10, 4]), 2.5);
        assert!(Finalizer::Ratio { sum: 0, count: 1 }.eval(&[10, 0]).is_nan());
        assert_eq!(Finalizer::State(0).eval_u64(&[7]), Some(7));
        assert_eq!(Finalizer::Ratio { sum: 0, count: 1 }.eval_u64(&[7, 1]), None);
    }

    #[test]
    #[should_panic(expected = "AVG needs an input column")]
    fn avg_without_input_panics() {
        let _ = plan(&[AggSpec { func: AggFn::Avg, input: None }]);
    }
}
