//! The repo-specific invariants `hsa-lint` enforces.
//!
//! Each check consumes scanned [`SourceLine`]s (or a raw `Cargo.toml`)
//! and yields [`Finding`]s. The checks are deliberately line-oriented and
//! conservative: they flag what they can prove from the token channels,
//! nothing speculative.

use crate::scan::{find_word, SourceLine};
use std::collections::BTreeMap;
use std::fmt;

/// Which invariant a finding violates.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Check {
    /// `unsafe` without a `// SAFETY:` justification.
    Safety,
    /// Non-`SeqCst` atomic ordering without a `// ORDERING:` justification.
    Ordering,
    /// `unwrap()` / `expect()` / `panic!` in a library crate beyond the
    /// frozen allowlist.
    Panic,
    /// An external dependency in a `Cargo.toml` (the std-only contract).
    Deps,
    /// A documented out-of-line collision path lost its `#[inline(never)]`
    /// or `#[cold]` marker.
    ColdPath,
    /// An atomic protocol violation: an unparseable/stale `ORDERING`
    /// annotation, an unpaired Release store or Acquire load, a Relaxed
    /// access claiming publication, or a dangling `pairs-with` tag.
    Atomics,
    /// A lock-order cycle across the workspace lock graph — a potential
    /// deadlock.
    LockOrder,
    /// A budget-returning RAII guard reaches `mem::forget`,
    /// `ManuallyDrop::new`, or `Box::leak` outside tests.
    RaiiLeak,
    /// An `AggError` variant with no explicit `ErrorClass` arm in the CLI
    /// error module.
    Taxonomy,
}

impl Check {
    /// Stable lowercase label used in findings and the allowlist file.
    pub fn label(self) -> &'static str {
        match self {
            Check::Safety => "safety",
            Check::Ordering => "ordering",
            Check::Panic => "panic",
            Check::Deps => "deps",
            Check::ColdPath => "cold-path",
            Check::Atomics => "atomics",
            Check::LockOrder => "lock-order",
            Check::RaiiLeak => "raii-leak",
            Check::Taxonomy => "taxonomy",
        }
    }
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One violation, pointing at `path:line`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Invariant violated.
    pub check: Check,
    /// Path relative to the workspace root, with `/` separators.
    pub path: String,
    /// 1-based line; 0 for whole-file findings.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.check, self.message)
    }
}

/// How many annotation-bearing lines above a site are searched before the
/// contiguity rules below give up.
const LOOKBACK: usize = 16;

/// Does line `idx` carry `needle` in a comment on the same line, or in the
/// contiguous run of comment / attribute lines directly above it?
///
/// The upward scan also steps over lines that contain another site of the
/// same kind (`extra_site` returns true), so one comment can cover a
/// stacked pair like two `unsafe impl`s or the two ordering arguments of a
/// `compare_exchange`.
fn annotated(
    lines: &[SourceLine],
    idx: usize,
    needles: &[&str],
    extra_site: impl Fn(&SourceLine) -> bool,
) -> bool {
    let hit = |l: &SourceLine| needles.iter().any(|n| l.comment.contains(n));
    if hit(&lines[idx]) {
        return true;
    }
    let mut seen = 0usize;
    let mut extra_hops = 0usize;
    let mut i = idx;
    while i > 0 && seen < LOOKBACK {
        i -= 1;
        let l = &lines[i];
        let comment_only = l.is_code_blank() && !l.comment.is_empty();
        // Only a comment line (or attribute trailing comment) satisfies
        // the rule here — a justification trailing a *different* site's
        // code line stays bound to that site.
        if (comment_only || l.is_attribute()) && hit(l) {
            return true;
        }
        let continues = if comment_only || l.is_attribute() || annotation_carrier(l) {
            true
        } else if extra_site(l) {
            // One adjacent sibling site may share the comment (stacked
            // `unsafe impl`s, the two orderings of a `compare_exchange`);
            // longer chains each need their own justification.
            extra_hops += 1;
            extra_hops <= 1
        } else {
            false
        };
        if !continues {
            return false;
        }
        seen += 1;
    }
    false
}

/// Lines that may sit between a site and its justification without
/// breaking contiguity: fragments of a statement that rustfmt wrapped —
/// argument lines (`cur,`), method-chain links (`.iter()`), an opening
/// `foo(` or `if x {`. A justification covers the whole statement it sits
/// above, so the scan walks through anything that does not *end* a
/// statement (`;`), close a block (`}`), or leave the line blank.
fn annotation_carrier(l: &SourceLine) -> bool {
    let t = l.code.trim();
    !t.is_empty() && !t.ends_with(';') && !t.ends_with('}')
}

/// Invariant 1: every `unsafe` keyword (block, fn, impl, trait) carries a
/// `// SAFETY:` comment — or, for `unsafe fn`, a `# Safety` doc section —
/// on the line or contiguously above it.
pub fn check_safety(path: &str, lines: &[SourceLine]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if find_word(&line.code, "unsafe").is_empty() {
            continue;
        }
        let ok = annotated(lines, idx, &["SAFETY:", "# Safety"], |l| {
            !find_word(&l.code, "unsafe").is_empty()
        });
        if !ok {
            out.push(Finding {
                check: Check::Safety,
                path: path.to_string(),
                line: line.number,
                message: "`unsafe` without a `// SAFETY:` justification".to_string(),
            });
        }
    }
    out
}

/// The relaxed orderings that demand justification. `SeqCst` is exempt:
/// it is the conservative default, so requiring a comment would only
/// invite downgrades.
const WEAK_ORDERINGS: &[&str] =
    &["Ordering::Relaxed", "Ordering::Acquire", "Ordering::Release", "Ordering::AcqRel"];

/// Does this code channel mention any non-`SeqCst` ordering token? Shared
/// with the atomics pairing pass, which uses it to decide whether a site
/// needs an annotation at all.
pub fn has_weak_ordering_code(code: &str) -> bool {
    WEAK_ORDERINGS.iter().any(|o| code.contains(o))
}

fn has_weak_ordering(code: &str) -> bool {
    has_weak_ordering_code(code)
}

/// Invariant 2: in the concurrency crates, every non-`SeqCst` ordering is
/// justified by a `// ORDERING:` comment. Test code is exempt (tests use
/// `Relaxed` counters to assert totals, not to synchronize).
pub fn check_ordering(path: &str, lines: &[SourceLine]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test || !has_weak_ordering(&line.code) {
            continue;
        }
        let ok = annotated(lines, idx, &["ORDERING:"], |l| has_weak_ordering(&l.code));
        if !ok {
            out.push(Finding {
                check: Check::Ordering,
                path: path.to_string(),
                line: line.number,
                message: "non-SeqCst atomic ordering without an `// ORDERING:` justification"
                    .to_string(),
            });
        }
    }
    out
}

/// The panic-shaped calls frozen by the allowlist.
const PANIC_PATTERNS: &[&str] = &[".unwrap()", ".expect(", "panic!"];

/// Count panic-shaped sites per pattern on non-test lines, with the line
/// numbers of every site (for reporting the overflow).
pub fn panic_sites(lines: &[SourceLine]) -> Vec<(usize, &'static str)> {
    let mut out = Vec::new();
    for line in lines {
        if line.in_test {
            continue;
        }
        for pat in PANIC_PATTERNS {
            for _ in 0..line.code.matches(pat).count() {
                out.push((line.number, *pat));
            }
        }
    }
    out
}

/// Invariant 3: no `unwrap()` / `expect()` / `panic!` in library-crate
/// code beyond the per-file counts frozen in the allowlist. Existing debt
/// cannot grow; new files start at zero.
pub fn check_panics(path: &str, lines: &[SourceLine], allowed: &Allowlist) -> Vec<Finding> {
    let sites = panic_sites(lines);
    let budget = allowed.limit(path);
    if sites.len() <= budget {
        return Vec::new();
    }
    sites
        .iter()
        .skip(budget)
        .map(|&(line, pat)| Finding {
            check: Check::Panic,
            path: path.to_string(),
            line,
            message: format!(
                "`{pat}` site exceeds the {budget} frozen in lint-allow.txt \
                 ({} found) — return an error instead, or shrink debt elsewhere \
                 in this file first",
                sites.len()
            ),
        })
        .collect()
}

/// The frozen-debt allowlist: `path panic <count>` lines, `#` comments.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    limits: BTreeMap<String, usize>,
}

impl Allowlist {
    /// Parse the allowlist text. Unknown check names and malformed lines
    /// are reported as findings against the allowlist file itself rather
    /// than silently ignored — a typo must not unfreeze debt.
    pub fn parse(text: &str, own_path: &str) -> (Self, Vec<Finding>) {
        let mut limits = BTreeMap::new();
        let mut findings = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let parsed = match fields.as_slice() {
                [path, check, count] if *check == Check::Panic.label() => {
                    count.parse::<usize>().ok().map(|n| ((*path).to_string(), n))
                }
                _ => None,
            };
            match parsed {
                Some((path, n)) => {
                    limits.insert(path, n);
                }
                None => findings.push(Finding {
                    check: Check::Panic,
                    path: own_path.to_string(),
                    line: i + 1,
                    message: format!("malformed allowlist entry {line:?} (want `path panic N`)"),
                }),
            }
        }
        (Self { limits }, findings)
    }

    /// Frozen site count for `path` (0 when unlisted).
    pub fn limit(&self, path: &str) -> usize {
        self.limits.get(path).copied().unwrap_or(0)
    }
}

/// Sections of a `Cargo.toml` whose `name = spec` entries are
/// dependencies.
fn is_dep_section(name: &str) -> bool {
    let name = name.trim();
    name == "dependencies"
        || name == "dev-dependencies"
        || name == "build-dependencies"
        || name == "workspace.dependencies"
        || (name.starts_with("target.") && name.ends_with("dependencies"))
}

/// For `[dependencies.foo]`-style headers, the dependency name; the body
/// of such a section is the dep's attribute table, not more dependencies.
fn dep_name_in_header(section: &str) -> Option<&str> {
    const PREFIXES: &[&str] =
        &["dependencies.", "dev-dependencies.", "build-dependencies.", "workspace.dependencies."];
    PREFIXES
        .iter()
        .find_map(|p| section.strip_prefix(p))
        .filter(|rest| !rest.is_empty() && !rest.contains('.'))
}

/// Dependency names the std-only contract allows: workspace members only.
fn is_internal_dep(name: &str) -> bool {
    name.starts_with("hsa-") || name == "hashing-is-sorting"
}

/// Invariant 4: every dependency in every manifest is a workspace-internal
/// path dependency. This encodes the std-only contract: the build cannot
/// silently grow an external dependency because CI runs this check.
pub fn check_manifest(path: &str, text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut section = String::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            // `[dependencies.foo]` names the dependency in the header; its
            // body is foo's attribute table, scanned for path/workspace.
            if let Some(name) = dep_name_in_header(&section) {
                check_dep_entry(path, i + 1, name, "", &mut out);
            }
            continue;
        }
        if !is_dep_section(&section) {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else { continue };
        let name = key.trim().split('.').next().unwrap_or("").trim_matches('"');
        check_dep_entry(path, i + 1, name, value.trim(), &mut out);
    }
    out
}

fn check_dep_entry(path: &str, line: usize, name: &str, value: &str, out: &mut Vec<Finding>) {
    if name.is_empty() {
        return;
    }
    if !is_internal_dep(name) {
        out.push(Finding {
            check: Check::Deps,
            path: path.to_string(),
            line,
            message: format!(
                "external dependency `{name}` violates the std-only contract \
                 (only hsa-* workspace crates are allowed)"
            ),
        });
        return;
    }
    // Internal deps must stay path/workspace references — a version
    // requirement would resolve against a registry.
    let ok = value.is_empty()
        || value.contains("workspace")
        || value.contains("path")
        || value == "true";
    if !ok {
        out.push(Finding {
            check: Check::Deps,
            path: path.to_string(),
            line,
            message: format!("dependency `{name}` must be a path/workspace reference, got {value}"),
        });
    }
}

/// The documented out-of-line cold paths and the marker each must carry:
/// `(file suffix, function name, required attribute)`. These keep the
/// probe fast path small enough to inline into the batch loop (DESIGN §10).
pub const COLD_PATHS: &[(&str, &str, &str)] = &[
    ("crates/hashtbl/src/fixed.rs", "probe_collision", "#[inline(never)]"),
    ("crates/hashtbl/src/grow.rs", "grow", "#[cold]"),
];

/// Invariant 5: the out-of-line collision paths keep their markers.
pub fn check_cold_paths(path: &str, lines: &[SourceLine]) -> Vec<Finding> {
    let mut out = Vec::new();
    for &(suffix, func, marker) in COLD_PATHS {
        if !path.ends_with(suffix) {
            continue;
        }
        let needle = format!("fn {func}");
        let mut found = false;
        for (idx, line) in lines.iter().enumerate() {
            if line.in_test || find_word(&line.code, func).is_empty() {
                continue;
            }
            if !line.code.contains(&needle) {
                continue;
            }
            found = true;
            // Scan the contiguous attribute/comment block above for the
            // marker.
            let mut ok = false;
            let mut i = idx;
            while i > 0 {
                i -= 1;
                let l = &lines[i];
                if l.code.contains(marker) {
                    ok = true;
                    break;
                }
                if !(l.is_attribute() || (l.is_code_blank() && !l.comment.is_empty())) {
                    break;
                }
            }
            if !ok {
                out.push(Finding {
                    check: Check::ColdPath,
                    path: path.to_string(),
                    line: line.number,
                    message: format!(
                        "`{func}` must stay out of line: add {marker} \
                         (the probe fast path inlines around it)"
                    ),
                });
            }
        }
        if !found {
            out.push(Finding {
                check: Check::ColdPath,
                path: path.to_string(),
                line: 0,
                message: format!(
                    "documented cold path `{func}` not found — if it moved, \
                     update COLD_PATHS in hsa-lint"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    #[test]
    fn safety_check_accepts_same_line_and_above() {
        let src = "\
// SAFETY: fine above
unsafe { a(); }
let x = unsafe { b() }; // SAFETY: fine same line
unsafe { c(); }
";
        let f = check_safety("f.rs", &scan(src));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn safety_check_covers_stacked_unsafe_impls() {
        let src = "\
// SAFETY: sharding contract
unsafe impl Sync for T {}
unsafe impl Send for T {}
";
        assert!(check_safety("f.rs", &scan(src)).is_empty());
    }

    #[test]
    fn safety_accepts_doc_safety_section_for_unsafe_fn() {
        let src = "\
/// Does things.
///
/// # Safety
/// Caller must uphold X.
pub unsafe fn danger() {}
";
        assert!(check_safety("f.rs", &scan(src)).is_empty());
    }

    #[test]
    fn attr_does_not_mask_missing_safety() {
        let src = "#[inline]\nunsafe fn f() {}\n";
        assert_eq!(check_safety("f.rs", &scan(src)).len(), 1);
    }

    #[test]
    fn ordering_check_flags_bare_relaxed_outside_tests() {
        let src = "\
a.load(Ordering::Relaxed);
b.store(1, Ordering::Release); // ORDERING: publishes init
#[cfg(test)]
mod tests {
    fn t() { c.fetch_add(1, Ordering::Relaxed); }
}
";
        let f = check_ordering("f.rs", &scan(src));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn ordering_comment_covers_compare_exchange_pair() {
        let src = "\
// ORDERING: AcqRel on success pairs with the release in drop;
// relaxed failure reloads and retries.
x.compare_exchange_weak(
    cur,
    new,
    Ordering::AcqRel,
    Ordering::Relaxed,
)
";
        assert!(check_ordering("f.rs", &scan(src)).is_empty());
    }

    #[test]
    fn panic_check_freezes_counts() {
        let src = "a.unwrap();\nb.expect(\"x\");\npanic!(\"y\");\n";
        let lines = scan(src);
        let (allow, _) = Allowlist::parse("f.rs panic 2", "lint-allow.txt");
        let f = check_panics("f.rs", &lines, &allow);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
        let (allow3, _) = Allowlist::parse("f.rs panic 3", "lint-allow.txt");
        assert!(check_panics("f.rs", &lines, &allow3).is_empty());
        assert_eq!(check_panics("f.rs", &lines, &Allowlist::default()).len(), 3);
    }

    #[test]
    fn panic_check_ignores_tests_and_strings() {
        let src = "\
let msg = \"do not panic!\";
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}
";
        assert!(check_panics("f.rs", &scan(src), &Allowlist::default()).is_empty());
    }

    #[test]
    fn malformed_allowlist_lines_are_findings() {
        let (_, f) = Allowlist::parse("whoops\nf.rs panic notanumber\nf.rs safety 1", "allow");
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn manifest_check_accepts_internal_rejects_external() {
        let toml = "\
[package]
name = \"hsa-x\"

[dependencies]
hsa-hash.workspace = true
hsa-core = { path = \"../core\" }
serde = \"1\"

[dev-dependencies]
rand = { version = \"0.8\" }
";
        let f = check_manifest("crates/x/Cargo.toml", toml);
        assert_eq!(f.len(), 2);
        assert!(f[0].message.contains("serde"));
        assert!(f[1].message.contains("rand"));
    }

    #[test]
    fn manifest_check_rejects_versioned_internal_dep() {
        let toml = "[dependencies]\nhsa-hash = \"0.1\"\n";
        let f = check_manifest("Cargo.toml", toml);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("path/workspace"));
    }

    #[test]
    fn manifest_check_ignores_non_dep_sections() {
        let toml = "[lints]\nworkspace = true\n\n[features]\ndefault = []\n";
        assert!(check_manifest("Cargo.toml", toml).is_empty());
    }

    #[test]
    fn cold_path_check_requires_marker() {
        let with = "#[inline(never)]\nfn probe_collision() {}\n";
        assert!(check_cold_paths("crates/hashtbl/src/fixed.rs", &scan(with)).is_empty());
        let without = "#[inline]\nfn probe_collision() {}\n";
        let f = check_cold_paths("crates/hashtbl/src/fixed.rs", &scan(without));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("#[inline(never)]"));
        let gone = "fn something_else() {}\n";
        let f2 = check_cold_paths("crates/hashtbl/src/fixed.rs", &scan(gone));
        assert_eq!(f2.len(), 1);
        assert_eq!(f2[0].line, 0);
    }

    #[test]
    fn cold_path_check_skips_other_files() {
        assert!(check_cold_paths("crates/agg/src/fold.rs", &scan("fn grow() {}\n")).is_empty());
    }
}
