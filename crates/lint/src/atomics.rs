//! Atomic protocol pairing: the cross-file half of the `ORDERING` story.
//!
//! v1 of the analyzer checked that an `// ORDERING:` comment *exists* next
//! to every weak atomic. This module checks that the claimed protocol is
//! *coherent*: it promotes the comments to a machine-readable grammar,
//! extracts every atomic field and its load/store/RMW orderings across all
//! scoped crates, and verifies the pairings the comments claim.
//!
//! # The grammar
//!
//! ```text
//! // ORDERING: <ord>[/<ord>]* [; site: <tag>] [; pairs-with: <field>.<tag>[, …]] [— prose]
//! ```
//!
//! * the head names the orderings the site uses (`Release`,
//!   `AcqRel/Relaxed`, …) — every named ordering must actually appear at
//!   the site, so a comment cannot silently go stale;
//! * `site: <tag>` gives this access a name other sites can pair with
//!   (the tag is scoped to the atomic *field* the access touches);
//! * `pairs-with: <field>.<tag>` claims this access synchronizes with the
//!   named site — the reference must resolve to a declared tag;
//! * everything after an em dash (`—`) is free prose.
//!
//! # What is checked
//!
//! 1. every annotation parses (unparseable grammar is a finding);
//! 2. declared orderings match the site (stale comments are findings);
//! 3. a `Relaxed`-only access must not claim publication (a `pairs-with`
//!    clause or "publishes" prose on a Relaxed access is a finding —
//!    Relaxed neither publishes nor observes publication);
//! 4. every `pairs-with` reference resolves to an existing `site:` tag on
//!    the named field (dangling tags are findings);
//! 5. field-level pairing: a weak `Release`/`AcqRel` write on field `f`
//!    with *no* `Acquire`-capable read of `f` anywhere in the scoped
//!    crates is unpaired (and vice versa for `Acquire` reads).
//!
//! The field analysis is name-based (`self.pending.fetch_sub(…)` → field
//! `pending`), which makes checks 4–5 heuristic in the presence of
//! same-named fields on different structs: two such fields are pooled, so
//! the analysis can miss an unpaired store but never invents a pairing
//! site that does not exist. DESIGN.md §17 spells out the sound/heuristic
//! split.

use crate::checks::{Check, Finding};
use crate::scan::{find_word, SourceLine};
use std::collections::{BTreeMap, BTreeSet};

/// One memory-ordering token.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Ord {
    /// `Ordering::Relaxed`.
    Relaxed,
    /// `Ordering::Acquire`.
    Acquire,
    /// `Ordering::Release`.
    Release,
    /// `Ordering::AcqRel`.
    AcqRel,
    /// `Ordering::SeqCst` (never *requires* annotation, but participates
    /// in pairing: a SeqCst load is an acquire-capable read).
    SeqCst,
}

impl Ord {
    fn parse(token: &str) -> Option<Ord> {
        match token {
            "Relaxed" => Some(Ord::Relaxed),
            "Acquire" => Some(Ord::Acquire),
            "Release" => Some(Ord::Release),
            "AcqRel" => Some(Ord::AcqRel),
            "SeqCst" => Some(Ord::SeqCst),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Ord::Relaxed => "Relaxed",
            Ord::Acquire => "Acquire",
            Ord::Release => "Release",
            Ord::AcqRel => "AcqRel",
            Ord::SeqCst => "SeqCst",
        }
    }
}

/// What kind of access an atomic call site is.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// `.load(…)` — read-only.
    Load,
    /// `.store(…)` — write-only.
    Store,
    /// `.swap` / `.fetch_*` / `.compare_exchange*` — read *and* write.
    Rmw,
    /// An ordering token with no attached atomic call (helper arguments,
    /// fences). Excluded from pairing, still requires an annotation.
    Bare,
}

/// The atomic method names the extractor recognizes, longest-prefix first
/// so `compare_exchange_weak` wins over `compare_exchange`.
const OPS: &[(&str, OpKind)] = &[
    (".compare_exchange_weak(", OpKind::Rmw),
    (".compare_exchange(", OpKind::Rmw),
    (".fetch_update(", OpKind::Rmw),
    (".fetch_add(", OpKind::Rmw),
    (".fetch_sub(", OpKind::Rmw),
    (".fetch_and(", OpKind::Rmw),
    (".fetch_or(", OpKind::Rmw),
    (".fetch_xor(", OpKind::Rmw),
    (".fetch_min(", OpKind::Rmw),
    (".fetch_max(", OpKind::Rmw),
    (".fetch_nand(", OpKind::Rmw),
    (".swap(", OpKind::Rmw),
    (".load(", OpKind::Load),
    (".store(", OpKind::Store),
];

const ALL_ORDS: &[Ord] = &[Ord::Relaxed, Ord::Acquire, Ord::Release, Ord::AcqRel, Ord::SeqCst];

/// One extracted atomic access.
#[derive(Clone, Debug)]
pub struct AtomicSite {
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based line of the atomic call (its first line when wrapped).
    pub line: usize,
    /// The receiver's final field/variable name, if extractable.
    pub field: Option<String>,
    /// Access kind.
    pub op: OpKind,
    /// Every ordering token in the call's argument span.
    pub ords: BTreeSet<Ord>,
    /// The parsed annotation, its parse error, or `None` when the site has
    /// no `ORDERING:` comment at all (v1's presence check owns that case).
    pub ann: Option<Result<Annotation, String>>,
}

impl AtomicSite {
    fn has(&self, o: Ord) -> bool {
        self.ords.contains(&o)
    }

    /// Weak = any non-SeqCst ordering (the annotation trigger).
    fn is_weak(&self) -> bool {
        self.ords.iter().any(|o| *o != Ord::SeqCst)
    }

    /// Can this access publish (release-capable write)?
    fn releases(&self) -> bool {
        matches!(self.op, OpKind::Store | OpKind::Rmw)
            && (self.has(Ord::Release) || self.has(Ord::AcqRel) || self.has(Ord::SeqCst))
    }

    /// Can this access observe a publication (acquire-capable read)?
    fn acquires(&self) -> bool {
        matches!(self.op, OpKind::Load | OpKind::Rmw)
            && (self.has(Ord::Acquire) || self.has(Ord::AcqRel) || self.has(Ord::SeqCst))
    }
}

/// A parsed `ORDERING:` annotation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Annotation {
    /// Orderings the head declares.
    pub declared: BTreeSet<Ord>,
    /// The `site:` tag, if declared.
    pub site_tag: Option<String>,
    /// Every `pairs-with: field.tag` reference.
    pub pairs_with: Vec<(String, String)>,
    /// Free prose after the em dash (plus any continuation lines).
    pub prose: String,
}

/// Parse the text after `ORDERING:` on one comment line.
pub fn parse_annotation(text: &str) -> Result<Annotation, String> {
    let mut ann = Annotation::default();
    // Everything after the first em dash is prose.
    let (clauses, prose) = match text.split_once('—') {
        Some((c, p)) => (c, p.trim().to_string()),
        None => (text, String::new()),
    };
    ann.prose = prose;
    let mut parts = clauses.split(';');
    let head = parts.next().unwrap_or("").trim();
    if head.is_empty() {
        return Err("empty ordering head".to_string());
    }
    for token in head.split(['/', ',']).map(str::trim).filter(|t| !t.is_empty()) {
        match Ord::parse(token) {
            Some(o) => {
                ann.declared.insert(o);
            }
            None => {
                return Err(format!(
                    "head token `{token}` is not an ordering (want Relaxed/Acquire/Release/AcqRel, \
                     `/`-separated; prose goes after an em dash)"
                ))
            }
        }
    }
    for clause in parts {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let Some((key, value)) = clause.split_once(':') else {
            return Err(format!("clause `{clause}` has no `key:` prefix"));
        };
        let value = value.trim();
        match key.trim() {
            "site" => {
                if !is_tag(value) {
                    return Err(format!("site tag `{value}` is not a bare identifier"));
                }
                if ann.site_tag.replace(value.to_string()).is_some() {
                    return Err("duplicate `site:` clause".to_string());
                }
            }
            "pairs-with" => {
                for r in value.split(',').map(str::trim).filter(|r| !r.is_empty()) {
                    let Some((field, tag)) = r.split_once('.') else {
                        return Err(format!("pairs-with reference `{r}` is not `<field>.<tag>`"));
                    };
                    if !is_tag(field) || !is_tag(tag) {
                        return Err(format!("pairs-with reference `{r}` is not `<field>.<tag>`"));
                    }
                    ann.pairs_with.push((field.to_string(), tag.to_string()));
                }
                if ann.pairs_with.is_empty() {
                    return Err("empty `pairs-with:` clause".to_string());
                }
            }
            other => return Err(format!("unknown clause key `{other}`")),
        }
    }
    Ok(ann)
}

fn is_tag(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Extract every atomic access (and bare ordering token) from one scanned
/// file. Test code is skipped, mirroring the v1 presence check.
pub fn extract_sites(path: &str, lines: &[SourceLine]) -> Vec<AtomicSite> {
    // Flatten the code channel so call spans can cross line breaks
    // (rustfmt wraps `compare_exchange` argument lists).
    let mut flat = String::new();
    let mut line_of = Vec::new(); // byte offset -> line index
    for (idx, l) in lines.iter().enumerate() {
        for _ in 0..l.code.len() + 1 {
            line_of.push(idx);
        }
        flat.push_str(&l.code);
        flat.push('\n');
    }
    let mut consumed = vec![false; flat.len()]; // ordering tokens already attributed
    let mut sites = Vec::new();

    let mut pos = 0usize;
    while pos < flat.len() {
        // The earliest op occurrence at or after `pos`; longest pattern
        // wins on ties so `compare_exchange_weak` is not split.
        let mut best: Option<(usize, &str, OpKind)> = None;
        for &(pat, kind) in OPS {
            if let Some(at) = flat[pos..].find(pat) {
                let at = pos + at;
                let better = match best {
                    None => true,
                    Some((b, bp, _)) => at < b || (at == b && pat.len() > bp.len()),
                };
                if better {
                    best = Some((at, pat, kind));
                }
            }
        }
        let Some((at, pat, kind)) = best else { break };
        let line_idx = line_of[at];
        let span_end = close_of(&flat, at + pat.len() - 1);
        if lines[line_idx].in_test {
            pos = at + pat.len();
            continue;
        }
        let mut ords = BTreeSet::new();
        for &o in ALL_ORDS {
            for w in find_word(&flat[at..span_end], o.name()) {
                ords.insert(o);
                for b in consumed.iter_mut().skip(at + w).take(o.name().len()) {
                    *b = true;
                }
            }
        }
        if !ords.is_empty() {
            sites.push(AtomicSite {
                path: path.to_string(),
                line: lines[line_idx].number,
                field: receiver_field(&flat, at),
                op: kind,
                ords,
                ann: annotation_for(lines, line_idx),
            });
        }
        // Nested atomic calls inside the span (a load inside a
        // `fetch_update` closure) are folded into the outer site: resume
        // after the op token, but orderings already consumed above are
        // not re-attributed.
        pos = at + pat.len();
    }

    // Ordering tokens outside any call span: helper arguments, fences.
    // They still require a (parseable) annotation but cannot pair.
    for &o in ALL_ORDS {
        if o == Ord::SeqCst {
            continue;
        }
        let needle = format!("Ordering::{}", o.name());
        let mut from = 0usize;
        while let Some(found) = flat[from..].find(&needle) {
            let at = from + found;
            from = at + needle.len();
            let tok = at + needle.len() - o.name().len();
            if consumed[tok] {
                continue;
            }
            let line_idx = line_of[at];
            if lines[line_idx].in_test {
                continue;
            }
            if sites
                .iter()
                .any(|s| s.line == lines[line_idx].number && s.op == OpKind::Bare && s.has(o))
            {
                continue;
            }
            sites.push(AtomicSite {
                path: path.to_string(),
                line: lines[line_idx].number,
                field: None,
                op: OpKind::Bare,
                ords: BTreeSet::from([o]),
                ann: annotation_for(lines, line_idx),
            });
        }
    }
    sites.sort_by_key(|s| s.line);
    sites
}

/// Byte offset one past the `)` closing the call whose `(` sits at `open`.
fn close_of(flat: &str, open: usize) -> usize {
    let bytes = flat.as_bytes();
    let mut depth = 0i64;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
    }
    flat.len()
}

/// The receiver's final field/variable name for the call whose `.method(`
/// starts at `dot`: the identifier directly before the dot, skipping one
/// index or call suffix (`slots[i].claimed` → `claimed`; `flag().load` →
/// `flag`).
fn receiver_field(flat: &str, dot: usize) -> Option<String> {
    let bytes = flat.as_bytes();
    let mut i = dot;
    // Rustfmt may break the chain before the dot (`slot\n.claimed\n.load`):
    // whitespace between receiver and dot is not a boundary.
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    // Skip a `[…]` or `(…)` suffix back to its opener.
    if i > 0 && (bytes[i - 1] == b']' || bytes[i - 1] == b')') {
        let (close, open) = if bytes[i - 1] == b']' { (b']', b'[') } else { (b')', b'(') };
        let mut depth = 0i64;
        while i > 0 {
            i -= 1;
            if bytes[i] == close {
                depth += 1;
            } else if bytes[i] == open {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
    }
    let end = i;
    while i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        i -= 1;
    }
    if i == end {
        return None;
    }
    let name = &flat[i..end];
    if name == "self" || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(name.to_string())
}

/// Find and parse the `ORDERING:` comment covering the site at `idx`:
/// same-line first, then the contiguous run of comment / attribute /
/// wrapped-statement lines above, stepping over at most one sibling atomic
/// line (one comment may cover a stacked pair).
fn annotation_for(lines: &[SourceLine], idx: usize) -> Option<Result<Annotation, String>> {
    let parse = |l: &SourceLine| {
        l.comment.find("ORDERING:").map(|at| parse_annotation(&l.comment[at + "ORDERING:".len()..]))
    };
    if let Some(p) = parse(&lines[idx]) {
        return Some(p);
    }
    let mut extra_hops = 0usize;
    let mut i = idx;
    let mut seen = 0usize;
    while i > 0 && seen < 16 {
        i -= 1;
        let l = &lines[i];
        let comment_only = l.is_code_blank() && !l.comment.is_empty();
        if comment_only || l.is_attribute() {
            if let Some(p) = parse(l) {
                return Some(p);
            }
            seen += 1;
            continue;
        }
        let t = l.code.trim();
        let carrier = !t.is_empty() && !t.ends_with(';') && !t.ends_with('}');
        let sibling = crate::checks::has_weak_ordering_code(&l.code);
        if carrier
            || (sibling && {
                extra_hops += 1;
                extra_hops <= 1
            })
        {
            seen += 1;
            continue;
        }
        break;
    }
    None
}

/// Per-file annotation validity findings (checks 1–3 of the module docs).
pub fn check_annotations(sites: &[AtomicSite]) -> Vec<Finding> {
    let mut out = Vec::new();
    for s in sites {
        if !s.is_weak() {
            continue;
        }
        let Some(ann) = &s.ann else { continue }; // v1 owns "missing entirely"
        let ann = match ann {
            Err(why) => {
                out.push(finding(
                    s,
                    format!(
                    "unparseable ORDERING annotation: {why} (grammar: `ORDERING: <ord>[/<ord>]; \
                     site: <tag>; pairs-with: <field>.<tag> — prose`)"
                ),
                ));
                continue;
            }
            Ok(ann) => ann,
        };
        for &o in &ann.declared {
            if !s.has(o) {
                out.push(finding(
                    s,
                    format!(
                        "ORDERING annotation declares `{}` but the site's orderings are [{}] — \
                     stale comment or wrong site",
                        o.name(),
                        s.ords.iter().map(|o| o.name()).collect::<Vec<_>>().join(", ")
                    ),
                ));
            }
        }
        let relaxed_only = s.ords.iter().all(|o| *o == Ord::Relaxed);
        if relaxed_only {
            let claims_pairing = !ann.pairs_with.is_empty();
            let claims_prose = !find_word(&ann.prose, "publishes").is_empty()
                || !find_word(&ann.prose, "publish").is_empty();
            if claims_pairing || claims_prose {
                out.push(finding(s, format!(
                    "`Relaxed`-only access claims publication ({}) — Relaxed neither publishes \
                     nor observes publication; use Release/Acquire or drop the claim",
                    if claims_pairing { "has a pairs-with clause" } else { "prose says it publishes" }
                )));
            }
        }
        if ann.site_tag.is_some() && s.field.is_none() {
            out.push(finding(
                s,
                "`site:` tag on an access with no extractable field — name the atomic \
                 (`<field>.load(…)`) so pairs-with references can resolve"
                    .to_string(),
            ));
        }
    }
    out
}

/// Workspace-wide pairing findings (checks 4–5): run once over every
/// scoped file's sites.
pub fn check_pairing(all: &[AtomicSite]) -> Vec<Finding> {
    let mut out = Vec::new();
    // field -> declared site tags
    let mut tags: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    // field -> (has release-capable write, has acquire-capable read)
    let mut caps: BTreeMap<&str, (bool, bool)> = BTreeMap::new();
    for s in all {
        let Some(field) = &s.field else { continue };
        if let Some(Ok(ann)) = &s.ann {
            if let Some(tag) = &ann.site_tag {
                tags.entry(field).or_default().insert(tag);
            }
        }
        let e = caps.entry(field).or_default();
        e.0 |= s.releases();
        e.1 |= s.acquires();
    }
    for s in all {
        if let Some(Ok(ann)) = &s.ann {
            for (field, tag) in &ann.pairs_with {
                let known = tags.get(field.as_str()).is_some_and(|t| t.contains(tag.as_str()));
                if !known {
                    out.push(finding(
                        s,
                        format!(
                            "dangling pairs-with tag `{field}.{tag}`: no atomic access on field \
                         `{field}` declares `site: {tag}`"
                        ),
                    ));
                }
            }
        }
        let Some(field) = &s.field else { continue };
        let (any_release, any_acquire) = caps[field.as_str()];
        if (s.has(Ord::Release) || s.has(Ord::AcqRel))
            && matches!(s.op, OpKind::Store | OpKind::Rmw)
            && !any_acquire
        {
            out.push(finding(
                s,
                format!(
                "unpaired `Release` write: no Acquire/AcqRel read of `{field}` anywhere in the \
                 scoped crates — nothing can observe this publication"
            ),
            ));
        }
        if (s.has(Ord::Acquire) || s.has(Ord::AcqRel))
            && matches!(s.op, OpKind::Load | OpKind::Rmw)
            && !any_release
        {
            out.push(finding(
                s,
                format!(
                "`Acquire` read with no matching release: no Release/AcqRel write of `{field}` \
                 anywhere in the scoped crates — there is no publication to observe"
            ),
            ));
        }
    }
    out
}

fn finding(s: &AtomicSite, message: String) -> Finding {
    Finding { check: Check::Atomics, path: s.path.clone(), line: s.line, message }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn sites(src: &str) -> Vec<AtomicSite> {
        extract_sites("crates/tasks/src/x.rs", &scan(src))
    }

    #[test]
    fn grammar_parses_head_site_and_pairs_with() {
        let a = parse_annotation(" Release; site: publish; pairs-with: done.check — hands off.")
            .unwrap();
        assert_eq!(a.declared, BTreeSet::from([Ord::Release]));
        assert_eq!(a.site_tag.as_deref(), Some("publish"));
        assert_eq!(a.pairs_with, vec![("done".into(), "check".into())]);
        assert_eq!(a.prose, "hands off.");

        let b = parse_annotation(" AcqRel/Relaxed — CAS with relaxed failure.").unwrap();
        assert_eq!(b.declared, BTreeSet::from([Ord::AcqRel, Ord::Relaxed]));
        assert!(b.site_tag.is_none() && b.pairs_with.is_empty());
    }

    #[test]
    fn grammar_rejects_prose_heads_and_unknown_clauses() {
        assert!(parse_annotation(" Release pairs with the Acquire load").is_err());
        assert!(parse_annotation(" Relaxed; paired: x.y").is_err());
        assert!(parse_annotation(" Release; pairs-with: noField").is_err());
        assert!(parse_annotation("").is_err());
    }

    #[test]
    fn extraction_finds_field_op_and_wrapped_orderings() {
        let src = "\
// ORDERING: AcqRel/Relaxed — CAS retry loop.
self.reserved.compare_exchange(
    cur,
    next,
    Ordering::AcqRel,
    Ordering::Relaxed,
);
";
        let s = sites(src);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].field.as_deref(), Some("reserved"));
        assert_eq!(s[0].op, OpKind::Rmw);
        assert_eq!(s[0].ords, BTreeSet::from([Ord::AcqRel, Ord::Relaxed]));
        assert!(matches!(&s[0].ann, Some(Ok(_))));
    }

    #[test]
    fn indexed_receivers_resolve_to_the_field() {
        let src =
            "self.slots[slot].claimed.store(false, Ordering::Release); // ORDERING: Release — x\n";
        let s = sites(src);
        assert_eq!(s[0].field.as_deref(), Some("claimed"));
        assert_eq!(s[0].op, OpKind::Store);
    }

    #[test]
    fn bare_ordering_tokens_are_sites_without_fields() {
        let src = "// ORDERING: Release — fence before handoff.\nstd::sync::atomic::fence(Ordering::Release);\n";
        let s = sites(src);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].op, OpKind::Bare);
        assert!(s[0].field.is_none());
    }

    #[test]
    fn stale_declared_ordering_is_flagged() {
        let src = "// ORDERING: Acquire — stale.\nflag.store(true, Ordering::Release);\n";
        let f = check_annotations(&sites(src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("declares `Acquire`"), "{}", f[0].message);
    }

    #[test]
    fn relaxed_claiming_publication_is_flagged_both_ways() {
        let by_clause =
            "// ORDERING: Relaxed; pairs-with: f.t — counter.\nc.fetch_add(1, Ordering::Relaxed);\n";
        let f = check_annotations(&sites(by_clause));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("claims publication"));

        let by_prose =
            "// ORDERING: Relaxed — publishes the flag.\nc.store(1, Ordering::Relaxed);\n";
        let f = check_annotations(&sites(by_prose));
        assert_eq!(f.len(), 1, "{f:?}");

        let honest = "// ORDERING: Relaxed — monotonic statistics counter.\nc.fetch_add(1, Ordering::Relaxed);\n";
        assert!(check_annotations(&sites(honest)).is_empty());
    }

    #[test]
    fn pairing_resolves_tags_and_flags_dangles() {
        let good = "\
// ORDERING: Release; site: publish — hand off.
flag.store(true, Ordering::Release);
// ORDERING: Acquire; pairs-with: flag.publish — observe.
flag.load(Ordering::Acquire);
";
        let s = sites(good);
        assert!(check_pairing(&s).is_empty(), "{:?}", check_pairing(&s));

        let dangling = "\
// ORDERING: Release; site: publish — hand off.
flag.store(true, Ordering::Release);
// ORDERING: Acquire; pairs-with: flag.nosuch — observe.
flag.load(Ordering::Acquire);
";
        let f = check_pairing(&sites(dangling));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("dangling pairs-with tag `flag.nosuch`"));
    }

    #[test]
    fn unpaired_release_and_acquire_are_flagged() {
        let f = check_pairing(&sites(
            "// ORDERING: Release — nobody reads this.\nflag.store(true, Ordering::Release);\n",
        ));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("unpaired `Release` write"));

        let f = check_pairing(&sites(
            "// ORDERING: Acquire — nobody ever released.\nflag.load(Ordering::Acquire);\n",
        ));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("no matching release"));
    }

    #[test]
    fn cas_acquire_read_pairs_with_release_store() {
        // The claim/release slot protocol: CAS(Acquire) is the reader,
        // store(Release) the writer — no findings either direction.
        let src = "\
// ORDERING: Acquire/Relaxed; site: claim — new holder sees prior slot writes.
if c.compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed).is_ok() {}
// ORDERING: Release; pairs-with: c.claim — un-claim publishes slot state.
c.store(false, Ordering::Release);
";
        let s = sites(src);
        assert!(check_annotations(&s).is_empty(), "{:?}", check_annotations(&s));
        assert!(check_pairing(&s).is_empty(), "{:?}", check_pairing(&s));
    }

    #[test]
    fn seqcst_sites_need_no_annotation_but_satisfy_pairing() {
        let src = "\
// ORDERING: Acquire — pairs with the SeqCst RMW below.
flag.load(Ordering::Acquire);
flag.fetch_or(true, Ordering::SeqCst);
";
        let s = sites(src);
        assert!(check_pairing(&s).is_empty(), "{:?}", check_pairing(&s));
        assert!(check_annotations(&s).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { c.store(1, Ordering::Release); }
}
";
        assert!(sites(src).is_empty());
    }
}
