//! `hsa-lint` — the workspace safety analyzer.
//!
//! A std-only, dependency-free static-analysis pass over the workspace
//! source that enforces the engineering invariants PRs 1–4 established but
//! nothing previously checked:
//!
//! 1. **safety** — every `unsafe` block / fn / impl carries a `// SAFETY:`
//!    justification (or a `# Safety` doc section) on or contiguously above
//!    the site. The hot paths are hand-tuned unsafe code (non-temporal
//!    stores, SIMD probe scans, sharded `UnsafeCell` recorders); an
//!    unjustified `unsafe` is where an aliasing bug silently corrupts
//!    aggregates instead of crashing.
//! 2. **ordering** — every non-`SeqCst` atomic ordering in the
//!    concurrency crates (`tasks`, `fault`, `obs`, `columnar`) carries an
//!    `// ORDERING:` justification naming what it pairs with.
//! 3. **panic** — no `unwrap()` / `expect()` / `panic!` in library-crate
//!    code beyond the per-file counts frozen in `lint-allow.txt`: existing
//!    debt cannot grow, new code returns errors.
//! 4. **deps** — every dependency in every manifest is an `hsa-*`
//!    path/workspace reference (the std-only contract).
//! 5. **cold-path** — the documented out-of-line collision paths in
//!    `hashtbl` keep their `#[inline(never)]` / `#[cold]` markers.
//!
//! v2 (DESIGN §17) layers cross-file *protocol* checks on the same
//! scanner — the per-site presence checks above say an annotation exists;
//! these say the annotations are mutually consistent:
//!
//! 6. **atomics** — `// ORDERING:` comments follow a machine-readable
//!    grammar (`<ord>[/<ord>] [; site: tag] [; pairs-with: field.tag] [—
//!    prose]`, parsed by [`parse_annotation`]); declared orderings match
//!    the code, `Release` writes have an acquire-side reader and vice
//!    versa (pooled by field name across files), `Relaxed`-only sites
//!    must not claim publication, and every `pairs-with` tag resolves to
//!    a declared `site:`.
//! 7. **lock-order** — `.lock()` / RwLock `.read()` / `.write()` nestings
//!    across the whole workspace form a graph (with one-hop intra-crate
//!    call resolution); a cycle is a potential-deadlock finding.
//! 8. **raii-leak** — budget-carrying guards (`Reservation`,
//!    `DiskReservation`, `QueryGrant`, `QueryHandle`) must not reach
//!    `mem::forget` / `ManuallyDrop::new` / `Box::leak` outside tests.
//! 9. **taxonomy** — every `AggError` variant has an explicit
//!    `ErrorClass` arm in `crates/cli/src/error.rs`, so each failure's
//!    exit code is chosen, not defaulted.
//!
//! The binary walks `src/` and `crates/*/src` from the workspace root,
//! prints `path:line: [check] message` findings (or a stable JSON report
//! with `--format json`, see [`render_json`]), and exits non-zero if
//! any. CI runs it in a dedicated lint job; `scripts/lint.sh` is the
//! pre-push entry point.

mod atomics;
mod checks;
mod locks;
mod raii;
mod scan;
mod taxonomy;

pub use atomics::{check_annotations, check_pairing, extract_sites, parse_annotation, AtomicSite};
pub use checks::{
    check_cold_paths, check_manifest, check_ordering, check_panics, check_safety, panic_sites,
    Allowlist, Check, Finding, COLD_PATHS,
};
pub use locks::LockGraph;
pub use raii::{check_raii_leaks, GUARDED_TYPES};
pub use scan::{scan, SourceLine};
pub use taxonomy::Taxonomy;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the frozen-debt allowlist at the workspace root.
pub const ALLOWLIST_FILE: &str = "lint-allow.txt";

/// Crate directories (workspace-root-relative) whose panic-shaped calls
/// are *not* linted: binaries and harnesses whose job is to print an error
/// and exit, plus this tool itself.
const PANIC_EXEMPT: &[&str] = &["crates/bench", "crates/cli", "crates/lint"];

/// Crate directories whose weak atomic orderings require justification.
/// Only these contain lock-free coordination (the columnar spill store
/// carries sequence, statistics, and disk-budget atomics); the rest of
/// the workspace has no atomics to misuse.
const ORDERING_SCOPED: &[&str] = &["crates/tasks", "crates/fault", "crates/obs", "crates/columnar"];

/// Root-relative path with `/` separators regardless of platform.
fn rel(root: &Path, path: &Path) -> String {
    let r = path.strip_prefix(root).unwrap_or(path);
    r.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

fn starts_with_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// Collect every `.rs` file under `dir`, recursively, sorted.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The source roots the analyzer walks: `src/` plus every `crates/*/src`.
fn source_roots(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> =
            fs::read_dir(&crates_dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
        members.sort();
        for m in members {
            if m.is_dir() {
                roots.push(m.join("src"));
            }
        }
    }
    Ok(roots)
}

/// Every manifest the deps check covers: the root `Cargo.toml` plus each
/// crate's.
fn manifests(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = vec![root.join("Cargo.toml")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> =
            fs::read_dir(&crates_dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
        members.sort();
        for m in members {
            let manifest = m.join("Cargo.toml");
            if manifest.is_file() {
                out.push(manifest);
            }
        }
    }
    Ok(out)
}

/// Run every check over the workspace at `root`. Findings are sorted by
/// path, then line.
pub fn run(root: &Path) -> io::Result<Vec<Finding>> {
    let allow_path = root.join(ALLOWLIST_FILE);
    let allow_text =
        if allow_path.is_file() { fs::read_to_string(&allow_path)? } else { String::new() };
    let (allow, mut findings) = Allowlist::parse(&allow_text, ALLOWLIST_FILE);

    // Workspace-wide accumulators: the v2 checks reason across files, so
    // per-file scans feed them and `finish()` runs after the walk.
    let mut lock_graph = LockGraph::default();
    let mut taxonomy = Taxonomy::default();
    let mut sites: Vec<AtomicSite> = Vec::new();

    for src_root in source_roots(root)? {
        let mut files = Vec::new();
        rust_files(&src_root, &mut files)?;
        for file in files {
            let path = rel(root, &file);
            let lines = scan(&fs::read_to_string(&file)?);
            findings.extend(check_safety(&path, &lines));
            if starts_with_any(&path, ORDERING_SCOPED) {
                findings.extend(check_ordering(&path, &lines));
                sites.extend(extract_sites(&path, &lines));
            }
            if !starts_with_any(&path, PANIC_EXEMPT) {
                findings.extend(check_panics(&path, &lines, &allow));
            }
            findings.extend(check_cold_paths(&path, &lines));
            findings.extend(check_raii_leaks(&path, &lines));
            lock_graph.add_file(&path, &lines);
            taxonomy.add_file(&path, &lines);
        }
    }

    findings.extend(check_annotations(&sites));
    findings.extend(check_pairing(&sites));
    findings.extend(lock_graph.finish());
    findings.extend(taxonomy.finish());

    for manifest in manifests(root)? {
        let path = rel(root, &manifest);
        findings.extend(check_manifest(&path, &fs::read_to_string(&manifest)?));
    }

    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

/// Render findings as the stable JSON document CI archives.
///
/// Schema (version 1):
///
/// ```json
/// {
///   "schema_version": 1,
///   "root": "<workspace root as given>",
///   "count": 2,
///   "findings": [
///     {"check": "atomics", "path": "crates/x/src/lib.rs",
///      "line": 10, "message": "..."}
///   ]
/// }
/// ```
///
/// Findings keep the sort order `run` produced (path, then line). The
/// encoder escapes `"`, `\`, and control characters; everything else
/// passes through as UTF-8.
pub fn render_json(root: &str, findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema_version\": 1,\n");
    out.push_str(&format!("  \"root\": \"{}\",\n", esc(root)));
    out.push_str(&format!("  \"count\": {},\n", findings.len()));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"check\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            f.check,
            esc(&f.path),
            f.line,
            esc(&f.message)
        ));
    }
    if findings.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// Render the current panic-site counts as allowlist lines — the
/// regeneration path documented in DESIGN §12. The output freezes *today's*
/// debt; committing it after removing sites ratchets the budget down.
pub fn print_allow(root: &Path) -> io::Result<String> {
    let mut out = String::from(
        "# Frozen panic-shaped-call debt (unwrap/expect/panic!) per library file.\n\
         # Maintained by `cargo run -p hsa-lint -- --print-allow`; counts may\n\
         # only decrease. New files get no entry and must be panic-free.\n",
    );
    for src_root in source_roots(root)? {
        let mut files = Vec::new();
        rust_files(&src_root, &mut files)?;
        for file in files {
            let path = rel(root, &file);
            if starts_with_any(&path, PANIC_EXEMPT) {
                continue;
            }
            let sites = panic_sites(&scan(&fs::read_to_string(&file)?));
            if !sites.is_empty() {
                out.push_str(&format!("{path} panic {}\n", sites.len()));
            }
        }
    }
    Ok(out)
}

/// Locate the workspace root: walk up from `start` to the first directory
/// holding a `Cargo.toml` that declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_paths_use_forward_slashes() {
        let root = Path::new("/ws");
        let file = Path::new("/ws/crates/x/src/lib.rs");
        assert_eq!(rel(root, file), "crates/x/src/lib.rs");
    }

    #[test]
    fn exempt_prefixes_match_whole_crates() {
        assert!(starts_with_any("crates/bench/src/lib.rs", PANIC_EXEMPT));
        assert!(starts_with_any("crates/cli/src/main.rs", PANIC_EXEMPT));
        assert!(!starts_with_any("crates/core/src/exec.rs", PANIC_EXEMPT));
        assert!(starts_with_any("crates/tasks/src/pool.rs", ORDERING_SCOPED));
        assert!(starts_with_any("crates/columnar/src/store.rs", ORDERING_SCOPED));
        assert!(!starts_with_any("crates/hashtbl/src/fixed.rs", ORDERING_SCOPED));
    }
}
