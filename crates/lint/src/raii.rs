//! RAII-leak check: budget reservations and query handles must never be
//! defused.
//!
//! `Reservation`, `DiskReservation`, `QueryGrant`, and `QueryHandle` give
//! back memory, disk, and admission slots in `Drop`; anything that keeps
//! the value alive without running its destructor silently shrinks the
//! budget forever. The leak primitives are easy to spot textually:
//! `mem::forget`, `ManuallyDrop::new`, and `Box::leak`. The hard part is
//! tying a call's argument to a guarded type without a type system, so the
//! check uses two signals, either of which flags the site:
//!
//! * the argument text itself names a guarded type
//!   (`ManuallyDrop::new(Reservation::take(..))`), or
//! * a backward scan inside the enclosing function finds the argument's
//!   identifier bound with a guarded type ascription — a typed `let`, a
//!   typed parameter, or a `: Type` pattern.
//!
//! `cfg(test)` code is exempt (tests legitimately leak to probe drop
//! behavior). Leaking a value the scan cannot type is allowed — the check
//! trades recall for zero false positives on generic plumbing like
//! `mem::forget(guard)` in the scoped-thread runtime.

use crate::checks::{Check, Finding};
use crate::scan::SourceLine;

/// Types whose destructors return budget; leaking them is a finding.
pub const GUARDED_TYPES: &[&str] = &["Reservation", "DiskReservation", "QueryGrant", "QueryHandle"];

/// Leak primitives and how to pull out the leaked expression.
const LEAK_CALLS: &[&str] = &["mem::forget", "ManuallyDrop::new", "Box::leak"];

pub fn check_raii_leaks(path: &str, lines: &[SourceLine]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, l) in lines.iter().enumerate() {
        if l.in_test {
            continue;
        }
        for call in LEAK_CALLS {
            let Some(at) = l.code.find(call) else { continue };
            let arg = argument_text(&l.code, at + call.len());
            let Some(ty) = guarded_type_of(&arg, lines, i) else { continue };
            out.push(Finding {
                check: Check::RaiiLeak,
                path: path.to_string(),
                line: l.number,
                message: format!(
                    "`{call}` reaches `{ty}` — its Drop returns budget and must always run \
                     (move the value out or restructure; tests may leak under cfg(test))"
                ),
            });
        }
    }
    out
}

/// The argument text of a call whose name ends at `after` (best effort:
/// from the opening paren to its match or end of line).
fn argument_text(code: &str, after: usize) -> String {
    let rest = &code[after..];
    let Some(open) = rest.find('(') else { return String::new() };
    let inner = &rest[open + 1..];
    let mut depth = 1i64;
    for (i, c) in inner.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return inner[..i].to_string();
                }
            }
            _ => {}
        }
    }
    inner.to_string()
}

/// The guarded type the argument resolves to, if any.
fn guarded_type_of(arg: &str, lines: &[SourceLine], call_idx: usize) -> Option<&'static str> {
    // Signal 1: the argument text names a guarded type directly.
    for ty in GUARDED_TYPES {
        if !crate::scan::find_word(arg, ty).is_empty() {
            return Some(ty);
        }
    }
    // Signal 2: the argument is a plain identifier (possibly `&`/`mut`-
    // qualified); scan backward inside the function for a typed binding.
    // `Box::leak(Box::new(g))` leaks `g` — unwrap the boxing layer.
    let mut arg = arg.trim();
    while let Some(inner) = arg.strip_prefix("Box::new(").and_then(|r| r.strip_suffix(')')) {
        arg = inner.trim();
    }
    let stripped = arg.trim_start_matches('&').trim_start_matches("mut ").trim();
    if stripped.is_empty()
        || !stripped.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        || stripped.chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        // Non-trivial expression that named no guarded type: give up.
        return None;
    }
    let ident = stripped.to_string();
    let ascription = format!("{ident}:");
    let mut depth = 0i64;
    for l in lines[..=call_idx].iter().rev() {
        // Stop at the enclosing `fn` line (after checking its params).
        let is_fn = !crate::scan::find_word(&l.code, "fn").is_empty();
        if let Some(at) = l.code.find(&ascription) {
            let before_ok = at == 0
                || !l.code.as_bytes()[at - 1].is_ascii_alphanumeric()
                    && l.code.as_bytes()[at - 1] != b'_';
            let after = &l.code[at + ascription.len()..];
            if before_ok {
                for ty in GUARDED_TYPES {
                    let t = after.trim_start();
                    if t.starts_with(ty)
                        || t.starts_with(&format!("&{ty}"))
                        || t.starts_with(&format!("&mut {ty}"))
                    {
                        return Some(ty);
                    }
                }
            }
        }
        // `let ident = <expr naming a guarded type>` also counts.
        for ty in GUARDED_TYPES {
            let let_bind = format!("let {ident}");
            let let_mut = format!("let mut {ident}");
            if (l.code.contains(&let_bind) || l.code.contains(&let_mut))
                && !crate::scan::find_word(&l.code, ty).is_empty()
            {
                return Some(ty);
            }
        }
        if is_fn && depth <= 0 {
            break;
        }
        for c in l.code.chars() {
            match c {
                '}' => depth += 1,
                '{' => depth -= 1,
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn run(src: &str) -> Vec<Finding> {
        check_raii_leaks("crates/x/src/lib.rs", &scan(src))
    }

    #[test]
    fn forget_of_typed_parameter_is_flagged() {
        let f = run("fn leak(r: Reservation) {\n    std::mem::forget(r);\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Reservation"));
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn direct_expression_is_flagged() {
        let f = run("fn leak(b: &Budget) {\n    let _ = ManuallyDrop::new(b.reserve_disk());\n}\n");
        assert!(f.is_empty(), "method call doesn't name the type: {f:?}");
        let f = run("fn leak(g: QueryGrant) {\n    Box::leak(Box::new(g));\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("QueryGrant"));
    }

    #[test]
    fn typed_let_binding_is_flagged() {
        let f =
            run("fn leak(b: &Budget) {\n    let r: DiskReservation = b.reserve(1).unwrap();\n    \
             std::mem::forget(r);\n}\n");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("DiskReservation"));
    }

    #[test]
    fn untyped_guard_forget_is_not_flagged() {
        // The scoped-runtime `take_mut` pattern: forgetting a local abort
        // guard whose type never appears — must stay clean.
        let src = "\
fn take_mut<T>(slot: &mut T) {
    let guard = AbortOnDrop;
    std::mem::forget(guard);
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn cfg_test_leaks_are_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(r: Reservation) {
        std::mem::forget(r);
    }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn binding_in_previous_function_does_not_leak_type_info() {
        let src = "\
fn other(r: Reservation) {
    drop(r);
}
fn leak() {
    let r = make_opaque();
    std::mem::forget(r);
}
";
        assert!(run(src).is_empty());
    }
}
