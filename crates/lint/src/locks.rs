//! Cross-file lock-order graph and potential-deadlock detection.
//!
//! The analyzer has no type system, so the graph is built from the shapes
//! std-only locking actually takes in this workspace:
//!
//! * `x.lock()` acquires the mutex named by the receiver's final
//!   identifier (`self.inner.ledger.lock()` → `ledger`). The repo's two
//!   mutex types (std's and `hsa-tasks`' poison-ignoring wrapper) share
//!   the call shape.
//! * `x.read()` / `x.write()` (argument-less, so I/O calls never match)
//!   acquire `x` when `x` is a declared `RwLock` field.
//! * `let g = x.lock();` holds the guard until its enclosing block closes
//!   or an explicit `drop(g)`; `x.lock().f()` without a binding is a
//!   temporary, released at the end of the statement.
//! * one-hop intra-crate call resolution: while holding `a`, calling a
//!   same-crate function whose body directly acquires `b` adds the edge
//!   `a → b` (the `serve.rs` cancel-registry × `runtime.rs` query-list ×
//!   `admission.rs` ledger surface is exactly this shape). Receivers named
//!   `self` with a same-crate `fn lock` resolve through it.
//!
//! Every "holds `a` while acquiring `b`" observation is an edge `a → b`
//! keyed by the lock *names*; a cycle among the edges is reported as one
//! potential-deadlock finding per strongly-connected component. Name-based
//! identity pools same-named locks on different structs, so the check is a
//! heuristic: it can report a cycle two unrelated `state` fields cannot
//! actually deadlock on (rename one to silence it — distinct lock names
//! are better documentation anyway) and can miss cycles built through
//! guards smuggled across function boundaries. Within those limits the
//! edge set over-approximates per-function nesting, so an acyclic report
//! means no nesting the scanner can see is cyclic.

use crate::checks::{Check, Finding};
use crate::scan::SourceLine;
use std::collections::{BTreeMap, BTreeSet};

/// One observed "holds `from` while acquiring `to`" nesting.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// The lock already held.
    pub from: String,
    /// The lock acquired while holding it.
    pub to: String,
    /// Where the nesting occurs.
    pub path: String,
    /// 1-based line of the inner acquisition.
    pub line: usize,
}

/// Workspace-wide accumulator: feed every file, then `finish`.
#[derive(Default)]
pub struct LockGraph {
    /// Declared `RwLock` field names (enables `.read()`/`.write()`).
    rwlock_fields: BTreeSet<String>,
    /// crate key -> fn name -> locks its body acquires directly.
    fns: BTreeMap<String, BTreeMap<String, BTreeSet<String>>>,
    /// Files held back for the second (edge-building) pass.
    files: Vec<(String, Vec<FnBody>)>,
}

/// One function's extracted lines: (line number, code) only.
struct FnBody {
    name: String,
    lines: Vec<(usize, String)>,
}

/// The crate key of a workspace-relative path (`crates/tasks/src/…` →
/// `crates/tasks`, anything else → its first component).
fn crate_key(path: &str) -> String {
    let mut parts = path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => format!("crates/{name}"),
        (Some(first), _) => first.to_string(),
        _ => path.to_string(),
    }
}

/// Method names that are acquisition primitives or std noise, never
/// resolved as one-hop calls.
const NEVER_RESOLVED: &[&str] = &[
    "lock",
    "read",
    "write",
    "wait",
    "wait_timeout",
    "wait_timeout_while",
    "wait_for",
    "drop",
    "clone",
    "new",
    "default",
    "unwrap",
    "expect",
    "into_inner",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "iter",
    "map",
    "collect",
];

impl LockGraph {
    /// Record one scanned file (pass 1: declarations + per-fn bodies).
    pub fn add_file(&mut self, path: &str, lines: &[SourceLine]) {
        for l in lines {
            if l.in_test {
                continue;
            }
            // `name: RwLock<...>` field declarations.
            if let Some((lhs, rhs)) = l.code.split_once(':') {
                if rhs.trim_start().starts_with("RwLock<")
                    || rhs.trim_start().starts_with("sync::RwLock<")
                    || rhs.trim_start().starts_with("std::sync::RwLock<")
                {
                    let name = lhs.trim().trim_start_matches("pub ").trim();
                    if is_ident(name) {
                        self.rwlock_fields.insert(name.to_string());
                    }
                }
            }
        }
        let bodies = split_functions(lines);
        let key = crate_key(path);
        for b in &bodies {
            let mut direct = BTreeSet::new();
            for (_, code) in &b.lines {
                for acq in direct_acquisitions(code, &self.rwlock_fields) {
                    direct.insert(acq);
                }
            }
            if !direct.is_empty() {
                self.fns
                    .entry(key.clone())
                    .or_default()
                    .entry(b.name.clone())
                    .or_default()
                    .extend(direct);
            }
        }
        self.files.push((path.to_string(), bodies));
    }

    /// Build the edge set and report one finding per lock-order cycle.
    pub fn finish(self) -> Vec<Finding> {
        let mut edges: BTreeSet<LockEdge> = BTreeSet::new();
        for (path, bodies) in &self.files {
            let key = crate_key(path);
            let fn_map = self.fns.get(&key);
            for b in bodies {
                collect_edges(path, b, &self.rwlock_fields, fn_map, &mut edges);
            }
        }
        findings_from_cycles(&edges)
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !s.chars().next().is_some_and(|c| c.is_ascii_digit())
}

/// Split a file into function bodies by brace depth: a `fn name(` line
/// starts a body that runs until depth returns to its starting level.
fn split_functions(lines: &[SourceLine]) -> Vec<FnBody> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    let mut current: Option<(FnBody, i64)> = None;
    for l in lines {
        if l.in_test {
            // Depth still advances through test code so the tracker stays
            // aligned, but test bodies are never collected.
            for c in l.code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            continue;
        }
        let starts_fn = current.is_none() && fn_name(&l.code).is_some();
        if starts_fn {
            let name = fn_name(&l.code).unwrap();
            current = Some((FnBody { name, lines: Vec::new() }, depth));
        }
        if let Some((body, _)) = current.as_mut() {
            body.lines.push((l.number, l.code.clone()));
        }
        for c in l.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if let Some((_, start)) = current.as_ref() {
            // The body is closed once depth is back at (or below) the
            // level the `fn` line started on *and* a brace was seen.
            let opened =
                current.as_ref().is_some_and(|(b, _)| b.lines.iter().any(|(_, c)| c.contains('{')));
            if opened && depth <= *start {
                out.push(current.take().unwrap().0);
            }
        }
    }
    if let Some((body, _)) = current {
        out.push(body);
    }
    out
}

/// The function name on a `fn` line, if any.
fn fn_name(code: &str) -> Option<String> {
    for at in crate::scan::find_word(code, "fn") {
        let rest = &code[at + 2..];
        let rest = rest.trim_start();
        let end = rest.find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))?;
        let name = &rest[..end];
        if !name.is_empty() && rest[end..].trim_start().starts_with(['(', '<']) {
            return Some(name.to_string());
        }
    }
    None
}

/// Direct lock acquisitions on one code line: the lock names.
fn direct_acquisitions(code: &str, rwlocks: &BTreeSet<String>) -> Vec<String> {
    let mut out = Vec::new();
    for (pat, rw_only) in [(".lock()", false), (".read()", true), (".write()", true)] {
        let mut from = 0usize;
        while let Some(found) = code[from..].find(pat) {
            let at = from + found;
            from = at + pat.len();
            if let Some(name) = receiver_name(code, at) {
                // `self.lock()` is a method call, not a field acquisition;
                // the caller resolves it through the same-crate fn map.
                if name == "self" || name == "Self" {
                    continue;
                }
                if !rw_only || rwlocks.contains(&name) {
                    out.push(name);
                }
            }
        }
    }
    out
}

/// The final identifier of the receiver ending at `dot` (same rules as the
/// atomics extractor, minus the `self` special case — callers handle it).
fn receiver_name(code: &str, dot: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = dot;
    if i > 0 && (bytes[i - 1] == b']' || bytes[i - 1] == b')') {
        let (close, open) = if bytes[i - 1] == b']' { (b']', b'[') } else { (b')', b'(') };
        let mut depth = 0i64;
        while i > 0 {
            i -= 1;
            if bytes[i] == close {
                depth += 1;
            } else if bytes[i] == open {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
    }
    let end = i;
    while i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        i -= 1;
    }
    if i == end {
        return None;
    }
    Some(code[i..end].to_string())
}

/// A held guard: its binding name (for `drop(name)`), the locks it holds,
/// and the brace depth it dies below.
struct Held {
    binding: Option<String>,
    locks: Vec<String>,
    depth: i64,
}

/// Walk one function body, tracking held guards and recording every
/// "holding `a`, acquiring `b`" edge (direct or one function call deep).
fn collect_edges(
    path: &str,
    body: &FnBody,
    rwlocks: &BTreeSet<String>,
    fn_map: Option<&BTreeMap<String, BTreeSet<String>>>,
    edges: &mut BTreeSet<LockEdge>,
) {
    let mut depth: i64 = 0;
    let mut held: Vec<Held> = Vec::new();
    for (number, code) in &body.lines {
        // Acquisitions on this line, with `self.lock()` resolved one hop
        // through a same-crate `fn lock` when one exists.
        let mut acquired = direct_acquisitions(code, rwlocks);
        if acquired.is_empty() && code.contains("self.lock()") {
            if let Some(locks) = fn_map.and_then(|m| m.get("lock")) {
                acquired = locks.iter().cloned().collect();
            }
        }
        // One-hop resolution of other same-crate calls.
        let mut called: Vec<String> = Vec::new();
        if let Some(map) = fn_map {
            for (name, locks) in map {
                if NEVER_RESOLVED.contains(&name.as_str()) || name == &body.name {
                    continue;
                }
                for at in crate::scan::find_word(code, name) {
                    let after = &code[at + name.len()..];
                    let is_call = after.starts_with('(');
                    let is_def = code[..at].trim_end().ends_with("fn");
                    if is_call && !is_def {
                        called.extend(locks.iter().cloned());
                    }
                }
            }
        }
        // Edges: everything currently held → everything newly acquired
        // (or acquired inside a called function).
        for h in &held {
            for from in &h.locks {
                for to in acquired.iter().chain(called.iter()) {
                    if from != to {
                        edges.insert(LockEdge {
                            from: from.clone(),
                            to: to.clone(),
                            path: path.to_string(),
                            line: *number,
                        });
                    }
                }
            }
        }
        // `drop(g)` releases g's guard explicitly.
        for at in crate::scan::find_word(code, "drop") {
            let rest = code[at + 4..].trim_start();
            if let Some(inner) = rest.strip_prefix('(') {
                let arg: String =
                    inner.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
                held.retain(|h| h.binding.as_deref() != Some(arg.as_str()));
            }
        }
        // Does this line bind its acquisition? (`let g = x.lock();`,
        // `if let Ok(g) = x.lock() {`, `while let …`, `let Ok(g) = … else`)
        let trimmed = code.trim_start();
        let binds = !acquired.is_empty()
            && (trimmed.starts_with("let ")
                || trimmed.starts_with("if let ")
                || trimmed.starts_with("while let ")
                || trimmed.starts_with("match "));
        // Track depth across the line *before* deciding guard lifetime:
        // a guard bound on an `if let … {` line lives in the body the
        // brace opens.
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if binds {
            held.push(Held { binding: binding_name(code), locks: acquired, depth });
        }
        held.retain(|h| h.depth <= depth);
    }
}

/// The bound identifier of a `let`-family line: the first identifier in
/// the pattern that is not a keyword or a constructor.
fn binding_name(code: &str) -> Option<String> {
    let pat = code.split('=').next()?;
    let skip = ["let", "if", "while", "match", "mut", "ref", "Some", "Ok", "Err", "None"];
    let mut cur = String::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.push(c);
            let boundary = chars.peek().map(|n| !(n.is_ascii_alphanumeric() || *n == '_'));
            if boundary.unwrap_or(true) {
                if !skip.contains(&cur.as_str()) && !cur.chars().next().unwrap().is_ascii_digit() {
                    return Some(cur);
                }
                cur.clear();
            }
        } else {
            cur.clear();
        }
    }
    None
}

/// One finding per strongly-connected component with a cycle.
fn findings_from_cycles(edges: &BTreeSet<LockEdge>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    let nodes: Vec<&str> = adj
        .iter()
        .flat_map(|(k, vs)| std::iter::once(*k).chain(vs.iter().copied()))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    // Tarjan's SCC: the graph has a handful of nodes, so a simple
    // recursive DFS-numbering implementation is plenty.
    let index: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let n = nodes.len();

    struct Tarjan<'g> {
        nodes: &'g [&'g str],
        adj: &'g BTreeMap<&'g str, BTreeSet<&'g str>>,
        index: &'g BTreeMap<&'g str, usize>,
        low: Vec<usize>,
        num: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        counter: usize,
        sccs: Vec<Vec<usize>>,
    }
    impl Tarjan<'_> {
        fn strongconnect(&mut self, v: usize) {
            self.num[v] = self.counter;
            self.low[v] = self.counter;
            self.counter += 1;
            self.stack.push(v);
            self.on_stack[v] = true;
            if let Some(next) = self.adj.get(self.nodes[v]) {
                for w in next {
                    let w = self.index[w];
                    if self.num[w] == usize::MAX {
                        self.strongconnect(w);
                        self.low[v] = self.low[v].min(self.low[w]);
                    } else if self.on_stack[w] {
                        self.low[v] = self.low[v].min(self.num[w]);
                    }
                }
            }
            if self.low[v] == self.num[v] {
                let mut comp = Vec::new();
                while let Some(w) = self.stack.pop() {
                    self.on_stack[w] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                self.sccs.push(comp);
            }
        }
    }
    let mut t = Tarjan {
        nodes: &nodes,
        adj: &adj,
        index: &index,
        low: vec![0usize; n],
        num: vec![usize::MAX; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        counter: 0,
        sccs: Vec::new(),
    };
    for v in 0..n {
        if t.num[v] == usize::MAX {
            t.strongconnect(v);
        }
    }
    let sccs = t.sccs;

    let mut out = Vec::new();
    for comp in sccs {
        let cyclic =
            comp.len() > 1 || adj.get(nodes[comp[0]]).is_some_and(|s| s.contains(nodes[comp[0]]));
        if !cyclic {
            continue;
        }
        let mut names: Vec<&str> = comp.iter().map(|&i| nodes[i]).collect();
        names.sort_unstable();
        let in_cycle: BTreeSet<&str> = names.iter().copied().collect();
        let mut witnesses: Vec<&LockEdge> = edges
            .iter()
            .filter(|e| in_cycle.contains(e.from.as_str()) && in_cycle.contains(e.to.as_str()))
            .collect();
        witnesses.sort_by_key(|e| (&e.from, &e.to));
        witnesses.dedup_by_key(|e| (e.from.clone(), e.to.clone()));
        let first = witnesses.first().expect("cycle has at least one edge");
        let detail = witnesses
            .iter()
            .map(|e| format!("{} -> {} at {}:{}", e.from, e.to, e.path, e.line))
            .collect::<Vec<_>>()
            .join("; ");
        out.push(Finding {
            check: Check::LockOrder,
            path: first.path.clone(),
            line: first.line,
            message: format!(
                "potential deadlock: lock-order cycle among [{}] ({detail}) — pick one global \
                 order and release the outer lock first",
                names.join(", ")
            ),
        });
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn graph(files: &[(&str, &str)]) -> Vec<Finding> {
        let mut g = LockGraph::default();
        for (path, src) in files {
            g.add_file(path, &scan(src));
        }
        g.finish()
    }

    #[test]
    fn consistent_nesting_is_clean() {
        let src = "\
fn a(&self) {
    let g = self.outer.lock();
    self.inner.lock().push(1);
}
fn b(&self) {
    let g = self.outer.lock();
    let h = self.inner.lock();
}
";
        assert!(graph(&[("crates/x/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn cross_file_cycle_is_one_finding() {
        let a =
            "fn a(&self) {\n    let g = self.reg_a.lock();\n    let h = self.reg_b.lock();\n}\n";
        let b =
            "fn b(&self) {\n    let g = self.reg_b.lock();\n    let h = self.reg_a.lock();\n}\n";
        let f = graph(&[("crates/x/src/a.rs", a), ("crates/y/src/b.rs", b)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].check, Check::LockOrder);
        assert!(f[0].message.contains("reg_a") && f[0].message.contains("reg_b"));
    }

    #[test]
    fn temporaries_do_not_hold() {
        let src = "\
fn a(&self) {
    self.x.lock().push(1);
    let g = self.y.lock();
}
fn b(&self) {
    let g = self.y.lock();
    self.x.lock().push(1);
}
";
        // a: x is a temporary (released), then y — no x→y edge, so b's
        // y→x edge cannot close a cycle.
        assert!(graph(&[("crates/x/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "\
fn a(&self) {
    let g = self.x.lock();
    drop(g);
    let h = self.y.lock();
}
fn b(&self) {
    let g = self.y.lock();
    self.x.lock().clear();
}
";
        assert!(graph(&[("crates/x/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn block_scoped_guards_die_with_their_block() {
        let src = "\
fn a(&self) {
    {
        let g = self.x.lock();
    }
    let h = self.y.lock();
}
fn b(&self) {
    let g = self.y.lock();
    self.x.lock().clear();
}
";
        assert!(graph(&[("crates/x/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn one_hop_call_resolution_builds_cross_fn_edges() {
        let a = "\
fn helper(&self) {
    self.inner_lock.lock().push(1);
}
fn outer(&self) {
    let g = self.outer_lock.lock();
    self.helper();
}
";
        let b = "\
fn other(&self) {
    let g = self.inner_lock.lock();
    self.outer_lock.lock().clear();
}
";
        let f = graph(&[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("inner_lock") && f[0].message.contains("outer_lock"));
    }

    #[test]
    fn self_lock_resolves_through_same_crate_fn_lock() {
        let src = "\
fn lock(&self) -> Guard {
    self.inner.ledger.lock()
}
fn admit(&self) {
    let mut ledger = self.lock();
    self.waiters.lock().push(1);
}
fn release(&self) {
    let g = self.waiters.lock();
    let l = self.lock();
}
";
        let f = graph(&[("crates/fault/src/admission.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("ledger") && f[0].message.contains("waiters"));
    }

    #[test]
    fn rwlock_read_write_only_match_declared_fields() {
        let src = "\
struct S {
    table: RwLock<u32>,
}
fn a(&self) {
    let g = self.table.read();
    self.m.lock().push(1);
}
fn b(&self) {
    let g = self.m.lock();
    let h = self.table.write();
}
";
        let f = graph(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        // `file.read(&mut buf)`-style I/O has arguments and never matches.
        let io = "fn c(f: &mut File) {\n    let g = self.m.lock();\n    f.read(&mut buf);\n}\n";
        assert!(graph(&[("crates/x/src/io.rs", io)]).is_empty());
    }

    #[test]
    fn test_code_builds_no_edges() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(&self) {
        let g = self.a.lock();
        let h = self.b.lock();
    }
    fn u(&self) {
        let g = self.b.lock();
        let h = self.a.lock();
    }
}
";
        assert!(graph(&[("crates/x/src/lib.rs", src)]).is_empty());
    }
}
