//! Error-taxonomy exhaustiveness: every `AggError` variant must map to an
//! `ErrorClass` arm in the CLI error module.
//!
//! The CLI's exit codes are part of the serving contract (DESIGN.md §13):
//! scripts branch on exit 2 = budget, 3 = timeout, 4 = I/O. A new
//! `AggError` variant that nobody classifies falls through a `_ =>` arm
//! into whatever default the match picked — silently, at runtime, in the
//! one place operators depend on precision. This check makes the taxonomy
//! a compile-adjacent guarantee: it parses the `pub enum AggError`
//! declaration wherever it lives and requires a literal
//! `AggError::<Variant>` reference in `crates/cli/src/error.rs` for every
//! variant. Wildcard arms may remain for forward compatibility, but they
//! can no longer be the only thing standing behind a variant.
//!
//! Workspaces without an `AggError` enum (fixtures exercising other
//! checks) pass vacuously.

use crate::checks::{Check, Finding};
use crate::scan::SourceLine;

/// Where the classification must live, relative to the workspace root.
pub const MAPPING_FILE: &str = "crates/cli/src/error.rs";

/// Workspace accumulator: feed every file, then `finish`.
#[derive(Default)]
pub struct Taxonomy {
    /// (variant, declaring path, line) for each `AggError` variant.
    variants: Vec<(String, String, usize)>,
    /// Code lines of the mapping file, if seen.
    mapping: Vec<String>,
}

impl Taxonomy {
    pub fn add_file(&mut self, path: &str, lines: &[SourceLine]) {
        if path == MAPPING_FILE {
            self.mapping = lines.iter().filter(|l| !l.in_test).map(|l| l.code.clone()).collect();
        }
        let mut in_enum = false;
        let mut depth = 0i64;
        for l in lines {
            if l.in_test {
                continue;
            }
            if !in_enum {
                if l.code.contains("pub enum AggError") {
                    in_enum = true;
                    depth = 0;
                } else {
                    continue;
                }
            } else if depth == 1 {
                // A variant line starts at depth 1 (its own braces, if
                // any, open *after* the name).
                let t = l.code.trim_start();
                let name: String =
                    t.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
                if !name.is_empty() && name.chars().next().unwrap().is_ascii_uppercase() {
                    self.variants.push((name, path.to_string(), l.number));
                }
            }
            for c in l.code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if in_enum && depth <= 0 && l.code.contains('}') {
                in_enum = false;
            }
        }
    }

    pub fn finish(self) -> Vec<Finding> {
        if self.variants.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (variant, path, line) in &self.variants {
            // Substring match with a right identifier boundary, so
            // `AggError::Spill` is not satisfied by `AggError::SpillFailed`.
            let needle = format!("AggError::{variant}");
            let mapped = self.mapping.iter().any(|code| {
                let mut from = 0usize;
                while let Some(found) = code[from..].find(&needle) {
                    let at = from + found;
                    from = at + needle.len();
                    let after = code[from..].chars().next();
                    if !after.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                        return true;
                    }
                }
                false
            });
            if !mapped {
                out.push(Finding {
                    check: Check::Taxonomy,
                    path: path.clone(),
                    line: *line,
                    message: format!(
                        "`AggError::{variant}` has no explicit ErrorClass arm in {MAPPING_FILE} — \
                         classify it so its exit code is chosen, not defaulted"
                    ),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let mut t = Taxonomy::default();
        for (path, src) in files {
            t.add_file(path, &scan(src));
        }
        t.finish()
    }

    #[test]
    fn fully_mapped_enum_is_clean() {
        let decl = "pub enum AggError {\n    BudgetExceeded { need: usize },\n    Cancelled,\n}\n";
        let map = "\
fn class(e: &AggError) -> ErrorClass {
    match e {
        AggError::BudgetExceeded { .. } => ErrorClass::Budget,
        AggError::Cancelled => ErrorClass::Timeout,
    }
}
";
        assert!(run(&[("crates/fault/src/error.rs", decl), (MAPPING_FILE, map)]).is_empty());
    }

    #[test]
    fn unmapped_variant_is_one_finding() {
        let decl = "pub enum AggError {\n    BudgetExceeded,\n    SpillFailed(String),\n}\n";
        let map = "\
fn class(e: &AggError) -> ErrorClass {
    match e {
        AggError::BudgetExceeded => ErrorClass::Budget,
        _ => ErrorClass::Internal,
    }
}
";
        let f = run(&[("crates/fault/src/error.rs", decl), (MAPPING_FILE, map)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].check, Check::Taxonomy);
        assert!(f[0].message.contains("SpillFailed"));
        assert_eq!(f[0].path, "crates/fault/src/error.rs");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn no_agg_error_enum_passes_vacuously() {
        let src = "pub enum Other {\n    A,\n}\n";
        assert!(run(&[("crates/x/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn missing_mapping_file_flags_every_variant() {
        let decl = "pub enum AggError {\n    A,\n    B,\n}\n";
        let f = run(&[("crates/fault/src/error.rs", decl)]);
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn variant_prefix_does_not_satisfy_another_variant() {
        let decl = "pub enum AggError {\n    Spill,\n    SpillFailed,\n}\n";
        let map = "fn c(e: &AggError) {\n    if let AggError::SpillFailed = e {}\n}\n";
        let f = run(&[("crates/fault/src/error.rs", decl), (MAPPING_FILE, map)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`AggError::Spill`"), "{f:?}");
    }

    #[test]
    fn doc_comment_attributes_between_variants_are_ignored() {
        let decl = "\
pub enum AggError {
    /// Docs.
    #[allow(dead_code)]
    BudgetExceeded {
        need: usize,
        have: usize,
    },
    Cancelled,
}
";
        let map = "fn c() {\n    let _ = (AggError::BudgetExceeded, AggError::Cancelled);\n}\n";
        assert!(run(&[("crates/fault/src/error.rs", decl), (MAPPING_FILE, map)]).is_empty());
    }
}
