//! Comment- and string-aware Rust source scanner.
//!
//! `hsa-lint` does not parse Rust; it classifies every character of a
//! source file as *code*, *comment*, or *string/char literal* with a small
//! state machine, then reasons about lines. That is exactly enough to
//! answer the questions the checks ask — "does this line's code contain
//! the `unsafe` keyword?", "is there a `// SAFETY:` comment on or above
//! it?", "is this line inside a `#[cfg(test)]` item?" — without dragging
//! rustc plumbing into a std-only tool.
//!
//! The scanner understands line comments (`//`, `///`, `//!`), nested
//! block comments (`/* /* */ */`), string literals with escapes, raw
//! strings (`r"…"`, `r#"…"#`, any hash depth), byte strings, and char
//! literals vs. lifetimes (`'a'` vs. `'env`). String and char literal
//! *contents* are stripped from the code channel (the delimiters remain),
//! so `"unsafe"` in a message can never look like the keyword.

/// One scanned source line, split into channels.
#[derive(Clone, Debug, Default)]
pub struct SourceLine {
    /// 1-based line number.
    pub number: usize,
    /// The line's code with comments removed and string/char literal
    /// contents blanked (delimiters kept).
    pub code: String,
    /// Concatenated text of every comment on the line (line or block),
    /// without the comment markers.
    pub comment: String,
    /// Whether the line lies inside a `#[cfg(test)]` item (the attribute
    /// line itself counts).
    pub in_test: bool,
}

impl SourceLine {
    /// Whether the code channel is effectively empty (blank or
    /// whitespace-only once comments and literals are stripped).
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }

    /// Whether the line is only an attribute (possibly wrapping over — we
    /// accept any line that *starts* with `#[` or `#![` as attribute-ish).
    pub fn is_attribute(&self) -> bool {
        let t = self.code.trim_start();
        t.starts_with("#[") || t.starts_with("#![")
    }
}

#[derive(Copy, Clone, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested block comments; the value is the nesting depth.
    BlockComment(u32),
    /// Inside `"…"`; the flag records a pending backslash escape.
    Str {
        escaped: bool,
    },
    /// Inside `r##"…"##` with the given hash count.
    RawStr {
        hashes: u32,
    },
    /// Inside `'…'`; the flag records a pending backslash escape.
    CharLit {
        escaped: bool,
    },
}

/// Scan `text` into classified lines. Never fails: unterminated constructs
/// simply run to end of file in their current state.
pub fn scan(text: &str) -> Vec<SourceLine> {
    let mut lines: Vec<SourceLine> = Vec::new();
    let mut line = SourceLine { number: 1, ..SourceLine::default() };
    let mut state = State::Code;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;

    macro_rules! flush_line {
        () => {{
            let number = line.number;
            lines.push(std::mem::take(&mut line));
            line.number = number + 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            // A line comment ends with the line; everything else carries
            // its state across the newline.
            if state == State::LineComment {
                state = State::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    i += 2;
                    // Skip doc-comment extras so the comment text starts
                    // at the payload: `/// x` and `//! x` both yield " x".
                    if matches!(chars.get(i), Some('/') | Some('!')) {
                        i += 1;
                    }
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    i += 2;
                }
                '"' => {
                    line.code.push('"');
                    state = State::Str { escaped: false };
                    i += 1;
                }
                'r' if is_raw_string_start(&chars, i) => {
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    line.code.push('"');
                    state = State::RawStr { hashes };
                    i = j + 1; // past the opening quote
                }
                // `br"…"` / `cr"…"` raw byte / C strings: same raw rules
                // (no escapes), hash counting starts after the two-char
                // prefix. Without this, the `\` before a closing quote in
                // `br"…\"` would be misread as an escape and swallow the
                // rest of the file into the string channel.
                'b' | 'c'
                    if next == Some('r')
                        && (i == 0 || !is_ident_char(chars[i - 1]))
                        && raw_quote_follows(&chars, i + 2) =>
                {
                    let mut hashes = 0u32;
                    let mut j = i + 2;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    line.code.push('"');
                    state = State::RawStr { hashes };
                    i = j + 1; // past the opening quote
                }
                'b' | 'c' if next == Some('"') => {
                    line.code.push('"');
                    state = State::Str { escaped: false };
                    i += 2;
                }
                'b' if next == Some('\'') => {
                    line.code.push('\'');
                    state = State::CharLit { escaped: false };
                    i += 2;
                }
                '\'' => {
                    if is_char_literal(&chars, i) {
                        line.code.push('\'');
                        state = State::CharLit { escaped: false };
                    } else {
                        // A lifetime: keep the tick in the code channel.
                        line.code.push('\'');
                    }
                    i += 1;
                }
                _ => {
                    line.code.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            State::Str { escaped } => {
                if escaped {
                    state = State::Str { escaped: false };
                } else if c == '\\' {
                    state = State::Str { escaped: true };
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Code;
                }
                i += 1;
            }
            State::RawStr { hashes } => {
                if c == '"' && raw_string_closes(&chars, i, hashes) {
                    line.code.push('"');
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
            State::CharLit { escaped } => {
                if escaped {
                    state = State::CharLit { escaped: false };
                } else if c == '\\' {
                    state = State::CharLit { escaped: true };
                } else if c == '\'' {
                    line.code.push('\'');
                    state = State::Code;
                }
                i += 1;
            }
        }
    }
    if !line.code.is_empty() || !line.comment.is_empty() || lines.is_empty() {
        lines.push(line);
    }
    mark_test_regions(&mut lines);
    lines
}

/// `r` at `i` starts a raw (byte) string iff it is followed by zero or
/// more `#` and then `"`, and is not part of a longer identifier
/// (`for`, `r2`, …).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 && is_ident_char(chars[i - 1]) {
        return false;
    }
    raw_quote_follows(chars, i + 1)
}

/// Whether zero or more `#` followed by `"` starts at `j` — the tail of a
/// raw-string opener after its `r` / `br` / `cr` prefix.
fn raw_quote_follows(chars: &[char], j: usize) -> bool {
    let mut j = j;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Whether the `"` at `i` is followed by `hashes` closing `#`s.
fn raw_string_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Disambiguate a `'` in code position: char literal or lifetime?
///
/// `'\…'` is always a char literal. `'x'` (any single char followed by a
/// closing tick) is a char literal. Everything else (`'env`, `'static`,
/// `'_`) is a lifetime.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Mark every line belonging to a `#[cfg(test)]` item (attribute included).
///
/// From each `#[cfg(test)]` attribute, skip any further attribute or
/// comment lines, then consume one item: either up to the `;` that ends a
/// braceless item, or through the brace pair that the item opens, tracking
/// depth on the code channel only.
fn mark_test_regions(lines: &mut [SourceLine]) {
    let mut i = 0usize;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        lines[i].in_test = true;
        let mut j = i + 1;
        // Skip companion attributes / doc comments between the cfg and
        // the item it gates.
        while j < lines.len() && (lines[j].is_attribute() || lines[j].is_code_blank()) {
            lines[j].in_test = true;
            j += 1;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        while j < lines.len() {
            lines[j].in_test = true;
            for c in lines[j].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    ';' if !opened && depth == 0 => {
                        // `#[cfg(test)] mod tests;` — braceless item.
                        opened = true;
                        depth = 0;
                    }
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// Find every occurrence of the identifier `word` in `code`, returning
/// byte offsets. Boundaries are non-identifier characters, so `unsafe`
/// does not match inside `unsafe_op_in_unsafe_fn`.
pub fn find_word(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        start = at + word.len();
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_leave_the_code_channel() {
        let src = "let x = \"unsafe // not code\"; // SAFETY: real comment\n";
        let lines = scan(src);
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.contains("SAFETY: real comment"));
    }

    #[test]
    fn raw_strings_with_hashes_are_opaque() {
        let src = "let s = r#\"has \" quote and unsafe\"#; let t = 1;\n";
        let lines = scan(src);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("let t = 1;"));
    }

    #[test]
    fn byte_and_c_raw_strings_are_opaque() {
        // `br`/`cr` raw strings must go through the raw-string state, not
        // the escaped-string state: their contents can never be misread as
        // code, however `unsafe`-looking.
        let src = "let a = br#\"unsafe { panic!() }\"#; let b = cr\"unsafe fn x()\"; let c = 1;\n";
        let lines = scan(src);
        assert!(find_word(&lines[0].code, "unsafe").is_empty(), "{:?}", lines[0].code);
        assert!(!lines[0].code.contains("panic!"));
        assert!(lines[0].code.contains("let c = 1;"));
    }

    #[test]
    fn backslash_in_byte_raw_string_does_not_escape_the_close() {
        // Regression: `br"…\"` once took the escaped-`Str` path, where the
        // backslash swallowed the closing quote and the rest of the file
        // (including real `unsafe` code) vanished into the string channel.
        let src = "let p = br\"C:\\\"; let real = unsafe { q() };\n";
        let lines = scan(src);
        assert_eq!(find_word(&lines[0].code, "unsafe").len(), 1, "{:?}", lines[0].code);
        assert!(lines[0].code.contains("let real ="));
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let src = "fn f<'a>(x: &'a str) { let c = '\"'; let d = 'x'; }\n";
        let lines = scan(src);
        // The double quote inside the char literal must not open a string.
        assert!(lines[0].code.contains("let d ="));
        let src2 = "let q = '\\''; let unsafe_looking = \"unsafe\";\n";
        let lines2 = scan(src2);
        assert!(find_word(&lines2[0].code, "unsafe").is_empty());
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ let x = 1;\n";
        let lines = scan(src);
        assert!(lines[0].code.contains("let x = 1;"));
        assert!(lines[0].comment.contains("inner"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let src = "let a = 1; /* start\nmiddle unsafe\nend */ let b = 2;\n";
        let lines = scan(src);
        assert_eq!(lines.len(), 3);
        assert!(lines[1].code.is_empty());
        assert!(lines[1].comment.contains("unsafe"));
        assert!(lines[2].code.contains("let b = 2;"));
    }

    #[test]
    fn find_word_respects_boundaries() {
        assert_eq!(find_word("unsafe { }", "unsafe"), vec![0]);
        assert!(find_word("deny(unsafe_op_in_unsafe_fn)", "unsafe").is_empty());
        assert_eq!(find_word("pub unsafe fn x()", "unsafe").len(), 1);
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lines = scan(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nmod tests;\nfn real() {}\n";
        let lines = scan(src);
        assert!(lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn doc_comment_markers_are_stripped() {
        let lines = scan("/// # Safety\n//! inner doc\n");
        assert_eq!(lines[0].comment.trim(), "# Safety");
        assert_eq!(lines[1].comment.trim(), "inner doc");
    }
}
