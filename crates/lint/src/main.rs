//! CLI entry point: `cargo run -p hsa-lint [-- <root>] [--print-allow]`.
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut print_allow = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--print-allow" => print_allow = true,
            "--help" | "-h" => {
                println!(
                    "hsa-lint — workspace safety analyzer\n\n\
                     USAGE: hsa-lint [ROOT] [--print-allow]\n\n\
                     Walks src/ and crates/*/src from ROOT (default: the enclosing\n\
                     workspace) and enforces the invariants documented in DESIGN.md §12:\n\
                     SAFETY comments on unsafe, ORDERING comments on weak atomics,\n\
                     frozen panic debt, std-only manifests, cold-path markers.\n\n\
                     --print-allow  print regenerated lint-allow.txt contents and exit"
                );
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && root.is_none() => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("hsa-lint: unknown argument {other:?} (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("hsa-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match hsa_lint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("hsa-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    if print_allow {
        return match hsa_lint::print_allow(&root) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("hsa-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    match hsa_lint::run(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("hsa-lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("hsa-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("hsa-lint: {e}");
            ExitCode::from(2)
        }
    }
}
