//! CLI entry point: `cargo run -p hsa-lint [-- <root>] [--print-allow]`.
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut print_allow = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--print-allow" => print_allow = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!(
                        "hsa-lint: --format wants `text` or `json`, got {:?}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "hsa-lint — workspace safety analyzer\n\n\
                     USAGE: hsa-lint [ROOT] [--print-allow] [--format text|json]\n\n\
                     Walks src/ and crates/*/src from ROOT (default: the enclosing\n\
                     workspace) and enforces the invariants documented in DESIGN.md\n\
                     §12 and §17: SAFETY comments on unsafe, machine-checked ORDERING\n\
                     protocol annotations on weak atomics (pairing + publication),\n\
                     an acyclic workspace lock graph, no leaked budget reservations,\n\
                     an exhaustive AggError -> ErrorClass taxonomy, frozen panic\n\
                     debt, std-only manifests, cold-path markers.\n\n\
                     --print-allow  print regenerated lint-allow.txt contents and exit\n\
                     --format json  machine-readable findings (schema_version 1)"
                );
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && root.is_none() => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("hsa-lint: unknown argument {other:?} (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("hsa-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match hsa_lint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("hsa-lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    if print_allow {
        return match hsa_lint::print_allow(&root) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("hsa-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    match hsa_lint::run(&root) {
        Ok(findings) => {
            if json {
                print!("{}", hsa_lint::render_json(&root.display().to_string(), &findings));
            } else if findings.is_empty() {
                println!("hsa-lint: clean ({})", root.display());
            } else {
                for f in &findings {
                    println!("{f}");
                }
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                eprintln!("hsa-lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("hsa-lint: {e}");
            ExitCode::from(2)
        }
    }
}
