//! Fixture: a Relaxed access whose annotation claims publication.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(c: &AtomicUsize) {
    // ORDERING: Relaxed — publishes the table pointer to readers.
    c.fetch_add(1, Ordering::Relaxed);
}
