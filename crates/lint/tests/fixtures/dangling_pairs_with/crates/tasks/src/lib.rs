//! Fixture: a pairs-with reference to a site tag nobody declares.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn observe(flag: &AtomicBool) -> bool {
    // ORDERING: Acquire; site: observe-side; pairs-with: flag.publish — observes the handoff.
    flag.load(Ordering::Acquire)
}

pub fn hand_off(flag: &AtomicBool) {
    // ORDERING: Release; site: release-side; pairs-with: flag.observe-side — hands off.
    flag.store(true, Ordering::Release);
}
