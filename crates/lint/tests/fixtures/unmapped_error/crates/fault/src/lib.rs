//! Fixture: an AggError variant the CLI error module never classifies.

pub enum AggError {
    BudgetExceeded,
    SpillFailed,
}
