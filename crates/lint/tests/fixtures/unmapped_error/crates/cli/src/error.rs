//! Fixture CLI error module: classifies only one of the two variants.

pub enum ErrorClass {
    Budget,
    Internal,
}

pub fn classify(e: &AggError) -> ErrorClass {
    match e {
        AggError::BudgetExceeded => ErrorClass::Budget,
        _ => ErrorClass::Internal,
    }
}
