//! Fixture: a Release store with no Acquire/AcqRel read anywhere.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn set(flag: &AtomicBool) {
    // ORDERING: Release — hands the guarded state to whoever reads it.
    flag.store(true, Ordering::Release);
}
