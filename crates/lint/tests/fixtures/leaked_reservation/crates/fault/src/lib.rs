//! Fixture: a budget-returning RAII guard reaches `mem::forget`.

pub struct Reservation {
    pub bytes: u64,
}

impl Drop for Reservation {
    fn drop(&mut self) {}
}

pub fn leak(r: Reservation) {
    std::mem::forget(r);
}
