//! Fixture: a fully compliant library file.

/// Reads the first element without a bounds check.
pub fn first(v: &[u64]) -> u64 {
    assert!(!v.is_empty());
    // SAFETY: the assert above guarantees at least one element.
    unsafe { *v.as_ptr() }
}
