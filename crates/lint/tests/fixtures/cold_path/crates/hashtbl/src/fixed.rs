//! Fixture: the documented cold path lost its `#[inline(never)]`.

#[inline]
pub fn probe_collision() {}
