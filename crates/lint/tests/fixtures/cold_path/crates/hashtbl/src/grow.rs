//! Fixture: the documented `grow` cold path was renamed away.

pub fn expand() {}
