//! Fixture: the same bare Relaxed load outside the ordering scope —
//! must not be flagged (this crate has no lock-free coordination).

pub fn peek(c: &std::sync::atomic::AtomicU64) -> u64 {
    c.load(std::sync::atomic::Ordering::Relaxed)
}
