//! Fixture: a bare Relaxed load in an ordering-scoped crate.

pub fn peek(c: &std::sync::atomic::AtomicU64) -> u64 {
    c.load(std::sync::atomic::Ordering::Relaxed)
}
