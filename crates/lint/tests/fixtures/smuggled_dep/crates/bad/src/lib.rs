//! Fixture: the source is clean; the manifest smuggles a dependency.

pub fn nothing() {}
