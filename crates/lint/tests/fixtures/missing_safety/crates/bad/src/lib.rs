//! Fixture: an `unsafe` block with no SAFETY justification.

pub fn peek(v: &[u64]) -> u64 {
    unsafe { *v.as_ptr() }
}
