//! Fixture: one unwrap frozen in lint-allow.txt — within budget.

pub fn last(v: &[u64]) -> u64 {
    v.last().copied().unwrap()
}
