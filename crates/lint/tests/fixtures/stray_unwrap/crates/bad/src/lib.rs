//! Fixture: a new unwrap in a library file with no frozen budget.

pub fn first(v: &[u64]) -> u64 {
    v.first().copied().unwrap()
}
