//! Fixture: acquires reg_a, then reg_b — the opposite of crates/runtime.

use std::sync::Mutex;

pub struct Registries {
    pub reg_a: Mutex<Vec<u32>>,
    pub reg_b: Mutex<Vec<u32>>,
}

pub fn forward(r: &Registries) {
    let a = r.reg_a.lock();
    let b = r.reg_b.lock();
    drop(b);
    drop(a);
}
