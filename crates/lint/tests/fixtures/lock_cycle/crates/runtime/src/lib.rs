//! Fixture: acquires reg_b, then reg_a — the opposite of crates/serve.

use std::sync::Mutex;

pub struct Registries {
    pub reg_a: Mutex<Vec<u32>>,
    pub reg_b: Mutex<Vec<u32>>,
}

pub fn backward(r: &Registries) {
    let b = r.reg_b.lock();
    let a = r.reg_a.lock();
    drop(a);
    drop(b);
}
