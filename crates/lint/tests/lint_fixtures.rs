//! End-to-end tests: run the analyzer (library and binary) over the
//! fixture workspaces in `tests/fixtures/`, each seeded with one known
//! violation, and assert the exact findings and exit codes.

use hsa_lint::{run, Check};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn lint_bin(root: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hsa-lint")).arg(root).output().expect("spawn hsa-lint")
}

fn lint_bin_json(root: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hsa-lint"))
        .arg(root)
        .args(["--format", "json"])
        .output()
        .expect("spawn hsa-lint")
}

#[test]
fn clean_tree_has_no_findings_and_exits_zero() {
    let root = fixture("clean");
    assert_eq!(run(&root).unwrap(), vec![]);

    let out = lint_bin(&root);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("clean"), "stdout: {stdout}");
}

#[test]
fn missing_safety_comment_is_flagged_at_the_unsafe_line() {
    let root = fixture("missing_safety");
    let findings = run(&root).unwrap();
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].check, Check::Safety);
    assert_eq!(findings[0].path, "crates/bad/src/lib.rs");
    assert_eq!(findings[0].line, 4);

    let out = lint_bin(&root);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("crates/bad/src/lib.rs:4: [safety]"), "stdout: {stdout}");
}

#[test]
fn stray_unwrap_is_flagged_but_frozen_debt_is_not() {
    let root = fixture("stray_unwrap");
    let findings = run(&root).unwrap();
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].check, Check::Panic);
    assert_eq!(findings[0].path, "crates/bad/src/lib.rs");
    assert_eq!(findings[0].line, 4);
    assert!(findings[0].message.contains(".unwrap()"), "{}", findings[0].message);

    assert_eq!(lint_bin(&root).status.code(), Some(1));
}

#[test]
fn print_allow_regenerates_current_debt() {
    let text = hsa_lint::print_allow(&fixture("stray_unwrap")).unwrap();
    assert!(text.contains("crates/bad/src/frozen.rs panic 1"), "{text}");
    assert!(text.contains("crates/bad/src/lib.rs panic 1"), "{text}");
}

#[test]
fn smuggled_dependency_is_flagged_in_the_manifest() {
    let root = fixture("smuggled_dep");
    let findings = run(&root).unwrap();
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].check, Check::Deps);
    assert_eq!(findings[0].path, "crates/bad/Cargo.toml");
    assert_eq!(findings[0].line, 6);
    assert!(findings[0].message.contains("serde"), "{}", findings[0].message);

    assert_eq!(lint_bin(&root).status.code(), Some(1));
}

#[test]
fn weak_ordering_is_flagged_only_in_scoped_crates() {
    let root = fixture("weak_ordering");
    let findings = run(&root).unwrap();
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].check, Check::Ordering);
    assert_eq!(findings[0].path, "crates/tasks/src/lib.rs");
    assert_eq!(findings[0].line, 4);
}

#[test]
fn lost_cold_path_markers_are_flagged() {
    let root = fixture("cold_path");
    let findings = run(&root).unwrap();
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert_eq!(findings[0].check, Check::ColdPath);
    assert_eq!(findings[0].path, "crates/hashtbl/src/fixed.rs");
    assert_eq!(findings[0].line, 4);
    assert!(findings[0].message.contains("#[inline(never)]"));
    // `grow` is gone entirely: a whole-file (line 0) finding.
    assert_eq!(findings[1].check, Check::ColdPath);
    assert_eq!(findings[1].path, "crates/hashtbl/src/grow.rs");
    assert_eq!(findings[1].line, 0);
}

#[test]
fn malformed_allowlist_entries_are_findings() {
    let root = fixture("bad_allowlist");
    let findings = run(&root).unwrap();
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].check, Check::Panic);
    assert_eq!(findings[0].path, "lint-allow.txt");
    assert_eq!(findings[0].line, 2);
    assert!(findings[0].message.contains("malformed"), "{}", findings[0].message);
}

#[test]
fn unpaired_release_store_is_flagged() {
    let root = fixture("unpaired_release");
    let findings = run(&root).unwrap();
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].check, Check::Atomics);
    assert_eq!(findings[0].path, "crates/tasks/src/lib.rs");
    assert_eq!(findings[0].line, 7);
    assert!(findings[0].message.contains("unpaired `Release` write"), "{}", findings[0].message);

    assert_eq!(lint_bin(&root).status.code(), Some(1));
}

#[test]
fn relaxed_annotation_claiming_publication_is_flagged() {
    let root = fixture("relaxed_publication");
    let findings = run(&root).unwrap();
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].check, Check::Atomics);
    assert_eq!(findings[0].path, "crates/tasks/src/lib.rs");
    assert_eq!(findings[0].line, 7);
    assert!(findings[0].message.contains("claims publication"), "{}", findings[0].message);

    assert_eq!(lint_bin(&root).status.code(), Some(1));
}

#[test]
fn dangling_pairs_with_tag_is_flagged_once() {
    let root = fixture("dangling_pairs_with");
    let findings = run(&root).unwrap();
    // The release/observe-side pair resolves; only the phantom
    // `flag.publish` reference is a finding.
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].check, Check::Atomics);
    assert_eq!(findings[0].path, "crates/tasks/src/lib.rs");
    assert_eq!(findings[0].line, 7);
    assert!(
        findings[0].message.contains("dangling pairs-with tag `flag.publish`"),
        "{}",
        findings[0].message
    );

    assert_eq!(lint_bin(&root).status.code(), Some(1));
}

#[test]
fn cross_crate_lock_order_cycle_is_one_deadlock_finding() {
    let root = fixture("lock_cycle");
    let findings = run(&root).unwrap();
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].check, Check::LockOrder);
    // Anchored at the first witness edge (sorted by from/to):
    // reg_a -> reg_b, observed at the second `.lock()` in crates/serve.
    assert_eq!(findings[0].path, "crates/serve/src/lib.rs");
    assert_eq!(findings[0].line, 12);
    assert!(findings[0].message.contains("potential deadlock"), "{}", findings[0].message);
    assert!(findings[0].message.contains("reg_a -> reg_b"), "{}", findings[0].message);
    assert!(findings[0].message.contains("reg_b -> reg_a"), "{}", findings[0].message);

    assert_eq!(lint_bin(&root).status.code(), Some(1));
}

#[test]
fn forgotten_reservation_is_a_raii_leak_finding() {
    let root = fixture("leaked_reservation");
    let findings = run(&root).unwrap();
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].check, Check::RaiiLeak);
    assert_eq!(findings[0].path, "crates/fault/src/lib.rs");
    assert_eq!(findings[0].line, 12);
    assert!(
        findings[0].message.contains("`mem::forget` reaches `Reservation`"),
        "{}",
        findings[0].message
    );

    assert_eq!(lint_bin(&root).status.code(), Some(1));
}

#[test]
fn unmapped_error_variant_is_a_taxonomy_finding() {
    let root = fixture("unmapped_error");
    let findings = run(&root).unwrap();
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].check, Check::Taxonomy);
    assert_eq!(findings[0].path, "crates/fault/src/lib.rs");
    assert_eq!(findings[0].line, 5);
    assert!(findings[0].message.contains("`AggError::SpillFailed`"), "{}", findings[0].message);

    assert_eq!(lint_bin(&root).status.code(), Some(1));
}

#[test]
fn json_output_is_stable_and_parseable_by_shape() {
    // Findings run: schema_version, count, and the finding fields all
    // appear; exit code still signals findings.
    let out = lint_bin_json(&fixture("unmapped_error"));
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"schema_version\": 1"), "{stdout}");
    assert!(stdout.contains("\"count\": 1"), "{stdout}");
    assert!(stdout.contains("\"check\": \"taxonomy\""), "{stdout}");
    assert!(stdout.contains("\"path\": \"crates/fault/src/lib.rs\""), "{stdout}");
    assert!(stdout.contains("\"line\": 5"), "{stdout}");

    // Clean run: empty findings array, exit 0.
    let out = lint_bin_json(&fixture("clean"));
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"schema_version\": 1"), "{stdout}");
    assert!(stdout.contains("\"count\": 0"), "{stdout}");
    assert!(stdout.contains("\"findings\": []"), "{stdout}");
}

#[test]
fn bad_format_value_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_hsa-lint"))
        .arg(fixture("clean"))
        .args(["--format", "yaml"])
        .output()
        .expect("spawn hsa-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn nonexistent_root_is_a_usage_error() {
    let out = lint_bin(&fixture("no_such_fixture"));
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn the_real_workspace_is_clean() {
    // The repo itself must pass its own analyzer — the same invocation CI
    // runs. Walk up from the lint crate to the enclosing workspace root.
    let root = hsa_lint::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("enclosing workspace root");
    let findings = run(&root).unwrap();
    assert_eq!(findings, vec![], "the tree no longer passes hsa-lint");
}
