//! Hot-path primitives shared by the `HASHING` routine's inner loops.
//!
//! Three building blocks, all built around the same observation the paper
//! makes for `PARTITIONING` (§4, 16-way unrolled hashing): the per-element
//! CPU cost of the probe and fold loops is dominated by cache misses that
//! the out-of-order window cannot hide one row at a time. Processing rows
//! in small batches exposes the memory-level parallelism:
//!
//! * [`prefetch_read`] / [`prefetch_write`] — software prefetch hints. A
//!   batch of 16 rows is hashed first, the home cache lines of all 16 are
//!   prefetched, and only then are the probes resolved — by the time the
//!   first probe runs, the other 15 loads are in flight.
//! * [`probe_scan`] — find the first free-or-matching slot in a stretch of
//!   a probe block: the occupancy bits and a SIMD key compare produce a
//!   candidate mask, and the answer is one `trailing_zeros`. Exactly
//!   equivalent to the scalar walk, so outcomes and probe-step metrics are
//!   bit-identical.
//! * [`fold_mapped`] — apply a mapping vector (§3.3, Figure 2) to a state
//!   column: `col[mapping[j]] = op(col[mapping[j]], vals[j])`, with
//!   lookahead prefetch of the state slots and, on AVX2, gathered 4-lane
//!   SIMD arithmetic for conflict-free index groups.
//!
//! # Dispatch
//!
//! Every kernel takes a [`KernelKind`] selected once per operator run by
//! [`select`]: `Scalar` is the portable fallback (and the only path under
//! Miri or off x86-64), `Sse2` is the x86-64 baseline (always available
//! there), `Avx2` is taken when `is_x86_feature_detected!` says so. The
//! `HSA_KERNEL` environment variable overrides any programmatic
//! preference, which is how CI forces the scalar arm. All tiers compute
//! bit-identical results; they differ only in speed.

/// Rows per pipelined batch: hash 16 keys, prefetch 16 home slots, then
/// resolve 16 probes. Matches the paper's 16-way unrolled hashing for
/// `PARTITIONING`; 16 independent loads comfortably fill the ~10-16
/// outstanding-miss budget of one core without overrunning it.
pub const BATCH: usize = 16;

/// Lookahead distance (in rows) for the fold kernels' state-slot prefetch.
/// Far enough that the prefetch completes before the store-back, close
/// enough that the line is rarely evicted again: one batch ahead.
pub const FOLD_PREFETCH_AHEAD: usize = 16;

/// Instruction set a kernel call should use. Ordered by capability so
/// preferences can be clamped to what the CPU offers.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelKind {
    /// Portable scalar loops — the reference semantics, the Miri path,
    /// and the only tier off x86-64.
    Scalar,
    /// x86-64 baseline: batched + prefetch pipelining with 128-bit key
    /// compares in the probe scan.
    Sse2,
    /// 256-bit key compares and gathered 4-lane fold arithmetic.
    Avx2,
}

impl KernelKind {
    /// Stable lowercase label used in reports and `--stats-json`.
    pub fn label(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Sse2 => "sse2",
            KernelKind::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Requested kernel tier (configuration); resolved to a [`KernelKind`] by
/// [`select`] once the CPU has been interrogated.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum KernelPref {
    /// Use the best tier the CPU supports.
    #[default]
    Auto,
    /// Force the portable scalar path.
    Scalar,
    /// At most SSE2 (clamped down where unavailable).
    Sse2,
    /// At most AVX2 (clamped down where unavailable).
    Avx2,
}

impl std::str::FromStr for KernelPref {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(KernelPref::Auto),
            "scalar" => Ok(KernelPref::Scalar),
            "sse2" => Ok(KernelPref::Sse2),
            "avx2" => Ok(KernelPref::Avx2),
            other => Err(format!("unknown kernel {other:?} (auto | scalar | sse2 | avx2)")),
        }
    }
}

impl std::fmt::Display for KernelPref {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KernelPref::Auto => "auto",
            KernelPref::Scalar => "scalar",
            KernelPref::Sse2 => "sse2",
            KernelPref::Avx2 => "avx2",
        })
    }
}

/// The most capable tier this CPU supports. `Scalar` under Miri and on
/// non-x86-64 targets; at least `Sse2` on x86-64 (part of the base ISA).
pub fn detect_best() -> KernelKind {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        if std::is_x86_feature_detected!("avx2") {
            return KernelKind::Avx2;
        }
        KernelKind::Sse2
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        KernelKind::Scalar
    }
}

/// Every tier runnable on this CPU, in ascending capability order —
/// `[Scalar]`, `[Scalar, Sse2]`, or `[Scalar, Sse2, Avx2]`. Differential
/// tests and the ablation harness iterate this.
pub fn available_kinds() -> Vec<KernelKind> {
    let mut v = vec![KernelKind::Scalar];
    if detect_best() >= KernelKind::Sse2 {
        v.push(KernelKind::Sse2);
    }
    if detect_best() >= KernelKind::Avx2 {
        v.push(KernelKind::Avx2);
    }
    v
}

/// Resolve a preference to the kernel an operator run will use.
///
/// The `HSA_KERNEL` environment variable (`auto|scalar|sse2|avx2`), when
/// set to a valid value, overrides `pref` — the escape hatch for forcing a
/// tier across a whole test suite without plumbing configuration.
/// Preferences above what the CPU supports clamp down to [`detect_best`].
pub fn select(pref: KernelPref) -> KernelKind {
    let pref =
        std::env::var("HSA_KERNEL").ok().and_then(|v| v.parse::<KernelPref>().ok()).unwrap_or(pref);
    let best = detect_best();
    match pref {
        KernelPref::Auto => best,
        KernelPref::Scalar => KernelKind::Scalar,
        KernelPref::Sse2 => KernelKind::Sse2.min(best),
        KernelPref::Avx2 => KernelKind::Avx2.min(best),
    }
}

/// Prefetch `data[index]` for reading (T0 hint). A no-op when the index is
/// out of bounds, under Miri, and off x86-64 — prefetching is only ever a
/// hint, so the bounds check keeps the API safe without costing outcomes.
#[inline(always)]
pub fn prefetch_read<T>(data: &[T], index: usize) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if let Some(p) = data.get(index) {
        // SAFETY: `p` is a live reference; prefetch dereferences nothing.
        unsafe {
            std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                p as *const T as *const i8,
            );
        }
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        let _ = (data, index);
    }
}

/// Prefetch `data[index]` for writing. Falls back to the T0 read hint —
/// `prefetchw` needs its own feature gate and the read hint already pulls
/// the line close enough for the read-modify-write folds.
#[inline(always)]
pub fn prefetch_write<T>(data: &[T], index: usize) {
    prefetch_read(data, index);
}

// ---------------------------------------------------------------------------
// Probe scan
// ---------------------------------------------------------------------------

/// Scan a contiguous stretch of probe slots for the first one that is
/// either free or holds `needle`.
///
/// `keys` is the stretch (at most 64 slots), `occ` its occupancy bits
/// (bit `i` set ⇔ `keys[i]` is a live key). Returns the first index `i`
/// where slot `i` is unoccupied (`Some((i, false))`) or occupied with
/// `keys[i] == needle` (`Some((i, true))`); `None` when every slot is
/// occupied by some other key — the caller continues with the wrapped
/// remainder of the block or reports overflow.
///
/// Equivalent to the scalar probe walk by construction: the candidate mask
/// `(!occ | matches) & len_mask` stops at exactly the slot the walk would,
/// because every lower bit being clear means every earlier slot was
/// occupied by a non-matching key.
#[inline]
pub fn probe_scan(kind: KernelKind, keys: &[u64], occ: u64, needle: u64) -> Option<(usize, bool)> {
    debug_assert!(keys.len() <= 64, "probe stretch wider than the occupancy word");
    let matches = match kind {
        KernelKind::Scalar => match_mask_scalar(keys, needle),
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        KernelKind::Sse2 => match_mask_sse2(keys, needle),
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // SAFETY: callers only pass `Avx2` when `select`/`detect_best`
        // confirmed the feature (the dispatch contract of this crate).
        KernelKind::Avx2 => unsafe { match_mask_avx2(keys, needle) },
        #[cfg(not(all(target_arch = "x86_64", not(miri))))]
        _ => match_mask_scalar(keys, needle),
    };
    let len_mask = if keys.len() == 64 { u64::MAX } else { (1u64 << keys.len()) - 1 };
    let stop = (!occ | matches) & len_mask;
    if stop == 0 {
        return None;
    }
    let idx = stop.trailing_zeros() as usize;
    Some((idx, occ >> idx & 1 == 1))
}

/// Bit `i` set ⇔ `keys[i] == needle` (portable reference).
#[inline]
fn match_mask_scalar(keys: &[u64], needle: u64) -> u64 {
    let mut mask = 0u64;
    for (i, &k) in keys.iter().enumerate() {
        mask |= u64::from(k == needle) << i;
    }
    mask
}

/// SSE2 match mask: two 64-bit lanes per compare. SSE2 has no 64-bit
/// equality, so compare as 4×32-bit and AND each lane's two halves.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[inline]
fn match_mask_sse2(keys: &[u64], needle: u64) -> u64 {
    use std::arch::x86_64::*;
    let mut mask = 0u64;
    let chunks = keys.len() / 2;
    // SAFETY: SSE2 is part of the x86-64 base ISA; loads are unaligned
    // (`loadu`) and stay within `keys` (2 lanes per iteration).
    unsafe {
        let nv = _mm_set1_epi64x(needle as i64);
        for c in 0..chunks {
            let kv = _mm_loadu_si128(keys.as_ptr().add(c * 2) as *const __m128i);
            let eq32 = _mm_cmpeq_epi32(kv, nv);
            // A 64-bit lane matches iff both its 32-bit halves matched.
            let eq64 = _mm_and_si128(eq32, _mm_shuffle_epi32::<0b10110001>(eq32));
            // movemask_pd reads the sign bit of each 64-bit lane.
            let m = _mm_movemask_pd(_mm_castsi128_pd(eq64)) as u64;
            mask |= m << (c * 2);
        }
    }
    for (i, &key) in keys.iter().enumerate().skip(chunks * 2) {
        mask |= u64::from(key == needle) << i;
    }
    mask
}

/// AVX2 match mask: four 64-bit lanes per compare.
///
/// # Safety
/// The CPU must support AVX2.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx2")]
unsafe fn match_mask_avx2(keys: &[u64], needle: u64) -> u64 {
    use std::arch::x86_64::*;
    let mut mask = 0u64;
    let chunks = keys.len() / 4;
    // SAFETY: the caller guarantees AVX2 (this fn's contract); loads are
    // unaligned (`loadu`) and stay within `keys` (4 lanes per iteration).
    unsafe {
        let nv = _mm256_set1_epi64x(needle as i64);
        for c in 0..chunks {
            let kv = _mm256_loadu_si256(keys.as_ptr().add(c * 4) as *const __m256i);
            let eq = _mm256_cmpeq_epi64(kv, nv);
            let m = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u64;
            mask |= m << (c * 4);
        }
    }
    for (i, &key) in keys.iter().enumerate().skip(chunks * 4) {
        mask |= u64::from(key == needle) << i;
    }
    mask
}

// ---------------------------------------------------------------------------
// Mapped folds
// ---------------------------------------------------------------------------

/// The four state-combining operations the fold kernels implement, each in
/// raw (`apply`) and partial-aggregate (`merge`) form. Mirrors
/// `hsa_agg::StateOp` without depending on it — the dependency points the
/// other way so `hsa-agg` can wrap these kernels.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FoldOp {
    /// apply: `s + 1` (value ignored); merge: `s + v` (COUNT's
    /// super-aggregate is SUM).
    Count,
    /// Wrapping `s + v` in both forms.
    Sum,
    /// `min(s, v)` in both forms.
    Min,
    /// `max(s, v)` in both forms.
    Max,
}

impl FoldOp {
    #[inline(always)]
    fn combine(self, s: u64, v: u64, merge: bool) -> u64 {
        match self {
            FoldOp::Count => {
                if merge {
                    s.wrapping_add(v)
                } else {
                    s.wrapping_add(1)
                }
            }
            FoldOp::Sum => s.wrapping_add(v),
            FoldOp::Min => s.min(v),
            FoldOp::Max => s.max(v),
        }
    }
}

/// Fold `vals` into `col` through `mapping`:
/// `col[mapping[j]] = op(col[mapping[j]], vals[j], merge)` for every `j`.
///
/// * `Scalar` — the plain loop (reference semantics).
/// * `Sse2` — the same loop with the state slot [`FOLD_PREFETCH_AHEAD`]
///   rows ahead prefetched; the fold is a scattered read-modify-write, so
///   hiding the state-column miss is the whole win.
/// * `Avx2` — additionally processes groups of 4 rows with a gathered
///   load, SIMD combine, and 4 scalar stores — but only when the group's
///   indices are pairwise distinct (a gathered read-modify-write over
///   duplicate indices would drop updates); conflicted groups fall back to
///   the scalar body.
///
/// All tiers produce bit-identical columns: no reordering across equal
/// indices ever happens, and the arithmetic is the same.
///
/// # Panics
/// In debug builds, when `vals` is shorter than `mapping` or an index is
/// out of bounds (release builds bounds-check per element as usual).
#[inline]
pub fn fold_mapped(
    kind: KernelKind,
    op: FoldOp,
    merge: bool,
    col: &mut [u64],
    mapping: &[u32],
    vals: &[u64],
) {
    debug_assert!(vals.len() >= mapping.len(), "fewer values than mapped rows");
    match kind {
        KernelKind::Scalar => fold_scalar(op, merge, col, mapping, vals),
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        KernelKind::Sse2 => fold_prefetch(op, merge, col, mapping, vals),
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // SAFETY: `Avx2` is only passed after feature detection.
        KernelKind::Avx2 => unsafe { fold_avx2(op, merge, col, mapping, vals) },
        #[cfg(not(all(target_arch = "x86_64", not(miri))))]
        _ => fold_scalar(op, merge, col, mapping, vals),
    }
}

#[inline]
fn fold_scalar(op: FoldOp, merge: bool, col: &mut [u64], mapping: &[u32], vals: &[u64]) {
    for (&slot, &v) in mapping.iter().zip(vals) {
        let s = &mut col[slot as usize];
        *s = op.combine(*s, v, merge);
    }
}

/// The batched tier: scalar arithmetic, but the state slot of the row
/// [`FOLD_PREFETCH_AHEAD`] positions ahead is prefetched each iteration.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[inline]
fn fold_prefetch(op: FoldOp, merge: bool, col: &mut [u64], mapping: &[u32], vals: &[u64]) {
    for (j, (&slot, &v)) in mapping.iter().zip(vals).enumerate() {
        if let Some(&ahead) = mapping.get(j + FOLD_PREFETCH_AHEAD) {
            prefetch_write(col, ahead as usize);
        }
        let s = &mut col[slot as usize];
        *s = op.combine(*s, v, merge);
    }
}

/// AVX2 tier: gather + SIMD combine + scalar scatter for conflict-free
/// 4-row groups, with the same lookahead prefetch.
///
/// # Safety
/// The CPU must support AVX2. All indices are bounds-checked before the
/// gather (the gather itself performs no checks).
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx2")]
unsafe fn fold_avx2(op: FoldOp, merge: bool, col: &mut [u64], mapping: &[u32], vals: &[u64]) {
    use std::arch::x86_64::*;
    /// Sign-flip constant: unsigned compare via signed `cmpgt`.
    const SIGN: i64 = i64::MIN;
    let n = mapping.len();
    let groups = n / 4;
    let sign = _mm256_set1_epi64x(SIGN);
    for g in 0..groups {
        let j = g * 4;
        for d in 0..4 {
            if let Some(&ahead) = mapping.get(j + d + FOLD_PREFETCH_AHEAD) {
                prefetch_write(col, ahead as usize);
            }
        }
        let i0 = mapping[j] as usize;
        let i1 = mapping[j + 1] as usize;
        let i2 = mapping[j + 2] as usize;
        let i3 = mapping[j + 3] as usize;
        let conflict = i0 == i1 || i0 == i2 || i0 == i3 || i1 == i2 || i1 == i3 || i2 == i3;
        let imax = i0.max(i1).max(i2).max(i3);
        // The gather sign-extends 32-bit indices, so indices that do not
        // fit in i32 must take the checked scalar path too.
        if conflict || imax >= col.len() || imax > i32::MAX as usize {
            // Duplicate indices: the gathered RMW would lose updates —
            // resolve the group in order. (The bounds guard only defends
            // the unchecked gather; scalar indexing still checks.)
            for d in 0..4 {
                let s = &mut col[mapping[j + d] as usize];
                *s = op.combine(*s, vals[j + d], merge);
            }
            continue;
        }
        let mut out = [0u64; 4];
        // SAFETY: AVX2 is guaranteed by the caller. The index load reads
        // 4 u32s at `mapping[j..j+4]` and the value load 4 u64s at
        // `vals[j..j+4]`, both in bounds (`j + 4 <= groups * 4 <= n` and
        // `vals.len() >= n`); all four gather indices were bounds-checked
        // against `col.len()` above; the store writes the local `out`.
        unsafe {
            let idx = _mm_loadu_si128(mapping.as_ptr().add(j) as *const __m128i);
            let s = _mm256_i32gather_epi64::<8>(col.as_ptr() as *const i64, idx);
            let v = _mm256_loadu_si256(vals.as_ptr().add(j) as *const __m256i);
            let r = match (op, merge) {
                (FoldOp::Count, false) => _mm256_add_epi64(s, _mm256_set1_epi64x(1)),
                (FoldOp::Count | FoldOp::Sum, _) => _mm256_add_epi64(s, v),
                (FoldOp::Min, _) | (FoldOp::Max, _) => {
                    // Unsigned min/max: flip sign bits, signed compare, blend.
                    let sf = _mm256_xor_si256(s, sign);
                    let vf = _mm256_xor_si256(v, sign);
                    let s_gt = _mm256_cmpgt_epi64(sf, vf);
                    if op == FoldOp::Min {
                        // where s > v take v, else s
                        _mm256_blendv_epi8(s, v, s_gt)
                    } else {
                        _mm256_blendv_epi8(v, s, s_gt)
                    }
                }
            };
            _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, r);
        }
        col[i0] = out[0];
        col[i1] = out[1];
        col[i2] = out[2];
        col[i3] = out[3];
    }
    for j in groups * 4..n {
        let s = &mut col[mapping[j] as usize];
        *s = op.combine(*s, vals[j], merge);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed | 1;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        }
    }

    #[test]
    fn pref_round_trips_through_strings() {
        for (s, p) in [
            ("auto", KernelPref::Auto),
            ("scalar", KernelPref::Scalar),
            ("sse2", KernelPref::Sse2),
            ("avx2", KernelPref::Avx2),
        ] {
            assert_eq!(s.parse::<KernelPref>().unwrap(), p);
            assert_eq!(p.to_string(), s);
        }
        assert!("neon".parse::<KernelPref>().is_err());
    }

    #[test]
    fn select_clamps_to_detected() {
        let best = detect_best();
        // Every selection clamps to the detected best, whatever was asked.
        for pref in [KernelPref::Auto, KernelPref::Scalar, KernelPref::Sse2, KernelPref::Avx2] {
            assert!(select(pref) <= best);
        }
        // The exact resolutions only hold without an `HSA_KERNEL` override
        // (CI's forced-scalar job runs this very test under one).
        if std::env::var_os("HSA_KERNEL").is_none() {
            assert_eq!(select(KernelPref::Scalar), KernelKind::Scalar);
            assert_eq!(select(KernelPref::Auto), best);
            assert!(select(KernelPref::Sse2) <= KernelKind::Sse2);
        }
    }

    #[test]
    fn available_kinds_is_a_prefix_of_the_ladder() {
        let kinds = available_kinds();
        assert_eq!(kinds[0], KernelKind::Scalar);
        assert!(kinds.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*kinds.last().unwrap(), detect_best());
    }

    #[test]
    fn kind_labels_are_unique() {
        let labels = [KernelKind::Scalar, KernelKind::Sse2, KernelKind::Avx2].map(|k| k.label());
        let mut dedup = labels.to_vec();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn prefetch_is_safe_everywhere() {
        let data = [1u64, 2, 3];
        prefetch_read(&data, 0);
        prefetch_read(&data, 2);
        prefetch_read(&data, 999); // out of bounds: no-op
        prefetch_write(&data, 1);
        prefetch_write::<u64>(&[], 0);
    }

    /// Reference implementation of probe_scan's contract.
    fn scan_ref(keys: &[u64], occ: u64, needle: u64) -> Option<(usize, bool)> {
        for (i, &k) in keys.iter().enumerate() {
            if occ >> i & 1 == 0 {
                return Some((i, false));
            }
            if k == needle {
                return Some((i, true));
            }
        }
        None
    }

    #[test]
    fn probe_scan_matches_reference_on_random_stretches() {
        let mut r = rng(0xC0FFEE);
        for kind in available_kinds() {
            for _ in 0..500 {
                let len = (r() % 65) as usize;
                // Small key universe so hits happen often.
                let keys: Vec<u64> = (0..len).map(|_| r() % 8).collect();
                let occ = r() & if len == 64 { u64::MAX } else { (1 << len) - 1 };
                let needle = r() % 8;
                assert_eq!(
                    probe_scan(kind, &keys, occ, needle),
                    scan_ref(&keys, occ, needle),
                    "{kind:?} len={len} occ={occ:b} needle={needle}"
                );
            }
        }
    }

    #[test]
    fn probe_scan_edge_cases() {
        for kind in available_kinds() {
            // Empty stretch.
            assert_eq!(probe_scan(kind, &[], 0, 7), None);
            // Full 64-slot stretch, all occupied, no match.
            let keys = vec![1u64; 64];
            assert_eq!(probe_scan(kind, &keys, u64::MAX, 2), None);
            // Match in the last slot.
            let mut keys = vec![1u64; 64];
            keys[63] = u64::MAX;
            assert_eq!(probe_scan(kind, &keys, u64::MAX, u64::MAX), Some((63, true)));
            // First slot free wins over a later match.
            let keys = [5u64, 7, 7];
            assert_eq!(probe_scan(kind, &keys, 0b110, 7), Some((0, false)));
            // Earlier occupied mismatches are skipped.
            assert_eq!(probe_scan(kind, &keys, 0b111, 7), Some((1, true)));
        }
    }

    /// Reference fold.
    fn fold_ref(op: FoldOp, merge: bool, col: &mut [u64], mapping: &[u32], vals: &[u64]) {
        for (&slot, &v) in mapping.iter().zip(vals) {
            let s = &mut col[slot as usize];
            *s = op.combine(*s, v, merge);
        }
    }

    #[test]
    fn fold_mapped_matches_reference_for_every_op_and_kind() {
        let mut r = rng(0xDEC0DE);
        let ops = [FoldOp::Count, FoldOp::Sum, FoldOp::Min, FoldOp::Max];
        for kind in available_kinds() {
            for &op in &ops {
                for merge in [false, true] {
                    for _ in 0..50 {
                        let slots = 1 + (r() % 200) as usize;
                        let rows = (r() % 300) as usize;
                        let base: Vec<u64> = (0..slots).map(|_| r()).collect();
                        // Heavy duplication to exercise the conflict path.
                        let mapping: Vec<u32> =
                            (0..rows).map(|_| (r() % slots as u64) as u32).collect();
                        let vals: Vec<u64> = (0..rows).map(|_| r()).collect();
                        let mut a = base.clone();
                        let mut b = base;
                        fold_mapped(kind, op, merge, &mut a, &mapping, &vals);
                        fold_ref(op, merge, &mut b, &mapping, &vals);
                        assert_eq!(a, b, "{kind:?} {op:?} merge={merge}");
                    }
                }
            }
        }
    }

    #[test]
    fn fold_mapped_extreme_values() {
        for kind in available_kinds() {
            // Wrapping sum.
            let mut col = vec![u64::MAX];
            fold_mapped(kind, FoldOp::Sum, false, &mut col, &[0, 0], &[1, 1]);
            assert_eq!(col[0], 1, "{kind:?}");
            // Unsigned min/max across the sign boundary.
            let mut col = vec![1u64 << 63];
            fold_mapped(kind, FoldOp::Min, false, &mut col, &[0], &[u64::MAX]);
            assert_eq!(col[0], 1 << 63, "{kind:?}");
            let mut col = vec![1u64 << 63];
            fold_mapped(kind, FoldOp::Max, false, &mut col, &[0], &[u64::MAX]);
            assert_eq!(col[0], u64::MAX, "{kind:?}");
            let mut col = vec![5u64];
            fold_mapped(kind, FoldOp::Min, false, &mut col, &[0], &[1 << 63]);
            assert_eq!(col[0], 5, "{kind:?}");
            // Count apply ignores the value; merge adds it.
            let mut col = vec![10u64, 20];
            fold_mapped(kind, FoldOp::Count, false, &mut col, &[1, 1], &[999, 999]);
            assert_eq!(col, [10, 22], "{kind:?}");
            let mut col = vec![10u64];
            fold_mapped(kind, FoldOp::Count, true, &mut col, &[0], &[32]);
            assert_eq!(col[0], 42, "{kind:?}");
        }
    }

    #[test]
    fn fold_order_dependence_is_preserved_on_duplicates() {
        // Sum over one slot: order does not matter for the result, but
        // COUNT-merge and MIN chains through duplicates verify the
        // conflict fallback processes rows strictly in order.
        for kind in available_kinds() {
            let mut col = vec![0u64];
            let mapping = vec![0u32; 33]; // every group conflicted + tail
            let vals: Vec<u64> = (0..33).collect();
            fold_mapped(kind, FoldOp::Sum, false, &mut col, &mapping, &vals);
            assert_eq!(col[0], (0..33).sum::<u64>(), "{kind:?}");
        }
    }
}
