//! Differential test: streaming ingestion against the one-shot slice API.
//!
//! The slice entry points are one-chunk wrappers over `AggStream`, so the
//! two paths share every line of routing code; what this test pins down is
//! that *chunk boundaries are invisible* — any cut of the input into
//! pushes (including empty and 1-row chunks) yields the same groups, and
//! for deterministic configurations the same `OpStats`.

use hsa_agg::AggSpec;
use hsa_core::{
    try_aggregate, AdaptiveParams, AggStream, AggregateConfig, ExecEnv, MemoryBudget, ObsConfig,
    OpStats, Strategy,
};

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn small_cfg(strategy: Strategy, threads: usize) -> AggregateConfig {
    AggregateConfig {
        cache_bytes: 64 << 10,
        threads,
        strategy,
        fill_percent: 25,
        morsel_rows: 4096,
        kernel: hsa_kernels::KernelPref::Auto,
    }
}

fn workload(rng: &mut Rng, rows: usize, k: u64) -> (Vec<u64>, Vec<u64>) {
    let keys = (0..rows).map(|_| rng.below(k)).collect();
    let vals = (0..rows).map(|_| rng.below(1000)).collect();
    (keys, vals)
}

/// Cut `[0, n)` into randomized chunk lengths, deliberately including
/// empty and 1-row chunks.
fn random_cuts(rng: &mut Rng, n: usize) -> Vec<(usize, usize)> {
    let mut cuts = Vec::new();
    let mut at = 0;
    while at < n {
        let len = match rng.below(5) {
            0 => 0,
            1 => 1,
            2 => rng.below(64) as usize,
            _ => rng.below(10_000) as usize,
        }
        .min(n - at);
        cuts.push((at, at + len));
        at += len;
    }
    if cuts.is_empty() {
        cuts.push((0, 0));
    }
    cuts
}

fn run_streamed(
    keys: &[u64],
    vals: &[u64],
    specs: &[AggSpec],
    cfg: &AggregateConfig,
    cuts: &[(usize, usize)],
) -> (Vec<(u64, Vec<u64>)>, OpStats) {
    let mut stream =
        AggStream::new(specs, cfg, &ExecEnv::unrestricted(), &ObsConfig::disabled()).unwrap();
    for &(a, b) in cuts {
        stream.push(&keys[a..b], &[&vals[a..b]]).unwrap();
    }
    let (out, report) = stream.finish().unwrap();
    (out.sorted_rows(), report.stats)
}

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::HashingOnly,
        Strategy::PartitionAlways { passes: 1 },
        Strategy::PartitionAlways { passes: 2 },
        Strategy::Adaptive(AdaptiveParams::default()),
    ]
}

#[test]
fn streaming_equals_oneshot() {
    let mut rng = Rng(0x5eed_cafe);
    let specs = [AggSpec::count(), AggSpec::sum(0), AggSpec::max(0)];
    for case in 0..24 {
        let rows = match rng.below(4) {
            0 => 0,
            1 => 1 + rng.below(50) as usize,
            _ => 1000 + rng.below(40_000) as usize,
        };
        let k = 1 + rng.below(20_000);
        let (keys, vals) = workload(&mut rng, rows, k);
        let cuts = random_cuts(&mut rng, rows);
        let strategy = strategies()[rng.below(4) as usize];
        let threads = 1 + rng.below(3) as usize;
        let cfg = small_cfg(strategy, threads);

        let (whole, _) =
            try_aggregate(&keys, &[&vals], &specs, &cfg, &ExecEnv::unrestricted()).unwrap();
        let (streamed, _) = run_streamed(&keys, &vals, &specs, &cfg, &cuts);
        assert_eq!(
            streamed,
            whole.sorted_rows(),
            "case {case}: rows {rows} k {k} {strategy:?} threads {threads} chunks {}",
            cuts.len()
        );
    }
}

/// The slice entry points are one-chunk streams, so a single `push` of
/// the whole input must reproduce the one-shot `OpStats` bit-for-bit
/// (timings aside). Multi-chunk streams run one morsel scope per push,
/// which changes the order the scheduler drains morsels in — that can
/// move a seal by a few rows, so across arbitrary cuts only the conserved
/// quantities are asserted: every input row is hashed at level 0 exactly
/// once, and no budget/fault counter ever fires on the clean path.
#[test]
fn single_push_stats_match_slice_api_and_conserved_fields_survive_chunking() {
    let mut rng = Rng(0xfeed_f00d);
    let specs = [AggSpec::count(), AggSpec::sum(0)];
    let (keys, vals) = workload(&mut rng, 30_000, 5_000);
    let zero_nanos = |mut s: OpStats| {
        s.task_nanos_per_level.iter_mut().for_each(|n| *n = 0);
        s
    };

    for strategy in [Strategy::HashingOnly, Strategy::PartitionAlways { passes: 1 }] {
        let cfg = small_cfg(strategy, 1);
        let (out, base) =
            try_aggregate(&keys, &[&vals], &specs, &cfg, &ExecEnv::unrestricted()).unwrap();

        // One chunk == the slice path: identical stats.
        let (rows, streamed) = run_streamed(&keys, &vals, &specs, &cfg, &[(0, keys.len())]);
        assert_eq!(rows, out.sorted_rows(), "{strategy:?}");
        assert_eq!(zero_nanos(streamed), zero_nanos(base.clone()), "{strategy:?}");

        // Arbitrary cuts: conserved fields only.
        for _ in 0..3 {
            let cuts = random_cuts(&mut rng, keys.len());
            let (_, s) = run_streamed(&keys, &vals, &specs, &cfg, &cuts);
            match strategy {
                Strategy::HashingOnly => {
                    assert_eq!(s.hash_rows_per_level[0], keys.len() as u64)
                }
                _ => assert_eq!(s.part_rows_per_level[0], keys.len() as u64),
            }
            assert_eq!(s.budget_denials, 0);
            assert_eq!(s.budget_downgrades, 0);
            assert_eq!(s.spilled_runs(), 0);
            assert_eq!(s.contained_panics, 0);
            assert_eq!(s.cancellations, 0);
        }
    }
}

/// Streaming under a budget + spill dir: same answer, bounded memory, and
/// the spill counters show up in the stats.
#[test]
fn streaming_spills_under_budget_and_matches() {
    let dir = std::env::temp_dir().join(format!("hsa-streamtest-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut rng = Rng(0xdead_beef);
    let specs = [AggSpec::sum(0), AggSpec::min(0)];
    let (keys, vals) = workload(&mut rng, 80_000, 30_000);
    let cfg = small_cfg(Strategy::Adaptive(AdaptiveParams::default()), 2);

    let (whole, _) =
        try_aggregate(&keys, &[&vals], &specs, &cfg, &ExecEnv::unrestricted()).unwrap();

    let budget = MemoryBudget::limited(3 << 20);
    let env = ExecEnv::unrestricted().with_budget(budget.clone()).with_spill_dir(&dir);
    let mut stream = AggStream::new(&specs, &cfg, &env, &ObsConfig::disabled()).unwrap();
    for chunk in keys.chunks(4096).zip(vals.chunks(4096)) {
        stream.push(chunk.0, &[chunk.1]).unwrap();
    }
    let (out, report) = stream.finish().unwrap();
    assert_eq!(out.sorted_rows(), whole.sorted_rows());
    assert_eq!(budget.outstanding(), 0);
    assert!(report.stats.spilled_runs() > 0, "stats: {:?}", report.stats);
    assert_eq!(report.stats.restored_runs, report.stats.spilled_runs());
    assert_eq!(report.stats.restored_bytes, report.stats.spilled_bytes);
    // Every spill file is consumed (deleted on restore) by the end.
    let leftover = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    assert_eq!(leftover, 0, "spill files must not outlive the stream");
    let _ = std::fs::remove_dir_all(&dir);
}
