//! Differential property test: the operator against a `BTreeMap`.
//!
//! Random keys, values, strategies, and configurations are run through
//! [`try_aggregate`] and compared row-for-row with a trivially correct
//! single-threaded reference. The generator covers the structural edge
//! cases the kernels special-case: empty input, a single row, all rows in
//! one group, and keys at `u64::MAX` (the growable table's floor probe).

use hsa_agg::AggSpec;
use hsa_core::{try_aggregate, AdaptiveParams, AggregateConfig, ExecEnv, MemoryBudget, Strategy};
use std::collections::BTreeMap;

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Physical state columns per group for `COUNT, SUM(v0), MIN(v1), MAX(v1)`.
fn reference(keys: &[u64], v0: &[u64], v1: &[u64]) -> BTreeMap<u64, [u64; 4]> {
    let mut m: BTreeMap<u64, [u64; 4]> = BTreeMap::new();
    for ((&k, &a), &b) in keys.iter().zip(v0).zip(v1) {
        let e = m.entry(k).or_insert([0, 0, u64::MAX, 0]);
        e[0] += 1;
        e[1] = e[1].wrapping_add(a);
        e[2] = e[2].min(b);
        e[3] = e[3].max(b);
    }
    m
}

fn key_column(rng: &mut Rng, shape: u64, rows: usize) -> Vec<u64> {
    (0..rows)
        .map(|_| match shape {
            // Dense duplicates: heavy early aggregation.
            0 => rng.below(64),
            // Moderate cardinality.
            1 => rng.below(10_000),
            // Nearly unique: α close to 1, the adaptive switch's domain.
            2 => rng.next(),
            // One group.
            3 => 42,
            // Extremes, including the GrowTable floor at u64::MAX.
            _ => match rng.below(4) {
                0 => u64::MAX,
                1 => u64::MAX - 1,
                2 => 0,
                _ => rng.below(8),
            },
        })
        .collect()
}

fn strategy(rng: &mut Rng) -> Strategy {
    match rng.below(4) {
        0 => Strategy::HashingOnly,
        1 => Strategy::PartitionAlways { passes: 1 },
        2 => Strategy::PartitionAlways { passes: 2 },
        _ => Strategy::Adaptive(AdaptiveParams::default()),
    }
}

fn config(rng: &mut Rng) -> AggregateConfig {
    AggregateConfig {
        // 32 KiB..512 KiB tables: small enough that non-trivial inputs
        // seal and recurse.
        cache_bytes: (32 << 10) << rng.below(5),
        threads: 1 + rng.below(3) as usize,
        strategy: strategy(rng),
        morsel_rows: 1 << (8 + rng.below(6)),
        ..AggregateConfig::default()
    }
}

fn check_case(keys: &[u64], v0: &[u64], v1: &[u64], cfg: &AggregateConfig) {
    let specs = [AggSpec::count(), AggSpec::sum(0), AggSpec::min(1), AggSpec::max(1)];
    let budget = MemoryBudget::limited(1 << 32);
    let env = ExecEnv::unrestricted().with_budget(budget.clone());
    let (out, stats) = try_aggregate(keys, &[v0, v1], &specs, cfg, &env)
        .unwrap_or_else(|e| panic!("{cfg:?}: {e}"));
    assert_eq!(budget.outstanding(), 0, "{cfg:?} leaked reservations");
    assert!(
        stats.total_hash_rows() + stats.total_part_rows() >= keys.len() as u64,
        "{cfg:?} lost rows"
    );

    let expect = reference(keys, v0, v1);
    let rows = out.sorted_rows();
    assert_eq!(rows.len(), expect.len(), "group count under {cfg:?}");
    for ((key, cols), (ek, e)) in rows.iter().zip(&expect) {
        assert_eq!(key, ek, "group keys under {cfg:?}");
        assert_eq!(cols.as_slice(), e.as_slice(), "state of key {key} under {cfg:?}");
    }
}

#[test]
fn random_workloads_match_the_reference() {
    let mut rng = Rng(0x9E3779B97F4A7C15);
    for round in 0..40 {
        let rows = [0, 1, 2, 100, 4096, 20_000][(round % 6) as usize];
        let shape = rng.below(5);
        let keys = key_column(&mut rng, shape, rows);
        let v0: Vec<u64> = (0..rows).map(|_| rng.below(1 << 32)).collect();
        let v1: Vec<u64> = (0..rows).map(|_| rng.next()).collect();
        check_case(&keys, &v0, &v1, &config(&mut rng));
    }
}

#[test]
fn empty_input_yields_no_groups() {
    let mut rng = Rng(7);
    for _ in 0..4 {
        check_case(&[], &[], &[], &config(&mut rng));
    }
}

#[test]
fn single_row() {
    let mut rng = Rng(11);
    for key in [0, 1, u64::MAX] {
        check_case(&[key], &[17], &[99], &config(&mut rng));
    }
}

#[test]
fn one_giant_group() {
    let mut rng = Rng(13);
    let rows = 50_000;
    let keys = vec![0xDEAD_BEEF_u64; rows];
    let v0: Vec<u64> = (0..rows as u64).collect();
    let v1: Vec<u64> = (0..rows as u64).rev().collect();
    for _ in 0..3 {
        check_case(&keys, &v0, &v1, &config(&mut rng));
    }
}

#[test]
fn saturated_keys_hit_the_table_floor() {
    let mut rng = Rng(17);
    let keys: Vec<u64> = (0..10_000).map(|i| u64::MAX - (i % 7)).collect();
    let v0: Vec<u64> = (0..10_000u64).collect();
    let v1: Vec<u64> = (0..10_000u64).map(|i| i ^ 0xFFFF).collect();
    for _ in 0..3 {
        check_case(&keys, &v0, &v1, &config(&mut rng));
    }
}

/// The kernel tiers must be bit-identical: the same workload run with the
/// forced-scalar reference loops and with every batched/SIMD tier must
/// produce the same groups, the same state bits, and (single-threaded, so
/// scheduling is deterministic) the same row/seal/switch statistics.
#[test]
fn kernel_tiers_are_bit_identical() {
    use hsa_core::KernelPref;
    let mut rng = Rng(0xC0FFEE);
    for round in 0..12 {
        let rows = [0, 1, 100, 4096, 20_000][(round % 5) as usize];
        let shape = rng.below(5);
        let keys = key_column(&mut rng, shape, rows);
        let v0: Vec<u64> = (0..rows).map(|_| rng.below(1 << 32)).collect();
        let v1: Vec<u64> = (0..rows).map(|_| rng.next()).collect();
        let mut cfg = config(&mut rng);
        cfg.threads = 1;

        let run = |pref: KernelPref| {
            let mut cfg = cfg.clone();
            cfg.kernel = pref;
            let specs = [AggSpec::count(), AggSpec::sum(0), AggSpec::min(1), AggSpec::max(1)];
            let (out, stats) =
                try_aggregate(&keys, &[&v0, &v1], &specs, &cfg, &ExecEnv::unrestricted())
                    .unwrap_or_else(|e| panic!("{cfg:?}: {e}"));
            (out.sorted_rows(), stats)
        };

        let (scalar_rows, scalar_stats) = run(KernelPref::Scalar);
        if hsa_kernels::select(KernelPref::Scalar) == hsa_core::KernelKind::Scalar {
            assert_eq!(
                scalar_stats.kernel_batched_rows, 0,
                "forced scalar must not take the batched path"
            );
        }
        for pref in [KernelPref::Auto, KernelPref::Sse2, KernelPref::Avx2] {
            let (rows, stats) = run(pref);
            assert_eq!(rows, scalar_rows, "{pref:?} output diverged under {cfg:?}");
            assert_eq!(
                stats.hash_rows_per_level, scalar_stats.hash_rows_per_level,
                "{pref:?} hash rows diverged under {cfg:?}"
            );
            assert_eq!(
                stats.part_rows_per_level, scalar_stats.part_rows_per_level,
                "{pref:?} part rows diverged under {cfg:?}"
            );
            assert_eq!(stats.seals, scalar_stats.seals, "{pref:?} seals diverged under {cfg:?}");
            assert_eq!(
                stats.switches_to_partitioning, scalar_stats.switches_to_partitioning,
                "{pref:?} switches diverged under {cfg:?}"
            );
            // `select` folds in what the preference actually resolves to —
            // the CPU clamp on non-x86_64 targets and the `HSA_KERNEL`
            // override CI uses to force the scalar tier suite-wide.
            if hsa_kernels::select(pref) == hsa_core::KernelKind::Scalar {
                assert_eq!(
                    stats.kernel_batched_rows, 0,
                    "{pref:?} resolved to scalar yet took the batched path"
                );
            } else {
                assert_eq!(
                    stats.kernel_scalar_rows, 0,
                    "{pref:?} must not take the scalar path on a batched run"
                );
            }
        }
    }
}

#[test]
fn distinct_matches_a_set() {
    use std::collections::BTreeSet;
    let mut rng = Rng(23);
    for rows in [0usize, 1, 777, 10_000] {
        let shape = rng.below(5);
        let keys = key_column(&mut rng, shape, rows);
        let cfg = config(&mut rng);
        let (out, _) = hsa_core::try_distinct(&keys, &cfg, &ExecEnv::unrestricted())
            .unwrap_or_else(|e| panic!("{cfg:?}: {e}"));
        let expect: BTreeSet<u64> = keys.iter().copied().collect();
        let got: Vec<u64> = out.sorted_rows().into_iter().map(|(k, _)| k).collect();
        assert_eq!(got, expect.into_iter().collect::<Vec<_>>(), "{cfg:?}");
    }
}
