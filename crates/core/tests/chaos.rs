//! Ordinal chaos sweep over every injectable spill-I/O site.
//!
//! [`FaultPlan::spill_io`] names one I/O operation by 1-based ordinal
//! (write kinds count spill-file writes, read kinds count restores) and
//! one way for it to misbehave. Sweeping the ordinal over a workload
//! that must spill visits every I/O site of the run; for each injection
//! this suite asserts the durability contract end to end:
//!
//! 1. **transient faults** (`WriteEio`, `WriteShort`, `ReadEio`) are
//!    absorbed by the bounded retry: the query succeeds, the output is
//!    bit-identical to an un-injected baseline, and the retry counters
//!    in [`OpStats`] show the recovery happened rather than the fault
//!    silently missing;
//! 2. **permanent faults** surface as the matching typed error —
//!    `WriteEnospc` as [`AggError::SpillFailed`], `ReadBitFlip` and
//!    `ReadTruncate` as [`AggError::SpillCorrupt`] — never as a panic
//!    or a wrong answer;
//! 3. after *every* outcome the memory budget and the disk budget both
//!    drain to zero outstanding bytes and the spill directory is empty:
//!    no leaked reservations, no orphaned scratch files.

use hsa_agg::AggSpec;
use hsa_core::{
    try_aggregate, AggError, AggregateConfig, DiskBudget, ExecEnv, FaultInjector, FaultPlan,
    MemoryBudget, SpillCodec, SpillConfig, SpillFault, SpillFaultKind,
};
use std::path::{Path, PathBuf};

/// `sorted_rows()` of one run: the bit-identity comparison unit.
type Rows = Vec<(u64, Vec<u64>)>;
/// Outcome of one injected run: sorted rows + stats, or the typed error.
type Outcome = Result<(Rows, hsa_core::OpStats), AggError>;

const ROWS: u64 = 20_000;
const GROUPS: u64 = 48;

fn workload() -> (Vec<u64>, Vec<u64>) {
    let keys: Vec<u64> = (0..ROWS).map(|i| (i.wrapping_mul(2654435761)) % GROUPS).collect();
    let vals: Vec<u64> = (0..ROWS).collect();
    (keys, vals)
}

fn specs() -> Vec<AggSpec> {
    vec![AggSpec::count(), AggSpec::sum(0)]
}

/// Single-threaded with small morsels: a deterministic, affordable
/// number of spill writes and restores (every one an injection site).
fn config() -> AggregateConfig {
    AggregateConfig {
        cache_bytes: 64 << 10,
        threads: 1,
        morsel_rows: 4096,
        ..AggregateConfig::default()
    }
}

struct Chaos {
    dir: PathBuf,
    keys: Vec<u64>,
    vals: Vec<u64>,
    budget: MemoryBudget,
    disk: DiskBudget,
    /// `sorted_rows()` of the un-injected run: the bit-identity oracle.
    baseline: Rows,
}

impl Chaos {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hsa-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (keys, vals) = workload();
        // The memory budget admits the worker tables but denies the seal
        // reservations, so the run cannot complete without spilling.
        let budget = MemoryBudget::limited(96 << 10);
        let disk = DiskBudget::limited(1 << 30);
        let mut chaos = Self { dir, keys, vals, budget, disk, baseline: Vec::new() };
        let (out, stats) = chaos.run(FaultInjector::none()).expect("un-injected baseline");
        assert!(stats.spilled_runs() > 0, "chaos workload does not spill: {stats:?}");
        assert!(stats.spilled_runs() <= 256, "sweep would be too slow: {stats:?}");
        assert_eq!(stats.restored_runs, stats.spilled_runs(), "every run is read back");
        chaos.baseline = out;
        chaos
    }

    /// One run under `injector` with the default spill configuration
    /// (async pipeline, auto compression); afterwards both budgets must
    /// be drained and the spill directory empty regardless of the outcome.
    fn run(&self, injector: FaultInjector) -> Outcome {
        self.run_with(injector, SpillConfig::default())
    }

    /// [`Self::run`] under an explicit codec / I/O-thread configuration.
    fn run_with(&self, injector: FaultInjector, spill: SpillConfig) -> Outcome {
        let env = ExecEnv::unrestricted()
            .with_budget(self.budget.clone())
            .with_disk_budget(self.disk.clone())
            .with_spill_dir(&self.dir)
            .with_faults(injector)
            .with_spill_config(spill);
        let r = try_aggregate(&self.keys, &[&self.vals], &specs(), &config(), &env);
        assert_eq!(self.budget.outstanding(), 0, "memory reservations leaked");
        assert_eq!(self.disk.outstanding(), 0, "disk reservations leaked");
        assert_dir_empty(&self.dir);
        r.map(|(out, stats)| (out.sorted_rows(), stats))
    }

    /// Sweep `kind` over every ordinal of its direction. `check` judges
    /// each fired injection; the sweep ends at the first ordinal past
    /// the run's last I/O operation (where nothing fires and the result
    /// must be bit-identical to the baseline).
    fn sweep(&self, kind: SpillFaultKind, check: impl Fn(u64, Outcome)) {
        for n in 1..10_000 {
            let plan =
                FaultPlan { spill_io: Some(SpillFault { nth: n, kind }), ..FaultPlan::none() };
            let injector = FaultInjector::new(plan);
            let r = self.run(injector.clone());
            if injector.spill_io_fired() == 0 {
                // Ran past the last injectable operation: sweep complete.
                // Every earlier ordinal fired, so n > 1 means the sweep
                // actually visited injection sites.
                let (out, _) = r.unwrap_or_else(|e| panic!("{kind:?} n={n} unfired: {e:?}"));
                assert_eq!(out, self.baseline, "{kind:?} n={n}: unfired run must match");
                assert!(n > 1, "{kind:?}: sweep never reached an injection site");
                return;
            }
            check(n, r);
        }
        panic!("{kind:?}: sweep did not terminate");
    }
}

fn assert_dir_empty(dir: &Path) {
    // The per-query `FileStore` has dropped by now, retiring its liveness
    // lock, so a correct run leaves literally nothing behind.
    let leftover: Vec<String> = std::fs::read_dir(dir)
        .map(|d| d.flatten().map(|e| e.file_name().to_string_lossy().into_owned()).collect())
        .unwrap_or_default();
    assert!(leftover.is_empty(), "scratch files leaked: {leftover:?}");
}

#[test]
fn transient_write_eio_is_retried_to_the_exact_answer() {
    let chaos = Chaos::new("weio");
    chaos.sweep(SpillFaultKind::WriteEio, |n, r| {
        let (out, stats) = r.unwrap_or_else(|e| panic!("WriteEio n={n}: {e:?}"));
        assert_eq!(out, chaos.baseline, "WriteEio n={n}: output diverged after retry");
        assert!(stats.spill_retries >= 1, "WriteEio n={n}: retry not counted: {stats:?}");
        assert_eq!(stats.spill_io_abandons, 0, "WriteEio n={n}: transient fault abandoned");
    });
}

#[test]
fn torn_write_is_retried_to_the_exact_answer() {
    let chaos = Chaos::new("wshort");
    chaos.sweep(SpillFaultKind::WriteShort, |n, r| {
        let (out, stats) = r.unwrap_or_else(|e| panic!("WriteShort n={n}: {e:?}"));
        assert_eq!(out, chaos.baseline, "WriteShort n={n}: output diverged after retry");
        assert!(stats.spill_retries >= 1, "WriteShort n={n}: retry not counted: {stats:?}");
    });
}

#[test]
fn enospc_is_a_permanent_typed_failure() {
    let chaos = Chaos::new("enospc");
    chaos.sweep(SpillFaultKind::WriteEnospc, |n, r| match r {
        Err(AggError::SpillFailed { .. }) => {}
        other => panic!("WriteEnospc n={n}: surfaced as {other:?}"),
    });
}

#[test]
fn transient_read_eio_is_retried_to_the_exact_answer() {
    let chaos = Chaos::new("reio");
    chaos.sweep(SpillFaultKind::ReadEio, |n, r| {
        let (out, stats) = r.unwrap_or_else(|e| panic!("ReadEio n={n}: {e:?}"));
        assert_eq!(out, chaos.baseline, "ReadEio n={n}: output diverged after retry");
        assert!(stats.restore_retries >= 1, "ReadEio n={n}: retry not counted: {stats:?}");
    });
}

#[test]
fn bit_flip_on_read_is_detected_as_corruption() {
    let chaos = Chaos::new("rflip");
    chaos.sweep(SpillFaultKind::ReadBitFlip, |n, r| match r {
        Err(AggError::SpillCorrupt { .. }) => {}
        other => panic!("ReadBitFlip n={n}: surfaced as {other:?}"),
    });
}

#[test]
fn truncate_on_read_is_detected_as_corruption() {
    let chaos = Chaos::new("rtrunc");
    chaos.sweep(SpillFaultKind::ReadTruncate, |n, r| match r {
        Err(AggError::SpillCorrupt { .. }) => {}
        other => panic!("ReadTruncate n={n}: surfaced as {other:?}"),
    });
}

/// The durability contract is configuration-independent: under every
/// codec and with the async pipeline off, on, and widened, an injected
/// in-flight failure still surfaces typed, drains both budgets, and
/// leaves zero scratch files — and the un-injected run stays
/// bit-identical to the (async, auto-compressed) baseline.
#[test]
fn every_codec_and_pipeline_width_upholds_the_durability_contract() {
    let chaos = Chaos::new("matrix");
    for codec in [SpillCodec::Auto, SpillCodec::Delta, SpillCodec::Rle, SpillCodec::Off] {
        for io_threads in [0usize, 1, 2] {
            let spill = SpillConfig { codec, io_threads };
            let tag = format!("codec {codec} io_threads {io_threads}");

            let (out, stats) = chaos
                .run_with(FaultInjector::none(), spill)
                .unwrap_or_else(|e| panic!("{tag}: clean run failed: {e:?}"));
            assert_eq!(out, chaos.baseline, "{tag}: output diverged from baseline");
            assert!(stats.spilled_runs() > 0, "{tag}: workload stopped spilling");
            assert!(
                stats.spill_encoded_bytes <= stats.spilled_bytes,
                "{tag}: encoded footprint above the reserved bound: {stats:?}"
            );
            if io_threads == 0 {
                assert_eq!(stats.overlapped_io_nanos, 0, "{tag}: sync I/O claimed overlap");
                assert_eq!(stats.spill_io_wait_nanos, 0, "{tag}: sync I/O claimed waits");
            }

            // An in-flight write failure: with workers, the error parks in
            // the store and surfaces at the next synchronization point —
            // still typed, still fully drained.
            let plan = FaultPlan {
                spill_io: Some(SpillFault { nth: 1, kind: SpillFaultKind::WriteEnospc }),
                ..FaultPlan::none()
            };
            match chaos.run_with(FaultInjector::new(plan), spill) {
                Err(AggError::SpillFailed { .. }) => {}
                other => panic!("{tag}: in-flight ENOSPC surfaced as {other:?}"),
            }

            // A transient fault keeps recovering invisibly.
            let plan = FaultPlan {
                spill_io: Some(SpillFault { nth: 1, kind: SpillFaultKind::WriteEio }),
                ..FaultPlan::none()
            };
            let (out, stats) = chaos
                .run_with(FaultInjector::new(plan), spill)
                .unwrap_or_else(|e| panic!("{tag}: WriteEio not absorbed: {e:?}"));
            assert_eq!(out, chaos.baseline, "{tag}: retry diverged");
            assert!(stats.spill_retries >= 1, "{tag}: retry not counted: {stats:?}");
        }
    }
    let _ = std::fs::remove_dir_all(&chaos.dir);
}

/// After any injected failure the same budgets and directory must still
/// support a clean run — chaos leaks nothing that poisons later queries.
#[test]
fn failed_runs_do_not_poison_the_environment() {
    let chaos = Chaos::new("poison");
    for kind in [SpillFaultKind::WriteEnospc, SpillFaultKind::ReadBitFlip] {
        let plan = FaultPlan { spill_io: Some(SpillFault { nth: 1, kind }), ..FaultPlan::none() };
        let injector = FaultInjector::new(plan);
        let r = chaos.run(injector.clone());
        assert_eq!(injector.spill_io_fired(), 1, "{kind:?}: first ordinal must fire");
        assert!(r.is_err(), "{kind:?}: first-ordinal injection must fail the run");
        let (out, _) = chaos.run(FaultInjector::none()).expect("clean run after failure");
        assert_eq!(out, chaos.baseline, "{kind:?}: environment poisoned");
    }
    let _ = std::fs::remove_dir_all(&chaos.dir);
}
