//! Concurrency correctness on the shared runtime: N queries in flight at
//! once must be indistinguishable from the same N queries run one at a
//! time. Every query gets its own `QueryId`, its own `OpStats`, and its
//! own profile — nothing bleeds between in-flight queries even though
//! they share one worker pool.
//!
//! The storm test adds the failure half: explicit cancels and
//! already-expired deadlines racing against healthy queries. Victims die
//! with a typed `AggError::Cancelled`; survivors produce bit-identical
//! results, and the runtime keeps serving afterwards.

use std::sync::Barrier;
use std::time::Duration;

use hsa_agg::AggSpec;
use hsa_core::{
    try_aggregate, AggError, AggStream, AggregateConfig, CancelReason, CancelToken, ExecEnv,
    ObsConfig, RunReport, Strategy,
};
use hsa_obs::Phase;

/// One query's sorted output: (key, state columns) per group.
type Rows = Vec<(u64, Vec<u64>)>;

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

struct Workload {
    keys: Vec<u64>,
    vals: Vec<u64>,
    specs: Vec<AggSpec>,
    cfg: AggregateConfig,
    chunk: usize,
}

impl Workload {
    fn random(seed: u64) -> Self {
        let mut rng = Rng(seed);
        let rows = 2_000 + rng.below(30_000) as usize;
        let k = 1 + rng.below(10_000);
        let keys = (0..rows).map(|_| rng.below(k)).collect();
        let vals = (0..rows).map(|_| rng.below(1_000)).collect();
        let strategy = match rng.below(3) {
            0 => Strategy::HashingOnly,
            1 => Strategy::PartitionAlways { passes: 1 },
            _ => Strategy::Adaptive(Default::default()),
        };
        let cfg = AggregateConfig {
            cache_bytes: 128 << 10,
            threads: 1 + rng.below(2) as usize,
            strategy,
            fill_percent: 25,
            morsel_rows: 4096,
            kernel: hsa_kernels::KernelPref::Auto,
        };
        let chunk = 512 + rng.below(8_000) as usize;
        Workload { keys, vals, specs: vec![AggSpec::count(), AggSpec::sum(0)], cfg, chunk }
    }

    /// Run through the streaming path, pushing in this workload's chunk
    /// size, with observability fully on (recorder + profile per query).
    fn run(&self, env: &ExecEnv) -> Result<(Rows, RunReport), AggError> {
        let mut stream = AggStream::new(&self.specs, &self.cfg, env, &ObsConfig::full())?;
        for (ks, vs) in self.keys.chunks(self.chunk).zip(self.vals.chunks(self.chunk)) {
            stream.push(ks, &[vs])?;
        }
        let (out, report) = stream.finish()?;
        Ok((out.sorted_rows(), report))
    }
}

/// Per-query accounting that must be conserved no matter what else runs
/// on the shared pool at the same time.
fn assert_conserved(w: &Workload, report: &RunReport) {
    let rows = w.keys.len() as u64;
    assert_eq!(report.rows_in, rows, "rows_in must count only this query's pushes");
    let level0 = report.stats.hash_rows_per_level[0] + report.stats.part_rows_per_level[0];
    assert_eq!(level0, rows, "every row enters level 0 exactly once");
    assert_eq!(report.stats.contained_panics, 0);
    assert_eq!(report.stats.cancellations, 0);
    // The per-query profile must account for exactly this query's rows:
    // a shared-pool worker executing a morsel for query A must record it
    // into A's recorder, never into whichever query it served last.
    let profile = report.profile.as_ref().expect("ObsConfig::full() keeps a profile");
    let profiled0 =
        profile.cell(0, Phase::HashInsert).rows_in + profile.cell(0, Phase::Partition).rows_in;
    assert_eq!(profiled0, rows, "profile rows at level 0 must match this query alone");
}

/// N randomized queries run concurrently on the shared runtime must be
/// bit-identical to the same queries run sequentially, with per-query
/// stats conserved and distinct query ids.
#[test]
fn concurrent_queries_are_bit_identical_to_sequential() {
    const N: u64 = 6;
    let workloads: Vec<Workload> = (0..N).map(|i| Workload::random(0x5eed_0001 + i * 97)).collect();

    // Sequential reference, one query at a time.
    let reference: Vec<Rows> = workloads
        .iter()
        .map(|w| w.run(&ExecEnv::unrestricted()).expect("sequential run").0)
        .collect();

    // Same queries, all in flight at once (a barrier lines up the starts).
    let barrier = Barrier::new(workloads.len());
    let concurrent: Vec<(Rows, RunReport)> = std::thread::scope(|s| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| {
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    w.run(&ExecEnv::unrestricted()).expect("concurrent run")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("query thread")).collect()
    });

    let mut ids = Vec::new();
    for ((w, expect), (rows, report)) in workloads.iter().zip(&reference).zip(&concurrent) {
        assert_eq!(rows, expect, "concurrent output must be bit-identical to sequential");
        assert_conserved(w, report);
        ids.push(report.query_id);
    }
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), workloads.len(), "every in-flight query gets its own id");
}

/// Cancellation/deadline storm: explicit cancels and already-expired
/// deadlines race healthy queries on the same pool. Victims fail with
/// `AggError::Cancelled`, survivors are bit-identical to the sequential
/// reference, and the runtime accepts new work afterwards.
#[test]
fn cancellation_storm_leaves_survivors_unaffected() {
    let survivors: Vec<Workload> = (0..3u64).map(|i| Workload::random(0xabcd_0100 + i)).collect();
    let victims: Vec<Workload> = (0..4u64).map(|i| Workload::random(0xabcd_0200 + i)).collect();
    let reference: Vec<Rows> = survivors
        .iter()
        .map(|w| w.run(&ExecEnv::unrestricted()).expect("sequential run").0)
        .collect();

    let barrier = Barrier::new(survivors.len() + victims.len());
    let (good, dead) = std::thread::scope(|s| {
        let good: Vec<_> = survivors
            .iter()
            .map(|w| {
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    w.run(&ExecEnv::unrestricted()).expect("survivor must finish").0
                })
            })
            .collect();
        let dead: Vec<_> = victims
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let barrier = &barrier;
                s.spawn(move || {
                    // Even victims race the deadline (expired before the
                    // first push); odd victims are cancelled mid-stream
                    // after half their chunks went in.
                    let token = if i % 2 == 0 {
                        CancelToken::with_timeout(Duration::ZERO)
                    } else {
                        CancelToken::new()
                    };
                    let env = ExecEnv::unrestricted().with_cancel(token.clone());
                    barrier.wait();
                    let run = || -> Result<(), AggError> {
                        let mut stream =
                            AggStream::new(&w.specs, &w.cfg, &env, &ObsConfig::disabled())?;
                        let half = w.keys.len() / 2;
                        for (n, (ks, vs)) in
                            w.keys.chunks(w.chunk).zip(w.vals.chunks(w.chunk)).enumerate()
                        {
                            if i % 2 == 1 && n * w.chunk >= half {
                                token.cancel();
                            }
                            stream.push(ks, &[vs])?;
                        }
                        stream.finish().map(drop)
                    };
                    run().expect_err("victim must not finish")
                })
            })
            .collect();
        let good: Vec<_> = good.into_iter().map(|h| h.join().expect("survivor thread")).collect();
        let dead: Vec<_> = dead.into_iter().map(|h| h.join().expect("victim thread")).collect();
        (good, dead)
    });

    for (rows, expect) in good.iter().zip(&reference) {
        assert_eq!(rows, expect, "survivors must be unaffected by the storm");
    }
    for err in &dead {
        assert!(
            matches!(
                err,
                AggError::Cancelled(CancelReason::Requested)
                    | AggError::Cancelled(CancelReason::DeadlineExceeded)
            ),
            "victims die with a typed cancellation, got: {err}"
        );
    }

    // The shared pool outlives the storm: fresh work still runs clean.
    let after = Workload::random(0xabcd_0300);
    let (rows, report) = after.run(&ExecEnv::unrestricted()).expect("post-storm query");
    let (whole, _) = try_aggregate(
        &after.keys,
        &[&after.vals],
        &after.specs,
        &after.cfg,
        &ExecEnv::unrestricted(),
    )
    .expect("one-shot reference");
    assert_eq!(rows, whole.sorted_rows());
    assert_conserved(&after, &report);
}
