//! Deterministic fault-injection sweep (the robustness acceptance suite).
//!
//! A [`FaultPlan`] names an injection point by ordinal — fail the Nth
//! memory reservation, panic in the Nth operator task, cancel after K
//! input rows. Sweeping N over a fixed workload visits every reservation
//! and every task of the run. For each injection this suite asserts
//!
//! 1. the operator returns the matching [`AggError`] variant (no panic
//!    escapes, no wrong-variant mapping),
//! 2. the shared [`MemoryBudget`] reports zero outstanding bytes after
//!    the failure (every reservation was released on the error path), and
//! 3. an immediately following un-injected run against the *same* budget
//!    succeeds and matches a `BTreeMap` reference — the failure leaked
//!    nothing that poisons later runs.

use hsa_agg::AggSpec;
use hsa_core::{
    try_aggregate, AggError, AggregateConfig, CancelReason, CancelToken, ExecEnv, FaultInjector,
    FaultPlan, GroupByOutput, MemoryBudget, Strategy,
};
use std::collections::BTreeMap;
use std::time::Duration;

const ROWS: usize = 20_000;
const GROUPS: u64 = 501;

fn workload() -> (Vec<u64>, Vec<u64>) {
    let keys: Vec<u64> = (0..ROWS as u64).map(|i| (i.wrapping_mul(2654435761)) % GROUPS).collect();
    let vals: Vec<u64> = (0..ROWS as u64).collect();
    (keys, vals)
}

/// COUNT(*), SUM(v) per key via a reference map.
fn reference(keys: &[u64], vals: &[u64]) -> BTreeMap<u64, (u64, u64)> {
    let mut m = BTreeMap::new();
    for (&k, &v) in keys.iter().zip(vals) {
        let e = m.entry(k).or_insert((0u64, 0u64));
        e.0 += 1;
        e.1 += v;
    }
    m
}

fn assert_matches_reference(out: &GroupByOutput, keys: &[u64], vals: &[u64]) {
    let expect = reference(keys, vals);
    let rows = out.sorted_rows();
    assert_eq!(rows.len(), expect.len(), "group count");
    for ((key, cols), (ek, (count, sum))) in rows.iter().zip(&expect) {
        assert_eq!(key, ek);
        assert_eq!(cols.as_slice(), &[*count, *sum], "key {key}");
    }
}

/// Small tables + small morsels: many reservations, many tasks, real
/// recursion — the densest set of injection points we can get cheaply.
fn config() -> AggregateConfig {
    AggregateConfig {
        cache_bytes: 64 << 10,
        threads: 2,
        morsel_rows: 4096,
        ..AggregateConfig::default()
    }
}

fn specs() -> Vec<AggSpec> {
    vec![AggSpec::count(), AggSpec::sum(0)]
}

/// Run once under `env`, asserting the budget drains to zero afterwards.
fn run_under(
    env: &ExecEnv,
    budget: &MemoryBudget,
    keys: &[u64],
    vals: &[u64],
) -> Result<GroupByOutput, AggError> {
    let r = try_aggregate(keys, &[vals], &specs(), &config(), env);
    assert_eq!(budget.outstanding(), 0, "reservations leaked across the call");
    r.map(|(out, _)| out)
}

/// After any failure, the same budget must still support a clean run.
fn assert_recovers(budget: &MemoryBudget, keys: &[u64], vals: &[u64]) {
    let env = ExecEnv::unrestricted().with_budget(budget.clone());
    let out = run_under(&env, budget, keys, vals).expect("un-injected run after a failure");
    assert_matches_reference(&out, keys, vals);
}

#[test]
fn sweep_failing_every_allocation() {
    let (keys, vals) = workload();
    let budget = MemoryBudget::limited(1 << 30);
    let mut failures = 0u64;
    for n in 1..10_000 {
        let plan = FaultPlan { fail_alloc: Some(n), ..FaultPlan::none() };
        let env = ExecEnv::unrestricted()
            .with_budget(budget.clone())
            .with_faults(FaultInjector::new(plan));
        match run_under(&env, &budget, &keys, &vals) {
            Ok(out) => {
                // The plan's ordinal is past the last reservation of the
                // run: nothing fired, the result must be correct.
                assert_matches_reference(&out, &keys, &vals);
                assert!(failures > 0, "sweep never hit a reservation");
                assert!(n > failures, "sweep: {failures} failures before first pass at n={n}");
                return;
            }
            Err(AggError::BudgetExceeded { limit: 0, .. }) => {
                failures += 1;
                assert_recovers(&budget, &keys, &vals);
            }
            Err(other) => panic!("injected allocation failure surfaced as {other:?}"),
        }
    }
    panic!("allocation sweep did not terminate");
}

#[test]
fn sweep_panicking_in_every_task() {
    // Injected panics are expected: keep them off the test's stderr, but
    // let anything else through untouched.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str));
        let injected = msg.is_some_and(|m| m.contains("injected fault"));
        if !injected {
            default_hook(info);
        }
    }));

    let (keys, vals) = workload();
    let budget = MemoryBudget::limited(1 << 30);
    let mut panics = 0u64;
    for n in 1..10_000 {
        let plan = FaultPlan { panic_in_task: Some(n), ..FaultPlan::none() };
        let env = ExecEnv::unrestricted()
            .with_budget(budget.clone())
            .with_faults(FaultInjector::new(plan));
        match run_under(&env, &budget, &keys, &vals) {
            Ok(out) => {
                assert_matches_reference(&out, &keys, &vals);
                assert!(panics > 0, "sweep never hit a task");
                let _ = std::panic::take_hook();
                return;
            }
            Err(AggError::WorkerPanic { message }) => {
                assert!(message.contains("injected fault"), "unexpected panic text {message:?}");
                panics += 1;
                assert_recovers(&budget, &keys, &vals);
            }
            Err(other) => panic!("injected task panic surfaced as {other:?}"),
        }
    }
    panic!("task-panic sweep did not terminate");
}

#[test]
fn cancel_after_row_thresholds() {
    let (keys, vals) = workload();
    let budget = MemoryBudget::limited(1 << 30);
    for threshold in [1, ROWS as u64 / 2, ROWS as u64] {
        let plan = FaultPlan { cancel_after_rows: Some(threshold), ..FaultPlan::none() };
        let env = ExecEnv::unrestricted()
            .with_budget(budget.clone())
            .with_faults(FaultInjector::new(plan));
        match run_under(&env, &budget, &keys, &vals) {
            Err(AggError::Cancelled(CancelReason::Requested)) => {}
            other => panic!("cancel after {threshold} rows: got {other:?}"),
        }
        assert_recovers(&budget, &keys, &vals);
    }
}

#[test]
fn expired_deadline_cancels() {
    let (keys, vals) = workload();
    let budget = MemoryBudget::limited(1 << 30);
    let env = ExecEnv::unrestricted()
        .with_budget(budget.clone())
        .with_cancel(CancelToken::with_timeout(Duration::ZERO));
    match run_under(&env, &budget, &keys, &vals) {
        Err(AggError::Cancelled(CancelReason::DeadlineExceeded)) => {}
        other => panic!("expired deadline: got {other:?}"),
    }
    assert_recovers(&budget, &keys, &vals);
}

#[test]
fn pre_cancelled_token_stops_immediately() {
    let (keys, vals) = workload();
    let budget = MemoryBudget::limited(1 << 30);
    let token = CancelToken::new();
    token.cancel();
    let env = ExecEnv::unrestricted().with_budget(budget.clone()).with_cancel(token);
    match run_under(&env, &budget, &keys, &vals) {
        Err(AggError::Cancelled(CancelReason::Requested)) => {}
        other => panic!("pre-cancelled token: got {other:?}"),
    }
    assert_recovers(&budget, &keys, &vals);
}

#[test]
fn modest_budget_degrades_but_stays_correct() {
    let (keys, vals) = workload();
    // Tables want 8 MiB each; the budget only allows much smaller ones.
    // The operator must shrink (or fall back to partitioning), record the
    // downgrades, and still produce the right answer.
    let cfg = AggregateConfig {
        cache_bytes: 8 << 20,
        threads: 1,
        morsel_rows: 4096,
        ..AggregateConfig::default()
    };
    let budget = MemoryBudget::limited(6 << 20);
    let env = ExecEnv::unrestricted().with_budget(budget.clone());
    let (out, stats) =
        try_aggregate(&keys, &[&vals], &specs(), &cfg, &env).expect("degraded run succeeds");
    assert_eq!(budget.outstanding(), 0);
    assert!(stats.budget_downgrades > 0, "expected at least one recorded downgrade");
    assert!(budget.denials() > 0, "expected the full-size reservation to be denied");
    assert_matches_reference(&out, &keys, &vals);
}

#[test]
fn hard_exhaustion_fails_cleanly() {
    let (keys, vals) = workload();
    let budget = MemoryBudget::limited(1 << 10);
    let env = ExecEnv::unrestricted().with_budget(budget.clone());
    match run_under(&env, &budget, &keys, &vals) {
        Err(AggError::BudgetExceeded { limit, .. }) => assert_eq!(limit, 1 << 10),
        other => panic!("1 KiB budget: got {other:?}"),
    }
    assert!(budget.denials() > 0);
}

fn spill_env(budget: &MemoryBudget, dir: &std::path::Path) -> ExecEnv {
    ExecEnv::unrestricted().with_budget(budget.clone()).with_spill_dir(dir)
}

/// A budget that hard-fails the in-memory run must instead complete once a
/// spill directory turns seal denials into downgrades.
#[test]
fn spill_dir_turns_exhaustion_into_success() {
    let dir = std::env::temp_dir().join(format!("hsa-fault-spill-ok-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Dense: enough groups that sealed runs carry real weight.
    let keys: Vec<u64> = (0..30_000u64).map(|i| (i.wrapping_mul(2654435761)) % 10_000).collect();
    let vals: Vec<u64> = (0..30_000u64).collect();
    let budget = MemoryBudget::limited(1 << 20);

    // This budget is fatal in memory; with a spill dir the same budget
    // must succeed.
    let env = ExecEnv::unrestricted().with_budget(budget.clone());
    let r = try_aggregate(&keys, &[&vals], &specs(), &config(), &env);
    assert!(matches!(r, Err(AggError::BudgetExceeded { .. })), "in-memory control run: {r:?}");

    let env = spill_env(&budget, &dir);
    let (out, stats) = try_aggregate(&keys, &[&vals], &specs(), &config(), &env)
        .expect("spill-enabled run under a tight budget");
    assert_eq!(budget.outstanding(), 0);
    assert!(stats.spilled_runs() > 0, "budget never forced a spill: {stats:?}");
    assert_eq!(stats.restored_runs, stats.spilled_runs(), "every spilled run is read back");
    assert_matches_reference(&out, &keys, &vals);
    let leftover = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    assert_eq!(leftover, 0, "scratch files must be deleted after the run");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sweep an injected I/O failure over every spill-file write of a run that
/// depends on spilling: each must surface as `SpillFailed`, leak nothing,
/// and leave the budget reusable.
///
/// The workload keeps the sweep short by design: 48 distinct keys touch at
/// most 48 hash digits, the table never fills mid-run (so the only seals
/// are the leftover flushes), and the budget is sized to admit the worker
/// tables but deny the seal reservations — every spill write of the run is
/// one of a few dozen leftover-seal digit flushes.
#[test]
fn sweep_failing_every_spill() {
    let dir = std::env::temp_dir().join(format!("hsa-fault-spill-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let keys: Vec<u64> = (0..20_000u64).map(|i| (i.wrapping_mul(2654435761)) % 48).collect();
    let vals: Vec<u64> = (0..20_000u64).collect();
    let cfg = AggregateConfig { threads: 1, ..config() };
    let budget = MemoryBudget::limited(96 << 10);

    let clean_run = |budget: &MemoryBudget| {
        let env = spill_env(budget, &dir);
        let (out, stats) =
            try_aggregate(&keys, &[&vals], &specs(), &cfg, &env).expect("un-injected spill run");
        assert_eq!(budget.outstanding(), 0);
        assert_matches_reference(&out, &keys, &vals);
        stats
    };
    let stats = clean_run(&budget);
    assert!(stats.spilled_runs() > 0, "sweep workload does not spill: {stats:?}");
    assert!(stats.spilled_runs() <= 256, "sweep would be too slow: {stats:?}");

    let mut failures = 0u64;
    for n in 1..10_000 {
        let plan = FaultPlan { fail_spill: Some(n), ..FaultPlan::none() };
        let env = spill_env(&budget, &dir).with_faults(FaultInjector::new(plan));
        let r = try_aggregate(&keys, &[&vals], &specs(), &cfg, &env);
        assert_eq!(budget.outstanding(), 0, "reservations leaked across the call");
        match r {
            Ok((out, _)) => {
                // The ordinal is past the last spill of the run: nothing
                // fired, the result must be correct.
                assert_matches_reference(&out, &keys, &vals);
                assert!(failures > 0, "sweep never hit a spill write");
                assert!(n > failures, "sweep: {failures} failures before first pass at n={n}");
                let _ = std::fs::remove_dir_all(&dir);
                return;
            }
            Err(AggError::SpillFailed { message }) => {
                assert!(message.contains("injected fault"), "unexpected spill error {message:?}");
                failures += 1;
                // The same budget and spill dir must still support a clean
                // run after the injected I/O failure.
                clean_run(&budget);
            }
            Err(other) => panic!("injected spill failure surfaced as {other:?}"),
        }
    }
    panic!("spill sweep did not terminate");
}

#[test]
fn hand_built_spec_without_input_is_rejected() {
    let spec = hsa_agg::AggSpec { func: hsa_agg::AggFn::Sum, input: None };
    let r = try_aggregate(&[1, 2], &[], &[spec], &config(), &ExecEnv::unrestricted());
    assert!(matches!(r, Err(AggError::SpecNeedsInput { spec: 0 })), "{r:?}");
}

#[test]
fn unlimited_env_is_the_default_path() {
    let (keys, vals) = workload();
    let env = ExecEnv::unrestricted();
    let (out, _) = try_aggregate(&keys, &[&vals], &specs(), &config(), &env).unwrap();
    assert_matches_reference(&out, &keys, &vals);
}

#[test]
fn every_strategy_respects_the_environment() {
    let (keys, vals) = workload();
    for strategy in [Strategy::HashingOnly, Strategy::PartitionAlways { passes: 1 }] {
        let mut cfg = config();
        cfg.strategy = strategy;
        let budget = MemoryBudget::limited(1 << 30);
        let env = ExecEnv::unrestricted().with_budget(budget.clone());
        let (out, _) = try_aggregate(&keys, &[&vals], &specs(), &cfg, &env)
            .unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
        assert_eq!(budget.outstanding(), 0, "{strategy:?} leaked reservations");
        assert_matches_reference(&out, &keys, &vals);

        let tiny = MemoryBudget::limited(1 << 10);
        let env = ExecEnv::unrestricted().with_budget(tiny.clone());
        let r = try_aggregate(&keys, &[&vals], &specs(), &cfg, &env);
        assert!(
            matches!(r, Err(AggError::BudgetExceeded { .. })),
            "{strategy:?} under 1 KiB: {r:?}"
        );
        assert_eq!(tiny.outstanding(), 0);
    }
}
