//! End-to-end observability: a real adaptive run must produce non-trivial
//! deep metrics (probe lengths, SWC flushes, scheduler counters, per-switch
//! α) and a loadable Chrome trace, while the disabled path stays empty.

use hsa_agg::AggSpec;
use hsa_core::{
    aggregate_observed, distinct_observed, AdaptiveParams, AggStream, AggregateConfig, ExecEnv,
    ObsConfig, Strategy,
};
use hsa_obs::{json, Counter, Hist, Phase};

/// Small cache + morsels so seals, switches, and recursion all happen at
/// test input sizes.
fn adaptive_cfg() -> AggregateConfig {
    AggregateConfig {
        cache_bytes: 64 << 10,
        threads: 2,
        strategy: Strategy::Adaptive(AdaptiveParams::default()),
        fill_percent: 25,
        morsel_rows: 1 << 12,
        ..AggregateConfig::default()
    }
}

fn distinct_keys(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15)).collect()
}

#[test]
fn deep_metrics_are_nontrivial_on_an_adaptive_run() {
    // Distinct keys, K ≫ table capacity: α = 1 at every seal, so the
    // adaptive strategy must seal, switch, partition, and recurse.
    let keys = distinct_keys(200_000);
    let (out, report) = distinct_observed(&keys, &adaptive_cfg(), &ObsConfig::full());
    assert_eq!(out.n_groups(), 200_000);

    let stats = &report.stats;
    assert!(stats.switches_to_partitioning > 0, "adaptive run must switch");

    let snapshot = report.metrics.as_ref().expect("metrics requested");
    let m = snapshot.merged();

    // Hash-table probe behavior was observed.
    assert!(m.counter(Counter::TableInserts) > 0);
    assert!(m.hist(Hist::ProbeLen).count() > 0, "probe-length histogram");
    assert!(m.hist(Hist::SealFillPct).count() >= stats.seals);

    // Partitioning flush traffic was observed.
    assert!(m.counter(Counter::SwcFlushes) > 0, "SWC flushes");
    assert!(m.counter(Counter::SwcFlushBytes) >= m.counter(Counter::SwcFlushes) * 64);
    assert!(m.hist(Hist::PartitionSkewPct).count() > 0);

    // The per-switch reduction factor was sampled, and on distinct keys it
    // must be tiny (α ≈ 1 ≪ α₀).
    assert!(m.alpha_count() > 0, "per-switch alpha samples");
    let mean_alpha = m.alpha_sum() / m.alpha_count() as f64;
    assert!(mean_alpha < 4.0, "distinct keys should show alpha near 1, got {mean_alpha}");

    // Rows accounting: the recorder agrees with the always-on OpStats.
    assert_eq!(m.counter(Counter::HashRows), stats.total_hash_rows());
    assert_eq!(m.counter(Counter::PartRows), stats.total_part_rows());

    // Scheduler counters: every morsel ran somewhere, and the scope saw
    // some scheduling activity (steals or parked time).
    let pool = report.pool.as_ref().expect("pool metrics requested");
    let totals = pool.totals();
    assert!(totals.tasks_executed >= (keys.len() / (1 << 12)) as u64);
    assert!(
        totals.steals + totals.failed_steal_scans + totals.idle_nanos > 0,
        "expected some work-stealing activity"
    );

    // Per-worker morsel accounting sums to the total claimed.
    let per_worker: u64 = snapshot.workers.iter().map(|w| w.counter(Counter::MorselsClaimed)).sum();
    assert_eq!(per_worker, m.counter(Counter::MorselsClaimed));
}

#[test]
fn trace_is_valid_chrome_json_with_span_events() {
    let keys = distinct_keys(100_000);
    let (_, report) = distinct_observed(&keys, &adaptive_cfg(), &ObsConfig::full());
    let trace = report.trace_json.expect("trace requested");
    let parsed = json::parse(&trace).expect("trace must be valid JSON");
    let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
    assert!(!events.is_empty());

    let names: Vec<&str> =
        events.iter().filter_map(|e| e.get("name").and_then(|n| n.as_str())).collect();
    assert!(names.contains(&"morsel"), "morsel spans missing: {names:?}");
    assert!(names.contains(&"seal"), "seal instants missing");
    assert!(names.contains(&"bucket"), "bucket spans missing");
    assert!(names.contains(&"switch_to_partitioning"), "switch instants missing");

    // Every complete event carries microsecond timestamps and a worker tid.
    for e in events {
        let ph = e.get("ph").unwrap().as_str().unwrap();
        if ph == "X" {
            assert!(e.get("ts").unwrap().as_f64().is_some());
            assert!(e.get("dur").unwrap().as_f64().is_some());
            assert!(e.get("tid").unwrap().as_u64().is_some());
        }
    }
}

#[test]
fn disabled_observability_adds_no_sections() {
    let keys = distinct_keys(50_000);
    let (_, report) = aggregate_observed(
        &keys,
        &[],
        &[AggSpec::count()],
        &adaptive_cfg(),
        &ObsConfig::disabled(),
    );
    assert!(report.metrics.is_none());
    assert!(report.pool.is_none());
    assert!(report.trace_json.is_none());
    // The always-on stats and headline numbers are still there.
    assert_eq!(report.rows_in, 50_000);
    assert!(report.stats.total_hash_rows() + report.stats.total_part_rows() >= 50_000);
    let parsed = json::parse(&report.to_json().to_string_pretty(2)).unwrap();
    assert!(parsed.get("metrics").is_none());
    assert_eq!(parsed.get("rows_in").unwrap().as_u64(), Some(50_000));
}

#[test]
fn profile_conserves_rows_across_levels() {
    // Distinct keys force seals, switches, and multi-level recursion.
    let keys = distinct_keys(200_000);
    let (_, report) = distinct_observed(&keys, &adaptive_cfg(), &ObsConfig::full());
    let profile = report.profile.as_ref().expect("profile rides with metrics");

    // Level 0 consumed every input row exactly once, by hashing or
    // partitioning.
    let consumed0 =
        profile.cell(0, Phase::HashInsert).rows_in + profile.cell(0, Phase::Partition).rows_in;
    assert_eq!(consumed0, 200_000);

    // Every run entering level L was produced at level L−1: seals emit
    // their groups and partitioning re-emits its rows, one level down.
    for lvl in 1..profile.levels_used() {
        let into = profile.cell(lvl, Phase::HashInsert).rows_in
            + profile.cell(lvl, Phase::Partition).rows_in
            + profile.cell(lvl, Phase::GrowMerge).rows_in;
        let from_above = profile.cell(lvl - 1, Phase::Seal).rows_out
            + profile.cell(lvl - 1, Phase::Partition).rows_out;
        assert_eq!(into, from_above, "rows not conserved entering level {lvl}");
    }

    // On distinct keys the hash phases observe α ≈ 1.
    let hash0 = profile.cell(0, Phase::HashInsert);
    assert!(hash0.rows_out > 0);
    assert!(
        (hash0.rows_in as f64 / hash0.rows_out as f64) < 2.0,
        "distinct keys must show alpha near 1"
    );

    // The render names the phases that actually ran.
    let explain = report.explain();
    assert!(explain.contains("hash_insert"), "explain: {explain}");
    assert!(explain.contains("partition"), "explain: {explain}");
    assert!(explain.contains("level 1"), "explain: {explain}");
}

#[test]
fn explain_attributes_nearly_all_wall_time_single_threaded() {
    // Acceptance: ≥ 95% of the query wall clock lands in leaf phases. At
    // one thread coverage is exactly the attributed share of wall time.
    let keys = distinct_keys(400_000);
    let cfg = AggregateConfig { threads: 1, ..adaptive_cfg() };
    let obs = ObsConfig { metrics: true, ..ObsConfig::disabled() };
    let (_, report) = distinct_observed(&keys, &cfg, &obs);
    let profile = report.profile.as_ref().expect("profile rides with metrics");
    assert_eq!(profile.threads, 1);
    let coverage = profile.coverage();
    assert!(coverage >= 0.95, "only {:.1}% of wall time attributed", coverage * 100.0);
    assert!(coverage <= 1.05, "attributed more than wall time: {coverage}");
}

#[test]
fn profile_tracks_spill_restore_and_the_budget_high_water() {
    let dir = std::env::temp_dir().join(format!("hsa-obs-profile-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let keys = distinct_keys(120_000);
    let budget = hsa_core::MemoryBudget::limited(4 << 20);
    let env = ExecEnv::unrestricted().with_budget(budget.clone()).with_spill_dir(&dir);
    let cfg = adaptive_cfg();
    let specs = [AggSpec::count()];
    let mut stream = AggStream::new(&specs, &cfg, &env, &ObsConfig::full()).unwrap();
    for chunk in keys.chunks(8192) {
        stream.push(chunk, &[]).unwrap();
    }
    let (out, report) = stream.finish().unwrap();
    assert_eq!(out.n_groups(), 120_000);
    assert!(report.stats.spilled_runs() > 0, "budgeted run must spill");

    // The peak reservation was recorded, bounded by the limit, and copied
    // into both the stats and the profile header.
    let hw = report.stats.budget_high_water_bytes;
    assert!(hw > 0, "a budgeted run must record a high-water mark");
    assert!(hw <= 4 << 20, "high water {hw} exceeds the limit");
    let profile = report.profile.as_ref().expect("profile rides with metrics");
    assert_eq!(profile.budget_high_water, hw);

    // Spill and restore phases carry their byte traffic. The default
    // store runs the async I/O pipeline, so the overlap metrics are live:
    // background worker time plus compute-side waits is nonzero, and the
    // hidden fraction stays a fraction.
    let spilled: u64 =
        (0..profile.levels_used()).map(|lvl| profile.cell(lvl, Phase::Spill).bytes).sum();
    assert_eq!(spilled, report.stats.spilled_bytes);
    assert!(profile.io_nanos() > 0);
    assert_eq!(profile.overlapped_io_nanos, report.stats.overlapped_io_nanos);
    assert!(
        report.stats.overlapped_io_nanos + report.stats.spill_io_wait_nanos > 0,
        "async spill pipeline must record background I/O time"
    );
    assert!((0.0..1.0).contains(&profile.overlap_fraction()));
    assert!(report.stats.spill_encoded_bytes > 0, "encoded footprint must be tracked");
    assert!(
        report.stats.spill_encoded_bytes <= report.stats.spilled_bytes,
        "compression never exceeds the reserved upper bound"
    );

    // JSON carries the same numbers under the profile section.
    let parsed = json::parse(&report.to_json().to_string_compact()).unwrap();
    let p = parsed.get("profile").unwrap();
    assert_eq!(p.get("budget_high_water_bytes").unwrap().as_u64(), Some(hw));
    assert_eq!(
        p.get("overlapped_io_nanos").unwrap().as_u64(),
        Some(report.stats.overlapped_io_nanos)
    );
    assert_eq!(p.get("spill_overlap_fraction").unwrap().as_f64(), Some(profile.overlap_fraction()));

    // With the async pipeline disabled, everything is foreground again:
    // zero overlap, zero waits, bit-identical output.
    let sync_env = env.with_spill_config(hsa_core::SpillConfig {
        codec: hsa_core::SpillCodec::Auto,
        io_threads: 0,
    });
    let mut sync_stream = AggStream::new(&specs, &cfg, &sync_env, &ObsConfig::full()).unwrap();
    for chunk in keys.chunks(8192) {
        sync_stream.push(chunk, &[]).unwrap();
    }
    let (sync_out, sync_report) = sync_stream.finish().unwrap();
    assert_eq!(sync_out.sorted_rows(), out.sorted_rows());
    assert_eq!(sync_report.stats.overlapped_io_nanos, 0);
    assert_eq!(sync_report.stats.spill_io_wait_nanos, 0);
    let sync_profile = sync_report.profile.as_ref().unwrap();
    assert_eq!(sync_profile.overlap_fraction(), 0.0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn progress_sampler_runs_and_stops_through_a_stream() {
    // The heartbeat thread must start with the stream, survive pushes and
    // phase 2, and be joined by finish() — finishing promptly (a leaked
    // sampler would keep the process alive and flood stderr).
    let keys = distinct_keys(60_000);
    let obs =
        ObsConfig { progress: Some(std::time::Duration::from_millis(1)), ..ObsConfig::disabled() };
    let specs = [AggSpec::count()];
    let mut stream =
        AggStream::new(&specs, &adaptive_cfg(), &ExecEnv::unrestricted(), &obs).unwrap();
    for chunk in keys.chunks(4096) {
        stream.push(chunk, &[]).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let (out, report) = stream.finish().unwrap();
    assert_eq!(out.n_groups(), 60_000);
    // Progress alone collects no deep metrics and no profile.
    assert!(report.metrics.is_none());
    assert!(report.profile.is_none());
}

#[test]
fn report_json_of_a_real_run_parses_and_cross_checks() {
    let keys = distinct_keys(80_000);
    let vals: Vec<u64> = (0..80_000).collect();
    let (out, report) = aggregate_observed(
        &keys,
        &[&vals],
        &[AggSpec::count(), AggSpec::sum(0)],
        &adaptive_cfg(),
        &ObsConfig::full(),
    );
    let parsed = json::parse(&report.to_json().to_string_pretty(2)).unwrap();
    assert_eq!(parsed.get("rows_in").unwrap().as_u64(), Some(80_000));
    assert_eq!(parsed.get("groups_out").unwrap().as_u64(), Some(out.n_groups() as u64));
    let merged = parsed.get("metrics").unwrap().get("merged").unwrap();
    assert_eq!(merged.get("hash_rows").unwrap().as_u64(), Some(report.stats.total_hash_rows()));
    // The pretty rendering mentions the headline numbers.
    let pretty = report.pretty();
    assert!(pretty.contains("rows in            80000"));
    assert!(pretty.contains("passes used"));
}
