//! End-to-end observability: a real adaptive run must produce non-trivial
//! deep metrics (probe lengths, SWC flushes, scheduler counters, per-switch
//! α) and a loadable Chrome trace, while the disabled path stays empty.

use hsa_agg::AggSpec;
use hsa_core::{
    aggregate_observed, distinct_observed, AdaptiveParams, AggregateConfig, ObsConfig, Strategy,
};
use hsa_obs::{json, Counter, Hist};

/// Small cache + morsels so seals, switches, and recursion all happen at
/// test input sizes.
fn adaptive_cfg() -> AggregateConfig {
    AggregateConfig {
        cache_bytes: 64 << 10,
        threads: 2,
        strategy: Strategy::Adaptive(AdaptiveParams::default()),
        fill_percent: 25,
        morsel_rows: 1 << 12,
        ..AggregateConfig::default()
    }
}

fn distinct_keys(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15)).collect()
}

#[test]
fn deep_metrics_are_nontrivial_on_an_adaptive_run() {
    // Distinct keys, K ≫ table capacity: α = 1 at every seal, so the
    // adaptive strategy must seal, switch, partition, and recurse.
    let keys = distinct_keys(200_000);
    let (out, report) = distinct_observed(&keys, &adaptive_cfg(), &ObsConfig::full());
    assert_eq!(out.n_groups(), 200_000);

    let stats = &report.stats;
    assert!(stats.switches_to_partitioning > 0, "adaptive run must switch");

    let snapshot = report.metrics.as_ref().expect("metrics requested");
    let m = snapshot.merged();

    // Hash-table probe behavior was observed.
    assert!(m.counter(Counter::TableInserts) > 0);
    assert!(m.hist(Hist::ProbeLen).count() > 0, "probe-length histogram");
    assert!(m.hist(Hist::SealFillPct).count() >= stats.seals);

    // Partitioning flush traffic was observed.
    assert!(m.counter(Counter::SwcFlushes) > 0, "SWC flushes");
    assert!(m.counter(Counter::SwcFlushBytes) >= m.counter(Counter::SwcFlushes) * 64);
    assert!(m.hist(Hist::PartitionSkewPct).count() > 0);

    // The per-switch reduction factor was sampled, and on distinct keys it
    // must be tiny (α ≈ 1 ≪ α₀).
    assert!(m.alpha_count() > 0, "per-switch alpha samples");
    let mean_alpha = m.alpha_sum() / m.alpha_count() as f64;
    assert!(mean_alpha < 4.0, "distinct keys should show alpha near 1, got {mean_alpha}");

    // Rows accounting: the recorder agrees with the always-on OpStats.
    assert_eq!(m.counter(Counter::HashRows), stats.total_hash_rows());
    assert_eq!(m.counter(Counter::PartRows), stats.total_part_rows());

    // Scheduler counters: every morsel ran somewhere, and the scope saw
    // some scheduling activity (steals or parked time).
    let pool = report.pool.as_ref().expect("pool metrics requested");
    let totals = pool.totals();
    assert!(totals.tasks_executed >= (keys.len() / (1 << 12)) as u64);
    assert!(
        totals.steals + totals.failed_steal_scans + totals.idle_nanos > 0,
        "expected some work-stealing activity"
    );

    // Per-worker morsel accounting sums to the total claimed.
    let per_worker: u64 = snapshot.workers.iter().map(|w| w.counter(Counter::MorselsClaimed)).sum();
    assert_eq!(per_worker, m.counter(Counter::MorselsClaimed));
}

#[test]
fn trace_is_valid_chrome_json_with_span_events() {
    let keys = distinct_keys(100_000);
    let (_, report) = distinct_observed(&keys, &adaptive_cfg(), &ObsConfig::full());
    let trace = report.trace_json.expect("trace requested");
    let parsed = json::parse(&trace).expect("trace must be valid JSON");
    let events = parsed.get("traceEvents").unwrap().as_array().unwrap();
    assert!(!events.is_empty());

    let names: Vec<&str> =
        events.iter().filter_map(|e| e.get("name").and_then(|n| n.as_str())).collect();
    assert!(names.contains(&"morsel"), "morsel spans missing: {names:?}");
    assert!(names.contains(&"seal"), "seal instants missing");
    assert!(names.contains(&"bucket"), "bucket spans missing");
    assert!(names.contains(&"switch_to_partitioning"), "switch instants missing");

    // Every complete event carries microsecond timestamps and a worker tid.
    for e in events {
        let ph = e.get("ph").unwrap().as_str().unwrap();
        if ph == "X" {
            assert!(e.get("ts").unwrap().as_f64().is_some());
            assert!(e.get("dur").unwrap().as_f64().is_some());
            assert!(e.get("tid").unwrap().as_u64().is_some());
        }
    }
}

#[test]
fn disabled_observability_adds_no_sections() {
    let keys = distinct_keys(50_000);
    let (_, report) = aggregate_observed(
        &keys,
        &[],
        &[AggSpec::count()],
        &adaptive_cfg(),
        &ObsConfig::disabled(),
    );
    assert!(report.metrics.is_none());
    assert!(report.pool.is_none());
    assert!(report.trace_json.is_none());
    // The always-on stats and headline numbers are still there.
    assert_eq!(report.rows_in, 50_000);
    assert!(report.stats.total_hash_rows() + report.stats.total_part_rows() >= 50_000);
    let parsed = json::parse(&report.to_json().to_string_pretty(2)).unwrap();
    assert!(parsed.get("metrics").is_none());
    assert_eq!(parsed.get("rows_in").unwrap().as_u64(), Some(50_000));
}

#[test]
fn report_json_of_a_real_run_parses_and_cross_checks() {
    let keys = distinct_keys(80_000);
    let vals: Vec<u64> = (0..80_000).collect();
    let (out, report) = aggregate_observed(
        &keys,
        &[&vals],
        &[AggSpec::count(), AggSpec::sum(0)],
        &adaptive_cfg(),
        &ObsConfig::full(),
    );
    let parsed = json::parse(&report.to_json().to_string_pretty(2)).unwrap();
    assert_eq!(parsed.get("rows_in").unwrap().as_u64(), Some(80_000));
    assert_eq!(parsed.get("groups_out").unwrap().as_u64(), Some(out.n_groups() as u64));
    let merged = parsed.get("metrics").unwrap().get("merged").unwrap();
    assert_eq!(merged.get("hash_rows").unwrap().as_u64(), Some(report.stats.total_hash_rows()));
    // The pretty rendering mentions the headline numbers.
    let pretty = report.pretty();
    assert!(pretty.contains("rows in            80000"));
    assert!(pretty.contains("passes used"));
}
