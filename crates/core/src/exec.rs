//! Execution environment: budget, cancellation, fault injection, and the
//! spill store the budget can degrade into.

use crate::obs::Obs;
use crate::stats::AtomicStats;
use hsa_columnar::{Run, RunHandle, RunStore, SpillConfig};
use hsa_fault::{AggError, CancelToken, DiskBudget, FaultInjector, MemoryBudget, Reservation};
use hsa_obs::{Counter, Hist, Phase};
use std::path::PathBuf;
use std::time::Instant;

/// The robustness controls of one operator invocation: a shared memory
/// budget, a cooperative cancellation token, an optional spill directory,
/// and (for tests) a fault injector. The default is fully unrestricted and
/// adds one null check per control point to the fast path.
#[derive(Clone, Debug, Default)]
pub struct ExecEnv {
    /// Memory budget all growth sites reserve against.
    pub budget: MemoryBudget,
    /// Cancellation token polled at morsel and bucket-task boundaries.
    pub cancel: CancelToken,
    /// Deterministic fault injection (see `hsa_fault::FaultPlan`).
    pub faults: FaultInjector,
    /// Spill directory for out-of-core degradation. When set, a denied
    /// run-materialization reservation is downgraded into a flush to disk
    /// instead of failing the query; when `None`, budget exhaustion at
    /// those sites remains a hard `AggError::BudgetExceeded`.
    pub spill_dir: Option<PathBuf>,
    /// Byte cap for the spill directory (`--spill-limit`). Spill writes
    /// reserve their exact file size against this budget; a denial is the
    /// end of the degradation ladder and surfaces as a typed
    /// `AggError::DiskBudgetExceeded`. Unlimited by default.
    pub disk: DiskBudget,
    /// Spill I/O shape: per-extent compression codec and the number of
    /// background I/O worker threads (0 = fully synchronous writes and
    /// restores). Defaults to `Auto` compression with one worker.
    pub spill: SpillConfig,
}

impl ExecEnv {
    /// No budget, no cancellation, no injection, no spilling.
    pub fn unrestricted() -> Self {
        Self::default()
    }

    /// Replace the memory budget.
    pub fn with_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replace the cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Replace the fault injector.
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = faults;
        self
    }

    /// Enable spilling to the given directory (created on first use).
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Replace the spill-space budget.
    pub fn with_disk_budget(mut self, disk: DiskBudget) -> Self {
        self.disk = disk;
        self
    }

    /// Replace the spill I/O configuration (codec + worker threads).
    pub fn with_spill_config(mut self, spill: SpillConfig) -> Self {
        self.spill = spill;
        self
    }
}

/// The allocation gate the routines reserve memory through: budget +
/// injector + spill store + the stats the denials are counted in.
/// Borrowed from the driver context and passed to every pass that
/// materializes runs.
#[derive(Clone, Copy)]
pub(crate) struct Gate<'a> {
    pub(crate) budget: &'a MemoryBudget,
    pub(crate) faults: &'a FaultInjector,
    pub(crate) stats: &'a AtomicStats,
    pub(crate) store: &'a RunStore,
}

impl Gate<'_> {
    /// Reserve `bytes`, applying fault injection first. Injected denials
    /// report `limit: 0` — the marker the degradation paths use to tell
    /// "must surface" from "may degrade" (a real limit is never 0: a
    /// zero-byte budget denies everything, so degradation is moot there
    /// too).
    pub(crate) fn reserve(&self, bytes: u64, obs: &Obs) -> Result<Reservation, AggError> {
        if self.faults.should_fail_alloc() {
            self.count_denial(obs);
            return Err(AggError::BudgetExceeded { requested: bytes, limit: 0, reserved: 0 });
        }
        self.budget.try_reserve(bytes).inspect_err(|_| self.count_denial(obs))
    }

    /// Whether a denied reservation at a run-materialization site may be
    /// downgraded into a spill: the denial must be degradable and a spill
    /// directory must be configured.
    pub(crate) fn can_spill(&self, e: &AggError) -> bool {
        is_degradable(e) && self.store.can_spill()
    }

    /// Flush a batch of runs into **one** shared spill file, returning
    /// their handles in order, applying fault injection first and
    /// recording spill observability. The runs are consumed: with a
    /// background I/O worker the store hands their columns to the writer
    /// thread without copying them, and they are released only once the
    /// file is on disk.
    ///
    /// Producers that flush many runs at one moment (a sealed table's
    /// per-digit sub-runs) use this to pay one file creation per flush —
    /// on filesystems where inode creation dominates small writes, that
    /// is the difference between spilling being viable and not. One
    /// injected-fault ordinal and one observability span cover the whole
    /// batch (it is one logical write); per-run byte and count stats are
    /// still recorded individually.
    pub(crate) fn spill_batch(
        &self,
        runs: Vec<Run>,
        obs: &Obs,
    ) -> Result<Vec<RunHandle>, AggError> {
        if self.faults.should_fail_spill() {
            return Err(AggError::SpillFailed { message: "injected fault: spill write".into() });
        }
        let level = runs.first().map_or(0, |r| r.level);
        let pt = obs.phase_start(level, Phase::Spill);
        let t0 = Instant::now();
        let handles = self.store.spill_batch(runs)?;
        let mut total = 0u64;
        for handle in &handles {
            let bytes = handle.spilled_bytes();
            self.stats.count_spilled_run(level, bytes);
            total += bytes;
        }
        obs.recorder.add(obs.worker, Counter::SpilledRuns, handles.len() as u64);
        obs.recorder.add(obs.worker, Counter::SpilledBytes, total);
        obs.recorder.observe(obs.worker, Hist::SpillNanos, t0.elapsed().as_nanos() as u64);
        obs.phase_end(pt, 0, 0, total);
        Ok(handles)
    }

    /// Materialize a handle's rows, reading spilled runs back from disk
    /// (timed and counted). Resident handles pass through untouched.
    /// When the handle was [`RunHandle::prefetch`]ed, the store's I/O
    /// worker has already decoded the file and this only collects the
    /// parked result — the recorded restore time is then the *wait*, not
    /// the full decode.
    ///
    /// Restored rows are transient working-set memory of the consuming
    /// task and are not re-reserved against the budget: the run was
    /// spilled precisely because the budget had no room, and the consumer
    /// is about to shrink it (aggregate it or re-partition it into
    /// bounded sub-runs).
    pub(crate) fn restore(&self, handle: RunHandle, obs: &Obs) -> Result<Run, AggError> {
        if !handle.is_spilled() {
            return handle.into_run();
        }
        let bytes = handle.spilled_bytes();
        let pt = obs.phase_start(handle.level(), Phase::Restore);
        let t0 = Instant::now();
        let run = handle.into_run()?;
        self.stats.count_restored_run(bytes);
        obs.recorder.add(obs.worker, Counter::RestoredRuns, 1);
        obs.recorder.add(obs.worker, Counter::RestoredBytes, bytes);
        obs.recorder.observe(obs.worker, Hist::RestoreNanos, t0.elapsed().as_nanos() as u64);
        obs.phase_end(pt, 0, run.len() as u64, bytes);
        Ok(run)
    }

    fn count_denial(&self, obs: &Obs) {
        self.stats.count_budget_denial();
        obs.recorder.add(obs.worker, Counter::BudgetDenials, 1);
    }
}

/// Whether a reservation failure may be degraded around (shrink the
/// table, fall back to partitioning, spill the run) rather than surfaced
/// immediately.
pub(crate) fn is_degradable(e: &AggError) -> bool {
    matches!(e, AggError::BudgetExceeded { limit, .. } if *limit > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_fault::FaultPlan;

    #[test]
    fn env_builders_compose() {
        let env = ExecEnv::unrestricted()
            .with_budget(MemoryBudget::limited(1024))
            .with_cancel(CancelToken::new())
            .with_faults(FaultInjector::new(FaultPlan { fail_alloc: Some(1), ..FaultPlan::none() }))
            .with_spill_dir("/tmp/hsa-spill-test")
            .with_disk_budget(DiskBudget::limited(4096))
            .with_spill_config(SpillConfig { codec: hsa_columnar::SpillCodec::Off, io_threads: 0 });
        assert_eq!(env.budget.limit(), Some(1024));
        assert!(env.cancel.check().is_ok());
        assert!(env.faults.should_fail_alloc());
        assert_eq!(env.spill_dir.as_deref(), Some(std::path::Path::new("/tmp/hsa-spill-test")));
        assert_eq!(env.disk.limit(), Some(4096));
        assert_eq!(env.spill.io_threads, 0);
        assert!(ExecEnv::default().spill_dir.is_none());
        assert!(!ExecEnv::default().disk.is_limited());
        assert_eq!(ExecEnv::default().spill, SpillConfig::default());
    }

    #[test]
    fn gate_counts_denials_and_marks_injected() {
        let stats = AtomicStats::default();
        let budget = MemoryBudget::limited(100);
        let faults = FaultInjector::new(FaultPlan { fail_alloc: Some(1), ..FaultPlan::none() });
        let store = RunStore::in_memory();
        let gate = Gate { budget: &budget, faults: &faults, stats: &stats, store: &store };
        let obs = Obs::disabled();

        let injected = gate.reserve(10, &obs).unwrap_err();
        assert!(!is_degradable(&injected), "injected failures must surface");
        assert!(!gate.can_spill(&injected));

        let ok = gate.reserve(60, &obs).unwrap();
        assert_eq!(budget.outstanding(), 60);
        let real = gate.reserve(60, &obs).unwrap_err();
        assert!(is_degradable(&real), "real denials may degrade");
        assert!(!gate.can_spill(&real), "no spill dir: denial stays a denial");
        drop(ok);

        assert_eq!(stats.snapshot().budget_denials, 2);
        assert_eq!(budget.outstanding(), 0);
    }

    #[test]
    fn gate_spills_and_restores_through_a_file_store() {
        let dir = std::env::temp_dir().join(format!("hsa-gate-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let stats = AtomicStats::default();
        let budget = MemoryBudget::unlimited();
        let faults = FaultInjector::none();
        let store = RunStore::spilling_to(&dir).unwrap();
        let gate = Gate { budget: &budget, faults: &faults, stats: &stats, store: &store };
        let obs = Obs::disabled();

        let denied = AggError::BudgetExceeded { requested: 1, limit: 64, reserved: 64 };
        assert!(gate.can_spill(&denied));

        let run = Run::from_rows(&[1, 2, 3], &[&[10, 20, 30]]);
        let handle = gate.spill_batch(vec![run.clone()], &obs).unwrap().pop().unwrap();
        assert!(handle.is_spilled());
        let back = gate.restore(handle, &obs).unwrap();
        assert_eq!(back.keys, run.keys);
        assert_eq!(back.cols, run.cols);

        let s = stats.snapshot();
        assert_eq!(s.spilled_runs(), 1);
        assert_eq!(s.restored_runs, 1);
        assert_eq!(s.spilled_bytes, s.restored_bytes);
        assert!(s.spilled_bytes > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_spill_failure_surfaces_as_spill_error() {
        let dir = std::env::temp_dir().join(format!("hsa-gate-spillfail-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let stats = AtomicStats::default();
        let budget = MemoryBudget::unlimited();
        let faults = FaultInjector::new(FaultPlan { fail_spill: Some(1), ..FaultPlan::none() });
        let store = RunStore::spilling_to(&dir).unwrap();
        let gate = Gate { budget: &budget, faults: &faults, stats: &stats, store: &store };
        let obs = Obs::disabled();

        let run = Run::from_rows(&[1], &[]);
        let err = gate.spill_batch(vec![run.clone()], &obs).unwrap_err();
        assert!(matches!(err, AggError::SpillFailed { .. }));
        // The next write goes through.
        assert!(gate.spill_batch(vec![run], &obs).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
