//! Execution environment: budget, cancellation, and fault injection.

use crate::obs::Obs;
use crate::stats::AtomicStats;
use hsa_fault::{AggError, CancelToken, FaultInjector, MemoryBudget, Reservation};
use hsa_obs::Counter;

/// The robustness controls of one operator invocation: a shared memory
/// budget, a cooperative cancellation token, and (for tests) a fault
/// injector. The default is fully unrestricted and adds one null check per
/// control point to the fast path.
#[derive(Clone, Debug, Default)]
pub struct ExecEnv {
    /// Memory budget all growth sites reserve against.
    pub budget: MemoryBudget,
    /// Cancellation token polled at morsel and bucket-task boundaries.
    pub cancel: CancelToken,
    /// Deterministic fault injection (see `hsa_fault::FaultPlan`).
    pub faults: FaultInjector,
}

impl ExecEnv {
    /// No budget, no cancellation, no injection.
    pub fn unrestricted() -> Self {
        Self::default()
    }

    /// Replace the memory budget.
    pub fn with_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Replace the cancellation token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Replace the fault injector.
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = faults;
        self
    }
}

/// The allocation gate the routines reserve memory through: budget +
/// injector + the stats the denials are counted in. Borrowed from the
/// driver context and passed to every pass that materializes runs.
#[derive(Clone, Copy)]
pub(crate) struct Gate<'a> {
    pub(crate) budget: &'a MemoryBudget,
    pub(crate) faults: &'a FaultInjector,
    pub(crate) stats: &'a AtomicStats,
}

impl Gate<'_> {
    /// Reserve `bytes`, applying fault injection first. Injected denials
    /// report `limit: 0` — the marker the degradation paths use to tell
    /// "must surface" from "may degrade" (a real limit is never 0: a
    /// zero-byte budget denies everything, so degradation is moot there
    /// too).
    pub(crate) fn reserve(&self, bytes: u64, obs: &Obs) -> Result<Reservation, AggError> {
        if self.faults.should_fail_alloc() {
            self.count_denial(obs);
            return Err(AggError::BudgetExceeded { requested: bytes, limit: 0, reserved: 0 });
        }
        self.budget.try_reserve(bytes).inspect_err(|_| self.count_denial(obs))
    }

    fn count_denial(&self, obs: &Obs) {
        self.stats.count_budget_denial();
        obs.recorder.add(obs.worker, Counter::BudgetDenials, 1);
    }
}

/// Whether a reservation failure may be degraded around (shrink the
/// table, fall back to partitioning) rather than surfaced immediately.
pub(crate) fn is_degradable(e: &AggError) -> bool {
    matches!(e, AggError::BudgetExceeded { limit, .. } if *limit > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_fault::FaultPlan;

    #[test]
    fn env_builders_compose() {
        let env = ExecEnv::unrestricted()
            .with_budget(MemoryBudget::limited(1024))
            .with_cancel(CancelToken::new())
            .with_faults(FaultInjector::new(FaultPlan {
                fail_alloc: Some(1),
                ..FaultPlan::none()
            }));
        assert_eq!(env.budget.limit(), Some(1024));
        assert!(env.cancel.check().is_ok());
        assert!(env.faults.should_fail_alloc());
    }

    #[test]
    fn gate_counts_denials_and_marks_injected() {
        let stats = AtomicStats::default();
        let budget = MemoryBudget::limited(100);
        let faults = FaultInjector::new(FaultPlan { fail_alloc: Some(1), ..FaultPlan::none() });
        let gate = Gate { budget: &budget, faults: &faults, stats: &stats };
        let obs = Obs::disabled();

        let injected = gate.reserve(10, &obs).unwrap_err();
        assert!(!is_degradable(&injected), "injected failures must surface");

        let ok = gate.reserve(60, &obs).unwrap();
        assert_eq!(budget.outstanding(), 60);
        let real = gate.reserve(60, &obs).unwrap_err();
        assert!(is_degradable(&real), "real denials may degrade");
        drop(ok);

        assert_eq!(stats.snapshot().budget_denials, 2);
        assert_eq!(budget.outstanding(), 0);
    }
}
