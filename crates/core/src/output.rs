//! The operator's result and the shared collector it is assembled in.

use hsa_agg::{Finalizer, Plan};
use hsa_fault::Reservation;
use hsa_tasks::sync::Mutex;

/// Shared sink for final groups. Leaf tasks append whole blocks under one
/// short lock — coarse enough to be negligible (§3.2).
///
/// The collector holds the budget reservations backing its growing output
/// vectors until the output is handed to the caller. Unlike intermediate
/// runs, final output blocks are never spilled: they are the caller's
/// result, so a denied output reservation stays a hard
/// `AggError::BudgetExceeded` even when a spill directory is configured.
/// One collector spans all chunks of a streaming ingestion
/// ([`crate::AggStream`]) — it lives in the driver context, not in any
/// single scope.
pub(crate) struct Collector {
    inner: Mutex<RawOut>,
}

struct RawOut {
    keys: Vec<u64>,
    states: Vec<Vec<u64>>,
    res: Reservation,
}

impl Collector {
    pub(crate) fn new(n_cols: usize) -> Self {
        Self {
            inner: Mutex::new(RawOut {
                keys: Vec::new(),
                states: (0..n_cols).map(|_| Vec::new()).collect(),
                res: Reservation::empty(),
            }),
        }
    }

    /// Append one block of final groups, folding in the reservation that
    /// paid for the block's memory.
    pub(crate) fn push_block(&self, keys: &[u64], cols: &[Vec<u64>], res: Reservation) {
        let mut g = self.inner.lock();
        g.keys.extend_from_slice(keys);
        debug_assert_eq!(cols.len(), g.states.len());
        for (dst, src) in g.states.iter_mut().zip(cols) {
            dst.extend_from_slice(src);
        }
        g.res.merge(res);
    }

    pub(crate) fn into_output(self, plan: Plan) -> GroupByOutput {
        let raw = self.inner.into_inner();
        // The reservations covering the output rows are released here: the
        // result now belongs to the caller, outside the operator's budget.
        drop(raw.res);
        GroupByOutput { keys: raw.keys, states: raw.states, plan }
    }
}

/// The result of one aggregation: one row per group, in unspecified order
/// (the paper's operator, like any parallel hash aggregation, does not
/// define an output order).
#[derive(Clone, Debug)]
pub struct GroupByOutput {
    /// Group keys.
    pub keys: Vec<u64>,
    /// Physical state columns (see [`hsa_agg::plan`] for the layout).
    pub states: Vec<Vec<u64>>,
    plan: Plan,
}

impl GroupByOutput {
    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.keys.len()
    }

    /// The lowered plan (physical column layout + finalizers).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Finalized value of requested aggregate `spec_ix` for group row `row`.
    pub fn value(&self, spec_ix: usize, row: usize) -> f64 {
        let states: Vec<u64> = self.states.iter().map(|c| c[row]).collect();
        self.plan.finalizers[spec_ix].eval(&states)
    }

    /// Finalized integer column for aggregate `spec_ix`, if it is exact
    /// (everything except AVG).
    pub fn column_u64(&self, spec_ix: usize) -> Option<Vec<u64>> {
        match self.plan.finalizers[spec_ix] {
            Finalizer::State(i) => Some(self.states[i].clone()),
            Finalizer::Ratio { .. } => None,
        }
    }

    /// Finalized float column for aggregate `spec_ix`.
    pub fn column_f64(&self, spec_ix: usize) -> Vec<f64> {
        (0..self.n_groups()).map(|r| self.value(spec_ix, r)).collect()
    }

    /// All groups as `(key, physical states)` rows sorted by key —
    /// convenience for tests and small examples.
    pub fn sorted_rows(&self) -> Vec<(u64, Vec<u64>)> {
        let mut rows: Vec<(u64, Vec<u64>)> = self
            .keys
            .iter()
            .enumerate()
            .map(|(r, &k)| (k, self.states.iter().map(|c| c[r]).collect()))
            .collect();
        rows.sort_unstable_by_key(|(k, _)| *k);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_agg::{plan, AggSpec};

    #[test]
    fn collector_appends_blocks() {
        let c = Collector::new(2);
        c.push_block(&[1, 2], &[vec![10, 20], vec![1, 1]], Reservation::empty());
        c.push_block(&[3], &[vec![30], vec![1]], Reservation::empty());
        let out = c.into_output(plan(&[AggSpec::sum(0), AggSpec::count()]));
        assert_eq!(out.n_groups(), 3);
        assert_eq!(out.sorted_rows()[2], (3, vec![30, 1]));
    }

    #[test]
    fn finalization_helpers() {
        let c = Collector::new(2);
        // states: sum, count → specs: avg(0), count()
        c.push_block(&[7], &[vec![10], vec![4]], Reservation::empty());
        let out = c.into_output(plan(&[AggSpec::avg(0), AggSpec::count()]));
        assert_eq!(out.value(0, 0), 2.5);
        assert_eq!(out.column_u64(0), None);
        assert_eq!(out.column_u64(1), Some(vec![4]));
        assert_eq!(out.column_f64(0), vec![2.5]);
    }
}
