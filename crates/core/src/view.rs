//! Uniform access to the rows a routine processes.
//!
//! The first pass reads borrowed input column slices; every later pass
//! reads owned [`Run`]s backed by chunked vectors. [`RunView`] hides the
//! difference and exposes *maximal contiguous blocks* aligned across the
//! key column and all state columns, so the kernels always run tight loops
//! over plain slices.

use hsa_columnar::Run;

/// A view over the rows of one run (borrowed input or owned intermediate).
pub(crate) enum RunView<'a> {
    /// Borrowed input: key slice plus one value slice per physical state
    /// column (for COUNT columns over raw input the key slice is aliased —
    /// the value is ignored). `aggregated` is false for raw query input
    /// and true when merging pre-aggregated partials.
    Borrowed {
        /// Grouping keys.
        keys: &'a [u64],
        /// One value slice per physical state column, all `keys.len()` long.
        cols: Vec<&'a [u64]>,
        /// Whether the rows are partial aggregates.
        aggregated: bool,
    },
    /// An intermediate run produced by a previous pass.
    Owned(Run),
}

impl RunView<'_> {
    /// Number of rows.
    pub(crate) fn len(&self) -> usize {
        match self {
            RunView::Borrowed { keys, .. } => keys.len(),
            RunView::Owned(r) => r.len(),
        }
    }

    /// Whether rows are partial aggregates (super-aggregate needed).
    pub(crate) fn aggregated(&self) -> bool {
        match self {
            RunView::Borrowed { aggregated, .. } => *aggregated,
            RunView::Owned(r) => r.aggregated,
        }
    }

    /// Contiguous key slice starting at `row` (up to a chunk boundary).
    pub(crate) fn key_tail(&self, row: usize) -> &[u64] {
        match self {
            RunView::Borrowed { keys, .. } => &keys[row.min(keys.len())..],
            RunView::Owned(r) => r.keys.tail_slice(row),
        }
    }

    /// Contiguous slice of state column `i` starting at `row`.
    pub(crate) fn col_tail(&self, i: usize, row: usize) -> &[u64] {
        match self {
            RunView::Borrowed { cols, .. } => {
                let c = cols[i];
                &c[row.min(c.len())..]
            }
            RunView::Owned(r) => r.cols[i].tail_slice(row),
        }
    }

    /// Length of the largest block starting at `row` that is contiguous in
    /// the key column *and* in every state column.
    pub(crate) fn aligned_block_len(&self, row: usize, n_cols: usize) -> usize {
        let mut len = self.key_tail(row).len();
        for i in 0..n_cols {
            len = len.min(self.col_tail(i, row).len());
        }
        len
    }

    /// Iterator over the key column's contiguous slices from `row`.
    pub(crate) fn key_slices(&self, row: usize) -> Box<dyn Iterator<Item = &[u64]> + '_> {
        match self {
            RunView::Borrowed { keys, .. } => {
                Box::new(std::iter::once(&keys[row.min(keys.len())..]).filter(|s| !s.is_empty()))
            }
            RunView::Owned(r) => Box::new(r.keys.slices_from(row)),
        }
    }

    /// Iterator over state column `i`'s contiguous slices from `row`.
    pub(crate) fn col_slices(&self, i: usize, row: usize) -> Box<dyn Iterator<Item = &[u64]> + '_> {
        match self {
            RunView::Borrowed { cols, .. } => {
                let c = cols[i];
                Box::new(std::iter::once(&c[row.min(c.len())..]).filter(|s| !s.is_empty()))
            }
            RunView::Owned(r) => Box::new(r.cols[i].slices_from(row)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_columnar::ChunkedVec;

    fn owned_run(n: u64, chunk: usize) -> Run {
        let mut keys = ChunkedVec::with_chunk_len(chunk);
        let mut col = ChunkedVec::with_chunk_len(chunk);
        for i in 0..n {
            keys.push(i);
            col.push(i * 2);
        }
        Run { keys, cols: vec![col], aggregated: true, source_rows: n, level: 1 }
    }

    #[test]
    fn borrowed_view_basics() {
        let keys = [1u64, 2, 3];
        let vals = [9u64, 8, 7];
        let v = RunView::Borrowed { keys: &keys, cols: vec![&vals], aggregated: false };
        assert_eq!(v.len(), 3);
        assert!(!v.aggregated());
        assert_eq!(v.key_tail(1), &[2, 3]);
        assert_eq!(v.col_tail(0, 2), &[7]);
        assert_eq!(v.aligned_block_len(0, 1), 3);
        assert_eq!(v.key_slices(3).count(), 0);
    }

    #[test]
    fn owned_view_blocks_follow_chunks() {
        let v = RunView::Owned(owned_run(10, 4));
        assert!(v.aggregated());
        assert_eq!(v.aligned_block_len(0, 1), 4);
        assert_eq!(v.aligned_block_len(3, 1), 1);
        assert_eq!(v.aligned_block_len(8, 1), 2);
        let all: Vec<u64> = v.key_slices(0).flatten().copied().collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        let col: Vec<u64> = v.col_slices(0, 5).flatten().copied().collect();
        assert_eq!(col, (5..10).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn walking_aligned_blocks_covers_all_rows() {
        let v = RunView::Owned(owned_run(23, 5));
        let mut row = 0;
        let mut seen = Vec::new();
        while row < v.len() {
            let len = v.aligned_block_len(row, 1);
            assert!(len > 0);
            seen.extend_from_slice(&v.key_tail(row)[..len]);
            row += len;
        }
        assert_eq!(seen, (0..23).collect::<Vec<u64>>());
    }
}
