//! Destinations for the runs a routine produces.
//!
//! The `∪`-operations of Algorithm 2: a recursion task collects runs into
//! its own local bucket array; the parallel level-0 main loop pushes runs
//! from many workers into shared, mutex-guarded buckets ("the management
//! of the runs between the recursive calls requires synchronization, but
//! this happens infrequently enough to be negligible", §3.2).
//!
//! Runs travel as [`RunHandle`]s: resident handles carry the memory
//! [`Reservation`] that paid for them, so the budget stays charged while
//! the run waits in a bucket and is released exactly when the consuming
//! sub-task drops its bucket; spilled handles carry an empty reservation —
//! their bytes live on disk, not in the budget.

use hsa_columnar::RunHandle;
use hsa_fault::Reservation;
use hsa_hash::FANOUT;
use hsa_tasks::sync::Mutex;

/// Anything that can receive the runs of one partitioning/hashing pass.
pub(crate) trait RunSink {
    /// Add `run` to the bucket for radix digit `digit`, together with the
    /// budget reservation backing its memory (empty for spilled runs).
    fn push_run(&mut self, digit: usize, run: RunHandle, res: Reservation);
}

/// Task-local buckets (no synchronization).
pub(crate) struct LocalBuckets {
    buckets: Vec<(Vec<RunHandle>, Reservation)>,
}

impl LocalBuckets {
    pub(crate) fn new() -> Self {
        Self { buckets: (0..FANOUT).map(|_| (Vec::new(), Reservation::empty())).collect() }
    }

    /// True if no run was pushed — i.e. the bucket was fully aggregated in
    /// a single table and the recursion ends here.
    pub(crate) fn is_empty(&self) -> bool {
        self.buckets.iter().all(|(b, _)| b.is_empty())
    }

    /// Consume into `(digit, bucket, reservation)` triples for the
    /// non-empty buckets.
    pub(crate) fn into_nonempty(
        self,
    ) -> impl Iterator<Item = (usize, Vec<RunHandle>, Reservation)> {
        self.buckets
            .into_iter()
            .enumerate()
            .filter(|(_, (b, _))| !b.is_empty())
            .map(|(d, (b, res))| (d, b, res))
    }
}

impl RunSink for LocalBuckets {
    fn push_run(&mut self, digit: usize, run: RunHandle, res: Reservation) {
        debug_assert!(!run.is_empty());
        let (bucket, held) = &mut self.buckets[digit];
        bucket.push(run);
        held.merge(res);
    }
}

/// Shared buckets for the parallel main loop.
pub(crate) struct SharedBuckets {
    buckets: Vec<Mutex<(Vec<RunHandle>, Reservation)>>,
}

impl SharedBuckets {
    pub(crate) fn new() -> Self {
        Self {
            buckets: (0..FANOUT).map(|_| Mutex::new((Vec::new(), Reservation::empty()))).collect(),
        }
    }

    /// Consume into `(digit, bucket, reservation)` triples for the
    /// non-empty buckets.
    pub(crate) fn into_nonempty(
        self,
    ) -> impl Iterator<Item = (usize, Vec<RunHandle>, Reservation)> {
        self.buckets
            .into_iter()
            .map(Mutex::into_inner)
            .enumerate()
            .filter(|(_, (b, _))| !b.is_empty())
            .map(|(d, (b, res))| (d, b, res))
    }
}

/// A `&SharedBuckets` is itself a sink (each push takes one short lock).
impl RunSink for &SharedBuckets {
    fn push_run(&mut self, digit: usize, run: RunHandle, res: Reservation) {
        debug_assert!(!run.is_empty());
        let mut guard = self.buckets[digit].lock();
        guard.0.push(run);
        guard.1.merge(res);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_columnar::Run;
    use hsa_fault::MemoryBudget;

    fn run_of(n: u64) -> RunHandle {
        RunHandle::Mem(Run::from_rows(&(0..n).collect::<Vec<_>>(), &[]))
    }

    #[test]
    fn local_buckets_collect_by_digit() {
        let mut b = LocalBuckets::new();
        assert!(b.is_empty());
        b.push_run(3, run_of(2), Reservation::empty());
        b.push_run(3, run_of(1), Reservation::empty());
        b.push_run(250, run_of(5), Reservation::empty());
        assert!(!b.is_empty());
        let got: Vec<(usize, usize)> = b.into_nonempty().map(|(d, v, _)| (d, v.len())).collect();
        assert_eq!(got, vec![(3, 2), (250, 1)]);
    }

    #[test]
    fn buckets_hold_reservations_until_dropped() {
        let budget = MemoryBudget::limited(1000);
        let mut b = LocalBuckets::new();
        b.push_run(1, run_of(2), budget.try_reserve(100).unwrap());
        b.push_run(1, run_of(2), budget.try_reserve(50).unwrap());
        b.push_run(9, run_of(2), budget.try_reserve(25).unwrap());
        assert_eq!(budget.outstanding(), 175);
        let triples: Vec<_> = b.into_nonempty().collect();
        assert_eq!(budget.outstanding(), 175, "reservations travel with the buckets");
        assert_eq!(triples[0].2.bytes(), 150);
        assert_eq!(triples[1].2.bytes(), 25);
        drop(triples);
        assert_eq!(budget.outstanding(), 0);
    }

    #[test]
    fn shared_buckets_accept_concurrent_pushes() {
        let shared = SharedBuckets::new();
        hsa_tasks::scope(4, |s| {
            for d in 0..8usize {
                let shared = &shared;
                s.spawn(move |_| {
                    let mut sink = shared;
                    for _ in 0..10 {
                        sink.push_run(d * 30, run_of(1), Reservation::empty());
                    }
                });
            }
        });
        let got: Vec<(usize, usize)> =
            shared.into_nonempty().map(|(d, v, _)| (d, v.len())).collect();
        assert_eq!(got.len(), 8);
        assert!(got.iter().all(|&(d, n)| d % 30 == 0 && n == 10));
    }

    #[test]
    fn spilled_handles_ride_with_empty_reservations() {
        let dir = std::env::temp_dir().join(format!("hsa-sink-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = hsa_columnar::RunStore::spilling_to(&dir).unwrap();
        let spilled = store.spill(Run::from_rows(&[1, 2], &[&[3, 4]])).unwrap();
        let mut b = LocalBuckets::new();
        b.push_run(7, spilled, Reservation::empty());
        let triples: Vec<_> = b.into_nonempty().collect();
        assert_eq!(triples.len(), 1);
        assert!(triples[0].1[0].is_spilled());
        assert_eq!(triples[0].2.bytes(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
