//! Destinations for the runs a routine produces.
//!
//! The `∪`-operations of Algorithm 2: a recursion task collects runs into
//! its own local bucket array; the parallel level-0 main loop pushes runs
//! from many workers into shared, mutex-guarded buckets ("the management
//! of the runs between the recursive calls requires synchronization, but
//! this happens infrequently enough to be negligible", §3.2).

use hsa_columnar::Run;
use hsa_hash::FANOUT;
use hsa_tasks::sync::Mutex;

/// Anything that can receive the runs of one partitioning/hashing pass.
pub(crate) trait RunSink {
    /// Add `run` to the bucket for radix digit `digit`.
    fn push_run(&mut self, digit: usize, run: Run);
}

/// Task-local buckets (no synchronization).
pub(crate) struct LocalBuckets {
    buckets: Vec<Vec<Run>>,
}

impl LocalBuckets {
    pub(crate) fn new() -> Self {
        Self { buckets: (0..FANOUT).map(|_| Vec::new()).collect() }
    }

    /// True if no run was pushed — i.e. the bucket was fully aggregated in
    /// a single table and the recursion ends here.
    pub(crate) fn is_empty(&self) -> bool {
        self.buckets.iter().all(Vec::is_empty)
    }

    /// Consume into `(digit, bucket)` pairs for the non-empty buckets.
    pub(crate) fn into_nonempty(self) -> impl Iterator<Item = (usize, Vec<Run>)> {
        self.buckets.into_iter().enumerate().filter(|(_, b)| !b.is_empty())
    }
}

impl RunSink for LocalBuckets {
    fn push_run(&mut self, digit: usize, run: Run) {
        debug_assert!(!run.is_empty());
        self.buckets[digit].push(run);
    }
}

/// Shared buckets for the parallel main loop.
pub(crate) struct SharedBuckets {
    buckets: Vec<Mutex<Vec<Run>>>,
}

impl SharedBuckets {
    pub(crate) fn new() -> Self {
        Self { buckets: (0..FANOUT).map(|_| Mutex::new(Vec::new())).collect() }
    }

    /// Consume into `(digit, bucket)` pairs for the non-empty buckets.
    pub(crate) fn into_nonempty(self) -> impl Iterator<Item = (usize, Vec<Run>)> {
        self.buckets.into_iter().map(Mutex::into_inner).enumerate().filter(|(_, b)| !b.is_empty())
    }
}

/// A `&SharedBuckets` is itself a sink (each push takes one short lock).
impl RunSink for &SharedBuckets {
    fn push_run(&mut self, digit: usize, run: Run) {
        debug_assert!(!run.is_empty());
        self.buckets[digit].lock().push(run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_of(n: u64) -> Run {
        Run::from_rows(&(0..n).collect::<Vec<_>>(), &[])
    }

    #[test]
    fn local_buckets_collect_by_digit() {
        let mut b = LocalBuckets::new();
        assert!(b.is_empty());
        b.push_run(3, run_of(2));
        b.push_run(3, run_of(1));
        b.push_run(250, run_of(5));
        assert!(!b.is_empty());
        let got: Vec<(usize, usize)> = b.into_nonempty().map(|(d, v)| (d, v.len())).collect();
        assert_eq!(got, vec![(3, 2), (250, 1)]);
    }

    #[test]
    fn shared_buckets_accept_concurrent_pushes() {
        let shared = SharedBuckets::new();
        hsa_tasks::scope(4, |s| {
            for d in 0..8usize {
                let shared = &shared;
                s.spawn(move |_| {
                    let mut sink = shared;
                    for _ in 0..10 {
                        sink.push_run(d * 30, run_of(1));
                    }
                });
            }
        });
        let got: Vec<(usize, usize)> = shared.into_nonempty().map(|(d, v)| (d, v.len())).collect();
        assert_eq!(got.len(), 8);
        assert!(got.iter().all(|&(d, n)| d % 30 == 0 && n == 10));
    }
}
