//! The per-task observability handle.
//!
//! [`Obs`] bundles the handles to the (possibly disabled) metrics
//! [`Recorder`], timeline [`Tracer`], and live [`ProgressGauge`] with the
//! worker index of the task currently running. The handles are each a
//! single `Option<Arc>` — cloning one per task is a few refcount bumps —
//! and every recording call on a disabled handle is one null check, so
//! the routines are instrumented unconditionally.
//!
//! # Phase timing
//!
//! [`Obs::phase_start`]/[`Obs::phase_end`] bracket one phase of the
//! operator (see [`Phase`]) and record **exclusive** time: the `nested`
//! cell accumulates the total duration of every completed phase on this
//! task, so an enclosing phase can subtract the time its children already
//! claimed (a spill inside a seal lands in `spill`, not twice). When both
//! the recorder and the gauge are disabled, `phase_start` returns `None`
//! without reading the clock — the disabled path stays two null checks.

use hsa_hashtbl::AggTable;
use hsa_obs::{Counter, Hist, Phase, PhaseCell, ProgressGauge, Recorder, Tracer};
use std::cell::Cell;
use std::time::Instant;

/// Observability context of one task: where to record, and as whom.
#[derive(Clone)]
pub(crate) struct Obs {
    pub(crate) recorder: Recorder,
    pub(crate) tracer: Tracer,
    pub(crate) gauge: ProgressGauge,
    pub(crate) worker: usize,
    /// Total nanoseconds of phases completed on this task so far; the
    /// delta across a phase's lifetime is its children's time.
    nested: Cell<u64>,
}

/// An in-flight phase measurement returned by [`Obs::phase_start`].
pub(crate) struct PhaseTimer {
    level: u32,
    phase: Phase,
    t0: Instant,
    nested0: u64,
}

impl Obs {
    pub(crate) fn new(
        recorder: Recorder,
        tracer: Tracer,
        gauge: ProgressGauge,
        worker: usize,
    ) -> Self {
        Self { recorder, tracer, gauge, worker, nested: Cell::new(0) }
    }

    /// A handle that records nothing (unit tests drive the routines
    /// without a driver context).
    #[cfg(test)]
    pub(crate) fn disabled() -> Self {
        Self::new(Recorder::disabled(), Tracer::disabled(), ProgressGauge::disabled(), 0)
    }

    /// Begin timing one phase at `level`. Returns `None` — without
    /// touching the clock — when neither metrics nor progress is enabled.
    #[inline]
    pub(crate) fn phase_start(&self, level: u32, phase: Phase) -> Option<PhaseTimer> {
        if !self.recorder.is_enabled() && !self.gauge.is_enabled() {
            return None;
        }
        self.gauge.set_state(self.worker, level, phase);
        Some(PhaseTimer { level, phase, t0: Instant::now(), nested0: self.nested.get() })
    }

    /// Finish a phase: fold its exclusive time and row/byte deltas into
    /// the recorder's `(worker, level, phase)` cell and bump the gauge.
    pub(crate) fn phase_end(
        &self,
        timer: Option<PhaseTimer>,
        rows_in: u64,
        rows_out: u64,
        bytes: u64,
    ) {
        let Some(t) = timer else { return };
        let total = t.t0.elapsed().as_nanos() as u64;
        let child = self.nested.get().saturating_sub(t.nested0);
        self.recorder.phase(
            self.worker,
            t.level,
            t.phase,
            PhaseCell { nanos: total.saturating_sub(child), calls: 1, rows_in, rows_out, bytes },
        );
        self.gauge.add_rows(self.worker, rows_in);
        self.nested.set(t.nested0.saturating_add(total));
    }

    /// Begin a phase that ends when the returned guard drops — on every
    /// exit path including error returns and contained panics. Used for
    /// [`Phase::Driver`] wrappers around whole task bodies, where the
    /// nested-time accounting leaves only the dispatch overhead in the
    /// cell; row/byte deltas stay zero.
    pub(crate) fn phase_scope(&self, level: u32, phase: Phase) -> PhaseScope<'_> {
        PhaseScope { obs: self, timer: self.phase_start(level, phase) }
    }
}

/// RAII wrapper completing a phase on drop (see [`Obs::phase_scope`]).
pub(crate) struct PhaseScope<'a> {
    obs: &'a Obs,
    timer: Option<PhaseTimer>,
}

impl Drop for PhaseScope<'_> {
    fn drop(&mut self) {
        self.obs.phase_end(self.timer.take(), 0, 0, 0);
    }
}

/// Flush a table's locally collected probe metrics into the recorder
/// (worker-sharded, so this is plain adds). Called at seal time; a table
/// without metrics enabled contributes nothing.
pub(crate) fn flush_table_metrics(obs: &Obs, table: &mut AggTable) {
    if let Some(m) = table.take_metrics() {
        obs.recorder.add(obs.worker, Counter::TableInserts, m.inserts);
        obs.recorder.add(obs.worker, Counter::ProbeSteps, m.probe_steps);
        obs.recorder.merge_hist(obs.worker, Hist::ProbeLen, &m.probe_len);
        obs.recorder.merge_hist(obs.worker, Hist::BlockDisplacement, &m.displacement);
    }
}
