//! The per-task observability handle.
//!
//! [`Obs`] bundles the handles to the (possibly disabled) metrics
//! [`Recorder`] and timeline [`Tracer`] with the worker index of the task
//! currently running. Both handles are a single `Option<Arc>` — cloning
//! one per task is two refcount bumps — and every recording call on a
//! disabled handle is one null check, so the routines are instrumented
//! unconditionally.

use hsa_hashtbl::AggTable;
use hsa_obs::{Counter, Hist, Recorder, Tracer};

/// Observability context of one task: where to record, and as whom.
#[derive(Clone)]
pub(crate) struct Obs {
    pub(crate) recorder: Recorder,
    pub(crate) tracer: Tracer,
    pub(crate) worker: usize,
}

impl Obs {
    /// A handle that records nothing (unit tests drive the routines
    /// without a driver context).
    #[cfg(test)]
    pub(crate) fn disabled() -> Self {
        Self { recorder: Recorder::disabled(), tracer: Tracer::disabled(), worker: 0 }
    }
}

/// Flush a table's locally collected probe metrics into the recorder
/// (worker-sharded, so this is plain adds). Called at seal time; a table
/// without metrics enabled contributes nothing.
pub(crate) fn flush_table_metrics(obs: &Obs, table: &mut AggTable) {
    if let Some(m) = table.take_metrics() {
        obs.recorder.add(obs.worker, Counter::TableInserts, m.inserts);
        obs.recorder.add(obs.worker, Counter::ProbeSteps, m.probe_steps);
        obs.recorder.merge_hist(obs.worker, Hist::ProbeLen, &m.probe_len);
        obs.recorder.merge_hist(obs.worker, Hist::BlockDisplacement, &m.displacement);
    }
}
