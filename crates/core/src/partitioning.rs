//! The `PARTITIONING` routine (Algorithm 1, lines 1–4) in column-wise form.
//!
//! The key column is radix-partitioned with the tuned software-write-
//! combining kernel while recording one digit per row; each state column is
//! then scattered by replaying the digits (§3.3). The 256 outputs become
//! runs of the next level, preserving the `aggregated` flag of the source
//! (partitioning never aggregates — that is exactly its trade-off).

use crate::exec::Gate;
use crate::obs::Obs;
use crate::sink::RunSink;
use crate::view::RunView;
use hsa_columnar::{Run, RunHandle};
use hsa_fault::{AggError, Reservation};
use hsa_hash::{Murmur2, FANOUT};
use hsa_obs::{Counter, Hist, Phase};
use hsa_partition::{
    partition_keys_mapped_observed, partition_keys_observed, scatter_by_digits_observed,
    swc_pass_bytes, PartitionMetrics,
};

/// Upper estimate of the bytes one partitioning pass materializes: the SWC
/// buffer lines, the output chunks for keys and each state column (chunk
/// slack doubles the payload bound), and per-digit chunk headers.
fn partition_bytes_upper(rows: usize, n_cols: usize) -> u64 {
    let per_value = 8 * (1 + n_cols as u64);
    swc_pass_bytes(n_cols) + 2 * rows as u64 * per_value + FANOUT as u64 * 64 * per_value
}

/// Partition rows `[from_row..]` of `view` into next-level runs.
///
/// Reserves an upper estimate of the pass's memory first; each emitted run
/// carries an exact-sized slice of the reservation and the remainder is
/// released on return. When the reservation is denied degradably and a
/// spill directory is configured, the denial is downgraded: the pass runs
/// on transient (unaccounted) memory and every output run is flushed to
/// the spill store immediately, so nothing stays resident past the pass.
/// Hard denials and runs without a spill directory still surface
/// `BudgetExceeded`.
#[allow(clippy::too_many_arguments)] // the driver's task context, passed flat
pub(crate) fn partition_run(
    view: &RunView<'_>,
    from_row: usize,
    level: u32,
    n_cols: usize,
    mapping: &mut Vec<u8>,
    sink: &mut impl RunSink,
    gate: Gate<'_>,
    obs: &Obs,
) -> Result<(), AggError> {
    let rows = view.len() - from_row;
    if rows == 0 {
        return Ok(());
    }
    let pt = obs.phase_start(level, Phase::Partition);
    let mut res = match gate.reserve(partition_bytes_upper(rows, n_cols), obs) {
        Ok(res) => Some(res),
        Err(e) if gate.can_spill(&e) => {
            gate.stats.count_budget_downgrade();
            obs.recorder.add(obs.worker, Counter::BudgetDowngrades, 1);
            obs.tracer.instant(
                obs.worker,
                "partition_spill",
                &[("level", level as u64), ("rows", rows as u64)],
            );
            None
        }
        Err(e) => return Err(e),
    };
    let hasher = Murmur2::default();
    let t0 = obs.tracer.now();
    let mut pm = PartitionMetrics::default();

    // Key pass. Skip the mapping entirely for DISTINCT-style queries.
    let mut key_parts = if n_cols == 0 {
        partition_keys_observed(view.key_slices(from_row), hasher, level, &mut pm)
    } else {
        mapping.clear();
        mapping.reserve(rows);
        partition_keys_mapped_observed(view.key_slices(from_row), hasher, level, mapping, &mut pm)
    };

    // Value passes: scatter every state column by the recorded digits.
    let mut col_parts: Vec<_> = (0..n_cols)
        .map(|i| scatter_by_digits_observed(mapping, view.col_slices(i, from_row), &mut pm))
        .collect();

    gate.stats.add_part_rows(level, rows as u64);
    obs.recorder.add(obs.worker, Counter::PartRows, rows as u64);
    obs.recorder.add(obs.worker, Counter::SwcFlushes, pm.swc_flushes);
    obs.recorder.add(obs.worker, Counter::SwcFlushBytes, pm.swc_flush_bytes);
    if obs.recorder.is_enabled() {
        // Per-digit skew: largest partition as % of the mean (100 = even).
        let max_len = key_parts.iter().map(|p| p.len()).max().unwrap_or(0) as u64;
        obs.recorder.observe(
            obs.worker,
            Hist::PartitionSkewPct,
            max_len * key_parts.len() as u64 * 100 / rows as u64,
        );
    }
    obs.tracer.span_args(
        obs.worker,
        "partition_run",
        t0,
        &[("rows", rows as u64), ("level", level as u64)],
    );

    let aggregated = view.aggregated();
    // In the spill-downgrade case the pass's output runs flush as ONE
    // batch into a single shared spill file: the pass is one logical
    // flush, and per-digit files would pay an inode creation each — the
    // dominant cost of small spills on some filesystems. The collected
    // batch is the pass's own transient output, which the downgrade
    // already runs on unaccounted memory.
    let mut spill_digits: Vec<usize> = Vec::new();
    let mut spill_runs: Vec<Run> = Vec::new();
    for digit in 0..key_parts.len() {
        if key_parts[digit].is_empty() {
            continue;
        }
        let keys = std::mem::take(&mut key_parts[digit]);
        let n = keys.len();
        let cols = col_parts.iter_mut().map(|cp| std::mem::take(&mut cp[digit])).collect();
        let run = Run { keys, cols, aggregated, source_rows: n as u64, level: level + 1 };
        match &mut res {
            Some(res) => {
                let run_res = res.take(run.mem_bytes());
                sink.push_run(digit, RunHandle::Mem(run), run_res);
            }
            None => {
                spill_digits.push(digit);
                spill_runs.push(run);
            }
        }
    }
    if !spill_runs.is_empty() {
        let handles = gate.spill_batch(spill_runs, obs)?;
        for (digit, handle) in spill_digits.into_iter().zip(handles) {
            sink.push_run(digit, handle, Reservation::empty());
        }
    }
    // Spill time inside the emit loop was attributed to its own phase by
    // the nested-time accounting; this cell holds the pure partition cost.
    obs.phase_end(pt, rows as u64, rows as u64, pm.swc_flush_bytes);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::LocalBuckets;
    use crate::stats::AtomicStats;
    use hsa_columnar::RunStore;
    use hsa_fault::{FaultInjector, MemoryBudget};
    use hsa_hash::{digit, Hasher64};

    macro_rules! open_gate {
        ($stats:expr) => {
            Gate {
                budget: &MemoryBudget::unlimited(),
                faults: &FaultInjector::none(),
                stats: $stats,
                store: &RunStore::in_memory(),
            }
        };
    }

    #[test]
    fn partitions_raw_input_with_columns() {
        let keys: Vec<u64> = (0..10_000u64).map(|i| i * 2654435761 % 1000).collect();
        let vals: Vec<u64> = (0..10_000).collect();
        let view = RunView::Borrowed { keys: &keys, cols: vec![&vals], aggregated: false };
        let mut sink = LocalBuckets::new();
        let stats = AtomicStats::default();
        let mut mapping = Vec::new();
        partition_run(
            &view,
            0,
            0,
            1,
            &mut mapping,
            &mut sink,
            open_gate!(&stats),
            &Obs::disabled(),
        )
        .unwrap();

        let h = Murmur2::default();
        let mut total = 0usize;
        for (d, bucket, _res) in sink.into_nonempty() {
            for handle in bucket {
                let run = handle.into_run().unwrap();
                assert!(!run.aggregated);
                assert_eq!(run.level, 1);
                run.check_consistent().unwrap();
                total += run.len();
                // Every key belongs to the digit; its value travelled along.
                let ks = run.keys.to_vec();
                let vs = run.cols[0].to_vec();
                for (k, v) in ks.iter().zip(&vs) {
                    assert_eq!(digit(h.hash_u64(*k), 0), d);
                    // vals[i] == i and keys derived from i:
                    assert_eq!(*k, *v * 2654435761 % 1000);
                }
            }
        }
        assert_eq!(total, keys.len());
        assert_eq!(stats.snapshot().part_rows_per_level[0], 10_000);
    }

    #[test]
    fn partitions_suffix_only() {
        let keys: Vec<u64> = (0..1000).collect();
        let view = RunView::Borrowed { keys: &keys, cols: vec![], aggregated: false };
        let mut sink = LocalBuckets::new();
        let stats = AtomicStats::default();
        let mut mapping = Vec::new();
        partition_run(
            &view,
            900,
            0,
            0,
            &mut mapping,
            &mut sink,
            open_gate!(&stats),
            &Obs::disabled(),
        )
        .unwrap();
        let total: usize =
            sink.into_nonempty().map(|(_, b, _)| b.iter().map(RunHandle::len).sum::<usize>()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn empty_suffix_is_noop() {
        let keys: Vec<u64> = (0..10).collect();
        let view = RunView::Borrowed { keys: &keys, cols: vec![], aggregated: false };
        let mut sink = LocalBuckets::new();
        let stats = AtomicStats::default();
        let mut mapping = Vec::new();
        partition_run(
            &view,
            10,
            0,
            0,
            &mut mapping,
            &mut sink,
            open_gate!(&stats),
            &Obs::disabled(),
        )
        .unwrap();
        assert!(sink.is_empty());
    }

    #[test]
    fn aggregated_flag_is_preserved() {
        use hsa_columnar::ChunkedVec;
        let run = Run {
            keys: ChunkedVec::from_slice(&[1, 2, 3]),
            cols: vec![ChunkedVec::from_slice(&[5, 5, 5])],
            aggregated: true,
            source_rows: 30,
            level: 1,
        };
        let view = RunView::Owned(run);
        let mut sink = LocalBuckets::new();
        let stats = AtomicStats::default();
        let mut mapping = Vec::new();
        partition_run(
            &view,
            0,
            1,
            1,
            &mut mapping,
            &mut sink,
            open_gate!(&stats),
            &Obs::disabled(),
        )
        .unwrap();
        for (_, bucket, _res) in sink.into_nonempty() {
            for r in bucket {
                assert!(r.aggregated(), "partitioning must not clear the flag");
                assert_eq!(r.level(), 2);
            }
        }
    }

    #[test]
    fn denied_budget_aborts_the_pass() {
        let keys: Vec<u64> = (0..1000).collect();
        let view = RunView::Borrowed { keys: &keys, cols: vec![], aggregated: false };
        let mut sink = LocalBuckets::new();
        let stats = AtomicStats::default();
        let mut mapping = Vec::new();
        let budget = MemoryBudget::limited(100);
        let faults = FaultInjector::none();
        let store = RunStore::in_memory();
        let gate = Gate { budget: &budget, faults: &faults, stats: &stats, store: &store };
        let err = partition_run(&view, 0, 0, 0, &mut mapping, &mut sink, gate, &Obs::disabled())
            .unwrap_err();
        assert!(matches!(err, AggError::BudgetExceeded { limit: 100, .. }));
        assert!(sink.is_empty());
        assert_eq!(budget.outstanding(), 0);
    }

    #[test]
    fn denied_pass_spills_every_output_when_a_dir_is_configured() {
        let dir = std::env::temp_dir().join(format!("hsa-part-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let keys: Vec<u64> = (0..2000u64).map(|i| i * 2654435761 % 500).collect();
        let vals: Vec<u64> = (0..2000).collect();
        let view = RunView::Borrowed { keys: &keys, cols: vec![&vals], aggregated: false };
        let mut sink = LocalBuckets::new();
        let stats = AtomicStats::default();
        let mut mapping = Vec::new();
        let budget = MemoryBudget::limited(100);
        let faults = FaultInjector::none();
        let store = RunStore::spilling_to(&dir).unwrap();
        let gate = Gate { budget: &budget, faults: &faults, stats: &stats, store: &store };
        partition_run(&view, 0, 0, 1, &mut mapping, &mut sink, gate, &Obs::disabled()).unwrap();
        assert_eq!(budget.outstanding(), 0);

        let h = Murmur2::default();
        let mut total = 0usize;
        for (d, bucket, res) in sink.into_nonempty() {
            assert_eq!(res.bytes(), 0, "spilled runs hold no reservation");
            for handle in bucket {
                assert!(handle.is_spilled());
                let run = handle.into_run().unwrap();
                run.check_consistent().unwrap();
                total += run.len();
                for k in run.keys.to_vec() {
                    assert_eq!(digit(h.hash_u64(k), 0), d);
                }
            }
        }
        assert_eq!(total, keys.len());
        let s = stats.snapshot();
        assert!(s.spilled_runs() > 0);
        assert_eq!(s.budget_downgrades, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
