//! Strategy selection: the §5 state machine.

/// Tuning constants of the [`Strategy::Adaptive`] strategy, determined
//  empirically in the paper's Appendix A.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct AdaptiveParams {
    /// Reduction-factor threshold `α₀`: a sealed table that reduced its
    /// input by less than this factor signals too little locality for
    /// early aggregation. Appendix A.1 measures the cross-over of the two
    /// routines at `α ∈ [7, 16]` and picks ≈ 11.
    pub alpha0: f64,
    /// After switching to partitioning, process `c · cache` rows before
    /// probing with hashing again (trade-off between amortizing the probe
    /// and reacting to distribution changes; Appendix A.2 picks 10).
    pub c: f64,
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        Self { alpha0: 11.0, c: 10.0 }
    }
}

/// Routine-selection strategy for the operator.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Strategy {
    /// Always use `HASHING` (Figure 4a): correct and automatically
    /// recursive, but pays hash-table speed even when early aggregation
    /// never merges anything.
    HashingOnly,
    /// `passes` partitioning passes, then one hashing pass with a table
    /// that may grow beyond the cache (Figure 4b/c). Needs external
    /// knowledge of K to pick `passes`; kept as the illustrative baseline.
    PartitionAlways {
        /// Number of partitioning passes before the final hashing pass.
        passes: u32,
    },
    /// The paper's operator: switch per thread, at table-seal granularity,
    /// on the observed reduction factor.
    Adaptive(AdaptiveParams),
}

/// What the hashing kernel should do after sealing a full table.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum SealDecision {
    /// Keep hashing into a fresh table.
    ContinueHashing,
    /// Partition the rest of the current run (and subsequent input) until
    /// the switch-back budget is consumed.
    SwitchToPartitioning,
}

/// Per-task (or per-worker) mode state.
#[derive(Debug)]
pub(crate) struct ModeState {
    strategy: Strategy,
    partitioning: bool,
    /// Rows of partitioning left before switching back to hashing.
    rows_left: i64,
}

impl ModeState {
    pub(crate) fn new(strategy: Strategy) -> Self {
        Self { strategy, partitioning: false, rows_left: 0 }
    }

    /// Should the next rows at `level` be hashed (vs partitioned)?
    pub(crate) fn use_hashing(&self, level: u32) -> bool {
        match self.strategy {
            Strategy::HashingOnly => true,
            Strategy::PartitionAlways { passes } => level >= passes,
            Strategy::Adaptive(_) => !self.partitioning,
        }
    }

    /// A table just sealed after absorbing `epoch_rows` input rows into
    /// `groups` groups; `table_rows` is the table's slot count (the §5
    /// "cache" unit for the switch-back budget).
    pub(crate) fn on_seal(
        &mut self,
        epoch_rows: u64,
        groups: usize,
        table_rows: usize,
    ) -> SealDecision {
        match self.strategy {
            Strategy::HashingOnly | Strategy::PartitionAlways { .. } => {
                SealDecision::ContinueHashing
            }
            Strategy::Adaptive(p) => {
                let alpha = epoch_rows as f64 / groups.max(1) as f64;
                if alpha < p.alpha0 {
                    self.partitioning = true;
                    self.rows_left = (p.c * table_rows as f64) as i64;
                    SealDecision::SwitchToPartitioning
                } else {
                    SealDecision::ContinueHashing
                }
            }
        }
    }

    /// `rows` were processed by partitioning; switch back once the budget
    /// is consumed ("in case the distribution has changed"). Returns true
    /// if this call flipped the mode back to hashing.
    pub(crate) fn on_partitioned(&mut self, rows: u64) -> bool {
        if self.partitioning {
            self.rows_left -= rows as i64;
            if self.rows_left <= 0 {
                self.partitioning = false;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashing_only_never_switches() {
        let mut m = ModeState::new(Strategy::HashingOnly);
        assert!(m.use_hashing(0));
        assert_eq!(m.on_seal(10, 10, 1000), SealDecision::ContinueHashing);
        assert!(m.use_hashing(5));
    }

    #[test]
    fn partition_always_switches_on_level() {
        let m = ModeState::new(Strategy::PartitionAlways { passes: 2 });
        assert!(!m.use_hashing(0));
        assert!(!m.use_hashing(1));
        assert!(m.use_hashing(2));
        assert!(m.use_hashing(3));
    }

    #[test]
    fn adaptive_switches_on_low_alpha() {
        let mut m = ModeState::new(Strategy::Adaptive(AdaptiveParams { alpha0: 4.0, c: 2.0 }));
        assert!(m.use_hashing(0));
        // α = 100/10 = 10 ≥ 4: keep hashing.
        assert_eq!(m.on_seal(100, 10, 1000), SealDecision::ContinueHashing);
        assert!(m.use_hashing(0));
        // α = 15/10 = 1.5 < 4: switch.
        assert_eq!(m.on_seal(15, 10, 1000), SealDecision::SwitchToPartitioning);
        assert!(!m.use_hashing(0));
    }

    #[test]
    fn adaptive_switches_back_after_budget() {
        let mut m = ModeState::new(Strategy::Adaptive(AdaptiveParams { alpha0: 4.0, c: 2.0 }));
        m.on_seal(10, 10, 1000); // α = 1 → partitioning, budget = 2000 rows
        assert!(!m.use_hashing(0));
        assert!(!m.on_partitioned(1500));
        assert!(!m.use_hashing(0));
        assert!(m.on_partitioned(600)); // budget exhausted
        assert!(m.use_hashing(0));
    }

    #[test]
    fn on_partitioned_is_noop_while_hashing() {
        let mut m = ModeState::new(Strategy::Adaptive(AdaptiveParams::default()));
        assert!(!m.on_partitioned(1_000_000));
        assert!(m.use_hashing(0));
    }

    #[test]
    fn alpha_handles_empty_table() {
        // groups == 0 must not divide by zero.
        let mut m = ModeState::new(Strategy::Adaptive(AdaptiveParams::default()));
        let _ = m.on_seal(0, 0, 1000);
    }
}
