//! The `HASHING` routine (Algorithm 1, lines 5–8) in column-wise form.
//!
//! One run is processed in cache-sized blocks. For each block the key pass
//! inserts keys into the table and records the slot of every row in a
//! mapping vector (§3.3, Figure 2); then each state column is folded into
//! the table's corresponding slot-indexed array in its own tight loop. The
//! mapping never leaves the cache: it covers one block only.
//!
//! When the table reports `Full`, the pending part of the block is applied,
//! the table is sealed into per-digit runs (early-aggregated intermediate
//! results), and the strategy decides whether to continue hashing into the
//! now-empty table or to hand the rest of the run to `PARTITIONING`.

use crate::adaptive::{ModeState, SealDecision};
use crate::exec::Gate;
use crate::obs::{flush_table_metrics, Obs};
use crate::sink::RunSink;
use crate::view::RunView;
use hsa_agg::StateOp;
use hsa_columnar::{ChunkedVec, Run, RunHandle};
use hsa_fault::{AggError, Reservation};
use hsa_hash::{Hasher64, Murmur2};
use hsa_hashtbl::{AggTable, Insert};
use hsa_kernels::KernelKind;
use hsa_obs::{Counter, Hist, Phase};

/// Outcome of hashing (part of) a run.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum HashOutcome {
    /// All rows from the starting offset were absorbed.
    Done,
    /// The strategy switched to partitioning; rows `next_row..` of the run
    /// are unprocessed.
    Switched {
        /// First unprocessed row.
        next_row: usize,
    },
}

/// Upper estimate of the bytes `seal_into` materializes: the emitted runs'
/// key + state chunks plus per-digit chunk slack (each non-empty digit gets
/// its own `ChunkedVec`s whose capacities may exceed their lengths).
fn seal_bytes_upper(groups: u64, n_cols: usize) -> u64 {
    let per_value = 8 * (1 + n_cols as u64);
    let digits = groups.min(256);
    digits * 64 * per_value + 2 * groups * per_value
}

/// Seal `table` into `sink` as early-aggregated runs at `table.level() + 1`.
///
/// Reserves an upper estimate of the emitted runs' memory from the budget
/// first; each run carries an exact-sized slice of that reservation into
/// the sink and the transient remainder is released on return. When the
/// reservation is denied degradably and a spill directory is configured,
/// the denial is downgraded: the sealed runs are flushed to the spill
/// store instead and travel as disk-backed handles with empty
/// reservations. Hard denials (injected faults, zero-byte budgets) and
/// runs without a spill directory still surface `BudgetExceeded`.
pub(crate) fn seal_into(
    table: &mut AggTable,
    sink: &mut impl RunSink,
    gate: Gate<'_>,
    obs: &Obs,
) -> Result<(), AggError> {
    let pt = obs.phase_start(table.level(), Phase::Seal);
    let groups = table.len() as u64;
    let mut res = match gate.reserve(seal_bytes_upper(groups, table.n_cols()), obs) {
        Ok(res) => Some(res),
        Err(e) if gate.can_spill(&e) => {
            gate.stats.count_budget_downgrade();
            obs.recorder.add(obs.worker, Counter::BudgetDowngrades, 1);
            obs.tracer.instant(
                obs.worker,
                "seal_spill",
                &[("level", table.level() as u64), ("groups", groups)],
            );
            None
        }
        Err(e) => return Err(e),
    };
    obs.recorder.observe(
        obs.worker,
        Hist::SealFillPct,
        groups * 100 / table.total_slots().max(1) as u64,
    );
    let next_level = table.level() + 1;
    // In the spill-downgrade case the sealed sub-runs are collected and
    // flushed as ONE batch into a single shared spill file: the seal is
    // one logical flush, and per-digit files would pay an inode creation
    // each — the dominant cost of small spills on some filesystems. The
    // batch is transient double-residency of the table's own content
    // (the table is cleared by the seal), bounded by the table the
    // budget already admitted.
    let mut spill_digits: Vec<usize> = Vec::new();
    let mut spill_runs: Vec<Run> = Vec::new();
    table.seal(|digit, keys, cols| {
        let run = Run {
            keys: ChunkedVec::from_slice(keys),
            cols: cols.iter().map(|c| ChunkedVec::from_slice(c)).collect(),
            aggregated: true,
            source_rows: keys.len() as u64,
            level: next_level,
        };
        match &mut res {
            Some(res) => {
                let run_res = res.take(run.mem_bytes());
                sink.push_run(digit, RunHandle::Mem(run), run_res);
            }
            None => {
                spill_digits.push(digit);
                spill_runs.push(run);
            }
        }
    });
    if !spill_runs.is_empty() {
        let handles = gate.spill_batch(spill_runs, obs)?;
        for (digit, handle) in spill_digits.into_iter().zip(handles) {
            sink.push_run(digit, handle, Reservation::empty());
        }
    }
    gate.stats.count_seal();
    obs.recorder.add(obs.worker, Counter::TablesSealed, 1);
    flush_table_metrics(obs, table);
    obs.tracer.instant(obs.worker, "seal", &[("level", next_level as u64 - 1), ("groups", groups)]);
    // Spill time inside the seal was attributed to its own phase by the
    // nested-time accounting; this cell holds the pure seal cost.
    obs.phase_end(pt, groups, groups, 0);
    Ok(())
}

/// Hash rows `[from_row..]` of `view` into `table`.
///
/// `epoch_rows` counts rows absorbed since the current table was last
/// empty — it persists across runs of the same bucket (and across level-0
/// morsels of the same worker) because that is the `n_in` of the §5
/// reduction factor.
#[allow(clippy::too_many_arguments)]
pub(crate) fn hash_run(
    view: &RunView<'_>,
    from_row: usize,
    table: &mut AggTable,
    ops: &[StateOp],
    mode: &mut ModeState,
    epoch_rows: &mut u64,
    mapping: &mut Vec<u32>,
    sink: &mut impl RunSink,
    gate: Gate<'_>,
    obs: &Obs,
    kind: KernelKind,
) -> Result<HashOutcome, AggError> {
    let hasher = Murmur2::default();
    let aggregated = view.aggregated();
    let n = view.len();
    let level = table.level();
    let batched = kind != KernelKind::Scalar;
    let mut row = from_row;

    // One phase span covers the whole call, not each aligned block: deep
    // levels hash thousands of tiny blocks and per-block clock reads are
    // measurable. Seals (and their spills) triggered mid-loop open nested
    // spans; the nested-time accounting keeps this span's exclusive time
    // pure hash-insert.
    let pt = obs.phase_start(level, Phase::HashInsert);
    let mut span_in = 0u64;
    let mut span_out = 0u64;

    while row < n {
        let block_len = view.aligned_block_len(row, ops.len());
        debug_assert!(block_len > 0, "empty aligned block at row {row}/{n}");
        let keys = &view.key_tail(row)[..block_len];
        let groups_before = table.len() as u64;

        mapping.clear();
        let mut table_full = false;
        let consumed;
        if batched {
            // Batched key pass: hash a block of keys up front, prefetch
            // their home slots, then resolve probes with the SIMD scan.
            let b = if ops.is_empty() {
                table.insert_batch_distinct(hasher, keys, kind)
            } else {
                table.insert_batch(hasher, keys, kind, mapping)
            };
            consumed = b.consumed;
            table_full = b.full;
        } else if ops.is_empty() {
            // DISTINCT fast path: no state columns, no mapping needed.
            let mut done = 0usize;
            for &key in keys {
                match table.insert_key(key, hasher.hash_u64(key)) {
                    Insert::New(_) | Insert::Hit(_) => done += 1,
                    Insert::Full => {
                        table_full = true;
                        break;
                    }
                }
            }
            consumed = done;
        } else {
            for &key in keys {
                match table.insert_key(key, hasher.hash_u64(key)) {
                    Insert::New(slot) | Insert::Hit(slot) => mapping.push(slot),
                    Insert::Full => {
                        table_full = true;
                        break;
                    }
                }
            }
            consumed = mapping.len();
        }

        // Fold the block's values into the state columns, one column at a
        // time (tight loops; the mapping is cache resident). The kernel
        // tiers are bit-identical; `Scalar` is the reference loop.
        for (i, &op) in ops.iter().enumerate() {
            let vals = &view.col_tail(i, row)[..consumed];
            let col = table.col_mut(i);
            hsa_agg::fold_column(kind, op, aggregated, col, mapping, vals);
        }

        *epoch_rows += consumed as u64;
        gate.stats.add_hash_rows(level, consumed as u64);
        gate.stats.add_kernel_rows(batched, consumed as u64);
        obs.recorder.add(obs.worker, Counter::HashRows, consumed as u64);
        obs.recorder.add(
            obs.worker,
            if batched { Counter::KernelBatchedRows } else { Counter::KernelScalarRows },
            consumed as u64,
        );
        row += consumed;
        // rows_out accumulates the *new* groups: summed per level this
        // yields the level's observed reduction factor α = rows_in/rows_out.
        span_in += consumed as u64;
        span_out += table.len() as u64 - groups_before;

        if table_full {
            // The reduction factor the strategy judges (§5): rows absorbed
            // this epoch per group produced.
            let alpha = *epoch_rows as f64 / table.len().max(1) as f64;
            obs.recorder.record_alpha(obs.worker, alpha);
            let decision = mode.on_seal(*epoch_rows, table.len(), table.total_slots());
            seal_into(table, sink, gate, obs)?;
            *epoch_rows = 0;
            if decision == SealDecision::SwitchToPartitioning {
                gate.stats.count_switch_to_partitioning();
                obs.recorder.add(obs.worker, Counter::SwitchesToPartitioning, 1);
                obs.tracer.instant(
                    obs.worker,
                    "switch_to_partitioning",
                    &[("level", level as u64), ("alpha_x100", (alpha * 100.0) as u64)],
                );
                obs.phase_end(pt, span_in, span_out, 0);
                return Ok(HashOutcome::Switched { next_row: row });
            }
            // Retry the row that hit the full table with the fresh one.
        }
    }
    obs.phase_end(pt, span_in, span_out, 0);
    Ok(HashOutcome::Done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::Strategy;
    use crate::sink::LocalBuckets;
    use crate::stats::AtomicStats;
    use hsa_columnar::RunStore;
    use hsa_fault::{FaultInjector, MemoryBudget};
    use hsa_hashtbl::TableConfig;
    use std::collections::BTreeMap;

    /// An unrestricted gate for driving the routine directly.
    macro_rules! open_gate {
        ($stats:expr) => {
            Gate {
                budget: &MemoryBudget::unlimited(),
                faults: &FaultInjector::none(),
                stats: $stats,
                store: &RunStore::in_memory(),
            }
        };
    }

    fn table(slots: usize, ops: &[StateOp]) -> AggTable {
        let ids: Vec<u64> = ops.iter().map(|&o| hsa_hashtbl::identity_of(o)).collect();
        AggTable::new(TableConfig { total_slots: slots, fill_percent: 25 }, 0, &ids)
    }

    fn drive(
        keys: &[u64],
        vals: &[u64],
        ops: &[StateOp],
        slots: usize,
    ) -> (BTreeMap<u64, Vec<u64>>, u64) {
        // Hash everything with HashingOnly, sealing as needed, then merge
        // sealed runs plus the final table via a reference fold.
        let stats = AtomicStats::default();
        let mut t = table(slots, ops);
        let mut mode = ModeState::new(Strategy::HashingOnly);
        let mut epoch = 0u64;
        let mut mapping = Vec::new();
        let mut sink = LocalBuckets::new();
        let view = RunView::Borrowed { keys, cols: vec![vals; ops.len()], aggregated: false };
        let out = hash_run(
            &view,
            0,
            &mut t,
            ops,
            &mut mode,
            &mut epoch,
            &mut mapping,
            &mut sink,
            open_gate!(&stats),
            &Obs::disabled(),
            hsa_kernels::select(Default::default()),
        )
        .unwrap();
        assert_eq!(out, HashOutcome::Done);
        seal_into(&mut t, &mut sink, open_gate!(&stats), &Obs::disabled()).unwrap();

        // Merge all emitted runs with the super-aggregate.
        let mut merged: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for (_, bucket, _res) in sink.into_nonempty() {
            for handle in bucket {
                let run = handle.into_run().unwrap();
                assert!(run.aggregated);
                assert_eq!(run.level, 1);
                run.check_consistent().unwrap();
                let ks = run.keys.to_vec();
                for (j, k) in ks.iter().enumerate() {
                    let e = merged.entry(*k).or_insert_with(|| {
                        ops.iter().map(|&o| hsa_hashtbl::identity_of(o)).collect()
                    });
                    for (i, &op) in ops.iter().enumerate() {
                        e[i] = op.merge(e[i], run.cols[i].get(j).unwrap());
                    }
                }
            }
        }
        (merged, stats.snapshot().seals)
    }

    #[test]
    fn single_table_no_seal() {
        let keys: Vec<u64> = (0..100).map(|i| i % 10).collect();
        let vals: Vec<u64> = (0..100).collect();
        let ops = [StateOp::Sum];
        let (merged, seals) = drive(&keys, &vals, &ops, 1 << 12);
        assert_eq!(seals, 1, "only the final explicit seal");
        let expect: BTreeMap<u64, Vec<u64>> =
            (0..10).map(|k| (k, vec![(0..100).filter(|i| i % 10 == k).sum::<u64>()])).collect();
        assert_eq!(merged, expect);
    }

    #[test]
    fn overflow_seals_and_stays_correct() {
        // 2^12 slots at 25% → 1024 groups per table; 5000 distinct keys
        // force multiple seals.
        let keys: Vec<u64> = (0..5000u64).chain(0..5000).collect();
        let vals = vec![1u64; keys.len()];
        let ops = [StateOp::Count, StateOp::Sum];
        let (merged, seals) = drive(&keys, &vals, &ops, 1 << 12);
        assert!(seals > 4, "expected several seals, got {seals}");
        assert_eq!(merged.len(), 5000);
        for (k, sts) in merged {
            assert_eq!(sts, vec![2, 2], "group {k}");
        }
    }

    #[test]
    fn aggregated_input_uses_merge() {
        // Feed partial COUNT states: two runs carrying counts 3 and 4 for
        // the same key must merge to 7.
        let stats = AtomicStats::default();
        let ops = [StateOp::Count];
        let mut t = table(1 << 12, &ops);
        let mut mode = ModeState::new(Strategy::HashingOnly);
        let mut epoch = 0;
        let mut mapping = Vec::new();
        let mut sink = LocalBuckets::new();
        let mk = |count: u64| {
            let mut keys = ChunkedVec::new();
            keys.push(42u64);
            let mut c = ChunkedVec::new();
            c.push(count);
            RunView::Owned(Run {
                keys,
                cols: vec![c],
                aggregated: true,
                source_rows: count,
                level: 0,
            })
        };
        for v in [mk(3), mk(4)] {
            let out = hash_run(
                &v,
                0,
                &mut t,
                &ops,
                &mut mode,
                &mut epoch,
                &mut mapping,
                &mut sink,
                open_gate!(&stats),
                &Obs::disabled(),
                hsa_kernels::select(Default::default()),
            )
            .unwrap();
            assert_eq!(out, HashOutcome::Done);
        }
        seal_into(&mut t, &mut sink, open_gate!(&stats), &Obs::disabled()).unwrap();
        let mut total = None;
        for (_, bucket, _res) in sink.into_nonempty() {
            for handle in bucket {
                let run = handle.into_run().unwrap();
                assert_eq!(run.keys.to_vec(), vec![42]);
                total = Some(run.cols[0].get(0).unwrap());
            }
        }
        assert_eq!(total, Some(7));
    }

    #[test]
    fn switch_decision_stops_mid_run() {
        // Adaptive with a huge α₀ forces a switch at the first seal.
        let stats = AtomicStats::default();
        let ops: [StateOp; 0] = [];
        let mut t = table(1 << 12, &ops);
        let mut mode = ModeState::new(Strategy::Adaptive(crate::AdaptiveParams {
            alpha0: f64::INFINITY,
            c: 10.0,
        }));
        let mut epoch = 0;
        let mut mapping = Vec::new();
        let mut sink = LocalBuckets::new();
        let keys: Vec<u64> = (0..10_000).collect();
        let view = RunView::Borrowed { keys: &keys, cols: vec![], aggregated: false };
        match hash_run(
            &view,
            0,
            &mut t,
            &ops,
            &mut mode,
            &mut epoch,
            &mut mapping,
            &mut sink,
            open_gate!(&stats),
            &Obs::disabled(),
            hsa_kernels::select(Default::default()),
        )
        .unwrap()
        {
            HashOutcome::Switched { next_row } => {
                // Exactly the table capacity was absorbed before the seal.
                assert_eq!(next_row, 1024);
            }
            HashOutcome::Done => panic!("expected a switch"),
        }
        assert!(!mode.use_hashing(0));
    }

    #[test]
    fn seal_fails_cleanly_on_denied_budget() {
        let stats = AtomicStats::default();
        let ops = [StateOp::Sum];
        let mut t = table(1 << 10, &ops);
        t.insert_key(7, Murmur2::default().hash_u64(7));
        let budget = MemoryBudget::limited(1);
        let faults = FaultInjector::none();
        let store = RunStore::in_memory();
        let gate = Gate { budget: &budget, faults: &faults, stats: &stats, store: &store };
        let mut sink = LocalBuckets::new();
        let err = seal_into(&mut t, &mut sink, gate, &Obs::disabled()).unwrap_err();
        assert!(matches!(err, AggError::BudgetExceeded { limit: 1, .. }));
        assert!(sink.is_empty(), "no run may be emitted on a denied seal");
        assert_eq!(budget.outstanding(), 0);
        assert_eq!(stats.snapshot().budget_denials, 1);
    }

    #[test]
    fn denied_seal_downgrades_to_spill_when_a_dir_is_configured() {
        let dir = std::env::temp_dir().join(format!("hsa-seal-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let stats = AtomicStats::default();
        let ops = [StateOp::Sum];
        let mut t = table(1 << 10, &ops);
        let h = Murmur2::default();
        for key in [7u64, 8, 9] {
            if let Insert::New(slot) | Insert::Hit(slot) = t.insert_key(key, h.hash_u64(key)) {
                hsa_agg::fold_column(
                    KernelKind::Scalar,
                    StateOp::Sum,
                    false,
                    t.col_mut(0),
                    &[slot],
                    &[key * 10],
                );
            }
        }
        let budget = MemoryBudget::limited(1);
        let faults = FaultInjector::none();
        let store = RunStore::spilling_to(&dir).unwrap();
        let gate = Gate { budget: &budget, faults: &faults, stats: &stats, store: &store };
        let mut sink = LocalBuckets::new();
        seal_into(&mut t, &mut sink, gate, &Obs::disabled()).unwrap();
        assert_eq!(budget.outstanding(), 0, "spilled runs hold no reservation");
        let mut rows = BTreeMap::new();
        for (_, bucket, res) in sink.into_nonempty() {
            assert_eq!(res.bytes(), 0);
            for handle in bucket {
                assert!(handle.is_spilled());
                let run = handle.into_run().unwrap();
                for (j, k) in run.keys.to_vec().into_iter().enumerate() {
                    rows.insert(k, run.cols[0].get(j).unwrap());
                }
            }
        }
        assert_eq!(rows, BTreeMap::from([(7, 70), (8, 80), (9, 90)]));
        let s = stats.snapshot();
        assert!(s.spilled_runs() > 0);
        assert!(s.spilled_bytes > 0);
        assert_eq!(s.budget_denials, 1);
        assert_eq!(s.budget_downgrades, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
