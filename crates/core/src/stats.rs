//! Execution statistics: what the paper's pass-breakdown and adaptation
//! plots (Figures 4, 5, 9) are made of.

use hsa_hash::MAX_LEVEL;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-level, lock-free accumulation; snapshotted into [`OpStats`] at the
/// end of the operator.
#[derive(Debug, Default)]
pub(crate) struct AtomicStats {
    hash_rows: [AtomicU64; MAX_LEVEL as usize + 1],
    part_rows: [AtomicU64; MAX_LEVEL as usize + 1],
    level_nanos: [AtomicU64; MAX_LEVEL as usize + 1],
    seals: AtomicU64,
    switches_to_partitioning: AtomicU64,
    switches_to_hashing: AtomicU64,
    fallback_merges: AtomicU64,
    budget_denials: AtomicU64,
    budget_downgrades: AtomicU64,
    cancellations: AtomicU64,
    contained_panics: AtomicU64,
    kernel_batched_rows: AtomicU64,
    kernel_scalar_rows: AtomicU64,
    spilled_runs: [AtomicU64; MAX_LEVEL as usize + 1],
    spilled_bytes: AtomicU64,
    restored_runs: AtomicU64,
    restored_bytes: AtomicU64,
}

impl AtomicStats {
    pub(crate) fn add_hash_rows(&self, level: u32, rows: u64) {
        self.hash_rows[level as usize].fetch_add(rows, Ordering::Relaxed);
    }

    pub(crate) fn add_part_rows(&self, level: u32, rows: u64) {
        self.part_rows[level as usize].fetch_add(rows, Ordering::Relaxed);
    }

    pub(crate) fn add_level_nanos(&self, level: u32, nanos: u64) {
        self.level_nanos[level as usize].fetch_add(nanos, Ordering::Relaxed);
    }

    pub(crate) fn count_seal(&self) {
        self.seals.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_switch_to_partitioning(&self) {
        self.switches_to_partitioning.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_switch_to_hashing(&self) {
        self.switches_to_hashing.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_fallback_merge(&self) {
        self.fallback_merges.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_budget_denial(&self) {
        self.budget_denials.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_budget_downgrade(&self) {
        self.budget_downgrades.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_cancellation(&self) {
        self.cancellations.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_contained_panic(&self) {
        self.contained_panics.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_kernel_rows(&self, batched: bool, rows: u64) {
        if batched {
            self.kernel_batched_rows.fetch_add(rows, Ordering::Relaxed);
        } else {
            self.kernel_scalar_rows.fetch_add(rows, Ordering::Relaxed);
        }
    }

    pub(crate) fn count_spilled_run(&self, level: u32, bytes: u64) {
        self.spilled_runs[(level as usize).min(MAX_LEVEL as usize)].fetch_add(1, Ordering::Relaxed);
        self.spilled_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn count_restored_run(&self, bytes: u64) {
        self.restored_runs.fetch_add(1, Ordering::Relaxed);
        self.restored_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> OpStats {
        let take = |a: &[AtomicU64]| a.iter().map(|x| x.load(Ordering::Relaxed)).collect();
        OpStats {
            hash_rows_per_level: take(&self.hash_rows),
            part_rows_per_level: take(&self.part_rows),
            task_nanos_per_level: take(&self.level_nanos),
            seals: self.seals.load(Ordering::Relaxed),
            switches_to_partitioning: self.switches_to_partitioning.load(Ordering::Relaxed),
            switches_to_hashing: self.switches_to_hashing.load(Ordering::Relaxed),
            fallback_merges: self.fallback_merges.load(Ordering::Relaxed),
            budget_denials: self.budget_denials.load(Ordering::Relaxed),
            budget_downgrades: self.budget_downgrades.load(Ordering::Relaxed),
            cancellations: self.cancellations.load(Ordering::Relaxed),
            contained_panics: self.contained_panics.load(Ordering::Relaxed),
            kernel_batched_rows: self.kernel_batched_rows.load(Ordering::Relaxed),
            kernel_scalar_rows: self.kernel_scalar_rows.load(Ordering::Relaxed),
            spilled_runs_per_level: take(&self.spilled_runs),
            spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
            restored_runs: self.restored_runs.load(Ordering::Relaxed),
            restored_bytes: self.restored_bytes.load(Ordering::Relaxed),
            // Owned by the budget / run store, not these cells: the driver
            // copies their marks in after snapshotting.
            budget_high_water_bytes: 0,
            spill_retries: 0,
            restore_retries: 0,
            spill_io_abandons: 0,
            spill_reclaimed_files: 0,
            spill_reclaimed_bytes: 0,
            disk_budget_denials: 0,
            disk_high_water_bytes: 0,
            spill_encoded_bytes: 0,
            overlapped_io_nanos: 0,
            spill_io_wait_nanos: 0,
        }
    }
}

/// Statistics of one operator invocation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Rows consumed by the `HASHING` routine, per recursion level.
    pub hash_rows_per_level: Vec<u64>,
    /// Rows consumed by the `PARTITIONING` routine, per recursion level.
    pub part_rows_per_level: Vec<u64>,
    /// **CPU** time attributed to each level: per-task elapsed nanoseconds
    /// summed over all tasks of that level, across all workers. Because
    /// tasks of different levels run concurrently, these are *not* wall
    /// times and may sum to far more than the run's wall clock — divide by
    /// the thread count for an approximate wall share.
    pub task_nanos_per_level: Vec<u64>,
    /// Hash tables sealed because they were full.
    pub seals: u64,
    /// Adaptive switches hashing → partitioning.
    pub switches_to_partitioning: u64,
    /// Adaptive switches partitioning → hashing (budget exhausted).
    pub switches_to_hashing: u64,
    /// Buckets merged by the growable fallback table (hash digits
    /// exhausted, or the final pass of `PartitionAlways`).
    pub fallback_merges: u64,
    /// Memory reservations denied by the budget (or fault injection).
    pub budget_denials: u64,
    /// Degradations taken in response to denials: hash tables shrunk
    /// below the configured size or morsels forced to partitioning.
    pub budget_downgrades: u64,
    /// Tasks that observed a cancellation request and stopped early.
    pub cancellations: u64,
    /// Worker panics contained by the task scope (the operator returned
    /// `AggError::WorkerPanic` instead of unwinding the caller).
    pub contained_panics: u64,
    /// Rows whose `HASHING` hot loops ran through the batched
    /// (prefetch-pipelined / SIMD) kernels.
    pub kernel_batched_rows: u64,
    /// Rows whose `HASHING` hot loops ran through the scalar reference
    /// kernels.
    pub kernel_scalar_rows: u64,
    /// Runs flushed to the spill store, per recursion level (a denied
    /// reservation downgraded to out-of-core storage instead of failing).
    pub spilled_runs_per_level: Vec<u64>,
    /// Bytes written to spill files.
    pub spilled_bytes: u64,
    /// Spilled runs read back for consumption.
    pub restored_runs: u64,
    /// Bytes read back from spill files.
    pub restored_bytes: u64,
    /// Peak concurrently reserved bytes the memory budget saw during the
    /// invocation (0 when the budget is unlimited).
    pub budget_high_water_bytes: u64,
    /// Spill writes re-attempted after a transient I/O error.
    pub spill_retries: u64,
    /// Spill restores re-attempted after a transient I/O error.
    pub restore_retries: u64,
    /// Spill operations abandoned: a permanent I/O error, detected
    /// corruption, or retries exhausted.
    pub spill_io_abandons: u64,
    /// Orphaned spill files (from dead processes) reclaimed when the
    /// spill directory was opened.
    pub spill_reclaimed_files: u64,
    /// Bytes those reclaimed files occupied.
    pub spill_reclaimed_bytes: u64,
    /// Spill-space reservations denied by the disk budget.
    pub disk_budget_denials: u64,
    /// Peak concurrently reserved spill bytes the disk budget saw (0 when
    /// unlimited or spilling is off).
    pub disk_high_water_bytes: u64,
    /// Bytes actually written to spill files after per-extent compression
    /// (`spilled_bytes` counts the uncompressed column payloads; the ratio
    /// of the two is the spill compression ratio).
    pub spill_encoded_bytes: u64,
    /// Background spill I/O time that ran concurrently with compute:
    /// nanoseconds the store's I/O workers spent writing and prefetching
    /// minus the time compute threads spent blocked waiting on them.
    pub overlapped_io_nanos: u64,
    /// Nanoseconds compute threads spent blocked on in-flight spill I/O
    /// (the un-overlapped remainder of the async pipeline).
    pub spill_io_wait_nanos: u64,
}

impl OpStats {
    /// Number of passes that actually processed rows.
    pub fn passes_used(&self) -> usize {
        let used = |v: &[u64]| v.iter().rposition(|&r| r > 0).map_or(0, |i| i + 1);
        used(&self.hash_rows_per_level).max(used(&self.part_rows_per_level))
    }

    /// Total rows routed through hashing (all levels).
    pub fn total_hash_rows(&self) -> u64 {
        self.hash_rows_per_level.iter().sum()
    }

    /// Total rows routed through partitioning (all levels).
    pub fn total_part_rows(&self) -> u64 {
        self.part_rows_per_level.iter().sum()
    }

    /// Total runs spilled to disk (all levels).
    pub fn spilled_runs(&self) -> u64 {
        self.spilled_runs_per_level.iter().sum()
    }

    /// Fold another invocation's statistics into this one (for averaging
    /// repeated runs or combining sharded operators).
    pub fn merge(&mut self, other: &OpStats) {
        fn add_levels(dst: &mut Vec<u64>, src: &[u64]) {
            if dst.len() < src.len() {
                dst.resize(src.len(), 0);
            }
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        add_levels(&mut self.hash_rows_per_level, &other.hash_rows_per_level);
        add_levels(&mut self.part_rows_per_level, &other.part_rows_per_level);
        add_levels(&mut self.task_nanos_per_level, &other.task_nanos_per_level);
        add_levels(&mut self.spilled_runs_per_level, &other.spilled_runs_per_level);
        self.seals += other.seals;
        self.switches_to_partitioning += other.switches_to_partitioning;
        self.switches_to_hashing += other.switches_to_hashing;
        self.fallback_merges += other.fallback_merges;
        self.budget_denials += other.budget_denials;
        self.budget_downgrades += other.budget_downgrades;
        self.cancellations += other.cancellations;
        self.contained_panics += other.contained_panics;
        self.kernel_batched_rows += other.kernel_batched_rows;
        self.kernel_scalar_rows += other.kernel_scalar_rows;
        self.spilled_bytes += other.spilled_bytes;
        self.restored_runs += other.restored_runs;
        self.restored_bytes += other.restored_bytes;
        self.spill_retries += other.spill_retries;
        self.restore_retries += other.restore_retries;
        self.spill_io_abandons += other.spill_io_abandons;
        self.spill_reclaimed_files += other.spill_reclaimed_files;
        self.spill_reclaimed_bytes += other.spill_reclaimed_bytes;
        self.disk_budget_denials += other.disk_budget_denials;
        self.spill_encoded_bytes += other.spill_encoded_bytes;
        self.overlapped_io_nanos += other.overlapped_io_nanos;
        self.spill_io_wait_nanos += other.spill_io_wait_nanos;
        // Peaks don't add: merged invocations report the highest mark.
        self.budget_high_water_bytes =
            self.budget_high_water_bytes.max(other.budget_high_water_bytes);
        self.disk_high_water_bytes = self.disk_high_water_bytes.max(other.disk_high_water_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip() {
        let a = AtomicStats::default();
        a.add_hash_rows(0, 100);
        a.add_hash_rows(1, 50);
        a.add_part_rows(0, 30);
        a.add_level_nanos(0, 999);
        a.count_seal();
        a.count_switch_to_partitioning();
        a.count_fallback_merge();
        a.count_budget_denial();
        a.count_budget_downgrade();
        a.count_cancellation();
        a.count_contained_panic();
        a.add_kernel_rows(true, 80);
        a.add_kernel_rows(false, 20);
        a.count_spilled_run(2, 4096);
        a.count_restored_run(4096);
        let s = a.snapshot();
        assert_eq!(s.hash_rows_per_level[0], 100);
        assert_eq!(s.hash_rows_per_level[1], 50);
        assert_eq!(s.part_rows_per_level[0], 30);
        assert_eq!(s.task_nanos_per_level[0], 999);
        assert_eq!(s.seals, 1);
        assert_eq!(s.switches_to_partitioning, 1);
        assert_eq!(s.fallback_merges, 1);
        assert_eq!(s.budget_denials, 1);
        assert_eq!(s.budget_downgrades, 1);
        assert_eq!(s.cancellations, 1);
        assert_eq!(s.contained_panics, 1);
        assert_eq!(s.kernel_batched_rows, 80);
        assert_eq!(s.kernel_scalar_rows, 20);
        assert_eq!(s.spilled_runs_per_level[2], 1);
        assert_eq!(s.spilled_runs(), 1);
        assert_eq!(s.spilled_bytes, 4096);
        assert_eq!(s.restored_runs, 1);
        assert_eq!(s.restored_bytes, 4096);
        assert_eq!(s.passes_used(), 2);
        assert_eq!(s.total_hash_rows(), 150);
        assert_eq!(s.total_part_rows(), 30);
    }

    #[test]
    fn passes_used_empty() {
        assert_eq!(OpStats::default().passes_used(), 0);
    }

    #[test]
    fn merge_adds_fieldwise_and_resizes() {
        let a = AtomicStats::default();
        a.add_hash_rows(0, 10);
        a.count_seal();
        let mut m = a.snapshot();
        let b = AtomicStats::default();
        b.add_hash_rows(1, 5);
        b.add_part_rows(0, 7);
        b.count_switch_to_partitioning();
        b.count_spilled_run(1, 128);
        m.budget_high_water_bytes = 700;
        let mut bs = b.snapshot();
        bs.budget_high_water_bytes = 300;
        m.merge(&bs);
        assert_eq!(m.budget_high_water_bytes, 700, "peaks max, not add");
        assert_eq!(m.hash_rows_per_level[0], 10);
        assert_eq!(m.hash_rows_per_level[1], 5);
        assert_eq!(m.part_rows_per_level[0], 7);
        assert_eq!(m.seals, 1);
        assert_eq!(m.switches_to_partitioning, 1);
        assert_eq!(m.spilled_runs_per_level[1], 1);
        assert_eq!(m.spilled_bytes, 128);
        let mut empty = OpStats::default();
        empty.merge(&m);
        assert_eq!(empty, m);
    }
}
