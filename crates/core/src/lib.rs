//! The adaptive cache-efficient aggregation operator — *hashing is sorting*.
//!
//! This crate is the paper's primary contribution: a single relational
//! `GROUP BY` operator built like an MSD radix sort over hash values whose
//! per-run building block is chosen **at runtime**, per thread, between
//!
//! * `HASHING` (Algorithm 1, line 5) — insert rows into a cache-sized
//!   block-probing table ([`hsa_hashtbl::AggTable`]); a full table splits
//!   into 256 digit ranges, each an (early-aggregated) run, and
//! * `PARTITIONING` (Algorithm 1, line 1) — move rows to 256 runs by hash
//!   digit with software write-combining ([`hsa_partition`]).
//!
//! Both emit runs keyed by the same hash digit, so the recursion of
//! Algorithm 2 can mix them freely: buckets recurse until one fully
//! aggregated run remains. The [`Strategy`] selects the routine:
//!
//! * [`Strategy::HashingOnly`] — always hash (Figure 4a),
//! * [`Strategy::PartitionAlways`] — fixed partitioning passes, then one
//!   hashing pass with a growable table (Figure 4b/c),
//! * [`Strategy::Adaptive`] — the paper's operator (§5): hash first; when a
//!   table seals, compute the reduction factor `α = n_in / n_out`; if
//!   `α < α₀` the input has too little locality for early aggregation, so
//!   switch to the ~4× faster partitioning for `c · cache` rows, then probe
//!   again with hashing.
//!
//! # Quick start
//!
//! ```
//! use hsa_core::{aggregate, AggregateConfig};
//! use hsa_agg::AggSpec;
//!
//! let keys = vec![1u64, 2, 1, 3, 2, 1];
//! let amounts = vec![10u64, 20, 30, 40, 50, 60];
//! // SELECT key, COUNT(*), SUM(amount) FROM t GROUP BY key
//! let (out, _stats) = aggregate(
//!     &keys,
//!     &[&amounts],
//!     &[AggSpec::count(), AggSpec::sum(0)],
//!     &AggregateConfig::default(),
//! );
//! let rows = out.sorted_rows();
//! assert_eq!(rows[0], (1, vec![3, 100])); // key 1: 3 rows, sum 100
//! assert_eq!(rows[1], (2, vec![2, 70]));
//! assert_eq!(rows[2], (3, vec![1, 40]));
//! ```

mod adaptive;
mod driver;
mod exec;
mod hashing;
mod obs;
mod output;
mod partitioning;
mod report;
mod sink;
mod stats;
mod stream;
mod view;

pub use adaptive::{AdaptiveParams, Strategy};
pub use driver::{
    aggregate, aggregate_observed, distinct, distinct_observed, merge_partials, try_aggregate,
    try_aggregate_observed, try_distinct, try_distinct_observed, try_merge_partials,
};
pub use exec::ExecEnv;
pub use hsa_kernels::{KernelKind, KernelPref};

pub use hsa_columnar::{RunHandle, RunStore, SpillCodec, SpillConfig, SpilledRun};
pub use hsa_fault::{
    AdmissionConfig, AdmissionController, AdmissionDenied, AdmissionOutcome, AdmissionRequest,
    AggError, CancelReason, CancelToken, DiskBudget, DiskReservation, FaultInjector, FaultPlan,
    MemoryBudget, QueryGrant, Reservation, SpillFault, SpillFaultKind,
};
pub use hsa_obs::ProfileTree;
pub use output::GroupByOutput;
pub use report::{ObsConfig, RunReport, REPORT_VERSION};
pub use stats::OpStats;
pub use stream::AggStream;

use hsa_hashtbl::TableConfig;

/// Configuration of one operator invocation.
#[derive(Clone, Debug)]
pub struct AggregateConfig {
    /// Hash-table budget per thread in bytes. The paper fixes this to the
    /// thread's share of L3; anything from L2 up works, the crossover
    /// points of the figures simply move with it.
    pub cache_bytes: usize,
    /// Worker threads (including the calling thread).
    pub threads: usize,
    /// Routine-selection strategy.
    pub strategy: Strategy,
    /// Fill rate at which a hash table is considered full (paper: 25%).
    pub fill_percent: usize,
    /// Rows per level-0 morsel — the work-stealing granule of the main
    /// loop (§3.2).
    pub morsel_rows: usize,
    /// Kernel tier preference for the hot loops (`HASHING` probe and fold).
    /// [`KernelPref::Auto`] picks the best ISA the CPU supports; forcing
    /// [`KernelPref::Scalar`] runs the row-at-a-time reference loops. The
    /// `HSA_KERNEL` environment variable overrides this at selection time.
    pub kernel: KernelPref,
}

impl Default for AggregateConfig {
    fn default() -> Self {
        Self {
            cache_bytes: 2 << 20,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            strategy: Strategy::Adaptive(AdaptiveParams::default()),
            fill_percent: TableConfig::PAPER_FILL_PERCENT,
            morsel_rows: 1 << 16,
            kernel: KernelPref::Auto,
        }
    }
}

impl AggregateConfig {
    /// Configuration with a specific strategy, defaults elsewhere.
    pub fn with_strategy(strategy: Strategy) -> Self {
        Self { strategy, ..Self::default() }
    }

    /// Single-threaded variant (used by the scaling benchmarks).
    pub fn single_threaded(mut self) -> Self {
        self.threads = 1;
        self
    }

    pub(crate) fn table_config(&self, n_state_cols: usize) -> TableConfig {
        let mut tc = TableConfig::for_cache_bytes(self.cache_bytes, n_state_cols);
        tc.fill_percent = self.fill_percent;
        tc
    }
}
