//! Structured run reports: everything one operator invocation can tell
//! about itself, in one machine-readable value.
//!
//! [`RunReport`] combines the always-on [`OpStats`] with the opt-in deep
//! metrics ([`hsa_obs::MetricsSnapshot`]), the scheduler counters
//! ([`hsa_tasks::PoolMetrics`]) and the rendered Chrome trace. It
//! serializes to JSON with the dependency-free writer in `hsa_obs::json`
//! and pretty-prints for the CLI's `--stats`.

use crate::stats::OpStats;
use hsa_obs::json::JsonValue;
use hsa_obs::{
    Counter, Hist, MetricsSnapshot, ProfileTree, WorkerSnapshot, DEFAULT_TRACE_CAPACITY,
};
use hsa_tasks::{PoolMetrics, WorkerPoolMetrics};

/// Version of the [`RunReport::to_json`] schema, emitted as
/// `report_version`. Stability contract (see DESIGN.md §13): adding new
/// members does **not** bump this — consumers must ignore unknown keys;
/// renaming, removing, or reinterpreting an existing member does.
///
/// History: v2 added `query_id` and reinterpreted a report as the record
/// of one admitted query on the shared runtime (ids are unique per
/// process, so two reports from one serving process never collide).
pub const REPORT_VERSION: u64 = 2;

/// What the observed operator entry points should collect.
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Collect the deep per-worker metrics (probe lengths, SWC flushes,
    /// per-switch α, phase attribution, ...).
    pub metrics: bool,
    /// Record the task timeline (Chrome trace events).
    pub trace: bool,
    /// Per-worker trace buffer capacity, in events; once full, further
    /// events are counted as dropped.
    pub trace_capacity: usize,
    /// Emit a live progress heartbeat to stderr at this interval (the
    /// CLI's `--progress <ms>`). Runs a background sampler thread over
    /// relaxed-atomic gauge cells — the metrics shards are never read
    /// before quiescence — and works with or without `metrics`.
    pub progress: Option<std::time::Duration>,
}

impl ObsConfig {
    /// Collect nothing beyond the always-on [`OpStats`].
    pub fn disabled() -> Self {
        Self {
            metrics: false,
            trace: false,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            progress: None,
        }
    }

    /// Collect everything (except the progress heartbeat, which is
    /// output, not collection).
    pub fn full() -> Self {
        Self { metrics: true, trace: true, ..Self::disabled() }
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// The full observability record of one operator invocation.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The runtime's id for this query: every invocation is admitted to
    /// the shared worker runtime as one query, and all of its work,
    /// heartbeat lines, and this report carry the same id. Unique within
    /// the process.
    pub query_id: u64,
    /// Input rows.
    pub rows_in: u64,
    /// Output groups.
    pub groups_out: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Kernel tier the hot loops ran with (`"scalar"`, `"sse2"`, `"avx2"`)
    /// — the resolved [`crate::KernelKind`], after CPU detection and any
    /// `--kernel` / `HSA_KERNEL` override.
    pub kernel: String,
    /// Wall-clock duration of the whole invocation.
    pub wall_nanos: u64,
    /// The always-on per-level statistics.
    pub stats: OpStats,
    /// Scheduler counters (None when deep metrics were off).
    pub pool: Option<PoolMetrics>,
    /// Deep per-worker metrics (None when off).
    pub metrics: Option<MetricsSnapshot>,
    /// The EXPLAIN ANALYZE phase tree (None when deep metrics were off).
    pub profile: Option<ProfileTree>,
    /// Rendered Chrome trace JSON (None when tracing was off).
    pub trace_json: Option<String>,
}

impl RunReport {
    /// Rows per second over the wall clock.
    pub fn rows_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.rows_in as f64 * 1e9 / self.wall_nanos as f64
    }

    /// JSON form of the report (the trace is excluded — it is a separate
    /// artifact with its own format).
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("report_version".to_string(), JsonValue::U64(REPORT_VERSION)),
            ("query_id".to_string(), JsonValue::U64(self.query_id)),
            ("rows_in".to_string(), JsonValue::U64(self.rows_in)),
            ("groups_out".to_string(), JsonValue::U64(self.groups_out)),
            ("threads".to_string(), JsonValue::U64(self.threads as u64)),
            ("kernel".to_string(), JsonValue::Str(self.kernel.clone())),
            ("wall_nanos".to_string(), JsonValue::U64(self.wall_nanos)),
            ("rows_per_sec".to_string(), JsonValue::F64(self.rows_per_sec())),
            ("stats".to_string(), stats_json(&self.stats)),
        ];
        if let Some(pool) = &self.pool {
            pairs.push(("pool".to_string(), pool_json(pool)));
        }
        if let Some(metrics) = &self.metrics {
            pairs.push(("metrics".to_string(), metrics.to_json()));
        }
        if let Some(profile) = &self.profile {
            pairs.push(("profile".to_string(), profile.to_json()));
        }
        JsonValue::Object(pairs)
    }

    /// The `--explain` rendering: the indented phase tree, or a hint when
    /// the run was not profiled.
    pub fn explain(&self) -> String {
        match &self.profile {
            Some(profile) => profile.render(),
            None => "no profile collected (run with metrics enabled)\n".to_string(),
        }
    }

    /// Multi-line human-readable rendering (the CLI's `--stats`).
    pub fn pretty(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let ms = self.wall_nanos as f64 / 1e6;
        let _ = writeln!(s, "query id           {}", self.query_id);
        let _ = writeln!(s, "rows in            {}", self.rows_in);
        let _ = writeln!(s, "groups out         {}", self.groups_out);
        let _ = writeln!(s, "threads            {}", self.threads);
        let _ = writeln!(
            s,
            "kernel             {}  (batched rows {}   scalar rows {})",
            self.kernel, self.stats.kernel_batched_rows, self.stats.kernel_scalar_rows
        );
        let _ = writeln!(
            s,
            "wall time          {ms:.2} ms  ({:.1} M rows/s)",
            self.rows_per_sec() / 1e6
        );
        let st = &self.stats;
        let _ = writeln!(s, "passes used        {}", st.passes_used());
        let _ = writeln!(s, "  level   hash_rows   part_rows   task_ms");
        for lvl in 0..st.passes_used().max(1) {
            let _ = writeln!(
                s,
                "  {lvl:<5} {:>11} {:>11} {:>9.2}",
                st.hash_rows_per_level.get(lvl).copied().unwrap_or(0),
                st.part_rows_per_level.get(lvl).copied().unwrap_or(0),
                st.task_nanos_per_level.get(lvl).copied().unwrap_or(0) as f64 / 1e6,
            );
        }
        let _ = writeln!(
            s,
            "seals {}   switches to partitioning {}   to hashing {}   fallback merges {}",
            st.seals, st.switches_to_partitioning, st.switches_to_hashing, st.fallback_merges
        );
        if st.budget_denials + st.budget_downgrades + st.cancellations + st.contained_panics > 0 {
            let _ = writeln!(
                s,
                "robustness         budget denials {}   downgrades {}   cancellations {}   contained panics {}",
                st.budget_denials, st.budget_downgrades, st.cancellations, st.contained_panics
            );
        }
        if st.budget_high_water_bytes > 0 {
            let _ = writeln!(
                s,
                "budget high-water  {:.2} MiB",
                st.budget_high_water_bytes as f64 / (1024.0 * 1024.0)
            );
        }
        if st.spilled_runs() > 0 {
            let _ = writeln!(
                s,
                "spill              runs {}   {} B out   restored {} ({} B)",
                st.spilled_runs(),
                st.spilled_bytes,
                st.restored_runs,
                st.restored_bytes
            );
            if st.spill_encoded_bytes > 0 {
                let _ = writeln!(
                    s,
                    "spill compression  {} B on disk   ratio {:.2}",
                    st.spill_encoded_bytes,
                    st.spill_encoded_bytes as f64 / st.spilled_bytes.max(1) as f64
                );
            }
            if st.overlapped_io_nanos + st.spill_io_wait_nanos > 0 {
                let _ = writeln!(
                    s,
                    "spill overlap      {:.2} ms hidden   {:.2} ms waited",
                    st.overlapped_io_nanos as f64 / 1e6,
                    st.spill_io_wait_nanos as f64 / 1e6
                );
            }
        }
        if st.spill_retries + st.restore_retries + st.spill_io_abandons + st.spill_reclaimed_files
            > 0
        {
            let _ = writeln!(
                s,
                "spill i/o          retries {}+{}   abandons {}   reclaimed {} ({} B)",
                st.spill_retries,
                st.restore_retries,
                st.spill_io_abandons,
                st.spill_reclaimed_files,
                st.spill_reclaimed_bytes
            );
        }
        if st.disk_high_water_bytes > 0 || st.disk_budget_denials > 0 {
            let _ = writeln!(
                s,
                "disk high-water    {:.2} MiB   denials {}",
                st.disk_high_water_bytes as f64 / (1024.0 * 1024.0),
                st.disk_budget_denials
            );
        }
        if let Some(pool) = &self.pool {
            let t = pool.totals();
            let _ = writeln!(
                s,
                "pool               tasks {}   steals {}   failed scans {}   idle {:.2} ms",
                t.tasks_executed,
                t.steals,
                t.failed_steal_scans,
                t.idle_nanos as f64 / 1e6
            );
        }
        if let Some(metrics) = &self.metrics {
            let m = metrics.merged();
            let _ = writeln!(
                s,
                "tables             inserts {}   probe steps {}   sealed {}",
                m.counter(Counter::TableInserts),
                m.counter(Counter::ProbeSteps),
                m.counter(Counter::TablesSealed),
            );
            let _ = writeln!(s, "  probe len        {}", hist_line(&m, Hist::ProbeLen));
            let _ = writeln!(s, "  seal fill %      {}", hist_line(&m, Hist::SealFillPct));
            let _ = writeln!(
                s,
                "partitioning       swc flushes {}   flushed {} B",
                m.counter(Counter::SwcFlushes),
                m.counter(Counter::SwcFlushBytes),
            );
            let _ = writeln!(s, "  digit skew %     {}", hist_line(&m, Hist::PartitionSkewPct));
            let _ = writeln!(s, "  morsel rows      {}", hist_line(&m, Hist::MorselRows));
            if m.alpha_count() > 0 {
                let _ = writeln!(
                    s,
                    "alpha at switches  count {}   mean {:.2}",
                    m.alpha_count(),
                    m.alpha_sum() / m.alpha_count() as f64
                );
            }
        }
        s
    }
}

fn hist_line(w: &WorkerSnapshot, h: Hist) -> String {
    let hist = w.hist(h);
    if hist.is_empty() {
        return "-".to_string();
    }
    format!(
        "n {}   mean {:.2}   p99 ≤ {}   max {}",
        hist.count(),
        hist.mean(),
        hist.quantile_bound(0.99),
        hist.max()
    )
}

/// JSON form of [`OpStats`].
pub fn stats_json(stats: &OpStats) -> JsonValue {
    JsonValue::obj([
        ("hash_rows_per_level", JsonValue::u64_array(stats.hash_rows_per_level.iter().copied())),
        ("part_rows_per_level", JsonValue::u64_array(stats.part_rows_per_level.iter().copied())),
        ("task_nanos_per_level", JsonValue::u64_array(stats.task_nanos_per_level.iter().copied())),
        ("passes_used", JsonValue::U64(stats.passes_used() as u64)),
        ("seals", JsonValue::U64(stats.seals)),
        ("switches_to_partitioning", JsonValue::U64(stats.switches_to_partitioning)),
        ("switches_to_hashing", JsonValue::U64(stats.switches_to_hashing)),
        ("fallback_merges", JsonValue::U64(stats.fallback_merges)),
        ("budget_denials", JsonValue::U64(stats.budget_denials)),
        ("budget_downgrades", JsonValue::U64(stats.budget_downgrades)),
        ("budget_high_water_bytes", JsonValue::U64(stats.budget_high_water_bytes)),
        ("cancellations", JsonValue::U64(stats.cancellations)),
        ("contained_panics", JsonValue::U64(stats.contained_panics)),
        ("kernel_batched_rows", JsonValue::U64(stats.kernel_batched_rows)),
        ("kernel_scalar_rows", JsonValue::U64(stats.kernel_scalar_rows)),
        ("spilled_runs", JsonValue::U64(stats.spilled_runs())),
        (
            "spilled_runs_per_level",
            JsonValue::u64_array(stats.spilled_runs_per_level.iter().copied()),
        ),
        ("spilled_bytes", JsonValue::U64(stats.spilled_bytes)),
        ("restored_runs", JsonValue::U64(stats.restored_runs)),
        ("restored_bytes", JsonValue::U64(stats.restored_bytes)),
        ("spill_retries", JsonValue::U64(stats.spill_retries)),
        ("restore_retries", JsonValue::U64(stats.restore_retries)),
        ("spill_io_abandons", JsonValue::U64(stats.spill_io_abandons)),
        ("spill_reclaimed_files", JsonValue::U64(stats.spill_reclaimed_files)),
        ("spill_reclaimed_bytes", JsonValue::U64(stats.spill_reclaimed_bytes)),
        ("disk_budget_denials", JsonValue::U64(stats.disk_budget_denials)),
        ("disk_high_water_bytes", JsonValue::U64(stats.disk_high_water_bytes)),
        ("spill_encoded_bytes", JsonValue::U64(stats.spill_encoded_bytes)),
        ("overlapped_io_nanos", JsonValue::U64(stats.overlapped_io_nanos)),
        ("spill_io_wait_nanos", JsonValue::U64(stats.spill_io_wait_nanos)),
    ])
}

fn worker_pool_json(w: &WorkerPoolMetrics) -> JsonValue {
    JsonValue::obj([
        ("tasks_executed", JsonValue::U64(w.tasks_executed)),
        ("steals", JsonValue::U64(w.steals)),
        ("failed_steal_scans", JsonValue::U64(w.failed_steal_scans)),
        ("idle_nanos", JsonValue::U64(w.idle_nanos)),
    ])
}

/// JSON form of the scheduler counters.
pub fn pool_json(pool: &PoolMetrics) -> JsonValue {
    JsonValue::obj([
        ("totals", worker_pool_json(&pool.totals())),
        ("workers", JsonValue::Array(pool.workers.iter().map(worker_pool_json).collect())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let stats = OpStats {
            hash_rows_per_level: vec![1000, 200],
            part_rows_per_level: vec![500, 0],
            task_nanos_per_level: vec![7_000_000, 1_000_000],
            seals: 4,
            switches_to_partitioning: 2,
            kernel_batched_rows: 1200,
            spilled_runs_per_level: vec![0, 3],
            spilled_bytes: 4096,
            restored_runs: 3,
            restored_bytes: 4096,
            ..OpStats::default()
        };
        let pool = PoolMetrics {
            workers: vec![
                WorkerPoolMetrics {
                    tasks_executed: 5,
                    steals: 1,
                    failed_steal_scans: 2,
                    idle_nanos: 300,
                },
                WorkerPoolMetrics {
                    tasks_executed: 3,
                    steals: 0,
                    failed_steal_scans: 1,
                    idle_nanos: 700,
                },
            ],
        };
        let rec = hsa_obs::Recorder::enabled(2);
        rec.add(0, Counter::TableInserts, 1000);
        rec.observe(0, Hist::ProbeLen, 0);
        rec.record_alpha(1, 3.5);
        RunReport {
            query_id: 7,
            rows_in: 1500,
            groups_out: 40,
            threads: 2,
            kernel: "sse2".to_string(),
            wall_nanos: 5_000_000,
            stats,
            pool: Some(pool),
            metrics: Some(rec.snapshot()),
            profile: None,
            trace_json: None,
        }
    }

    #[test]
    fn report_json_round_trips() {
        let report = sample_report();
        let text = report.to_json().to_string_pretty(2);
        let parsed = hsa_obs::json::parse(&text).unwrap();
        assert_eq!(parsed.get("report_version").unwrap().as_u64(), Some(REPORT_VERSION));
        assert_eq!(parsed.get("query_id").unwrap().as_u64(), Some(7));
        assert_eq!(parsed.get("rows_in").unwrap().as_u64(), Some(1500));
        assert_eq!(parsed.get("groups_out").unwrap().as_u64(), Some(40));
        assert_eq!(parsed.get("kernel").unwrap().as_str(), Some("sse2"));
        let stats = parsed.get("stats").unwrap();
        assert_eq!(stats.get("seals").unwrap().as_u64(), Some(4));
        assert_eq!(stats.get("kernel_batched_rows").unwrap().as_u64(), Some(1200));
        assert_eq!(stats.get("kernel_scalar_rows").unwrap().as_u64(), Some(0));
        assert_eq!(
            stats.get("hash_rows_per_level").unwrap().as_array().unwrap()[0].as_u64(),
            Some(1000)
        );
        assert_eq!(stats.get("spilled_runs").unwrap().as_u64(), Some(3));
        assert_eq!(
            stats.get("spilled_runs_per_level").unwrap().as_array().unwrap()[1].as_u64(),
            Some(3)
        );
        assert_eq!(stats.get("spilled_bytes").unwrap().as_u64(), Some(4096));
        assert_eq!(stats.get("restored_runs").unwrap().as_u64(), Some(3));
        assert_eq!(stats.get("budget_high_water_bytes").unwrap().as_u64(), Some(0));
        let pool = parsed.get("pool").unwrap();
        assert_eq!(pool.get("totals").unwrap().get("tasks_executed").unwrap().as_u64(), Some(8));
        assert_eq!(pool.get("workers").unwrap().as_array().unwrap().len(), 2);
        let merged = parsed.get("metrics").unwrap().get("merged").unwrap();
        assert_eq!(merged.get("table_inserts").unwrap().as_u64(), Some(1000));
        assert_eq!(merged.get("alpha_count").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn pretty_mentions_the_headline_numbers() {
        let report = sample_report();
        let text = report.pretty();
        assert!(text.contains("query id           7"));
        assert!(text.contains("rows in            1500"));
        assert!(text.contains("kernel             sse2  (batched rows 1200   scalar rows 0)"));
        assert!(text.contains("passes used        2"));
        assert!(text.contains("spill              runs 3"));
        assert!(text.contains("steals 1"));
        assert!(text.contains("inserts 1000"));
        assert!(text.contains("alpha at switches  count 1   mean 3.50"));
    }

    #[test]
    fn disabled_sections_are_omitted_from_json() {
        let mut report = sample_report();
        report.pool = None;
        report.metrics = None;
        let parsed = hsa_obs::json::parse(&report.to_json().to_string_compact()).unwrap();
        assert!(parsed.get("pool").is_none());
        assert!(parsed.get("metrics").is_none());
        assert!(parsed.get("profile").is_none());
        assert!(parsed.get("stats").is_some());
    }

    #[test]
    fn explain_without_a_profile_says_so() {
        let report = sample_report();
        assert!(report.explain().contains("no profile collected"));
    }

    #[test]
    fn profile_section_round_trips_in_json() {
        use hsa_obs::{Phase, PhaseCell, Recorder};
        let rec = Recorder::enabled(1);
        rec.phase(
            0,
            0,
            Phase::HashInsert,
            PhaseCell { nanos: 500, calls: 1, rows_in: 100, rows_out: 10, bytes: 0 },
        );
        let mut report = sample_report();
        report.profile = Some(ProfileTree::build(&rec.snapshot(), 1000, 1, 64, 0));
        let parsed = hsa_obs::json::parse(&report.to_json().to_string_compact()).unwrap();
        let profile = parsed.get("profile").unwrap();
        assert_eq!(profile.get("wall_nanos").unwrap().as_u64(), Some(1000));
        assert_eq!(profile.get("budget_high_water_bytes").unwrap().as_u64(), Some(64));
        assert!(report.explain().contains("hash_insert"));
    }

    #[test]
    fn pretty_shows_the_budget_high_water_when_nonzero() {
        let mut report = sample_report();
        assert!(!report.pretty().contains("budget high-water"));
        report.stats.budget_high_water_bytes = 3 * 1024 * 1024;
        assert!(report.pretty().contains("budget high-water  3.00 MiB"));
    }
}
