//! Streaming ingestion: the operator as a push-based pipeline stage.
//!
//! [`AggStream`] is the phase-1 main loop of the driver, opened up so a
//! caller can feed the input in bounded chunks instead of one slice:
//! every [`AggStream::push`] runs one work-stealing morsel scope over the
//! chunk while the per-worker state (hash table, strategy mode, epoch
//! counters) persists across pushes, sealing cache-sized runs into the
//! shared level-1 buckets exactly as the one-shot driver does.
//! [`AggStream::finish`] then seals the leftover worker tables and runs
//! the recursion of Algorithm 2 unchanged.
//!
//! The one-shot entry points ([`crate::aggregate`] and friends) are
//! one-chunk wrappers over this type, so the slice path and a
//! single-push stream are the same code and produce identical outputs
//! and statistics. Multi-chunk streams produce identical *outputs* under
//! any cut of the input; the always-on statistics can shift by a few
//! rows between chunkings (each push is its own morsel scope, and the
//! scheduler's drain order decides which keys sit in a table when it
//! seals) while the conserved quantities — rows hashed/partitioned per
//! level, rows in, groups out — stay exact.

use crate::driver::{
    contain_panics, process_bucket, store_for, validate_specs, Ctx, TablePool, WorkerState,
};
use crate::exec::ExecEnv;
use crate::output::{Collector, GroupByOutput};
use crate::report::{ObsConfig, RunReport};
use crate::sink::SharedBuckets;
use crate::stats::AtomicStats;
use crate::view::RunView;
use crate::AggregateConfig;
use hsa_agg::{plan, AggSpec, Plan, StateOp};
use hsa_fault::{AggError, CancelToken};
use hsa_hashtbl::identity_of;
use hsa_obs::{
    BudgetProbe, Counter, Hist, Phase, PhaseCell, ProfileTree, ProgressGauge, ProgressSampler,
    Recorder, Tracer,
};
use hsa_tasks::sync::Mutex;
use hsa_tasks::{chunk_ranges, PoolMetrics, QueryHandle, Runtime};
use std::time::Instant;

/// A grouped aggregation accepting its input in bounded chunks.
///
/// ```
/// use hsa_core::{AggStream, AggregateConfig, ExecEnv, ObsConfig};
/// use hsa_agg::AggSpec;
///
/// let cfg = AggregateConfig::default();
/// let mut stream = AggStream::new(
///     &[AggSpec::count(), AggSpec::sum(0)],
///     &cfg,
///     &ExecEnv::unrestricted(),
///     &ObsConfig::disabled(),
/// ).unwrap();
/// stream.push(&[1, 2, 1], &[&[10, 20, 30]]).unwrap();
/// stream.push(&[2, 3], &[&[40, 50]]).unwrap();
/// let (out, _report) = stream.finish().unwrap();
/// assert_eq!(out.sorted_rows(), vec![(1, vec![2, 40]), (2, vec![2, 60]), (3, vec![1, 50])]);
/// ```
///
/// Ingestion is bounded: each chunk's rows are absorbed into cache-sized
/// tables or partitioned into runs before `push` returns, and with a
/// memory budget plus a spill directory configured on the [`ExecEnv`],
/// sealed runs that exceed the budget are flushed to disk — the resident
/// set stays bounded regardless of the total input size.
///
/// A stream that returned an error is poisoned; drop it (budget
/// reservations and spill files are released on drop).
pub struct AggStream {
    ctx: Ctx,
    lowered: Plan,
    input_aggregated: bool,
    /// This query's admission to the shared worker runtime: every push
    /// and the finish recursion run scopes through it, so all of the
    /// stream's work carries one `QueryId` from open to report.
    handle: QueryHandle,
    threads: usize,
    observed: bool,
    shared: SharedBuckets,
    workers: Vec<Mutex<WorkerState>>,
    pool_metrics: PoolMetrics,
    rows_in: u64,
    wall0: Instant,
    /// Live heartbeat thread (`ObsConfig::progress`); runs across pushes
    /// and phase 2, stopped and joined before the report is assembled —
    /// or on drop, including an unwinding one.
    sampler: Option<ProgressSampler>,
}

impl AggStream {
    /// Open a stream for the given aggregate specs (empty = `DISTINCT`).
    ///
    /// Fails on specs `plan` cannot lower and on an unusable spill
    /// directory; no rows are accepted in either case.
    pub fn new(
        specs: &[AggSpec],
        cfg: &AggregateConfig,
        env: &ExecEnv,
        obs_cfg: &ObsConfig,
    ) -> Result<Self, AggError> {
        validate_specs(specs)?;
        Self::from_plan(plan(specs), false, cfg, env, obs_cfg)
    }

    /// Open a stream over an already-lowered plan. `input_aggregated`
    /// selects apply vs merge semantics for the pushed rows (the
    /// distributed-merge path pushes pre-aggregated states).
    pub(crate) fn from_plan(
        lowered: Plan,
        input_aggregated: bool,
        cfg: &AggregateConfig,
        env: &ExecEnv,
        obs_cfg: &ObsConfig,
    ) -> Result<Self, AggError> {
        let wall0 = Instant::now();
        let ops: Vec<StateOp> = lowered.cols.iter().map(|c| c.op).collect();
        let identities: Vec<u64> = ops.iter().map(|&o| identity_of(o)).collect();
        let threads = cfg.threads.max(1);
        let table_cfg = cfg.table_config(ops.len());
        let observed = obs_cfg.metrics;
        // A fault plan that cancels after K rows needs a live token to
        // trip, even when the caller did not pass one.
        let cancel = if env.faults.plans_cancellation() && !env.cancel.is_enabled() {
            CancelToken::new()
        } else {
            env.cancel.clone()
        };
        let kind = hsa_kernels::select(cfg.kernel);
        let store = store_for(env)?;
        // One admission per stream: every scope this query runs — all
        // pushes and the finish recursion — shares the same QueryId on
        // the process-wide runtime.
        let handle = Runtime::global().admit(threads);
        // The gauge mirrors coarse per-worker position in relaxed atomics
        // so the sampler thread never reads the recorder's shards.
        let gauge = if obs_cfg.progress.is_some() {
            ProgressGauge::enabled(threads)
        } else {
            ProgressGauge::disabled()
        };
        let sampler = obs_cfg.progress.map(|interval| {
            let budget = env.budget.clone();
            let probe: BudgetProbe =
                Box::new(move || budget.limit().map(|limit| (budget.outstanding(), limit)));
            ProgressSampler::start_tagged(
                gauge.clone(),
                interval,
                Some(probe),
                Some(handle.id().to_string()),
            )
        });
        let ctx = Ctx {
            cfg: cfg.clone(),
            env: env.clone(),
            cancel,
            ops,
            pool: TablePool::new(table_cfg, identities, observed),
            collector: Collector::new(lowered.cols.len()),
            stats: AtomicStats::default(),
            recorder: if observed { Recorder::enabled(threads) } else { Recorder::disabled() },
            tracer: if obs_cfg.trace {
                Tracer::enabled(threads, obs_cfg.trace_capacity)
            } else {
                Tracer::disabled()
            },
            gauge,
            kind,
            store,
            failed: Mutex::new(None),
        };
        let workers = (0..threads).map(|_| Mutex::new(WorkerState::new(cfg.strategy))).collect();
        Ok(Self {
            ctx,
            lowered,
            input_aggregated,
            handle,
            threads,
            observed,
            shared: SharedBuckets::new(),
            workers,
            pool_metrics: PoolMetrics::default(),
            rows_in: 0,
            wall0,
            sampler,
        })
    }

    /// Ingest one chunk: `inputs` are referenced by index from the specs,
    /// every column must have `keys.len()` rows. Empty chunks are fine.
    pub fn push(&mut self, keys: &[u64], inputs: &[&[u64]]) -> Result<(), AggError> {
        for (i, col) in inputs.iter().enumerate() {
            if col.len() != keys.len() {
                return Err(AggError::RowCountMismatch {
                    column: i,
                    got: col.len(),
                    expected: keys.len(),
                });
            }
        }
        // Physical column i reads from this slice; COUNT columns alias the
        // key column (their value is ignored by the state op).
        let mut raw_cols = Vec::with_capacity(self.lowered.cols.len());
        for c in &self.lowered.cols {
            raw_cols.push(match c.input {
                Some(j) => *inputs.get(j).ok_or(AggError::MissingInputColumn {
                    referenced: j,
                    available: inputs.len(),
                })?,
                None => keys,
            });
        }
        self.push_cols(keys, &raw_cols)
    }

    /// Ingest one chunk of pre-mapped physical columns (`raw_cols[i]`
    /// feeds state column `i`) — one work-stealing morsel scope.
    pub(crate) fn push_cols(&mut self, keys: &[u64], raw_cols: &[&[u64]]) -> Result<(), AggError> {
        let ctx = &self.ctx;
        let shared = &self.shared;
        let workers = &self.workers;
        let input_aggregated = self.input_aggregated;
        let n_morsels = keys.len().div_ceil(ctx.cfg.morsel_rows.max(1)).max(1);
        let (scope, pm) = self.handle.try_scope_observed(|s| {
            for range in chunk_ranges(keys.len(), n_morsels) {
                s.spawn(move |s2| {
                    if ctx.bailed() {
                        return;
                    }
                    let t0 = Instant::now();
                    let obs = ctx.obs(s2.worker_index());
                    // Morsel bookkeeping outside the work phases lands in
                    // the level-0 Driver cell (see Phase::Driver).
                    let _driver = obs.phase_scope(0, Phase::Driver);
                    if let Err(e) = ctx.check_cancel(&obs) {
                        ctx.fail(e);
                        return;
                    }
                    let trace_t0 = obs.tracer.now();
                    let rows = range.len() as u64;
                    obs.recorder.add(obs.worker, Counter::MorselsClaimed, 1);
                    obs.recorder.observe(obs.worker, Hist::MorselRows, rows);
                    let mut guard = workers[s2.worker_index()].lock();
                    let ws = &mut *guard;
                    let view = RunView::Borrowed {
                        keys: &keys[range.clone()],
                        cols: raw_cols.iter().map(|c| &c[range.clone()]).collect(),
                        aggregated: input_aggregated,
                    };
                    let mut sink = shared;
                    if let Err(e) = crate::driver::process_view(
                        ctx,
                        &view,
                        0,
                        &mut ws.table,
                        &mut ws.mode,
                        &mut ws.epoch_rows,
                        &mut ws.map32,
                        &mut ws.map8,
                        &mut sink,
                        &obs,
                    ) {
                        ctx.fail(e);
                        return;
                    }
                    if ctx.env.faults.should_cancel_after(rows) {
                        ctx.cancel.cancel();
                    }
                    ctx.stats.add_level_nanos(0, t0.elapsed().as_nanos() as u64);
                    obs.tracer.span_args(obs.worker, "morsel", trace_t0, &[("rows", rows)]);
                });
            }
        });
        let pm = contain_panics(ctx, scope, pm)?;
        self.pool_metrics.merge(&pm);

        // The chunk's morsel loop is done: surface any task error or a
        // cancellation that tripped after the last poll.
        if let Some(e) = self.ctx.take_failure() {
            return Err(e);
        }
        self.ctx.check_cancel(&self.ctx.obs(0))?;
        self.rows_in += keys.len() as u64;
        Ok(())
    }

    /// End of input: seal the leftover worker tables, recurse into the
    /// buckets (phase 2), and return the grouped result plus the report.
    pub fn finish(self) -> Result<(GroupByOutput, RunReport), AggError> {
        let AggStream {
            ctx,
            lowered,
            shared,
            workers,
            handle,
            threads,
            observed,
            mut pool_metrics,
            rows_in,
            wall0,
            sampler,
            ..
        } = self;

        // Seal every worker's leftover table into the level-1 buckets.
        // All push scopes have quiesced, so recording into each worker's
        // shard from here preserves the sharding contract.
        for (w_idx, w) in workers.into_iter().enumerate() {
            if let Some(mut table) = w.into_inner().table {
                if !table.is_empty() {
                    crate::hashing::seal_into(
                        &mut table,
                        &mut &shared,
                        ctx.gate(),
                        &ctx.obs(w_idx),
                    )?;
                }
                ctx.pool.put(table);
            }
        }

        // Phase 2: recurse into the buckets, one task each.
        let (scope2, pm2) = handle.try_scope_observed(|s| {
            for (_digit, bucket, res) in shared.into_nonempty() {
                let ctx = &ctx;
                s.spawn(move |s2| process_bucket(ctx, s2, bucket, res, 1));
            }
        });
        let pm2 = contain_panics(&ctx, scope2, pm2)?;
        if let Some(e) = ctx.take_failure() {
            return Err(e);
        }
        ctx.check_cancel(&ctx.obs(0))?;

        let pool = observed.then(|| {
            pool_metrics.merge(&pm2);
            pool_metrics
        });

        // The workers have quiesced: stop the heartbeat before the final
        // lowering so no line interleaves with the caller's own output.
        drop(sampler);
        // All handles are consumed, but a background write whose handle
        // was dropped on an error path may have parked a failure in the
        // store — surface it rather than returning a silently short
        // result.
        ctx.store.drain()?;
        // The budget owns its peak, not the stats cells; read it before
        // the context is torn apart below. Same for the disk budget and
        // the run store's I/O robustness counters.
        let high_water = ctx.env.budget.high_water();
        let disk_high_water = ctx.env.disk.high_water();
        let disk_denials = ctx.env.disk.denials();
        let store_io = ctx.store.io_stats().unwrap_or_default();

        let kind = ctx.kind;
        let Ctx { collector, stats, recorder, tracer, .. } = ctx;
        let out_t0 = Instant::now();
        let output = collector.into_output(lowered);
        // The final lowering is single-threaded post-quiescence work;
        // attribute it to worker 0's level-0 output cell directly.
        recorder.phase(
            0,
            0,
            Phase::Output,
            PhaseCell {
                nanos: out_t0.elapsed().as_nanos() as u64,
                calls: 1,
                rows_in: output.n_groups() as u64,
                rows_out: output.n_groups() as u64,
                bytes: 0,
            },
        );
        let mut stats = stats.snapshot();
        stats.budget_high_water_bytes = high_water;
        stats.disk_high_water_bytes = disk_high_water;
        stats.disk_budget_denials = disk_denials;
        stats.spill_retries = store_io.spill_retries;
        stats.restore_retries = store_io.restore_retries;
        stats.spill_io_abandons = store_io.io_abandons;
        stats.spill_reclaimed_files = store_io.reclaimed_files;
        stats.spill_reclaimed_bytes = store_io.reclaimed_bytes;
        stats.spill_encoded_bytes = store_io.encoded_bytes;
        // Background I/O time that did *not* stall a compute thread is
        // the overlap the async pipeline bought.
        stats.overlapped_io_nanos = store_io.async_io_nanos.saturating_sub(store_io.io_wait_nanos);
        stats.spill_io_wait_nanos = store_io.io_wait_nanos;
        // Store-level counters live outside the per-worker recorder;
        // post-quiescence, recording them into shard 0 is race-free.
        recorder.add(0, Counter::SpillRetries, store_io.spill_retries);
        recorder.add(0, Counter::RestoreRetries, store_io.restore_retries);
        recorder.add(0, Counter::SpillAbandons, store_io.io_abandons);
        recorder.add(0, Counter::SpillReclaimedFiles, store_io.reclaimed_files);
        recorder.add(0, Counter::DiskBudgetDenials, disk_denials);
        recorder.add(0, Counter::SpillEncodedBytes, store_io.encoded_bytes);
        recorder.add(0, Counter::OverlappedIoNanos, stats.overlapped_io_nanos);
        recorder.add(0, Counter::SpillIoWaitNanos, store_io.io_wait_nanos);
        let wall_nanos = wall0.elapsed().as_nanos() as u64;
        let metrics = observed.then(|| recorder.snapshot());
        let profile = metrics.as_ref().map(|m| {
            ProfileTree::build(m, wall_nanos, threads, high_water, stats.overlapped_io_nanos)
        });
        let report = RunReport {
            query_id: handle.id().as_u64(),
            rows_in,
            groups_out: output.n_groups() as u64,
            threads,
            kernel: kind.label().to_string(),
            wall_nanos,
            stats,
            pool,
            metrics,
            profile,
            trace_json: tracer.is_enabled().then(|| tracer.to_chrome_json()),
        };
        Ok((output, report))
    }

    /// Rows ingested so far.
    pub fn rows_pushed(&self) -> u64 {
        self.rows_in
    }

    /// The runtime's id for this query (the same value lands in
    /// [`RunReport::query_id`]). Available from open, so a server can
    /// hand the id to clients before any row arrives.
    pub fn query_id(&self) -> u64 {
        self.handle.id().as_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptiveParams, Strategy};

    fn cfg() -> AggregateConfig {
        AggregateConfig {
            cache_bytes: 128 << 10,
            threads: 2,
            strategy: Strategy::Adaptive(AdaptiveParams::default()),
            fill_percent: 25,
            morsel_rows: 1 << 12,
            kernel: hsa_kernels::KernelPref::Auto,
        }
    }

    #[test]
    fn chunked_pushes_match_one_shot() {
        let keys: Vec<u64> = (0..30_000u64).map(|i| i * 2654435761 % 3000).collect();
        let vals: Vec<u64> = (0..30_000).collect();
        let specs = [hsa_agg::AggSpec::count(), hsa_agg::AggSpec::sum(0)];
        let (whole, _) = crate::aggregate(&keys, &[&vals], &specs, &cfg());

        let mut stream =
            AggStream::new(&specs, &cfg(), &ExecEnv::unrestricted(), &ObsConfig::disabled())
                .unwrap();
        for chunk in keys.chunks(7001).zip(vals.chunks(7001)) {
            stream.push(chunk.0, &[chunk.1]).unwrap();
        }
        assert_eq!(stream.rows_pushed(), 30_000);
        let (out, report) = stream.finish().unwrap();
        assert_eq!(report.rows_in, 30_000);
        assert_eq!(out.sorted_rows(), whole.sorted_rows());
    }

    #[test]
    fn empty_and_single_row_chunks_are_fine() {
        let mut stream = AggStream::new(
            &[hsa_agg::AggSpec::sum(0)],
            &cfg(),
            &ExecEnv::unrestricted(),
            &ObsConfig::disabled(),
        )
        .unwrap();
        stream.push(&[], &[&[]]).unwrap();
        stream.push(&[9], &[&[100]]).unwrap();
        stream.push(&[], &[&[]]).unwrap();
        stream.push(&[9], &[&[1]]).unwrap();
        let (out, _) = stream.finish().unwrap();
        assert_eq!(out.sorted_rows(), vec![(9, vec![101])]);
    }

    #[test]
    fn push_validates_each_chunk() {
        let mut stream = AggStream::new(
            &[hsa_agg::AggSpec::sum(0)],
            &cfg(),
            &ExecEnv::unrestricted(),
            &ObsConfig::disabled(),
        )
        .unwrap();
        let e = stream.push(&[1, 2], &[&[1]]).unwrap_err();
        assert!(matches!(e, AggError::RowCountMismatch { .. }));
        let mut stream2 = AggStream::new(
            &[hsa_agg::AggSpec::sum(0)],
            &cfg(),
            &ExecEnv::unrestricted(),
            &ObsConfig::disabled(),
        )
        .unwrap();
        let e = stream2.push(&[1, 2], &[]).unwrap_err();
        assert!(matches!(e, AggError::MissingInputColumn { .. }));
    }

    #[test]
    fn finish_without_pushes_is_empty() {
        let stream = AggStream::new(
            &[hsa_agg::AggSpec::count()],
            &cfg(),
            &ExecEnv::unrestricted(),
            &ObsConfig::disabled(),
        )
        .unwrap();
        let (out, report) = stream.finish().unwrap();
        assert_eq!(out.n_groups(), 0);
        assert_eq!(report.rows_in, 0);
    }

    #[test]
    fn budget_with_spill_dir_stays_bounded_and_correct() {
        let dir = std::env::temp_dir().join(format!("hsa-stream-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let keys: Vec<u64> = (0..60_000u64).map(|i| i * 2654435761 % 20_000).collect();
        let vals: Vec<u64> = (0..60_000).collect();
        let specs = [hsa_agg::AggSpec::sum(0)];
        let (whole, _) = crate::aggregate(&keys, &[&vals], &specs, &cfg());

        let budget = hsa_fault::MemoryBudget::limited(4 << 20);
        let env = ExecEnv::unrestricted().with_budget(budget.clone()).with_spill_dir(&dir);
        let mut stream = AggStream::new(&specs, &cfg(), &env, &ObsConfig::disabled()).unwrap();
        for chunk in keys.chunks(8192).zip(vals.chunks(8192)) {
            stream.push(chunk.0, &[chunk.1]).unwrap();
        }
        let (out, report) = stream.finish().unwrap();
        assert_eq!(out.sorted_rows(), whole.sorted_rows());
        assert_eq!(budget.outstanding(), 0, "output blocks released with the stream");
        // With a 4 MiB budget over ~1 MiB tables this input must spill.
        assert!(report.stats.spilled_runs() > 0, "stats: {:?}", report.stats);
        assert_eq!(report.stats.restored_runs, report.stats.spilled_runs());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
