//! The operator driver: Algorithm 2 plus the parallelization of §3.2.
//!
//! Execution has two phases:
//!
//! 1. **Main loop** (level 0): the input is cut into morsels that worker
//!    threads claim by work-stealing. Each worker keeps a persistent hash
//!    table and strategy state; the runs it produces go to 256 shared,
//!    mutex-guarded level-1 buckets.
//! 2. **Recursion** (levels ≥ 1): one task per non-empty bucket. A bucket
//!    task processes its runs through the strategy-selected routines into
//!    task-local sub-buckets; if nothing spilled, the bucket's table holds
//!    the final groups of this hash prefix and is emitted. Sub-buckets are
//!    spawned as new tasks — completely independent, no synchronization.
//!
//! Two hard floors guarantee termination regardless of hash behavior: the
//! recursion depth is bounded by the 8 radix digits of a 64-bit hash, and
//! buckets at the floor are merged with a growable table keyed by the
//! actual key values.
//!
//! Phase 1 itself lives in [`crate::stream`]: the one-shot entry points
//! below are one-chunk wrappers over [`crate::AggStream`], which runs one
//! morsel scope per pushed chunk and then the recursion of this module.

use crate::adaptive::{ModeState, Strategy};
use crate::exec::{is_degradable, ExecEnv, Gate};
use crate::hashing::{hash_run, seal_into, HashOutcome};
use crate::obs::{flush_table_metrics, Obs};
use crate::output::{Collector, GroupByOutput};
use crate::partitioning::partition_run;
use crate::report::{ObsConfig, RunReport};
use crate::sink::{LocalBuckets, RunSink};
use crate::stats::{AtomicStats, OpStats};
use crate::stream::AggStream;
use crate::view::RunView;
use crate::AggregateConfig;
use hsa_agg::{plan, AggFn, AggSpec, StateOp};
use hsa_columnar::{RunHandle, RunStore};
use hsa_fault::{AggError, CancelToken, Reservation};
use hsa_hash::MAX_LEVEL;
use hsa_hashtbl::{AggTable, GrowTable, TableConfig};
use hsa_kernels::KernelKind;
use hsa_obs::{Counter, Phase, ProgressGauge, Recorder, Tracer};
use hsa_tasks::sync::Mutex;
use hsa_tasks::{PoolMetrics, Scope};
use std::time::Instant;

/// Reuse pool for the cache-sized tables: "one or very few hash tables per
/// thread" (§4.1) instead of an allocation + identity-fill per bucket.
///
/// The pool owns the budget reservations of every table it has created;
/// they are released when the pool drops at the end of the invocation.
pub(crate) struct TablePool {
    cfg: TableConfig,
    identities: Vec<u64>,
    free: Mutex<Vec<AggTable>>,
    held: Mutex<Reservation>,
    /// Enable probe metrics on handed-out tables (deep metrics on).
    metrics: bool,
}

impl TablePool {
    pub(crate) fn new(cfg: TableConfig, identities: Vec<u64>, metrics: bool) -> Self {
        Self {
            cfg,
            identities,
            free: Mutex::new(Vec::new()),
            held: Mutex::new(Reservation::empty()),
            metrics,
        }
    }

    /// Hand out a table, reserving its memory from the budget on a miss.
    ///
    /// Degradation ladder: when the configured size is denied by a real
    /// budget limit, retry with half the slots, down to
    /// [`TableConfig::MIN_TOTAL_SLOTS`]. A shrunken table counts as one
    /// budget downgrade. Injected failures (`limit: 0`) never degrade.
    fn get(&self, level: u32, gate: Gate<'_>, obs: &Obs) -> Result<AggTable, AggError> {
        if let Some(mut t) = self.free.lock().pop() {
            t.set_level(level);
            return Ok(t);
        }
        let mut cfg = self.cfg;
        loop {
            match gate.reserve(cfg.mem_bytes(self.identities.len()), obs) {
                Ok(res) => {
                    self.held.lock().merge(res);
                    let mut t = AggTable::new(cfg, level, &self.identities);
                    t.set_metrics_enabled(self.metrics);
                    if cfg.total_slots < self.cfg.total_slots {
                        gate.stats.count_budget_downgrade();
                        obs.recorder.add(obs.worker, Counter::BudgetDowngrades, 1);
                        obs.tracer.instant(
                            obs.worker,
                            "table_downgrade",
                            &[("slots", cfg.total_slots as u64)],
                        );
                    }
                    return Ok(t);
                }
                Err(e)
                    if is_degradable(&e) && cfg.total_slots / 2 >= TableConfig::MIN_TOTAL_SLOTS =>
                {
                    cfg.total_slots /= 2;
                }
                Err(e) => return Err(e),
            }
        }
    }

    pub(crate) fn put(&self, table: AggTable) {
        debug_assert!(table.is_empty(), "tables must be sealed before returning");
        self.free.lock().push(table);
    }
}

/// Everything shared across the tasks of one operator invocation. Owned
/// (not borrowed) so a [`crate::AggStream`] can hold it across pushes.
pub(crate) struct Ctx {
    pub(crate) cfg: AggregateConfig,
    pub(crate) env: ExecEnv,
    /// The effective cancel token: `env.cancel`, or an internal token the
    /// driver substitutes when the fault plan wants to cancel mid-run.
    pub(crate) cancel: CancelToken,
    pub(crate) ops: Vec<StateOp>,
    pub(crate) pool: TablePool,
    pub(crate) collector: Collector,
    pub(crate) stats: AtomicStats,
    pub(crate) recorder: Recorder,
    pub(crate) tracer: Tracer,
    /// Live progress cells read by the `--progress` sampler thread
    /// (disabled unless a sampler is running).
    pub(crate) gauge: ProgressGauge,
    /// Kernel tier resolved once per invocation from `cfg.kernel` (and the
    /// `HSA_KERNEL` override), clamped to what the CPU supports.
    pub(crate) kind: KernelKind,
    /// Run store the budget degrades into: spills to `env.spill_dir` when
    /// configured, otherwise memory-only (denials stay denials).
    pub(crate) store: RunStore,
    /// First error any task hit; later tasks bail out early once set.
    pub(crate) failed: Mutex<Option<AggError>>,
}

impl Ctx {
    /// The observability handle for a task running as `worker`.
    pub(crate) fn obs(&self, worker: usize) -> Obs {
        Obs::new(self.recorder.clone(), self.tracer.clone(), self.gauge.clone(), worker)
    }

    /// The allocation gate tasks reserve memory through.
    pub(crate) fn gate(&self) -> Gate<'_> {
        Gate {
            budget: &self.env.budget,
            faults: &self.env.faults,
            stats: &self.stats,
            store: &self.store,
        }
    }

    /// Record the first error; subsequent errors are dropped.
    pub(crate) fn fail(&self, e: AggError) {
        self.failed.lock().get_or_insert(e);
    }

    /// True once any task has failed — remaining tasks skip their work.
    pub(crate) fn bailed(&self) -> bool {
        self.failed.lock().is_some()
    }

    /// Take the recorded error, if any.
    pub(crate) fn take_failure(&self) -> Option<AggError> {
        self.failed.lock().take()
    }

    /// Poll the cancel token; counts the observation when it has tripped.
    pub(crate) fn check_cancel(&self, obs: &Obs) -> Result<(), AggError> {
        if let Some(reason) = self.cancel.cancelled() {
            self.stats.count_cancellation();
            obs.recorder.add(obs.worker, Counter::Cancellations, 1);
            return Err(AggError::Cancelled(reason));
        }
        Ok(())
    }
}

/// Per-worker persistent state of the level-0 main loop.
pub(crate) struct WorkerState {
    pub(crate) table: Option<AggTable>,
    pub(crate) mode: ModeState,
    pub(crate) epoch_rows: u64,
    pub(crate) map32: Vec<u32>,
    pub(crate) map8: Vec<u8>,
}

impl WorkerState {
    pub(crate) fn new(strategy: Strategy) -> Self {
        Self {
            table: None,
            mode: ModeState::new(strategy),
            epoch_rows: 0,
            map32: Vec::new(),
            map8: Vec::new(),
        }
    }
}

/// Process one run/morsel through the strategy-selected routines.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_view(
    ctx: &Ctx,
    view: &RunView<'_>,
    level: u32,
    table_slot: &mut Option<AggTable>,
    mode: &mut ModeState,
    epoch_rows: &mut u64,
    map32: &mut Vec<u32>,
    map8: &mut Vec<u8>,
    sink: &mut impl RunSink,
    obs: &Obs,
) -> Result<(), AggError> {
    let mut row = 0;
    while row < view.len() {
        if mode.use_hashing(level) {
            let table = match table_slot {
                Some(t) => t,
                None => match ctx.pool.get(level, ctx.gate(), obs) {
                    Ok(t) => table_slot.insert(t),
                    Err(e) if is_degradable(&e) => {
                        // Even the smallest table was denied: degrade to
                        // partitioning, which needs only the fixed SWC
                        // buffers plus the output it would produce anyway.
                        ctx.stats.count_budget_downgrade();
                        obs.recorder.add(obs.worker, Counter::BudgetDowngrades, 1);
                        obs.tracer.instant(
                            obs.worker,
                            "forced_partitioning",
                            &[("level", level as u64)],
                        );
                        return partition_run(
                            view,
                            row,
                            level,
                            ctx.ops.len(),
                            map8,
                            sink,
                            ctx.gate(),
                            obs,
                        );
                    }
                    Err(e) => return Err(e),
                },
            };
            match hash_run(
                view,
                row,
                table,
                &ctx.ops,
                mode,
                epoch_rows,
                map32,
                sink,
                ctx.gate(),
                obs,
                ctx.kind,
            )? {
                HashOutcome::Done => return Ok(()),
                HashOutcome::Switched { next_row } => row = next_row,
            }
        } else {
            let rows = (view.len() - row) as u64;
            partition_run(view, row, level, ctx.ops.len(), map8, sink, ctx.gate(), obs)?;
            if mode.on_partitioned(rows) {
                ctx.stats.count_switch_to_hashing();
                obs.recorder.add(obs.worker, Counter::SwitchesToHashing, 1);
                obs.tracer.instant(obs.worker, "switch_to_hashing", &[("level", level as u64)]);
            }
            return Ok(());
        }
    }
    Ok(())
}

/// Emit a completed bucket's table as final groups.
fn emit_final_from_table(ctx: &Ctx, table: &mut AggTable, obs: &Obs) -> Result<(), AggError> {
    let pt = obs.phase_start(table.level(), Phase::Output);
    let groups = table.len() as u64;
    let out_bytes = (table.len() * 8 * (1 + table.n_cols())) as u64;
    // On a denied reservation the timer is dropped unrecorded: the query
    // is failing and partial attribution would only skew the tree.
    let mut res = ctx.gate().reserve(out_bytes, obs)?;
    table.seal(|_digit, keys, cols| {
        let block_res = res.take((keys.len() * 8 * (1 + cols.len())) as u64);
        ctx.collector.push_block(keys, cols, block_res);
    });
    flush_table_metrics(obs, table);
    obs.phase_end(pt, groups, groups, out_bytes);
    Ok(())
}

/// Merge a bucket with the growable key-addressed table (recursion floor
/// and the final pass of `PartitionAlways`).
///
/// Spilled runs are restored one at a time, right before their rows are
/// folded in, so at most one restored run is resident at any moment.
fn grow_merge(ctx: &Ctx, bucket: Vec<RunHandle>, obs: &Obs) -> Result<(), AggError> {
    ctx.stats.count_fallback_merge();
    obs.recorder.add(obs.worker, Counter::FallbackMerges, 1);
    obs.tracer.instant(
        obs.worker,
        "fallback_merge",
        &[("rows", bucket.iter().map(RunHandle::len).sum::<usize>() as u64)],
    );
    let level = bucket.first().map_or(0, RunHandle::level);
    let pt = obs.phase_start(level, Phase::GrowMerge);
    let rows: usize = bucket.iter().map(RunHandle::len).sum();
    let capacity = rows.clamp(16, 1 << 20);
    let mut res =
        ctx.gate().reserve(GrowTable::mem_bytes_upper(capacity, rows, ctx.ops.len()), obs)?;
    let mut table = GrowTable::with_capacity(capacity, &ctx.ops);
    let n_cols = ctx.ops.len();
    let mut vals = vec![0u64; n_cols];
    // Pipeline the restores: ask the store's I/O worker to decode the
    // next spilled run while this thread folds in the current one.
    let mut handles = bucket.into_iter().peekable();
    if let Some(first) = handles.peek() {
        first.prefetch();
    }
    while let Some(handle) = handles.next() {
        if let Some(next) = handles.peek() {
            next.prefetch();
        }
        let run = ctx.gate().restore(handle, obs)?;
        let aggregated = run.aggregated;
        let view = RunView::Owned(run);
        let mut row = 0;
        while row < view.len() {
            let len = view.aligned_block_len(row, n_cols);
            let keys = &view.key_tail(row)[..len];
            let cols: Vec<&[u64]> = (0..n_cols).map(|i| &view.col_tail(i, row)[..len]).collect();
            for (j, &key) in keys.iter().enumerate() {
                for (v, c) in vals.iter_mut().zip(&cols) {
                    *v = c[j];
                }
                table.accumulate(key, &vals, aggregated);
            }
            row += len;
        }
    }
    let mut keys = Vec::with_capacity(table.len());
    let mut cols: Vec<Vec<u64>> =
        (0..n_cols).map(|_| Vec::with_capacity(keys.capacity())).collect();
    for (k, states) in table.drain() {
        keys.push(k);
        for (c, s) in cols.iter_mut().zip(states) {
            c.push(s);
        }
    }
    let out_res = res.take((keys.len() * 8 * (1 + cols.len())) as u64);
    ctx.collector.push_block(&keys, &cols, out_res);
    obs.phase_end(pt, rows as u64, keys.len() as u64, 0);
    Ok(())
}

/// Recursive bucket task (Algorithm 2, line 8).
///
/// `bucket_res` is the budget reservation backing the bucket's resident
/// runs; it is dropped (released) when the task finishes consuming them —
/// on success and on every early-out alike. Spilled runs carry no
/// reservation; each is restored from disk right before it is processed.
pub(crate) fn process_bucket<'env>(
    ctx: &'env Ctx,
    scope: &Scope<'_, 'env>,
    bucket: Vec<RunHandle>,
    bucket_res: Reservation,
    level: u32,
) {
    let _bucket_res = bucket_res;
    if ctx.bailed() {
        return;
    }
    let t0 = Instant::now();
    let obs = ctx.obs(scope.worker_index());
    // The whole task runs inside a Driver phase: the nested accounting
    // subtracts every work phase, so the cell keeps only the dispatch
    // overhead (restore plumbing, views, pooling, run teardown) — and the
    // guard records it on error exits and contained panics too.
    let _driver = obs.phase_scope(level, Phase::Driver);
    if ctx.env.faults.should_panic_in_task() {
        panic!("injected fault: task panic");
    }
    if let Err(e) = ctx.check_cancel(&obs) {
        ctx.fail(e);
        return;
    }
    let trace_t0 = obs.tracer.now();
    let bucket_rows: u64 = bucket.iter().map(|r| r.len() as u64).sum();
    let end_span = |obs: &Obs| {
        obs.tracer.span_args(
            obs.worker,
            "bucket",
            trace_t0,
            &[("level", level as u64), ("rows", bucket_rows)],
        );
    };
    let final_hash_pass = matches!(
        ctx.cfg.strategy,
        Strategy::PartitionAlways { passes } if level >= passes
    );
    if level >= MAX_LEVEL || final_hash_pass {
        if let Err(e) = grow_merge(ctx, bucket, &obs) {
            ctx.fail(e);
            return;
        }
        ctx.stats.add_level_nanos(level.min(MAX_LEVEL), t0.elapsed().as_nanos() as u64);
        end_span(&obs);
        return;
    }

    let mut table_slot: Option<AggTable> = None;
    let mut mode = ModeState::new(ctx.cfg.strategy);
    let mut epoch_rows = 0u64;
    let mut map32 = Vec::new();
    let mut map8 = Vec::new();
    let mut local = LocalBuckets::new();

    // Restore prefetch: overlap the next run's disk read + decode with
    // the hashing/partitioning of the current one (no-op for resident
    // handles and synchronous stores).
    let mut handles = bucket.into_iter().peekable();
    if let Some(first) = handles.peek() {
        first.prefetch();
    }
    while let Some(handle) = handles.next() {
        if let Some(next) = handles.peek() {
            next.prefetch();
        }
        debug_assert_eq!(handle.level(), level, "run level out of sync with recursion");
        let run = match ctx.gate().restore(handle, &obs) {
            Ok(run) => run,
            Err(e) => {
                ctx.fail(e);
                return;
            }
        };
        #[cfg(debug_assertions)]
        if let Err(msg) = run.check_consistent() {
            panic!("inconsistent run entering level {level}: {msg}");
        }
        let view = RunView::Owned(run);
        if let Err(e) = process_view(
            ctx,
            &view,
            level,
            &mut table_slot,
            &mut mode,
            &mut epoch_rows,
            &mut map32,
            &mut map8,
            &mut local,
            &obs,
        ) {
            // A non-empty table is dropped rather than pooled; its memory
            // stays reserved by the pool until the operator unwinds.
            ctx.fail(e);
            return;
        }
    }

    if local.is_empty() {
        // The entire bucket was absorbed by one table: its groups are
        // final — "the recursion stops automatically" (§5).
        if let Some(mut table) = table_slot {
            if let Err(e) = emit_final_from_table(ctx, &mut table, &obs) {
                ctx.fail(e);
                return;
            }
            ctx.pool.put(table);
        }
        ctx.stats.add_level_nanos(level, t0.elapsed().as_nanos() as u64);
        end_span(&obs);
        return;
    }

    // Something spilled: the leftover table content is one more run set.
    if let Some(mut table) = table_slot {
        if !table.is_empty() {
            if let Err(e) = seal_into(&mut table, &mut local, ctx.gate(), &obs) {
                ctx.fail(e);
                return;
            }
        }
        ctx.pool.put(table);
    }
    ctx.stats.add_level_nanos(level, t0.elapsed().as_nanos() as u64);
    end_span(&obs);
    for (_digit, sub, sub_res) in local.into_nonempty() {
        scope.spawn(move |s| process_bucket(ctx, s, sub, sub_res, level + 1));
    }
}

/// Run a grouped aggregation.
///
/// * `keys` — the grouping column.
/// * `inputs` — aggregate input columns, referenced by index from `specs`;
///   every column must have `keys.len()` rows.
/// * `specs` — requested aggregates (empty = `DISTINCT`).
///
/// Returns the grouped result plus the execution statistics the paper's
/// pass-breakdown plots are built from.
///
/// Panics on invalid input. For a non-panicking variant with memory
/// budgets and cancellation, see [`try_aggregate`]; for bounded-chunk
/// ingestion, see [`crate::AggStream`].
pub fn aggregate(
    keys: &[u64],
    inputs: &[&[u64]],
    specs: &[AggSpec],
    cfg: &AggregateConfig,
) -> (GroupByOutput, OpStats) {
    let (out, report) = aggregate_observed(keys, inputs, specs, cfg, &ObsConfig::disabled());
    (out, report.stats)
}

/// Fallible [`aggregate`]: validates the input instead of panicking and
/// runs under `env`'s memory budget, cancellation token, and fault plan.
pub fn try_aggregate(
    keys: &[u64],
    inputs: &[&[u64]],
    specs: &[AggSpec],
    cfg: &AggregateConfig,
    env: &ExecEnv,
) -> Result<(GroupByOutput, OpStats), AggError> {
    let (out, report) =
        try_aggregate_observed(keys, inputs, specs, cfg, env, &ObsConfig::disabled())?;
    Ok((out, report.stats))
}

/// [`aggregate`] with the full observability layer: returns a
/// [`RunReport`] carrying per-worker deep metrics and (optionally) the
/// Chrome task timeline, as selected by `obs_cfg`. With
/// [`ObsConfig::disabled`] the extra cost is a null check per recording
/// site.
pub fn aggregate_observed(
    keys: &[u64],
    inputs: &[&[u64]],
    specs: &[AggSpec],
    cfg: &AggregateConfig,
    obs_cfg: &ObsConfig,
) -> (GroupByOutput, RunReport) {
    try_aggregate_observed(keys, inputs, specs, cfg, &ExecEnv::unrestricted(), obs_cfg)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Reject specs that `plan` cannot lower: everything but COUNT needs an
/// input column. The `AggSpec` constructors always set one, but the
/// fields are public.
pub(crate) fn validate_specs(specs: &[AggSpec]) -> Result<(), AggError> {
    for (i, s) in specs.iter().enumerate() {
        if s.input.is_none() && !matches!(s.func, AggFn::Count) {
            return Err(AggError::SpecNeedsInput { spec: i });
        }
    }
    Ok(())
}

/// Fallible [`aggregate_observed`]: typed errors instead of panics, plus
/// the robustness controls of `env`. One-chunk wrapper over
/// [`crate::AggStream`], so the streaming and slice paths cannot diverge.
pub fn try_aggregate_observed(
    keys: &[u64],
    inputs: &[&[u64]],
    specs: &[AggSpec],
    cfg: &AggregateConfig,
    env: &ExecEnv,
    obs_cfg: &ObsConfig,
) -> Result<(GroupByOutput, RunReport), AggError> {
    let mut stream = AggStream::new(specs, cfg, env, obs_cfg)?;
    stream.push(keys, inputs)?;
    stream.finish()
}

/// Merge pre-aggregated partial results — the distributed-aggregation
/// step: run the operator over `(keys, state columns)` pairs produced by
/// earlier [`aggregate`] calls (possibly on other machines), combining
/// states with the **super-aggregate** functions (§3.1: COUNT merges by
/// SUM). All partials must come from the same aggregate `specs`.
///
/// Panics on mismatched specs; see [`try_merge_partials`].
pub fn merge_partials(
    partials: &[&GroupByOutput],
    specs: &[AggSpec],
    cfg: &AggregateConfig,
) -> (GroupByOutput, OpStats) {
    try_merge_partials(partials, specs, cfg, &ExecEnv::unrestricted())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`merge_partials`].
pub fn try_merge_partials(
    partials: &[&GroupByOutput],
    specs: &[AggSpec],
    cfg: &AggregateConfig,
    env: &ExecEnv,
) -> Result<(GroupByOutput, OpStats), AggError> {
    validate_specs(specs)?;
    let lowered = plan(specs);
    let mut stream = AggStream::from_plan(lowered.clone(), true, cfg, env, &ObsConfig::disabled())?;
    for p in partials {
        if p.plan() != &lowered {
            return Err(AggError::MismatchedSpecs);
        }
        let state_slices: Vec<&[u64]> = p.states.iter().map(Vec::as_slice).collect();
        stream.push_cols(&p.keys, &state_slices)?;
    }
    let (out, report) = stream.finish()?;
    Ok((out, report.stats))
}

/// Convert a contained task panic into `AggError::WorkerPanic`, counting
/// it. Runs post-quiescence, so recording into shard 0 is race-free.
pub(crate) fn contain_panics(
    ctx: &Ctx,
    result: Result<(), hsa_tasks::TaskPanic>,
    pm: PoolMetrics,
) -> Result<PoolMetrics, AggError> {
    match result {
        Ok(()) => Ok(pm),
        Err(p) => {
            ctx.stats.count_contained_panic();
            ctx.recorder.add(0, Counter::ContainedPanics, 1);
            Err(AggError::WorkerPanic { message: p.message })
        }
    }
}

/// Build the run store for `env`: spilling when a directory is configured,
/// memory-only otherwise. Directory-creation failures surface as
/// [`AggError::SpillFailed`] before any row is processed.
pub(crate) fn store_for(env: &ExecEnv) -> Result<RunStore, AggError> {
    match &env.spill_dir {
        // The store inherits the environment's fault injector and disk
        // budget: storage-level faults (Nth-write EIO, bit flips, …) fire
        // inside the store, and every spill write reserves its file size
        // against `env.disk` first.
        Some(dir) => {
            RunStore::spilling_with_config(dir, env.faults.clone(), env.disk.clone(), env.spill)
        }
        None => Ok(RunStore::in_memory()),
    }
}

/// `SELECT DISTINCT key` — the C = 1, no-aggregates query the paper uses
/// for its architecture-neutral comparison with prior work (§6.4).
pub fn distinct(keys: &[u64], cfg: &AggregateConfig) -> (GroupByOutput, OpStats) {
    aggregate(keys, &[], &[], cfg)
}

/// Fallible [`distinct`] running under `env`'s robustness controls.
pub fn try_distinct(
    keys: &[u64],
    cfg: &AggregateConfig,
    env: &ExecEnv,
) -> Result<(GroupByOutput, OpStats), AggError> {
    try_aggregate(keys, &[], &[], cfg, env)
}

/// [`distinct`] with the full observability layer (see
/// [`aggregate_observed`]).
pub fn distinct_observed(
    keys: &[u64],
    cfg: &AggregateConfig,
    obs_cfg: &ObsConfig,
) -> (GroupByOutput, RunReport) {
    aggregate_observed(keys, &[], &[], cfg, obs_cfg)
}

/// Fallible [`distinct_observed`].
pub fn try_distinct_observed(
    keys: &[u64],
    cfg: &AggregateConfig,
    env: &ExecEnv,
    obs_cfg: &ObsConfig,
) -> Result<(GroupByOutput, RunReport), AggError> {
    try_aggregate_observed(keys, &[], &[], cfg, env, obs_cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AdaptiveParams;
    use std::collections::BTreeMap;

    fn reference(keys: &[u64], vals: &[u64]) -> BTreeMap<u64, (u64, u64, u64, u64)> {
        let mut m = BTreeMap::new();
        for (&k, &v) in keys.iter().zip(vals) {
            let e = m.entry(k).or_insert((0u64, 0u64, u64::MAX, 0u64));
            e.0 += 1;
            e.1 += v;
            e.2 = e.2.min(v);
            e.3 = e.3.max(v);
        }
        m
    }

    fn small_cfg(strategy: Strategy) -> AggregateConfig {
        AggregateConfig {
            // Tiny cache so multi-pass behavior kicks in at test sizes:
            // 64 Ki slots? No — 8 Ki slots ≈ 2 Ki groups per table.
            cache_bytes: 128 << 10,
            threads: 2,
            strategy,
            fill_percent: 25,
            morsel_rows: 1 << 12,
            kernel: hsa_kernels::KernelPref::Auto,
        }
    }

    fn all_strategies() -> Vec<Strategy> {
        vec![
            Strategy::HashingOnly,
            Strategy::PartitionAlways { passes: 1 },
            Strategy::PartitionAlways { passes: 2 },
            Strategy::Adaptive(AdaptiveParams::default()),
            Strategy::Adaptive(AdaptiveParams { alpha0: f64::INFINITY, c: 1.0 }),
        ]
    }

    fn keys_and_vals(n: usize, k: u64, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s >> 33
        };
        let keys: Vec<u64> = (0..n).map(|_| next() % k).collect();
        let vals: Vec<u64> = (0..n).map(|_| next() % 1000).collect();
        (keys, vals)
    }

    #[test]
    fn all_strategies_match_reference_small_k() {
        let (keys, vals) = keys_and_vals(40_000, 100, 1);
        let expect = reference(&keys, &vals);
        for strat in all_strategies() {
            let (out, _) = aggregate(
                &keys,
                &[&vals],
                &[AggSpec::count(), AggSpec::sum(0), AggSpec::min(0), AggSpec::max(0)],
                &small_cfg(strat),
            );
            let got: BTreeMap<u64, (u64, u64, u64, u64)> =
                out.sorted_rows().into_iter().map(|(k, s)| (k, (s[0], s[1], s[2], s[3]))).collect();
            assert_eq!(got, expect, "strategy {strat:?}");
        }
    }

    #[test]
    fn all_strategies_match_reference_large_k() {
        // K far beyond the tiny table capacity forces real recursion.
        let (keys, vals) = keys_and_vals(60_000, 30_000, 2);
        let expect = reference(&keys, &vals);
        for strat in all_strategies() {
            let (out, stats) = aggregate(
                &keys,
                &[&vals],
                &[AggSpec::count(), AggSpec::sum(0), AggSpec::min(0), AggSpec::max(0)],
                &small_cfg(strat),
            );
            let got: BTreeMap<u64, (u64, u64, u64, u64)> =
                out.sorted_rows().into_iter().map(|(k, s)| (k, (s[0], s[1], s[2], s[3]))).collect();
            assert_eq!(got, expect, "strategy {strat:?}");
            assert!(stats.passes_used() >= 1, "strategy {strat:?}");
        }
    }

    #[test]
    fn distinct_query() {
        let (keys, _) = keys_and_vals(50_000, 5_000, 3);
        let mut expect: Vec<u64> = keys.clone();
        expect.sort_unstable();
        expect.dedup();
        for strat in all_strategies() {
            let (out, _) = distinct(&keys, &small_cfg(strat));
            let mut got = out.keys.clone();
            got.sort_unstable();
            assert_eq!(got, expect, "strategy {strat:?}");
        }
    }

    #[test]
    fn empty_input() {
        let (out, stats) = aggregate(&[], &[], &[AggSpec::count()], &AggregateConfig::default());
        assert_eq!(out.n_groups(), 0);
        assert_eq!(stats.total_hash_rows() + stats.total_part_rows(), 0);
    }

    #[test]
    fn single_row() {
        let (out, _) = aggregate(&[7], &[&[99]], &[AggSpec::sum(0)], &AggregateConfig::default());
        assert_eq!(out.sorted_rows(), vec![(7, vec![99])]);
    }

    #[test]
    fn all_rows_same_key() {
        let keys = vec![5u64; 10_000];
        let vals: Vec<u64> = (0..10_000).collect();
        for strat in all_strategies() {
            let (out, _) =
                aggregate(&keys, &[&vals], &[AggSpec::count(), AggSpec::sum(0)], &small_cfg(strat));
            assert_eq!(out.sorted_rows(), vec![(5, vec![10_000, 49_995_000])], "{strat:?}");
        }
    }

    #[test]
    fn every_row_distinct() {
        let keys: Vec<u64> = (0..50_000).collect();
        for strat in all_strategies() {
            let (out, _) = distinct(&keys, &small_cfg(strat));
            assert_eq!(out.n_groups(), 50_000, "{strat:?}");
        }
    }

    #[test]
    fn count_is_conserved_across_passes() {
        // The COUNT invariant: whatever the routing, the counts sum to N.
        let (keys, _) = keys_and_vals(80_000, 10_000, 4);
        for strat in all_strategies() {
            let (out, _) = aggregate(&keys, &[], &[AggSpec::count()], &small_cfg(strat));
            let total: u64 = out.states[0].iter().sum();
            assert_eq!(total, 80_000, "{strat:?}");
        }
    }

    #[test]
    fn hashing_only_single_pass_for_tiny_k() {
        let (keys, _) = keys_and_vals(40_000, 16, 5);
        let (_, stats) =
            aggregate(&keys, &[], &[AggSpec::count()], &small_cfg(Strategy::HashingOnly));
        // Level 0 hashes everything; level 1 only merges tiny runs.
        assert_eq!(stats.part_rows_per_level.iter().sum::<u64>(), 0);
        assert_eq!(stats.hash_rows_per_level[0], 40_000);
        assert!(stats.hash_rows_per_level[1] <= 16 * 2 * 2, "tiny merge pass");
    }

    #[test]
    fn adaptive_partitions_when_no_locality() {
        // Distinct keys, K ≫ table: α = 1 at every seal → adaptive must
        // route the bulk of the data through partitioning.
        let keys: Vec<u64> = (0..100_000).collect();
        let (_, stats) =
            aggregate(&keys, &[], &[], &small_cfg(Strategy::Adaptive(AdaptiveParams::default())));
        assert!(stats.switches_to_partitioning > 0);
        assert!(
            stats.total_part_rows() > stats.total_hash_rows() / 2,
            "partitioning should carry substantial load: part={} hash={}",
            stats.total_part_rows(),
            stats.total_hash_rows()
        );
    }

    #[test]
    fn adaptive_keeps_hashing_on_heavy_locality() {
        // One key: every table absorbs rows without filling; never switch.
        let keys = vec![1u64; 100_000];
        let (_, stats) =
            aggregate(&keys, &[], &[], &small_cfg(Strategy::Adaptive(AdaptiveParams::default())));
        assert_eq!(stats.switches_to_partitioning, 0);
        assert_eq!(stats.total_part_rows(), 0);
    }

    #[test]
    fn avg_finalizes() {
        let keys = vec![1u64, 1, 2];
        let vals = vec![10u64, 20, 5];
        let (out, _) = aggregate(&keys, &[&vals], &[AggSpec::avg(0)], &AggregateConfig::default());
        let rows = out.sorted_rows();
        assert_eq!(rows.len(), 2);
        // keys sorted: group 1 then 2.
        let avg1 = out.value(0, out.keys.iter().position(|&k| k == 1).unwrap());
        let avg2 = out.value(0, out.keys.iter().position(|&k| k == 2).unwrap());
        assert_eq!(avg1, 15.0);
        assert_eq!(avg2, 5.0);
    }

    #[test]
    fn single_threaded_matches_multi() {
        let (keys, vals) = keys_and_vals(30_000, 3_000, 6);
        let specs = [AggSpec::sum(0), AggSpec::count()];
        let mut cfg = small_cfg(Strategy::Adaptive(AdaptiveParams::default()));
        let (a, _) = aggregate(&keys, &[&vals], &specs, &cfg);
        cfg.threads = 1;
        let (b, _) = aggregate(&keys, &[&vals], &specs, &cfg);
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }

    #[test]
    fn merge_partials_equals_single_pass() {
        let (keys, vals) = keys_and_vals(40_000, 2_000, 7);
        let specs = [AggSpec::count(), AggSpec::sum(0), AggSpec::min(0), AggSpec::avg(0)];
        let cfg = small_cfg(Strategy::Adaptive(AdaptiveParams::default()));

        let (whole, _) = aggregate(&keys, &[&vals], &specs, &cfg);

        // Split into three uneven shards, aggregate each, merge.
        let cuts = [0usize, 13_000, 27_500, 40_000];
        let parts: Vec<GroupByOutput> = cuts
            .windows(2)
            .map(|w| aggregate(&keys[w[0]..w[1]], &[&vals[w[0]..w[1]]], &specs, &cfg).0)
            .collect();
        let refs: Vec<&GroupByOutput> = parts.iter().collect();
        let (merged, _) = merge_partials(&refs, &specs, &cfg);

        assert_eq!(merged.sorted_rows(), whole.sorted_rows());
        // AVG survives the merge because its SUM and COUNT states do.
        let k0 = whole.keys[0];
        let r_whole = whole.keys.iter().position(|&k| k == k0).unwrap();
        let r_merged = merged.keys.iter().position(|&k| k == k0).unwrap();
        assert_eq!(whole.value(3, r_whole), merged.value(3, r_merged));
    }

    #[test]
    #[should_panic(expected = "different aggregate specs")]
    fn merge_partials_rejects_mismatched_plans() {
        let cfg = AggregateConfig::default();
        let (a, _) = aggregate(&[1], &[&[1]], &[AggSpec::sum(0)], &cfg);
        let _ = merge_partials(&[&a], &[AggSpec::count()], &cfg);
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn mismatched_columns_panic() {
        let _ = aggregate(&[1, 2], &[&[1]], &[AggSpec::sum(0)], &AggregateConfig::default());
    }

    #[test]
    #[should_panic(expected = "missing input column")]
    fn missing_input_panics() {
        let _ = aggregate(&[1, 2], &[], &[AggSpec::sum(0)], &AggregateConfig::default());
    }
}
