//! Thin poison-ignoring wrappers over `std::sync` primitives.
//!
//! The pool contains panics with `catch_unwind` and re-raises them once the
//! scope has quiesced, so a poisoned mutex carries no extra information —
//! every lock site would just call `unwrap_or_else(PoisonError::into_inner)`.
//! These wrappers centralize that and give `Condvar` a `wait_for` that keeps
//! the guard, mirroring the call shape the pool wants.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex whose `lock` never fails: poisoning is ignored (see module docs).
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Condition variable matching [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Wait on `guard` for at most `timeout`, reacquiring the lock into the
    /// same guard binding before returning.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) {
        // Safety note: this is plain safe code — we temporarily move the
        // guard out and back via the Option dance the std API requires.
        take_mut(guard, |g| {
            self.0.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner).0
        });
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Replace `*slot` with `f(*slot)` for a non-`Default` type, aborting on
/// panic in `f` (the closure only calls `wait_timeout`, which does not
/// panic; the abort guard is the cost of not having `replace_with`).
fn take_mut<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    struct AbortOnDrop;
    impl Drop for AbortOnDrop {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    let guard = AbortOnDrop;
    // SAFETY: `slot` is a valid, exclusively borrowed `T`. The value is
    // moved out by `read` and a replacement is always written back before
    // the borrow ends; if `f` panics in between, the guard aborts the
    // process so the double-drop can never be observed.
    unsafe {
        let old = std::ptr::read(slot);
        let new = f(old);
        std::ptr::write(slot, new);
    }
    std::mem::forget(guard);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let t0 = Instant::now();
        cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(t0.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn condvar_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait_for(&mut g, Duration::from_millis(50));
            }
        });
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn lock_survives_poison() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
