//! The long-lived shared worker runtime.
//!
//! One process-wide pool of worker threads, started once and sized to the
//! machine, executes the morsel and bucket tasks of *every* concurrently
//! admitted query. Each query gets its own set of **slots** — per-slot
//! work-stealing deques plus the panic/quiescence state of one scope —
//! and the shared workers round-robin across the active queries at task
//! granularity, claiming a free slot of the chosen query for the duration
//! of one task. The submitting thread always owns slot 0 and helps until
//! quiescence, so a query makes progress even when every shared worker is
//! busy elsewhere (and a one-slot query runs deterministically inline on
//! its caller, untouched by the pool).

use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Scheduling counters of one slot of a completed scope, accumulated
/// locally per task execution and folded into the slot under a mutex —
/// off the row-level hot path (tasks are whole morsels or whole buckets).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerPoolMetrics {
    /// Tasks run to completion on this slot (own or stolen).
    pub tasks_executed: u64,
    /// Tasks obtained from another slot's deque.
    pub steals: u64,
    /// Full scans over all victim deques that found nothing to steal.
    pub failed_steal_scans: u64,
    /// Nanoseconds the submitting thread spent parked waiting for
    /// quiescence (slot 0 only; shared workers' idle time belongs to the
    /// runtime, not to any one query).
    pub idle_nanos: u64,
}

impl WorkerPoolMetrics {
    fn add(&mut self, other: &WorkerPoolMetrics) {
        self.tasks_executed += other.tasks_executed;
        self.steals += other.steals;
        self.failed_steal_scans += other.failed_steal_scans;
        self.idle_nanos += other.idle_nanos;
    }
}

/// Per-slot scheduling metrics of one completed scope.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoolMetrics {
    /// One entry per slot, index = slot (= worker) index.
    pub workers: Vec<WorkerPoolMetrics>,
}

impl PoolMetrics {
    /// Sum over all slots.
    pub fn totals(&self) -> WorkerPoolMetrics {
        let mut t = WorkerPoolMetrics::default();
        for w in &self.workers {
            t.add(w);
        }
        t
    }

    /// Fold another scope's metrics into this one (same slot count, or
    /// either side empty).
    pub fn merge(&mut self, other: &PoolMetrics) {
        if self.workers.len() < other.workers.len() {
            self.workers.resize(other.workers.len(), WorkerPoolMetrics::default());
        }
        for (dst, src) in self.workers.iter_mut().zip(&other.workers) {
            dst.add(src);
        }
    }
}

/// Identifier of one admitted query: every scope the query runs (each
/// `push`, the `finish` recursion) carries the same id, and the runtime's
/// dispatch, the run report, and the progress heartbeat all tag work with
/// it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(u64);

impl QueryId {
    /// The raw id (serialized into `RunReport::query_id`).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A unit of work after lifetime erasure (see [`Scope::spawn`]).
type ErasedTask = Box<dyn FnOnce(&Scope<'_, 'static>) + Send + 'static>;

/// Render a panic payload for [`TaskPanic::message`]: the `&str`/`String`
/// payloads of ordinary `panic!` calls are passed through, anything else is
/// described by its opacity.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One execution slot of a query: a deque, its exclusive-claim flag, and
/// the slot's scheduling counters.
struct Slot {
    /// Exclusive-use flag: the holder is the only executor using this slot
    /// index until it releases. hsa-core keys per-worker state (recorder
    /// shards, worker hash tables) on the slot index, so exclusivity is
    /// what keeps that indexing race-free across the shared pool.
    claimed: AtomicBool,
    /// Owner pushes/pops at the back (LIFO), thieves pop at the front
    /// (FIFO). A plain mutex per deque is plenty: tasks are coarse (whole
    /// morsels / whole buckets), so queue operations are orders of
    /// magnitude rarer than the row-level work they guard.
    queue: Mutex<VecDeque<ErasedTask>>,
    /// The slot's counters, published before each task's pending
    /// decrement so quiescence implies every counter is visible.
    metrics: Mutex<WorkerPoolMetrics>,
}

/// The shared state of one scope of one query (one `push` or `finish`).
/// Fully `'static`: tasks are lifetime-erased on entry (see
/// [`Scope::spawn`]) and the scope call blocks until all of them have
/// been consumed.
struct QueryRun {
    id: QueryId,
    /// The runtime this run is registered with (for worker wakeups).
    runtime: Arc<RuntimeInner>,
    slots: Vec<Slot>,
    /// Tasks spawned but not yet finished; quiescence = 0.
    pending: AtomicUsize,
    /// Set when any task panicked (or the scope root unwound). Once
    /// poisoned the scope stops running queued tasks — it *drains* them
    /// (popped and dropped unexecuted) so quiescence is still reached,
    /// fast, and in a known state. Other queries are untouched: poison is
    /// per-run state.
    poisoned: AtomicBool,
    /// Payload message of the first panic (later ones are dropped).
    panic_msg: Mutex<Option<String>>,
    /// Wakeup for the submitting thread parked awaiting quiescence.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

impl QueryRun {
    fn new(id: QueryId, threads: usize, runtime: Arc<RuntimeInner>) -> Self {
        Self {
            id,
            runtime,
            slots: (0..threads)
                .map(|_| Slot {
                    claimed: AtomicBool::new(false),
                    queue: Mutex::new(VecDeque::new()),
                    metrics: Mutex::new(WorkerPoolMetrics::default()),
                })
                .collect(),
            pending: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            panic_msg: Mutex::new(None),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        }
    }

    /// Claim a free slot with index ≥ `lo` for exclusive use. Shared
    /// workers pass `lo = 1`: slot 0 belongs to the submitting thread, so
    /// a one-slot query is never touched by the pool and runs its tasks
    /// deterministically inline.
    fn claim_slot(&self, lo: usize) -> Option<usize> {
        for (i, slot) in self.slots.iter().enumerate().skip(lo) {
            // ORDERING: Acquire/Relaxed; site: claim; pairs-with: claimed.unclaim —
            // the winning CAS acquires every slot-indexed write (worker
            // tables, recorder shards) of the previous holder; the failed
            // side only retries the next slot.
            if slot
                .claimed
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return Some(i);
            }
        }
        None
    }

    fn release_slot(&self, slot: usize) {
        // ORDERING: Release; site: unclaim; pairs-with: claimed.claim —
        // hands every slot-indexed write to the next claimant.
        self.slots[slot].claimed.store(false, Ordering::Release);
    }

    fn pop_task(&self, slot: usize, counters: &mut WorkerPoolMetrics) -> Option<ErasedTask> {
        if let Some(task) = self.slots[slot].queue.lock().pop_back() {
            return Some(task);
        }
        let n = self.slots.len();
        for i in 1..n {
            let victim = (slot + i) % n;
            if let Some(task) = self.slots[victim].queue.lock().pop_front() {
                counters.steals += 1;
                return Some(task);
            }
        }
        counters.failed_steal_scans += 1;
        None
    }

    /// Run (or, when poisoned, drain) one task of this query on `slot`,
    /// which the caller must hold. Returns whether a task was consumed.
    fn run_one(&self, slot: usize) -> bool {
        let mut counters = WorkerPoolMetrics::default();
        let Some(task) = self.pop_task(slot, &mut counters) else {
            if counters.failed_steal_scans > 0 {
                self.slots[slot].metrics.lock().add(&counters);
            }
            return false;
        };
        // ORDERING: Acquire; site: drain; pairs-with: poisoned.poison —
        // an executor that sees the poison flag also sees the recorded
        // panic message.
        if self.poisoned.load(Ordering::Acquire) {
            // A task already panicked: drain instead of run. Dropping the
            // closure releases whatever it owned (data, reservations).
            drop(task);
        } else {
            let scope: Scope<'_, 'static> = Scope { run: self, slot, _env: PhantomData };
            // Contain panics so that (a) shared workers survive to serve
            // other queries, (b) pending still reaches zero, and (c) the
            // scope surfaces one consistent failure once quiesced.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(&scope)));
            if let Err(payload) = outcome {
                let mut first = self.panic_msg.lock();
                if first.is_none() {
                    *first = Some(payload_message(payload.as_ref()));
                }
                drop(first);
                // ORDERING: Release; site: poison; pairs-with: poisoned.drain, poisoned.observe —
                // publishes the panic message written above to the Acquire
                // loads of the flag (drain path, scope exit).
                self.poisoned.store(true, Ordering::Release);
            }
            counters.tasks_executed += 1;
        }
        // Publish the slot's counters *before* the decrement: observing
        // pending == 0 must imply the metrics are complete.
        self.slots[slot].metrics.lock().add(&counters);
        // ORDERING: AcqRel; site: task-done; pairs-with: pending.quiesce —
        // the decrement releases this task's side effects to whoever
        // observes pending == 0, and acquires earlier decrements so
        // quiescence implies all effects are visible.
        self.pending.fetch_sub(1, Ordering::AcqRel);
        self.idle_cv.notify_all();
        true
    }
}

/// Handle through which tasks spawn subtasks; one per (scope, executor).
pub struct Scope<'run, 'env> {
    run: &'run QueryRun,
    slot: usize,
    /// Invariant marker tying spawned closures to the data the scope may
    /// borrow; the runtime erases it (see [`Scope::spawn`]) but the API
    /// enforces it.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'run, 'env> Scope<'run, 'env> {
    /// Spawn a task. It may run on any executor of this query — the
    /// submitting thread or any shared runtime worker — any time before
    /// the enclosing scope call returns.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce(&Scope<'_, 'env>) + Send + 'env,
    {
        // ORDERING: AcqRel; site: spawn; pairs-with: pending.quiesce —
        // the increment must be visible before the task is enqueued so
        // quiescence checks (pending == 0) can never miss a task that is
        // already stealable.
        self.run.pending.fetch_add(1, Ordering::AcqRel);
        let task: Box<dyn FnOnce(&Scope<'_, 'env>) + Send + 'env> = Box::new(task);
        // SAFETY: lifetime erasure of the task closure, sound because the
        // scope entry point ([`QueryHandle::try_scope_observed`]) does not
        // return — on the normal path or during unwind — until `pending`
        // reaches zero, and `pending` is decremented only *after* the
        // closure has been consumed (run to completion or dropped on the
        // drain path). No `'env` borrow inside the closure can therefore
        // outlive the stack frame that owns the borrowed data. The two
        // `Box<dyn …>` types differ only in lifetimes, so layout (one fat
        // pointer) and vtable are identical.
        let task: ErasedTask = unsafe {
            std::mem::transmute::<Box<dyn FnOnce(&Scope<'_, 'env>) + Send + 'env>, ErasedTask>(task)
        };
        self.run.slots[self.slot].queue.lock().push_back(task);
        // Wake the submitting thread (it may be parked in its help loop)
        // and one shared worker.
        self.run.idle_cv.notify_one();
        self.run.runtime.notify_workers();
    }

    /// Number of execution slots of this query's scope (= the query's
    /// configured thread count, the cap on its parallelism).
    pub fn threads(&self) -> usize {
        self.run.slots.len()
    }

    /// Index of the slot the current task holds (0 = the submitting
    /// thread). Stable per-query worker index for sharded state.
    pub fn worker_index(&self) -> usize {
        self.slot
    }

    /// The id of the query this scope belongs to.
    pub fn query_id(&self) -> QueryId {
        self.run.id
    }
}

/// A contained task panic: the first panicking task's payload message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskPanic {
    /// The panic payload if it was a string, else a placeholder.
    pub message: String,
}

struct RuntimeInner {
    /// Scopes currently executing, in admission order. Workers snapshot
    /// this under the lock and round-robin over the snapshot.
    active: Mutex<Vec<Arc<QueryRun>>>,
    /// Round-robin dispatch cursor over the active list.
    cursor: AtomicUsize,
    /// Parking for idle shared workers.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    /// Monotonic query-id source.
    next_id: AtomicU64,
    /// Number of shared worker threads this runtime started.
    workers: usize,
}

impl RuntimeInner {
    fn notify_workers(&self) {
        self.idle_cv.notify_one();
    }

    fn register(&self, run: &Arc<QueryRun>) {
        self.active.lock().push(Arc::clone(run));
        // Taking the idle lock before notifying closes the race against a
        // worker that just found the active list empty and is about to
        // park long: it either sees the new entry or gets the wakeup.
        let _guard = self.idle_lock.lock();
        self.idle_cv.notify_all();
    }

    fn deregister(&self, run: &Arc<QueryRun>) {
        self.active.lock().retain(|q| !Arc::ptr_eq(q, run));
    }

    /// Dispatch one task from any active query, scanning in round-robin
    /// order from the fairness cursor. Returns whether a task ran.
    fn run_one_any(&self) -> bool {
        let snapshot: Vec<Arc<QueryRun>> = self.active.lock().clone();
        if snapshot.is_empty() {
            return false;
        }
        let n = snapshot.len();
        // ORDERING: Relaxed — the cursor is a fairness hint only; the
        // per-slot claim and the queue mutexes do the real handoff.
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for i in 0..n {
            let run = &snapshot[(start.wrapping_add(i)) % n];
            // ORDERING: Relaxed — cheap skip hint; a missed in-flight
            // spawn is caught by the next scan or the condvar wakeup.
            if run.pending.load(Ordering::Relaxed) == 0 {
                continue;
            }
            let Some(slot) = run.claim_slot(1) else {
                // Query already saturated (every slot busy) — stay fair,
                // try the next one.
                continue;
            };
            let ran = run.run_one(slot);
            run.release_slot(slot);
            if ran {
                return true;
            }
        }
        false
    }

    fn worker_loop(&self) {
        loop {
            if self.run_one_any() {
                continue;
            }
            let mut guard = self.idle_lock.lock();
            // Park briefly when queries are active (the 1 ms timeout is a
            // safety net against lost wakeups, not a spin); park long when
            // the runtime is idle so an idle process stays quiet. The
            // empty-check under the idle lock pairs with `register`
            // notifying under the same lock, so a fresh registration is
            // never missed for the long timeout.
            let empty = self.active.lock().is_empty();
            let timeout = if empty { Duration::from_millis(100) } else { Duration::from_millis(1) };
            self.idle_cv.wait_for(&mut guard, timeout);
        }
    }
}

/// The process-wide shared worker runtime: one pool of worker threads,
/// started on first use and sized to the machine (overridable with
/// `HSA_RUNTIME_THREADS`), executing the tasks of every admitted query
/// with round-robin fairness across queries.
pub struct Runtime {
    inner: Arc<RuntimeInner>,
}

impl Runtime {
    /// The shared runtime, started on first use.
    pub fn global() -> &'static Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(|| Runtime::start(default_workers()))
    }

    fn start(workers: usize) -> Runtime {
        let inner = Arc::new(RuntimeInner {
            active: Mutex::new(Vec::new()),
            cursor: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            next_id: AtomicU64::new(1),
            workers,
        });
        for w in 0..workers {
            let inner = Arc::clone(&inner);
            // A failed spawn is tolerable: submitting threads always help
            // inline, so queries still complete, just less concurrently.
            let _ = std::thread::Builder::new()
                .name(format!("hsa-runtime-{w}"))
                .spawn(move || inner.worker_loop());
        }
        Runtime { inner }
    }

    /// Number of shared worker threads.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Admit a query with up to `threads` execution slots. Cheap: the
    /// returned handle only reserves an id; resources are per-scope.
    pub fn admit(&self, threads: usize) -> QueryHandle {
        // ORDERING: Relaxed — a unique-id counter, no memory is published.
        let id = QueryId(self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        QueryHandle { runtime: Arc::clone(&self.inner), id, threads: threads.max(1) }
    }
}

/// Number of shared workers: the machine's parallelism, overridable with
/// `HSA_RUNTIME_THREADS` (useful for tests and benchmarks on small boxes).
fn default_workers() -> usize {
    if let Ok(v) = std::env::var("HSA_RUNTIME_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.clamp(1, 512);
        }
    }
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// One admitted query's ticket into the shared runtime: a stable
/// [`QueryId`] plus the slot count every scope of this query runs with.
/// All of a query's scope calls (each streamed chunk, the finish
/// recursion) go through one handle so the runtime can dispatch and
/// account them as one query.
#[derive(Clone)]
pub struct QueryHandle {
    runtime: Arc<RuntimeInner>,
    id: QueryId,
    threads: usize,
}

/// Winds a scope down on every exit path: on unwind of the scope root it
/// poisons the run first so queued tasks are drained, then helps until
/// quiescence, deregisters, and releases slot 0. Without it, a panicking
/// root could leave `'env`-borrowing tasks queued in a registered run —
/// the exact use-after-free the quiescence barrier exists to prevent.
struct WindDown<'a> {
    run: &'a Arc<QueryRun>,
    runtime: &'a RuntimeInner,
    clean: bool,
}

impl Drop for WindDown<'_> {
    fn drop(&mut self) {
        let run = self.run;
        if !self.clean {
            let mut first = run.panic_msg.lock();
            if first.is_none() {
                *first = Some("scope root panicked".to_string());
            }
            drop(first);
            // ORDERING: Release; site: poison; pairs-with: poisoned.drain, poisoned.observe —
            // same protocol as the poison store in `run_one`.
            run.poisoned.store(true, Ordering::Release);
        }
        let mut idle = WorkerPoolMetrics::default();
        // The submitting thread helps on slot 0 until quiescence.
        // ORDERING: Acquire; site: quiesce; pairs-with: pending.task-done, pending.spawn —
        // observing pending == 0 here means every task's writes (and its
        // published metrics) are visible.
        while run.pending.load(Ordering::Acquire) > 0 {
            if !run.run_one(0) {
                // All remaining tasks are running on shared workers; wait
                // for them to finish or to spawn more work we can steal.
                let mut guard = run.idle_lock.lock();
                // ORDERING: Acquire; site: quiesce; pairs-with: pending.task-done —
                // same pairing as the loop condition.
                if run.pending.load(Ordering::Acquire) == 0 {
                    break;
                }
                let parked = Instant::now();
                run.idle_cv.wait_for(&mut guard, Duration::from_millis(1));
                drop(guard);
                idle.idle_nanos += parked.elapsed().as_nanos() as u64;
            }
        }
        self.runtime.deregister(run);
        if idle.idle_nanos > 0 {
            run.slots[0].metrics.lock().add(&idle);
        }
        run.release_slot(0);
    }
}

impl QueryHandle {
    /// This query's id.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// Slots (the parallelism cap) each scope of this query runs with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `root` as one scope of this query on the shared runtime: tasks
    /// it spawns (transitively) execute on the submitting thread and on
    /// free shared workers, capped at this handle's slot count. Returns
    /// after the root closure has returned *and* every spawned task has
    /// finished, with panic containment as in the free
    /// [`try_scope_observed`].
    pub fn try_scope_observed<'env, R, F>(&self, root: F) -> (Result<R, TaskPanic>, PoolMetrics)
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
        R: Send,
    {
        let run = Arc::new(QueryRun::new(self.id, self.threads, Arc::clone(&self.runtime)));
        // ORDERING: Relaxed — slot 0 is the submitting thread's for the
        // whole scope, and the run is not yet visible to any other
        // thread; `register` below hands it over under the mutex.
        run.slots[0].claimed.store(true, Ordering::Relaxed);
        self.runtime.register(&run);
        let mut wind_down = WindDown { run: &run, runtime: &self.runtime, clean: false };
        let root_scope: Scope<'_, 'env> = Scope { run: &run, slot: 0, _env: PhantomData };
        let result = root(&root_scope);
        wind_down.clean = true;
        // Normal wind-down: help until quiescence, deregister, release.
        drop(wind_down);

        // Post-quiescence: all counters are published (each slot's
        // metrics are folded in before its task's pending decrement).
        let metrics =
            PoolMetrics { workers: run.slots.iter().map(|s| s.metrics.lock().clone()).collect() };
        // ORDERING: Acquire; site: observe; pairs-with: poisoned.poison —
        // seeing the flag guarantees the panic message is the recorded one.
        let outcome = if run.poisoned.load(Ordering::Acquire) {
            let message = run
                .panic_msg
                .lock()
                .take()
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(TaskPanic { message })
        } else {
            Ok(result)
        };
        (outcome, metrics)
    }

    /// [`Self::try_scope_observed`] with panic propagation.
    pub fn scope_observed<'env, R, F>(&self, root: F) -> (R, PoolMetrics)
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
        R: Send,
    {
        let (result, metrics) = self.try_scope_observed(root);
        match result {
            Ok(r) => (r, metrics),
            // Re-raise the contained task panic instead of minting a new
            // panic site here: the unwind originated in a task, this frame
            // only forwards it. The boxed `String` payload is exactly what
            // a formatting `panic!` would carry, so `catch_unwind` callers
            // and `#[should_panic(expected = …)]` tests observe the same
            // message either way.
            Err(p) => std::panic::resume_unwind(Box::new(format!(
                "task panicked inside hsa_tasks::scope: {}",
                p.message
            ))),
        }
    }
}

/// Run `root` with a work-stealing scope of `threads` slots on the shared
/// runtime (the calling thread holds slot 0 and helps). Returns after the
/// root closure has returned *and* every spawned task (transitively) has
/// finished.
///
/// Panics from tasks are surfaced as a panic of `scope` itself.
///
/// This is the one-shot convenience wrapper: it admits a fresh
/// single-scope query. Multi-scope queries (the streaming driver) admit
/// once via [`Runtime::admit`] and reuse the [`QueryHandle`] so every
/// scope shares one [`QueryId`].
pub fn scope<'env, R, F>(threads: usize, root: F) -> R
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
    R: Send,
{
    scope_observed(threads, root).0
}

/// [`scope`], additionally returning the per-slot scheduling metrics of
/// the completed scope (steals, failed steal scans, idle time, task
/// counts).
pub fn scope_observed<'env, R, F>(threads: usize, root: F) -> (R, PoolMetrics)
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
    R: Send,
{
    Runtime::global().admit(threads).scope_observed(root)
}

/// [`scope_observed`] with panic *containment* instead of propagation.
///
/// When a task panics, the scope is marked failed, every still-queued task
/// is drained (popped and dropped without running — their captured state,
/// including memory reservations, is released by the drop), already
/// running tasks finish, and the first panic's payload message is returned
/// as `Err(TaskPanic)`. The shared workers survive and move on to other
/// queries — containment is per-query, so one query's failure never
/// perturbs another's results or counters — and the caller keeps a usable
/// process and its own state: the operator driver turns this into
/// [`AggError::WorkerPanic`] and returns its tables to the pool.
///
/// [`AggError::WorkerPanic`]: https://docs.rs/hsa-fault
pub fn try_scope_observed<'env, R, F>(
    threads: usize,
    root: F,
) -> (Result<R, TaskPanic>, PoolMetrics)
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
    R: Send,
{
    Runtime::global().admit(threads).try_scope_observed(root)
}
