//! Small parallel utilities used by the operator driver and the baselines.

/// Split `0..n` into `parts` contiguous ranges of near-equal length.
///
/// Used to cut the input into per-thread morsels. Returns fewer than
/// `parts` ranges when `n < parts` (empty ranges are omitted).
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Run `f(thread_index)` on `threads` scoped OS threads and collect the
/// results in thread-index order. This is the fixed-partitioning primitive
/// the *baseline* algorithms use (they have no work-stealing — one of the
/// differences §6 highlights).
pub fn scoped_map<R, F>(threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1);
    if threads == 1 {
        return vec![f(0)];
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                s.spawn(move || f(t))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_exactly() {
        for n in [0usize, 1, 7, 100, 101, 1024] {
            for parts in [1usize, 2, 3, 7, 20] {
                let ranges = chunk_ranges(n, parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} parts={parts}");
                let mut expected_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expected_start);
                    assert!(!r.is_empty());
                    expected_start = r.end;
                }
            }
        }
    }

    #[test]
    fn ranges_are_balanced() {
        let ranges = chunk_ranges(10, 4);
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
    }

    #[test]
    fn scoped_map_orders_results() {
        let out = scoped_map(8, |t| t * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn scoped_map_single_thread() {
        assert_eq!(scoped_map(1, |t| t + 1), vec![1]);
    }
}
