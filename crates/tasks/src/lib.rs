//! Shared work-stealing worker runtime (§3.2, grown into a service).
//!
//! The operator parallelizes along two axes: the recursive calls on
//! different buckets are completely independent tasks, while the main loop
//! over the input runs is parallelized by **work-stealing** so that threads
//! that finish their own buckets can help with large ones — the paper's
//! answer to heavy row-skew, where an ideal hash function balances *groups*
//! across buckets but cannot balance *rows*.
//!
//! Execution happens on one process-wide [`Runtime`]: a pool of worker
//! threads started once and sized to the machine, serving *every*
//! concurrently admitted query with round-robin fairness at task
//! granularity. A query is admitted with [`Runtime::admit`], yielding a
//! [`QueryHandle`] whose [`QueryId`] tags all of its work; each scope the
//! handle runs gets per-slot deques — the owner pushes and pops its own
//! tasks LIFO (depth-first recursion keeps working sets cache-hot), idle
//! executors steal FIFO from sibling slots (breadth-first stealing finds
//! the biggest remaining subtrees) — and executors "synchronize only at a
//! very coarse granularity" (§6.2): the deques, the per-slot claim flags,
//! and an outstanding-task counter used for quiescence detection.
//!
//! [`scope`] is the one-shot wrapper: it admits a fresh query for a single
//! scope. There is no per-call thread spin-up anywhere — every scope,
//! one-shot or streamed, executes on the shared runtime.
//!
//! ```
//! use std::sync::atomic::{AtomicU64, Ordering};
//! let sum = AtomicU64::new(0);
//! hsa_tasks::scope(4, |s| {
//!     for i in 0..100u64 {
//!         let sum = &sum;
//!         s.spawn(move |_| {
//!             sum.fetch_add(i, Ordering::Relaxed);
//!         });
//!     }
//! });
//! assert_eq!(sum.into_inner(), 4950);
//! ```

mod runtime;
pub mod sync;
mod util;

pub use runtime::{
    scope, scope_observed, try_scope_observed, PoolMetrics, QueryHandle, QueryId, Runtime, Scope,
    TaskPanic, WorkerPoolMetrics,
};
pub use util::{chunk_ranges, scoped_map};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_spawned_tasks() {
        let counter = AtomicUsize::new(0);
        scope(4, |s| {
            for _ in 0..1000 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.into_inner(), 1000);
    }

    #[test]
    fn nested_spawns_complete_before_scope_returns() {
        let counter = AtomicUsize::new(0);
        scope(3, |s| {
            for _ in 0..10 {
                s.spawn(|s2| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    for _ in 0..10 {
                        s2.spawn(|s3| {
                            counter.fetch_add(1, Ordering::Relaxed);
                            s3.spawn(|_| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        });
                    }
                });
            }
        });
        assert_eq!(counter.into_inner(), 10 + 100 + 100);
    }

    #[test]
    fn single_thread_runs_inline() {
        let mut touched = false;
        let out = scope(1, |s| {
            s.spawn(|_| {});
            touched = true;
            42
        });
        assert!(touched);
        assert_eq!(out, 42);
    }

    #[test]
    fn borrows_stack_data() {
        let data: Vec<u64> = (0..1024).collect();
        let sum = std::sync::atomic::AtomicU64::new(0);
        scope(4, |s| {
            for chunk in data.chunks(64) {
                let sum = &sum;
                s.spawn(move |_| {
                    sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.into_inner(), 1024 * 1023 / 2);
    }

    #[test]
    fn scope_returns_root_value() {
        assert_eq!(scope(2, |_| "done"), "done");
    }

    #[test]
    fn uneven_task_sizes_all_finish() {
        // Tasks of wildly different cost — stealing must drain them all.
        let counter = AtomicUsize::new(0);
        scope(4, |s| {
            for i in 0..64usize {
                let counter = &counter;
                s.spawn(move |_| {
                    let spins = if i == 0 { 200_000 } else { 10 };
                    let mut x = 1u64;
                    for _ in 0..spins {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    assert!(x != 42); // keep the loop alive
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.into_inner(), 64);
    }

    #[test]
    #[should_panic(expected = "task panicked")]
    fn task_panic_propagates() {
        scope(2, |s| {
            s.spawn(|_| panic!("boom"));
        });
    }

    #[test]
    fn scope_panic_payload_is_the_formatted_message() {
        // `scope` re-raises the contained task panic via `resume_unwind`
        // with a boxed `String` — the same payload type a formatting
        // `panic!` produces — so catch_unwind callers can read it.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scope(2, |s| {
                s.spawn(|_| panic!("boom {}", 3));
            });
        }))
        .expect_err("scope must re-raise the task panic");
        let message = caught.downcast_ref::<String>().expect("payload is a String");
        assert_eq!(message, "task panicked inside hsa_tasks::scope: boom 3");
    }

    #[test]
    fn try_scope_contains_panic_and_reports_message() {
        let (result, _metrics) = try_scope_observed(2, |s| {
            s.spawn(|_| panic!("injected failure {}", 7));
            "root result"
        });
        assert_eq!(result, Err(TaskPanic { message: "injected failure 7".to_string() }));
    }

    #[test]
    fn try_scope_drains_queued_tasks_after_panic() {
        // Single thread: tasks run in a deterministic LIFO order on the
        // caller. The panicking task runs first (spawned last), so the 100
        // earlier-queued tasks must be drained, not run.
        let ran = AtomicUsize::new(0);
        let dropped = AtomicUsize::new(0);
        struct CountDrop<'a>(&'a AtomicUsize);
        impl Drop for CountDrop<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (result, _) = try_scope_observed(1, |s| {
            for _ in 0..100 {
                let ran = &ran;
                let guard = CountDrop(&dropped);
                s.spawn(move |_| {
                    let _g = &guard;
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
            s.spawn(|_| panic!("first"));
        });
        assert!(result.is_err());
        assert_eq!(ran.into_inner(), 0, "queued tasks must not run after the panic");
        assert_eq!(dropped.into_inner(), 100, "drained closures must still be dropped");
    }

    #[test]
    fn try_scope_is_reusable_after_containment() {
        let (r1, _) = try_scope_observed(4, |s| {
            s.spawn(|_| panic!("one-off"));
        });
        assert!(r1.is_err());
        // A fresh scope on the same thread works fine afterwards.
        let counter = AtomicUsize::new(0);
        let (r2, _) = try_scope_observed(4, |s| {
            for _ in 0..100 {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert!(r2.is_ok());
        assert_eq!(counter.into_inner(), 100);
    }

    #[test]
    fn try_scope_keeps_first_panic_message() {
        let (result, _) = try_scope_observed(1, |s| {
            s.spawn(|_| panic!("second"));
            s.spawn(|_| panic!("first")); // LIFO: runs first
        });
        // The second panicking task is drained, so only one message exists.
        assert_eq!(result.unwrap_err().message, "first");
    }

    #[test]
    fn try_scope_reports_non_string_payloads() {
        let (result, _) = try_scope_observed(1, |s| {
            s.spawn(|_| std::panic::panic_any(42usize));
        });
        assert_eq!(result.unwrap_err().message, "non-string panic payload");
    }

    #[test]
    fn handle_scopes_share_one_query_id() {
        let handle = Runtime::global().admit(2);
        let id = handle.id();
        let (seen1, _) = handle.scope_observed(|s| s.query_id());
        let (seen2, _) = handle.scope_observed(|s| s.query_id());
        assert_eq!(seen1, id);
        assert_eq!(seen2, id);
        // A different admission gets a different id.
        assert_ne!(Runtime::global().admit(2).id(), id);
    }

    #[test]
    fn scope_reports_slot_count_and_caller_slot() {
        let handle = Runtime::global().admit(3);
        handle.scope_observed(|s| {
            assert_eq!(s.threads(), 3);
            assert_eq!(s.worker_index(), 0, "the submitting thread holds slot 0");
        });
    }

    #[test]
    fn concurrent_scopes_from_many_threads_stay_isolated() {
        // Several queries in flight at once on the shared runtime: each
        // must see exactly its own tasks in its own metrics.
        std::thread::scope(|ts| {
            for q in 0..6u64 {
                ts.spawn(move || {
                    let handle = Runtime::global().admit(3);
                    let counter = AtomicUsize::new(0);
                    let (_, metrics) = handle.scope_observed(|s| {
                        for _ in 0..200 {
                            let counter = &counter;
                            s.spawn(move |_| {
                                let spins = 50 + q;
                                let mut x = q + 1;
                                for _ in 0..spins {
                                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                                }
                                assert!(x != 42);
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                    assert_eq!(counter.into_inner(), 200);
                    let executed: u64 = metrics.workers.iter().map(|w| w.tasks_executed).sum();
                    assert_eq!(executed, 200, "per-query task accounting must be exact");
                    assert_eq!(metrics.workers.len(), 3);
                });
            }
        });
    }

    #[test]
    fn root_panic_drains_queued_tasks_and_leaves_the_runtime_usable() {
        // A panic in the scope *root* (not a task) must still wind the
        // scope down — queued tasks drained, run deregistered — before the
        // unwind leaves the frame that owns the borrowed data.
        let dropped = AtomicUsize::new(0);
        struct CountDrop<'a>(&'a AtomicUsize);
        impl Drop for CountDrop<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            try_scope_observed(1, |s| {
                for _ in 0..50 {
                    let guard = CountDrop(&dropped);
                    s.spawn(move |_| {
                        let _g = &guard;
                    });
                }
                panic!("root blew up");
            })
        }));
        assert!(result.is_err());
        assert_eq!(dropped.into_inner(), 50, "queued closures must be drained on root unwind");
        // The shared runtime is unperturbed.
        let counter = AtomicUsize::new(0);
        scope(2, |s| {
            for _ in 0..10 {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.into_inner(), 10);
    }

    #[test]
    fn one_slot_scopes_never_run_on_shared_workers() {
        // With a single slot the submitting thread is the only executor:
        // execution is deterministic LIFO on the caller.
        let order = std::sync::Mutex::new(Vec::new());
        scope(1, |s| {
            for i in 0..10 {
                let order = &order;
                s.spawn(move |_| order.lock().unwrap().push(i));
            }
        });
        let order = order.into_inner().unwrap();
        assert_eq!(order, (0..10).rev().collect::<Vec<_>>(), "deterministic LIFO drain");
    }
}
