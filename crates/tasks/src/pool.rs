//! The work-stealing scope implementation.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A unit of work. Tasks receive the [`Scope`] so they can spawn subtasks
/// (the recursive bucket calls of Algorithm 2).
type Task<'env> = Box<dyn FnOnce(&Scope<'_, 'env>) + Send + 'env>;

struct Shared<'env> {
    /// One deque per worker. Owner pushes/pops at the back (LIFO), thieves
    /// pop at the front (FIFO). A plain mutex per deque is plenty here:
    /// tasks are coarse (whole runs / whole buckets), so queue operations
    /// are orders of magnitude rarer than the row-level work they guard.
    queues: Vec<Mutex<VecDeque<Task<'env>>>>,
    /// Tasks spawned but not yet finished; quiescence = 0.
    pending: AtomicUsize,
    /// Set when the scope is over and workers should exit.
    done: AtomicBool,
    /// Set when any task panicked (scope re-panics at the end).
    poisoned: AtomicBool,
    /// Sleeping-worker wakeup.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

impl<'env> Shared<'env> {
    fn new(threads: usize) -> Self {
        Self {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        }
    }

    fn pop_own(&self, worker: usize) -> Option<Task<'env>> {
        self.queues[worker].lock().pop_back()
    }

    fn steal(&self, worker: usize) -> Option<Task<'env>> {
        let n = self.queues.len();
        for i in 1..n {
            let victim = (worker + i) % n;
            if let Some(task) = self.queues[victim].lock().pop_front() {
                return Some(task);
            }
        }
        None
    }

    /// Run one task if any is available. Returns whether work was done.
    fn run_one(&self, scope: &Scope<'_, 'env>) -> bool {
        let Some(task) = self.pop_own(scope.worker).or_else(|| self.steal(scope.worker)) else {
            return false;
        };
        // Contain panics so that (a) worker threads stay alive, (b) pending
        // still reaches zero, and (c) the scope can re-panic with a single
        // consistent message once everything has quiesced.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(scope)));
        if outcome.is_err() {
            self.poisoned.store(true, Ordering::Release);
        }
        self.pending.fetch_sub(1, Ordering::AcqRel);
        self.idle_cv.notify_all();
        true
    }
}

/// Handle through which tasks spawn subtasks; one per (scope, thread).
pub struct Scope<'pool, 'env> {
    shared: &'pool Shared<'env>,
    worker: usize,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Spawn a task. It may run on any thread of the scope, any time before
    /// [`scope`] returns.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce(&Scope<'_, 'env>) + Send + 'env,
    {
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.shared.queues[self.worker].lock().push_back(Box::new(task));
        self.shared.idle_cv.notify_one();
    }

    /// Number of threads participating in this scope.
    pub fn threads(&self) -> usize {
        self.shared.queues.len()
    }

    /// Index of the current worker thread (0 = the caller of [`scope`]).
    pub fn worker_index(&self) -> usize {
        self.worker
    }
}

fn worker_loop<'env>(shared: &Shared<'env>, worker: usize) {
    let scope = Scope { shared, worker };
    loop {
        if shared.run_one(&scope) {
            continue;
        }
        if shared.done.load(Ordering::Acquire) {
            return;
        }
        // Nothing to do: park until a spawn or completion wakes us. The
        // timeout is a safety net against lost wakeups, not a spin.
        let mut guard = shared.idle_lock.lock();
        if shared.pending.load(Ordering::Acquire) == 0 && shared.done.load(Ordering::Acquire) {
            return;
        }
        shared
            .idle_cv
            .wait_for(&mut guard, std::time::Duration::from_millis(1));
    }
}

/// Run `root` with a work-stealing scope of `threads` threads (including
/// the calling thread). Returns after the root closure has returned *and*
/// every spawned task (transitively) has finished.
///
/// Panics from tasks are surfaced as a panic of `scope` itself.
pub fn scope<'env, R, F>(threads: usize, root: F) -> R
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
    R: Send,
{
    let threads = threads.max(1);
    let shared = Shared::new(threads);

    std::thread::scope(|ts| {
        for w in 1..threads {
            let shared = &shared;
            ts.spawn(move || worker_loop(shared, w));
        }

        let root_scope = Scope { shared: &shared, worker: 0 };
        let result = root(&root_scope);

        // The caller thread helps until quiescence.
        while shared.pending.load(Ordering::Acquire) > 0 {
            if !shared.run_one(&root_scope) {
                // All remaining tasks are running on other workers; wait
                // for them to finish or to spawn more work we can steal.
                let mut guard = shared.idle_lock.lock();
                if shared.pending.load(Ordering::Acquire) == 0 {
                    break;
                }
                shared
                    .idle_cv
                    .wait_for(&mut guard, std::time::Duration::from_millis(1));
            }
        }

        shared.done.store(true, Ordering::Release);
        shared.idle_cv.notify_all();
        result
    })
    .pipe(|result| {
        if shared.poisoned.load(Ordering::Acquire) {
            panic!("task panicked inside hsa_tasks::scope");
        }
        result
    })
}

/// Tiny `tap`-style helper so the panic check reads linearly.
trait Pipe: Sized {
    fn pipe<R>(self, f: impl FnOnce(Self) -> R) -> R {
        f(self)
    }
}
impl<T> Pipe for T {}
