//! The work-stealing scope implementation.

use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// A unit of work. Tasks receive the [`Scope`] so they can spawn subtasks
/// (the recursive bucket calls of Algorithm 2).
type Task<'env> = Box<dyn FnOnce(&Scope<'_, 'env>) + Send + 'env>;

/// Scheduling counters of one worker of a scope, collected without any
/// hot-path synchronization: each worker accumulates plain `u64`s locally
/// and publishes them once, when the scope winds down.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerPoolMetrics {
    /// Tasks this worker ran to completion (own or stolen).
    pub tasks_executed: u64,
    /// Tasks obtained from another worker's deque.
    pub steals: u64,
    /// Full scans over all victim deques that found nothing to steal.
    pub failed_steal_scans: u64,
    /// Nanoseconds spent parked waiting for work or quiescence.
    pub idle_nanos: u64,
}

impl WorkerPoolMetrics {
    fn add(&mut self, other: &WorkerPoolMetrics) {
        self.tasks_executed += other.tasks_executed;
        self.steals += other.steals;
        self.failed_steal_scans += other.failed_steal_scans;
        self.idle_nanos += other.idle_nanos;
    }
}

/// Per-worker scheduling metrics of one completed scope.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoolMetrics {
    /// One entry per worker, index = worker index.
    pub workers: Vec<WorkerPoolMetrics>,
}

impl PoolMetrics {
    /// Sum over all workers.
    pub fn totals(&self) -> WorkerPoolMetrics {
        let mut t = WorkerPoolMetrics::default();
        for w in &self.workers {
            t.add(w);
        }
        t
    }

    /// Fold another scope's metrics into this one (same worker count, or
    /// either side empty).
    pub fn merge(&mut self, other: &PoolMetrics) {
        if self.workers.len() < other.workers.len() {
            self.workers.resize(other.workers.len(), WorkerPoolMetrics::default());
        }
        for (dst, src) in self.workers.iter_mut().zip(&other.workers) {
            dst.add(src);
        }
    }
}

struct Shared<'env> {
    /// One deque per worker. Owner pushes/pops at the back (LIFO), thieves
    /// pop at the front (FIFO). A plain mutex per deque is plenty here:
    /// tasks are coarse (whole runs / whole buckets), so queue operations
    /// are orders of magnitude rarer than the row-level work they guard.
    queues: Vec<Mutex<VecDeque<Task<'env>>>>,
    /// Tasks spawned but not yet finished; quiescence = 0.
    pending: AtomicUsize,
    /// Set when the scope is over and workers should exit.
    done: AtomicBool,
    /// Set when any task panicked. Once poisoned the scope stops running
    /// queued tasks — it *drains* them (popped and dropped unexecuted) so
    /// quiescence is still reached, fast, and in a known state.
    poisoned: AtomicBool,
    /// Payload message of the first panic (later ones are dropped).
    panic_msg: Mutex<Option<String>>,
    /// Sleeping-worker wakeup.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    /// Final per-worker metrics, published once per worker at scope end.
    metrics: Mutex<Vec<WorkerPoolMetrics>>,
}

/// Render a panic payload for [`TaskPanic::message`]: the `&str`/`String`
/// payloads of ordinary `panic!` calls are passed through, anything else is
/// described by its opacity.
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl<'env> Shared<'env> {
    fn new(threads: usize) -> Self {
        Self {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            panic_msg: Mutex::new(None),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            metrics: Mutex::new(vec![WorkerPoolMetrics::default(); threads]),
        }
    }

    fn pop_own(&self, worker: usize) -> Option<Task<'env>> {
        self.queues[worker].lock().pop_back()
    }

    fn steal(&self, worker: usize, counters: &mut WorkerPoolMetrics) -> Option<Task<'env>> {
        let n = self.queues.len();
        for i in 1..n {
            let victim = (worker + i) % n;
            if let Some(task) = self.queues[victim].lock().pop_front() {
                counters.steals += 1;
                return Some(task);
            }
        }
        counters.failed_steal_scans += 1;
        None
    }

    /// Run one task if any is available. Returns whether work was done.
    fn run_one(&self, scope: &Scope<'_, 'env>, counters: &mut WorkerPoolMetrics) -> bool {
        let Some(task) = self.pop_own(scope.worker).or_else(|| self.steal(scope.worker, counters))
        else {
            return false;
        };
        // ORDERING: Acquire pairs with the Release store below so a worker
        // that sees the poison flag also sees the recorded panic message.
        if self.poisoned.load(Ordering::Acquire) {
            // A task already panicked: drain instead of run. Dropping the
            // closure releases whatever it owned (data, reservations).
            drop(task);
            // ORDERING: AcqRel — the decrement releases this task's side
            // effects to whoever observes pending == 0, and acquires
            // earlier decrements so quiescence implies all effects visible.
            self.pending.fetch_sub(1, Ordering::AcqRel);
            self.idle_cv.notify_all();
            return true;
        }
        // Contain panics so that (a) worker threads stay alive, (b) pending
        // still reaches zero, and (c) the scope can surface one consistent
        // failure once everything has quiesced.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(scope)));
        if let Err(payload) = outcome {
            let mut first = self.panic_msg.lock();
            if first.is_none() {
                *first = Some(payload_message(payload.as_ref()));
            }
            drop(first);
            // ORDERING: Release publishes the panic message written above
            // to the Acquire loads of the flag (drain path, scope exit).
            self.poisoned.store(true, Ordering::Release);
        }
        counters.tasks_executed += 1;
        // ORDERING: AcqRel — release this task's writes to observers of
        // pending == 0 and acquire prior decrements (see drain path above).
        self.pending.fetch_sub(1, Ordering::AcqRel);
        self.idle_cv.notify_all();
        true
    }

    /// Publish a worker's final counters.
    fn publish(&self, worker: usize, counters: WorkerPoolMetrics) {
        self.metrics.lock()[worker] = counters;
    }
}

/// Handle through which tasks spawn subtasks; one per (scope, thread).
pub struct Scope<'pool, 'env> {
    shared: &'pool Shared<'env>,
    worker: usize,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Spawn a task. It may run on any thread of the scope, any time before
    /// [`scope`] returns.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce(&Scope<'_, 'env>) + Send + 'env,
    {
        // ORDERING: AcqRel — the increment must be visible before the task
        // is enqueued so quiescence checks (pending == 0) can never miss a
        // task that is already stealable.
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        self.shared.queues[self.worker].lock().push_back(Box::new(task));
        self.shared.idle_cv.notify_one();
    }

    /// Number of threads participating in this scope.
    pub fn threads(&self) -> usize {
        self.shared.queues.len()
    }

    /// Index of the current worker thread (0 = the caller of [`scope`]).
    pub fn worker_index(&self) -> usize {
        self.worker
    }
}

fn worker_loop<'env>(shared: &Shared<'env>, worker: usize) {
    let scope = Scope { shared, worker };
    let mut counters = WorkerPoolMetrics::default();
    loop {
        if shared.run_one(&scope, &mut counters) {
            continue;
        }
        // ORDERING: Acquire pairs with the Release store of `done` at scope
        // exit, so a worker that exits also sees every task's effects.
        if shared.done.load(Ordering::Acquire) {
            break;
        }
        // Nothing to do: park until a spawn or completion wakes us. The
        // timeout is a safety net against lost wakeups, not a spin.
        let mut guard = shared.idle_lock.lock();
        // ORDERING: Acquire on both — pairs with the AcqRel decrements and
        // the Release `done` store; seeing both conditions means all task
        // effects are visible before this worker exits.
        if shared.pending.load(Ordering::Acquire) == 0 && shared.done.load(Ordering::Acquire) {
            break;
        }
        let parked = Instant::now();
        shared.idle_cv.wait_for(&mut guard, std::time::Duration::from_millis(1));
        drop(guard);
        counters.idle_nanos += parked.elapsed().as_nanos() as u64;
    }
    shared.publish(worker, counters);
}

/// Run `root` with a work-stealing scope of `threads` threads (including
/// the calling thread). Returns after the root closure has returned *and*
/// every spawned task (transitively) has finished.
///
/// Panics from tasks are surfaced as a panic of `scope` itself.
pub fn scope<'env, R, F>(threads: usize, root: F) -> R
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
    R: Send,
{
    scope_observed(threads, root).0
}

/// [`scope`], additionally returning the per-worker scheduling metrics of
/// the completed scope (steals, failed steal scans, idle time, task
/// counts). Collection is free on the hot path: plain worker-local `u64`s,
/// published once at scope teardown.
pub fn scope_observed<'env, R, F>(threads: usize, root: F) -> (R, PoolMetrics)
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
    R: Send,
{
    let (result, metrics) = try_scope_observed(threads, root);
    match result {
        Ok(r) => (r, metrics),
        Err(p) => panic!("task panicked inside hsa_tasks::scope: {}", p.message),
    }
}

/// A contained task panic: the first panicking task's payload message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskPanic {
    /// The panic payload if it was a string, else a placeholder.
    pub message: String,
}

/// [`scope_observed`] with panic *containment* instead of propagation.
///
/// When a task panics, the scope is marked failed, every still-queued task
/// is drained (popped and dropped without running — their captured state,
/// including memory reservations, is released by the drop), already
/// running tasks finish, and the first panic's payload message is returned
/// as `Err(TaskPanic)`. Worker threads survive and the scope winds down
/// normally, so the caller keeps a usable process and its own state — the
/// operator driver turns this into [`AggError::WorkerPanic`] and returns
/// its tables to the pool.
///
/// [`AggError::WorkerPanic`]: https://docs.rs/hsa-fault
pub fn try_scope_observed<'env, R, F>(
    threads: usize,
    root: F,
) -> (Result<R, TaskPanic>, PoolMetrics)
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
    R: Send,
{
    let threads = threads.max(1);
    let shared = Shared::new(threads);

    let result = std::thread::scope(|ts| {
        for w in 1..threads {
            let shared = &shared;
            ts.spawn(move || worker_loop(shared, w));
        }

        let root_scope = Scope { shared: &shared, worker: 0 };
        let mut counters = WorkerPoolMetrics::default();
        let result = root(&root_scope);

        // The caller thread helps until quiescence.
        // ORDERING: Acquire pairs with the AcqRel decrements — observing
        // pending == 0 here means every task's writes are visible.
        while shared.pending.load(Ordering::Acquire) > 0 {
            if !shared.run_one(&root_scope, &mut counters) {
                // All remaining tasks are running on other workers; wait
                // for them to finish or to spawn more work we can steal.
                let mut guard = shared.idle_lock.lock();
                // ORDERING: Acquire, same pairing as the loop condition.
                if shared.pending.load(Ordering::Acquire) == 0 {
                    break;
                }
                let parked = Instant::now();
                shared.idle_cv.wait_for(&mut guard, std::time::Duration::from_millis(1));
                drop(guard);
                counters.idle_nanos += parked.elapsed().as_nanos() as u64;
            }
        }

        // ORDERING: Release pairs with the workers' Acquire loads of
        // `done`, publishing the quiesced state before they exit.
        shared.done.store(true, Ordering::Release);
        shared.idle_cv.notify_all();
        shared.publish(0, counters);
        result
    });

    // ORDERING: Acquire pairs with the Release store in `run_one`; seeing
    // the flag guarantees the panic message below is the recorded one.
    let outcome = if shared.poisoned.load(Ordering::Acquire) {
        let message =
            shared.panic_msg.into_inner().unwrap_or_else(|| "non-string panic payload".to_string());
        Err(TaskPanic { message })
    } else {
        Ok(result)
    };
    let metrics = PoolMetrics { workers: shared.metrics.into_inner() };
    (outcome, metrics)
}
