//! Concurrency stress for the shared work-stealing runtime: many
//! executors, many tasks, concurrent queries, exact final-balance
//! assertions. These run under plain `cargo test` and are the workload
//! the ThreadSanitizer CI job hammers — a data race in
//! spawn/steal/claim/quiescence shows up here first.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bounded so the suite stays fast under sanitizers (which run this test
/// binary with ~10× overhead) while still forcing heavy stealing.
const THREADS: usize = 8;
const TASKS: u64 = 2_000;
const CHILDREN: u64 = 4;

#[test]
fn every_spawned_task_runs_exactly_once() {
    let total = AtomicU64::new(0);
    let count = AtomicU64::new(0);
    hsa_tasks::scope(THREADS, |s| {
        for i in 0..TASKS {
            let (total, count) = (&total, &count);
            s.spawn(move |_| {
                total.fetch_add(i, Ordering::Relaxed);
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    // The scope returns only at quiescence: every task ran exactly once.
    assert_eq!(count.load(Ordering::Relaxed), TASKS);
    assert_eq!(total.load(Ordering::Relaxed), TASKS * (TASKS - 1) / 2);
}

#[test]
fn nested_spawns_from_stolen_tasks_all_complete() {
    // Tasks spawned *by* tasks — from whichever worker stole the parent —
    // exercise the pending-counter handoff the quiescence check relies on.
    let count = AtomicU64::new(0);
    hsa_tasks::scope(THREADS, |s| {
        for _ in 0..TASKS {
            let count = &count;
            s.spawn(move |s| {
                for _ in 0..CHILDREN {
                    s.spawn(move |_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
    });
    assert_eq!(count.load(Ordering::Relaxed), TASKS * CHILDREN);
}

#[test]
fn shared_workers_participate_under_single_producer_load() {
    // All tasks enter through slot 0's queue (the submitting thread);
    // shared runtime workers claim slots ≥ 1 and can only steal. Whether
    // a steal lands is scheduler-dependent: on a single hardware thread
    // the producer can drain its whole queue before any shared worker is
    // ever scheduled. The exact-balance invariant must hold on every
    // attempt; the stealing observation only has to happen once.
    let mut stole = false;
    for _ in 0..20 {
        let (_, metrics) = hsa_tasks::scope_observed(THREADS, |s| {
            for _ in 0..TASKS {
                s.spawn(|_| {
                    std::hint::black_box(fibonacci(12));
                });
            }
        });
        let executed: u64 = metrics.workers.iter().map(|w| w.tasks_executed).sum();
        assert_eq!(executed, TASKS);
        if metrics.workers.iter().skip(1).any(|w| w.tasks_executed > 0) {
            assert!(metrics.totals().steals > 0, "slot ≥ 1 work implies steals");
            stole = true;
            break;
        }
    }
    // A box with a single shared worker can still interleave via
    // preemption; only skip the assertion when the runtime has none.
    if hsa_tasks::Runtime::global().workers() > 0 {
        assert!(stole, "no shared worker ever participated in 20 attempts");
    }
}

#[test]
fn concurrent_queries_have_exact_isolated_accounting() {
    // Several queries hammer the shared runtime at once; each scope's
    // metrics and counters must balance per query, with zero cross-query
    // bleed, and a panicking query must not perturb its neighbours.
    std::thread::scope(|ts| {
        for q in 0..4u64 {
            ts.spawn(move || {
                let handle = hsa_tasks::Runtime::global().admit(4);
                for round in 0..3 {
                    let count = AtomicU64::new(0);
                    let poison = q == 1 && round == 1;
                    let (result, metrics) = handle.try_scope_observed(|s| {
                        for i in 0..500u64 {
                            let count = &count;
                            s.spawn(move |_| {
                                if poison && i == 250 {
                                    panic!("stress poison");
                                }
                                count.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                    let executed: u64 = metrics.workers.iter().map(|w| w.tasks_executed).sum();
                    if poison {
                        assert!(result.is_err());
                        assert!(executed <= 500);
                    } else {
                        assert!(result.is_ok(), "{result:?}");
                        assert_eq!(count.load(Ordering::Relaxed), 500, "query {q} round {round}");
                        assert_eq!(executed, 500, "query {q} round {round}");
                    }
                }
            });
        }
    });
}

#[test]
fn one_panicking_task_poisons_the_scope_but_everything_drains() {
    let ran = AtomicU64::new(0);
    let (result, metrics) = hsa_tasks::try_scope_observed(THREADS, |s| {
        for i in 0..TASKS {
            let ran = &ran;
            s.spawn(move |_| {
                if i == TASKS / 2 {
                    panic!("injected stress panic");
                }
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    let err = result.unwrap_err();
    assert!(err.message.contains("injected stress panic"), "{err:?}");
    // Quiescence still holds: every task either ran or was drained, and
    // the accounting never wedges a worker.
    let executed: u64 = metrics.workers.iter().map(|w| w.tasks_executed).sum();
    assert!(executed <= TASKS);
    assert!(ran.load(Ordering::Relaxed) < TASKS);

    // The pool is a per-scope construct: a failed scope must not poison
    // the next one.
    let count = AtomicU64::new(0);
    hsa_tasks::scope(THREADS, |s| {
        for _ in 0..100 {
            let count = &count;
            s.spawn(move |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(count.load(Ordering::Relaxed), 100);
}

fn fibonacci(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fibonacci(n - 1) + fibonacci(n - 2)
    }
}
