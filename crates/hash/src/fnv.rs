//! FNV-1a 64-bit, a popular byte-stream hash among practitioners.
//!
//! Included as one of the "many different hash functions" the paper
//! benchmarked (§4.1). Byte-at-a-time processing makes it slower than
//! Murmur2 on 8-byte keys, which the `hashing` criterion bench reproduces.

use crate::Hasher64;

const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hasher; the seed perturbs the offset basis.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Fnv1a {
    basis: u64,
}

impl Fnv1a {
    /// Create a hasher with a perturbed offset basis.
    #[inline]
    pub const fn with_seed(seed: u64) -> Self {
        Self { basis: OFFSET_BASIS ^ seed }
    }
}

impl Default for Fnv1a {
    #[inline]
    fn default() -> Self {
        Self { basis: OFFSET_BASIS }
    }
}

impl Hasher64 for Fnv1a {
    #[inline(always)]
    fn hash_u64(&self, key: u64) -> u64 {
        let mut h = self.basis;
        // Unrolled byte-at-a-time FNV-1a over the 8 key bytes.
        let bytes = key.to_le_bytes();
        for &b in &bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }

    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        let mut h = self.basis;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_vectors() {
        // Published FNV-1a 64 test vectors.
        let h = Fnv1a::default();
        assert_eq!(h.hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(h.hash_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(h.hash_bytes(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn u64_path_matches_bytes_path() {
        let h = Fnv1a::default();
        for k in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(h.hash_u64(k), h.hash_bytes(&k.to_le_bytes()));
        }
    }
}
