//! The 64-bit finalizer of MurmurHash3 (`fmix64`) as a standalone hasher.
//!
//! For keys that are already 64 bits wide, the full Murmur2 stream setup is
//! unnecessary work; `fmix64` alone is a bijective mix with excellent
//! avalanche. We keep it as an alternative to quantify how much the choice
//! of hash function matters for the aggregation kernels.

use crate::Hasher64;

/// MurmurHash3 `fmix64` finalizer hasher.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Murmur3Finalizer {
    seed: u64,
}

impl Murmur3Finalizer {
    /// Create a hasher with an explicit seed (xor'ed into the key).
    #[inline]
    pub const fn with_seed(seed: u64) -> Self {
        Self { seed }
    }
}

impl Default for Murmur3Finalizer {
    #[inline]
    fn default() -> Self {
        Self::with_seed(0)
    }
}

/// The canonical `fmix64` from MurmurHash3.
#[inline(always)]
pub fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

impl Hasher64 for Murmur3Finalizer {
    #[inline(always)]
    fn hash_u64(&self, key: u64) -> u64 {
        fmix64(key ^ self.seed)
    }

    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        // Chain fmix64 over 8-byte blocks; adequate for non-kernel use.
        let mut h = self.seed ^ fmix64(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            h = fmix64(h ^ u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut k = 0u64;
            for (i, &b) in tail.iter().enumerate() {
                k |= (b as u64) << (8 * i);
            }
            h = fmix64(h ^ k);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmix64_is_bijective_on_samples() {
        // fmix64 is invertible; distinct inputs must give distinct outputs.
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..10_000 {
            assert!(seen.insert(fmix64(k)));
        }
    }

    #[test]
    fn fmix64_zero_fixed_point() {
        // 0 is the canonical fixed point of fmix64.
        assert_eq!(fmix64(0), 0);
        // With a seed, key 0 no longer maps to 0 (key == seed still does,
        // since the seed is xor'ed in before mixing).
        assert_ne!(Murmur3Finalizer::with_seed(7).hash_u64(0), 0);
        assert_eq!(Murmur3Finalizer::with_seed(7).hash_u64(7), 0);
    }

    #[test]
    fn avalanche() {
        let h = Murmur3Finalizer::default();
        let base = h.hash_u64(0xfeed_f00d);
        let mut total = 0u32;
        for bit in 0..64 {
            total += (base ^ h.hash_u64(0xfeed_f00d ^ (1u64 << bit))).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((24.0..=40.0).contains(&avg), "poor avalanche: {avg}");
    }
}
