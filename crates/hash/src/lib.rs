//! Hash functions for cache-efficient aggregation.
//!
//! The paper (§4.1) evaluated "many different hash functions that are popular
//! among practitioners" and found that for small elements **MurmurHash2** is
//! the fastest while still distributing well enough that, at a 25% fill rate,
//! collisions in the cache-sized linear-probing table are rare. This crate
//! provides that hash plus the alternatives one would compare it against:
//!
//! * [`Murmur2`] — MurmurHash2-64A, the paper's choice,
//! * [`Murmur3Finalizer`] — the 64-bit finalizer (`fmix64`) of MurmurHash3,
//!   a very cheap high-quality mix for already-64-bit keys,
//! * [`Multiplicative`] — Knuth/Fibonacci multiplicative hashing, the scheme
//!   used by the original Cieslewicz & Ross implementations before the paper
//!   replaced it with MurmurHash2 (§6.4),
//! * [`Fnv1a`] — FNV-1a, a common byte-stream hash,
//! * [`Identity`] — no-op hash, used to partition by *key* bits instead of
//!   hash bits (the `key` variants in Figure 3).
//!
//! All hashers implement [`Hasher64`], which hashes a single `u64` key (the
//! paper's rows are 64-bit integer columns) and arbitrary byte strings.
//!
//! # Radix digits
//!
//! The aggregation framework is an MSD radix sort over hash values: pass
//! `level` buckets rows by [`digit`]`(hash, level)`, the `level`-th most
//! significant 8-bit digit. [`FANOUT`] (256) and [`DIGIT_BITS`] (8) are fixed
//! here so that every crate agrees on the bucket geometry (§4.2: "this scheme
//! works best with 256 partitions").

mod fnv;
mod multiplicative;
mod murmur2;
mod murmur3;

pub use fnv::Fnv1a;
pub use multiplicative::Multiplicative;
pub use murmur2::Murmur2;
pub use murmur3::Murmur3Finalizer;

/// Number of bits consumed per radix pass.
pub const DIGIT_BITS: u32 = 8;

/// Partitioning fan-out per pass (`2^DIGIT_BITS`); §4.2 fixes this to 256.
pub const FANOUT: usize = 1 << DIGIT_BITS;

/// Maximum meaningful recursion depth: a 64-bit hash has 8 radix digits.
pub const MAX_LEVEL: u32 = u64::BITS / DIGIT_BITS;

/// A 64-bit hash function over `u64` keys and byte strings.
///
/// Implementations must be pure: the same input always yields the same
/// output for the same hasher value. `Copy + Default` keeps them free to
/// pass around the hot loops by value.
pub trait Hasher64: Copy + Clone + Default + Send + Sync + 'static {
    /// Hash a single 64-bit key. This is the hot path of the aggregation
    /// operator, where every input row is a 64-bit integer.
    fn hash_u64(&self, key: u64) -> u64;

    /// Hash an arbitrary byte string (used for string grouping keys in the
    /// examples; the kernels only ever see `u64`).
    fn hash_bytes(&self, bytes: &[u8]) -> u64;
}

/// Identity "hash": returns the key itself.
///
/// Partitioning with `Identity` partitions by the key's own most significant
/// bits, which is the `key` variant of the Figure 3 microbenchmark and is
/// only safe when the key domain is known to be dense and unskewed.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Identity;

impl Hasher64 for Identity {
    #[inline(always)]
    fn hash_u64(&self, key: u64) -> u64 {
        key
    }

    #[inline]
    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        // Fold the bytes into a u64 without mixing; good enough for the
        // degenerate use cases Identity is meant for.
        let mut out = 0u64;
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            out ^= u64::from_le_bytes(buf);
        }
        out
    }
}

/// Extract the radix digit for recursion level `level` (0 = first pass).
///
/// Digits are taken from the most significant bits downwards so that the
/// recursive partitioning is an MSD radix sort on hash values: after pass
/// `l`, all rows in a bucket share their top `(l+1) * DIGIT_BITS` hash bits.
#[inline(always)]
pub fn digit(hash: u64, level: u32) -> usize {
    debug_assert!(level < MAX_LEVEL, "radix level {level} out of range");
    ((hash >> (u64::BITS - DIGIT_BITS - level * DIGIT_BITS)) & (FANOUT as u64 - 1)) as usize
}

/// Number of hash bits available *below* the digits consumed by passes
/// `0..=level`. The hash table derives in-block slot indexes from these so
/// that slot placement stays uniform after any number of radix passes.
#[inline(always)]
pub fn remaining_bits(level: u32) -> u32 {
    u64::BITS - DIGIT_BITS * (level + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_is_msd_first() {
        let h = 0xAB_CD_EF_01_23_45_67_89u64;
        assert_eq!(digit(h, 0), 0xAB);
        assert_eq!(digit(h, 1), 0xCD);
        assert_eq!(digit(h, 2), 0xEF);
        assert_eq!(digit(h, 3), 0x01);
        assert_eq!(digit(h, 7), 0x89);
    }

    #[test]
    fn digit_covers_fanout() {
        for d in 0..FANOUT {
            let h = (d as u64) << (u64::BITS - DIGIT_BITS);
            assert_eq!(digit(h, 0), d);
        }
    }

    #[test]
    fn remaining_bits_shrinks_by_digit() {
        assert_eq!(remaining_bits(0), 56);
        assert_eq!(remaining_bits(1), 48);
        assert_eq!(remaining_bits(6), 8);
    }

    #[test]
    fn identity_roundtrip() {
        assert_eq!(Identity.hash_u64(42), 42);
        assert_eq!(Identity.hash_u64(u64::MAX), u64::MAX);
    }

    #[test]
    fn identity_bytes_folds() {
        let h = Identity.hash_bytes(&7u64.to_le_bytes());
        assert_eq!(h, 7);
    }
}
