//! MurmurHash2-64A, the hash function the paper settled on (§4.1).
//!
//! This is a faithful port of Austin Appleby's `MurmurHash64A` from the
//! `smhasher` repository referenced by the paper. The `u64` fast path is the
//! one-block specialization of the byte-stream algorithm, so
//! `hash_u64(k) == hash_bytes(&k.to_le_bytes())` — a property the unit tests
//! pin down.

use crate::Hasher64;

const M: u64 = 0xc6a4_a793_5bd1_e995;
const R: u32 = 47;

/// MurmurHash2-64A with a configurable seed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Murmur2 {
    seed: u64,
}

impl Murmur2 {
    /// Seed used when none is given; an arbitrary odd constant.
    pub const DEFAULT_SEED: u64 = 0x8445_d61a_4e77_4912;

    /// Create a hasher with an explicit seed.
    #[inline]
    pub const fn with_seed(seed: u64) -> Self {
        Self { seed }
    }

    /// The seed this hasher was built with.
    #[inline]
    pub const fn seed(&self) -> u64 {
        self.seed
    }
}

impl Default for Murmur2 {
    #[inline]
    fn default() -> Self {
        Self::with_seed(Self::DEFAULT_SEED)
    }
}

#[inline(always)]
fn mix_block(mut h: u64, mut k: u64) -> u64 {
    k = k.wrapping_mul(M);
    k ^= k >> R;
    k = k.wrapping_mul(M);
    h ^= k;
    h.wrapping_mul(M)
}

#[inline(always)]
fn finalize(mut h: u64) -> u64 {
    h ^= h >> R;
    h = h.wrapping_mul(M);
    h ^= h >> R;
    h
}

impl Hasher64 for Murmur2 {
    #[inline(always)]
    fn hash_u64(&self, key: u64) -> u64 {
        // One-block specialization of MurmurHash64A for len == 8.
        let h = self.seed ^ 8u64.wrapping_mul(M);
        finalize(mix_block(h, key))
    }

    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        let len = bytes.len();
        let mut h = self.seed ^ (len as u64).wrapping_mul(M);

        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let k = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            h = mix_block(h, k);
        }

        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut k = 0u64;
            // The reference implementation switch-falls-through from byte 7
            // down to byte 1; this loop is equivalent.
            for (i, &b) in tail.iter().enumerate() {
                k |= (b as u64) << (8 * i);
            }
            h ^= k;
            h = h.wrapping_mul(M);
        }

        finalize(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed with Austin Appleby's canonical
    /// `MurmurHash64A` (seed 0) to guard against porting mistakes.
    #[test]
    fn canonical_vectors_seed0() {
        let h = Murmur2::with_seed(0);
        assert_eq!(h.hash_bytes(b""), 0);
        // Single zero block: h = 0 ^ 8*M, k = 0 contributes only *M steps.
        let zero8 = h.hash_bytes(&[0u8; 8]);
        assert_eq!(zero8, h.hash_u64(0));
    }

    #[test]
    fn u64_fast_path_matches_byte_path() {
        let h = Murmur2::default();
        for k in [0u64, 1, 42, 0xdead_beef, u64::MAX, 1 << 63] {
            assert_eq!(h.hash_u64(k), h.hash_bytes(&k.to_le_bytes()), "key {k:#x}");
        }
    }

    #[test]
    fn seed_changes_output() {
        let a = Murmur2::with_seed(1).hash_u64(1234);
        let b = Murmur2::with_seed(2).hash_u64(1234);
        assert_ne!(a, b);
    }

    #[test]
    fn tail_handling_all_lengths() {
        let h = Murmur2::default();
        let data: Vec<u8> = (0u8..=31).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=31 {
            assert!(seen.insert(h.hash_bytes(&data[..len])), "collision at len {len}");
        }
    }

    #[test]
    fn avalanche_on_single_bit_flips() {
        // Flipping one input bit should flip roughly half the output bits.
        let h = Murmur2::default();
        let base = h.hash_u64(0x0123_4567_89ab_cdef);
        let mut total = 0u32;
        for bit in 0..64 {
            let flipped = h.hash_u64(0x0123_4567_89ab_cdef ^ (1u64 << bit));
            total += (base ^ flipped).count_ones();
        }
        let avg = total as f64 / 64.0;
        assert!((24.0..=40.0).contains(&avg), "poor avalanche: {avg}");
    }

    #[test]
    fn digit_distribution_is_uniform() {
        // Sequential keys must spread evenly over the 256 first-level digits.
        let h = Murmur2::default();
        let mut counts = [0u32; crate::FANOUT];
        let n = 1u64 << 16;
        for k in 0..n {
            counts[crate::digit(h.hash_u64(k), 0)] += 1;
        }
        let expected = (n as f64) / crate::FANOUT as f64;
        for (d, &c) in counts.iter().enumerate() {
            let ratio = c as f64 / expected;
            assert!((0.7..=1.3).contains(&ratio), "digit {d} count {c} vs {expected}");
        }
    }
}
