//! Knuth multiplicative (Fibonacci) hashing.
//!
//! This is the "multiplicative hashing" the original competitor
//! implementations used before the paper swapped it for MurmurHash2 (§6.4).
//! It is a single multiply — as cheap as a hash can get — but its low bits
//! mix poorly and value patterns in the keys survive into the hash, which is
//! exactly why the paper observed "less predictable performance" with it.

use crate::Hasher64;

/// 2^64 / φ rounded to the nearest odd integer.
const PHI64: u64 = 0x9e37_79b9_7f4a_7c15;

/// Multiplicative hasher: `h(k) = (k ^ seed) * PHI64`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Multiplicative {
    seed: u64,
}

impl Multiplicative {
    /// Create a hasher with an explicit seed.
    #[inline]
    pub const fn with_seed(seed: u64) -> Self {
        Self { seed }
    }
}

impl Default for Multiplicative {
    #[inline]
    fn default() -> Self {
        Self::with_seed(0)
    }
}

impl Hasher64 for Multiplicative {
    #[inline(always)]
    fn hash_u64(&self, key: u64) -> u64 {
        (key ^ self.seed).wrapping_mul(PHI64)
    }

    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        let mut h = self.seed ^ (bytes.len() as u64).wrapping_mul(PHI64);
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            h = (h ^ u64::from_le_bytes(buf)).wrapping_mul(PHI64);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digit;

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Multiplication by an odd constant is a bijection mod 2^64.
        let h = Multiplicative::default();
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..10_000 {
            assert!(seen.insert(h.hash_u64(k)));
        }
    }

    #[test]
    fn top_digit_spreads_sequential_keys() {
        // The classic virtue of Fibonacci hashing: consecutive keys land in
        // different top digits.
        let h = Multiplicative::default();
        let mut counts = [0u32; crate::FANOUT];
        for k in 0u64..(1 << 14) {
            counts[digit(h.hash_u64(k), 0)] += 1;
        }
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        assert!(nonzero > 250, "only {nonzero} digits hit");
    }

    #[test]
    fn strided_keys_expose_weakness() {
        // Keys that are multiples of a large power of two collapse the
        // *low* hash bits — this documents why the paper moved away from it.
        let h = Multiplicative::default();
        let a = h.hash_u64(1 << 32);
        let b = h.hash_u64(2 << 32);
        assert_eq!(a & 0xffff_ffff, 0, "low bits vanish: {a:#x}");
        assert_eq!(b & 0xffff_ffff, 0, "low bits vanish: {b:#x}");
    }
}
