//! Instrumented aggregation algorithms running against [`CacheSim`].
//!
//! These are *functional* implementations (they produce the right groups)
//! that issue every data-touching load and store to the cache simulator,
//! so their measured line transfers can be compared against the closed
//! forms in [`crate::model`]. They deliberately implement the **naive**
//! §2 algorithms — the point of Figure 1 is the contrast between naive and
//! optimized behavior, and the optimized behavior is what the real
//! operator in `hsa-core` exhibits.

use crate::cache::{CacheSim, CacheStats};
use hsa_hash::{Hasher64, Murmur2};
use std::collections::HashMap;

const KEY_BYTES: u64 = 8;
/// Hash-table entry granularity. The §2 model counts *rows*; to compare
/// measured transfers against it directly, the simulated table spends one
/// row (8 B) per group — the COUNT state is tracked in shadow state only,
/// exactly as the model's "intermediate aggregates in O(1) state" assumes.
const ENTRY_BYTES: u64 = 8;

/// Simulated flat address space with a bump allocator, so every run and
/// partition lives at a distinct non-overlapping address range.
struct AddressSpace {
    next: u64,
}

impl AddressSpace {
    fn new() -> Self {
        // Leave low addresses unused so that address 0 never aliases.
        Self { next: 1 << 20 }
    }

    /// Allocate `bytes`, aligned to 64 B lines.
    fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        self.next += (bytes + 63) & !63;
        base
    }
}

/// Result of a traced run: the aggregated groups and the transfer counts.
#[derive(Debug)]
pub struct TracedResult {
    /// Group key → row count (the traced algorithms compute COUNT).
    pub groups: HashMap<u64, u64>,
    /// Cache statistics accumulated over the whole run.
    pub stats: CacheStats,
}

/// Naive hash aggregation (§2.2): one pass inserting every row into a hash
/// table sized for `K` groups, then one pass writing the output.
///
/// `table_slots` must be a power of two ≥ the number of distinct keys; the
/// paper's analysis assumes "a perfect cache and without hash collisions",
/// which a generously sized table approximates.
pub fn traced_hash_aggregation(mut sim: CacheSim, keys: &[u64], table_slots: u64) -> TracedResult {
    assert!(table_slots.is_power_of_two());
    let mut space = AddressSpace::new();
    let input_base = space.alloc(keys.len() as u64 * KEY_BYTES);
    let table_base = space.alloc(table_slots * ENTRY_BYTES);
    let hasher = Murmur2::default();

    // Shadow state: the actual table contents (the simulator tracks tags,
    // not data).
    let mut table: Vec<Option<(u64, u64)>> = vec![None; table_slots as usize];

    for (i, &key) in keys.iter().enumerate() {
        sim.read(input_base + i as u64 * KEY_BYTES, KEY_BYTES);
        let mut slot = (hasher.hash_u64(key) & (table_slots - 1)) as usize;
        loop {
            let addr = table_base + slot as u64 * ENTRY_BYTES;
            sim.read(addr, ENTRY_BYTES);
            match &mut table[slot] {
                Some((k, count)) if *k == key => {
                    *count += 1;
                    sim.write(addr, ENTRY_BYTES);
                    break;
                }
                Some(_) => {
                    slot = (slot + 1) & (table_slots as usize - 1);
                }
                empty @ None => {
                    *empty = Some((key, 1));
                    sim.write(addr, ENTRY_BYTES);
                    break;
                }
            }
        }
    }

    // Output pass: scan the table, write compacted results.
    let mut groups = HashMap::new();
    let out_base = space.alloc(table.iter().flatten().count() as u64 * ENTRY_BYTES);
    let mut out_ix = 0u64;
    for (slot, entry) in table.iter().enumerate() {
        sim.read(table_base + slot as u64 * ENTRY_BYTES, ENTRY_BYTES);
        if let Some((k, c)) = entry {
            sim.write(out_base + out_ix * ENTRY_BYTES, ENTRY_BYTES);
            out_ix += 1;
            groups.insert(*k, *c);
        }
    }

    sim.flush();
    TracedResult { groups, stats: sim.stats() }
}

/// Naive sort-based aggregation (§2.1): recursive bucket sort by hash
/// digits with fan-out `fanout`, recursion until a bucket fits into
/// `cache_rows`, then an in-cache aggregation pass per leaf bucket.
pub fn traced_sort_aggregation(
    mut sim: CacheSim,
    keys: &[u64],
    fanout: usize,
    cache_rows: usize,
) -> TracedResult {
    assert!(fanout >= 2);
    let mut space = AddressSpace::new();
    let input_base = space.alloc(keys.len() as u64 * KEY_BYTES);
    let mut groups = HashMap::new();

    recurse(&mut sim, &mut space, keys, input_base, 0, fanout, cache_rows, &mut groups);

    sim.flush();
    return TracedResult { groups, stats: sim.stats() };

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        sim: &mut CacheSim,
        space: &mut AddressSpace,
        keys: &[u64],
        base: u64,
        shift: u32,
        fanout: usize,
        cache_rows: usize,
        groups: &mut HashMap<u64, u64>,
    ) {
        let hasher = Murmur2::default();
        // Multiset-aware leaf conditions (§2.1 second iteration): stop when
        // the bucket fits the cache, when the hash digits are exhausted, or
        // when splitting cannot reduce the bucket (all rows share one key /
        // hash prefix) — "the recursion actually stops earlier than for the
        // case where K = N".
        let first_key = keys.first().copied();
        if keys.len() <= cache_rows || shift >= 56 || keys.iter().all(|&k| Some(k) == first_key) {
            // Leaf: read the bucket once; aggregation state fits in cache
            // alongside it, output writes are fresh lines.
            let mut local: HashMap<u64, u64> = HashMap::new();
            for (i, &k) in keys.iter().enumerate() {
                sim.read(base + i as u64 * KEY_BYTES, KEY_BYTES);
                *local.entry(k).or_insert(0) += 1;
            }
            let out_base = space.alloc(local.len() as u64 * ENTRY_BYTES);
            for (i, (k, c)) in local.into_iter().enumerate() {
                sim.write(out_base + i as u64 * ENTRY_BYTES, ENTRY_BYTES);
                groups.insert(k, c);
            }
            return;
        }

        // Partition pass: read input sequentially, append each row to its
        // bucket region (sequential within each bucket — the simulator's
        // LRU keeps one hot line per bucket exactly like a real cache).
        let bits = (fanout as u64).trailing_zeros();
        let mut parts: Vec<Vec<u64>> = vec![Vec::new(); fanout];
        let part_bases: Vec<u64> =
            (0..fanout).map(|_| space.alloc(keys.len() as u64 * KEY_BYTES)).collect();
        for (i, &k) in keys.iter().enumerate() {
            sim.read(base + i as u64 * KEY_BYTES, KEY_BYTES);
            let h = hasher.hash_u64(k);
            let d = ((h >> (64 - bits - shift)) & (fanout as u64 - 1)) as usize;
            sim.write(part_bases[d] + parts[d].len() as u64 * KEY_BYTES, KEY_BYTES);
            parts[d].push(k);
        }
        for (d, part) in parts.into_iter().enumerate() {
            if !part.is_empty() {
                recurse(sim, space, &part, part_bases[d], shift + bits, fanout, cache_rows, groups);
            }
        }
    }
}

/// Reference aggregation for correctness checks.
pub fn reference_counts(keys: &[u64]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &k in keys {
        *m.entry(k).or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{hash_agg, ModelParams};

    /// 32 KiB fully associative cache with 64 B lines: M = 4096 rows, B = 8.
    fn small_cache() -> CacheSim {
        CacheSim::fully_associative(32 * 1024, 64)
    }

    fn params() -> ModelParams {
        ModelParams { m: 4096, b: 8 }
    }

    fn uniform_keys(n: usize, k: u64) -> Vec<u64> {
        // Cheap LCG; quality is irrelevant, determinism is not.
        let mut state = 0x853c_49e6_748f_ea9bu64;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) % k
            })
            .collect()
    }

    #[test]
    fn traced_hash_is_correct() {
        let keys = uniform_keys(20_000, 300);
        let res = traced_hash_aggregation(small_cache(), &keys, 1024);
        assert_eq!(res.groups, reference_counts(&keys));
    }

    #[test]
    fn traced_sort_is_correct() {
        let keys = uniform_keys(20_000, 3000);
        let res = traced_sort_aggregation(small_cache(), &keys, 16, 4096);
        assert_eq!(res.groups, reference_counts(&keys));
    }

    #[test]
    fn in_cache_hash_matches_model_scan_cost() {
        // K ≪ M: the model says N/B + K/B transfers.
        let n = 100_000;
        let k = 256u64;
        let keys = uniform_keys(n, k);
        let res = traced_hash_aggregation(small_cache(), &keys, 1024);
        let p = params();
        let predicted = hash_agg(p, n as u64, k);
        let measured = res.stats.transfers();
        let ratio = measured as f64 / predicted as f64;
        // Entries are 16 B (2 rows worth), so allow up to ~2.5×.
        assert!((0.8..2.5).contains(&ratio), "measured={measured} predicted={predicted}");
    }

    #[test]
    fn out_of_cache_hash_explodes_like_model() {
        // K ≫ M: nearly every row must miss.
        let n = 100_000;
        let k = 65_536u64;
        let keys = uniform_keys(n, k);
        let res = traced_hash_aggregation(small_cache(), &keys, 262_144);
        let measured = res.stats.transfers();
        // At least one transfer per row (vs N/B = n/8 for the in-cache case).
        assert!(
            measured as f64 > n as f64 * 0.8,
            "expected ≈1+ transfer/row, got {measured} for {n} rows"
        );
    }

    #[test]
    fn sort_agg_degrades_gracefully() {
        // Same K ≫ M workload: bucket sort pays ~2 sequential transfers per
        // row per pass instead of a random miss per row.
        let n = 100_000;
        let k = 65_536u64;
        let keys = uniform_keys(n, k);
        let sort = traced_sort_aggregation(small_cache(), &keys, 16, 2048);
        let hash = traced_hash_aggregation(small_cache(), &keys, 262_144);
        assert!(
            sort.stats.transfers() * 2 < hash.stats.transfers(),
            "sort={} hash={}",
            sort.stats.transfers(),
            hash.stats.transfers()
        );
        assert_eq!(sort.groups, hash.groups);
    }

    #[test]
    fn deeper_recursion_for_more_groups() {
        // Transfers grow with K through the extra partitioning depth.
        let n = 50_000;
        let small = traced_sort_aggregation(small_cache(), &uniform_keys(n, 128), 16, 2048);
        let large = traced_sort_aggregation(small_cache(), &uniform_keys(n, 40_000), 16, 2048);
        assert!(small.stats.transfers() < large.stats.transfers());
    }
}
