//! External-memory analysis of aggregation (§2, Figure 1).
//!
//! The paper argues in the external memory model of Aggarwal & Vitter: a
//! fast memory of `M` elements, transfers in lines of `B` elements, and an
//! unbounded slow memory. This crate provides
//!
//! * [`model`] — closed-form cache-line-transfer counts for the four
//!   textbook algorithms of §2 (`SORTAGG`, `SORTAGG_OPT`, `HASHAGG`,
//!   `HASHAGG_OPT`), which regenerate Figure 1, and
//! * [`cache`] + [`traced`] — a set-associative write-back LRU cache
//!   simulator and instrumented implementations of naive hash and sort
//!   aggregation, which validate the formulas *empirically* instead of
//!   trusting our own algebra.
//!
//! The central claim the model supports: with the two classic optimizations
//! (merge the last sort pass into the aggregation pass; partition before
//! hashing), sort- and hash-based aggregation transfer **the same** number
//! of cache lines — "hashing is sorting".

pub mod cache;
pub mod model;
pub mod traced;

pub use cache::CacheSim;
pub use model::{hash_agg, hash_agg_opt, sort_agg, sort_agg_opt, sort_agg_static, ModelParams};
