//! Closed-form cache-line-transfer counts (§2).
//!
//! All formulas count *line transfers* between cache and memory for an
//! input of `N` rows aggregating to `K` groups, with a cache of `M` rows
//! and `B` rows per cache line. They assume O(1) aggregate state per group
//! (distributive/algebraic functions) and a hash function that balances
//! groups across partitions — the same assumptions as the paper.

/// Machine parameters of the external memory model.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ModelParams {
    /// Fast-memory (cache) capacity in rows.
    pub m: u64,
    /// Rows per cache line.
    pub b: u64,
}

impl ModelParams {
    /// Figure 1 uses `M = 2¹⁶`, `B = 16` ("typical values for modern CPU
    /// caches" with 64-bit rows).
    pub const FIGURE1: ModelParams = ModelParams { m: 1 << 16, b: 16 };

    /// Partitioning fan-out of one bucket-sort pass: one output buffer of
    /// `B` rows per partition must fit in cache.
    #[inline]
    pub fn fanout(&self) -> u64 {
        (self.m / self.b).max(2)
    }
}

/// `⌈log_base(x)⌉` for integer `x ≥ 1`, computed without floating point so
/// the step positions in Figure 1 are exact.
fn ceil_log(base: u64, x: u64) -> u64 {
    debug_assert!(base >= 2);
    if x <= 1 {
        return 0;
    }
    let mut depth = 0u64;
    let mut reach = 1u64;
    while reach < x {
        reach = reach.saturating_mul(base);
        depth += 1;
    }
    depth
}

/// Ceiling division in u64.
#[inline]
fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// §2.1, first iteration: static-depth bucket sort + aggregation pass.
///
/// `2·(N/B)·⌈log_{M/B}(N/B)⌉ + N/B + K/B` — the depth ignores that the
/// keys form a multiset (it sorts as if all N keys were distinct).
pub fn sort_agg_static(p: ModelParams, n: u64, k: u64) -> u64 {
    let scan = div_ceil(n, p.b);
    let depth = ceil_log(p.fanout(), div_ceil(n, p.b));
    2 * scan * depth + scan + div_ceil(k, p.b)
}

/// §2.1, second iteration: multiset-aware bucket sort + aggregation pass.
///
/// `2·(N/B)·⌈log_{M/B}(min(N/B, K))⌉ + N/B + K/B` — the call tree has at
/// most `min(N/B, K)` leaves, matching the multiset-sorting lower bound.
pub fn sort_agg(p: ModelParams, n: u64, k: u64) -> u64 {
    let scan = div_ceil(n, p.b);
    let depth = ceil_log(p.fanout(), div_ceil(n, p.b).min(k));
    2 * scan * depth + scan + div_ceil(k, p.b)
}

/// §2.1, third iteration (`SORTAGGREGATION OPTIMIZED`): the last sort pass
/// is merged with the aggregation pass, eliminating one full scan and
/// raising the effective leaf capacity to `M` rows of *groups*:
///
/// `N/B + 2·(N/B)·max(0, ⌈log_{M/B}(K/B)⌉ − 1) + K/B`.
///
/// For `K < M` this degenerates to reading the input once and writing the
/// output once — the same cost as in-cache hash aggregation.
pub fn sort_agg_opt(p: ModelParams, n: u64, k: u64) -> u64 {
    let scan = div_ceil(n, p.b);
    let passes = ceil_log(p.fanout(), div_ceil(k, p.b)).saturating_sub(1);
    scan + 2 * scan * passes + div_ceil(k, p.b)
}

/// [`sort_agg`] with an explicit partitioning fan-out instead of the
/// model-derived `M/B` — used to compare against simulated runs whose
/// concrete implementation uses a smaller fan-out.
pub fn sort_agg_with_fanout(p: ModelParams, n: u64, k: u64, fanout: u64) -> u64 {
    let scan = div_ceil(n, p.b);
    let depth = ceil_log(fanout.max(2), div_ceil(n, p.b).min(k));
    2 * scan * depth + scan + div_ceil(k, p.b)
}

/// §2.2: naive hash aggregation into a table of `K` entries.
///
/// In-cache (`K ≤ M`): one read pass plus the output write. Out-of-cache:
/// only a fraction `M/K` of the table is cached, so a fraction `1 − M/K`
/// of rows miss, each miss costing one write-back plus one read.
pub fn hash_agg(p: ModelParams, n: u64, k: u64) -> u64 {
    let scan = div_ceil(n, p.b);
    let out = div_ceil(k, p.b);
    if k <= p.m {
        scan + out
    } else {
        let miss_fraction = 1.0 - (p.m as f64 / k as f64);
        scan + out + (2.0 * n as f64 * miss_fraction) as u64
    }
}

/// §2.2 (`HASHAGGREGATION OPTIMIZED`): recursive hash-partitioning as
/// preprocessing makes every hash pass work in cache; the cost analysis is
/// then identical to [`sort_agg_opt`] — this *is* the paper's point.
pub fn hash_agg_opt(p: ModelParams, n: u64, k: u64) -> u64 {
    sort_agg_opt(p, n, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: ModelParams = ModelParams::FIGURE1;
    const N: u64 = 1 << 32;

    #[test]
    fn ceil_log_exact_steps() {
        assert_eq!(ceil_log(4096, 1), 0);
        assert_eq!(ceil_log(4096, 2), 1);
        assert_eq!(ceil_log(4096, 4096), 1);
        assert_eq!(ceil_log(4096, 4097), 2);
        assert_eq!(ceil_log(4096, 4096 * 4096), 2);
        assert_eq!(ceil_log(4096, 4096 * 4096 + 1), 3);
    }

    #[test]
    fn optimized_variants_are_identical() {
        for k in [1u64, 1 << 8, 1 << 16, 1 << 20, 1 << 28, N] {
            assert_eq!(sort_agg_opt(P, N, k), hash_agg_opt(P, N, k), "K={k}");
        }
    }

    #[test]
    fn small_k_hash_is_two_scans_worth() {
        // K ≤ M: read input once, write output once.
        let k = 1 << 10;
        assert_eq!(hash_agg(P, N, k), N / P.b + k / P.b);
        assert_eq!(sort_agg_opt(P, N, k), N / P.b + k / P.b);
    }

    #[test]
    fn naive_hash_explodes_beyond_cache() {
        // One row past the cache boundary the cost jumps by orders of
        // magnitude — the "explosion" visible in Figure 1.
        // The jump is bounded by ≈ 2B× (a miss per row instead of 1/B
        // amortized); with B = 16 that is a factor ~32.
        let inside = hash_agg(P, N, P.m);
        let outside = hash_agg(P, N, P.m * 256);
        assert!(outside > inside * 20, "inside={inside} outside={outside}");
    }

    #[test]
    fn naive_sort_pays_full_depth_even_for_tiny_k() {
        // The static analysis sorts all the way down even for K = 1;
        // multiset awareness removes that.
        assert!(sort_agg_static(P, N, 1) > sort_agg(P, N, 1));
        // And for K = N they agree.
        assert_eq!(sort_agg_static(P, N, N), sort_agg(P, N, N));
    }

    #[test]
    fn optimization_eliminates_a_pass() {
        // §2.1: the merged last pass saves (at least) one full read+write
        // of the data for medium K.
        let k = 1 << 20;
        let naive = sort_agg(P, N, k);
        let opt = sort_agg_opt(P, N, k);
        assert!(naive >= opt + 2 * (N / P.b), "naive={naive} opt={opt}");
    }

    #[test]
    fn passes_grow_logarithmically() {
        // Depth counts for Figure 1: K up to M → 0 extra passes,
        // up to M·(M/B) → 1, up to M·(M/B)² → 2.
        let scan = N / P.b;
        assert_eq!(sort_agg_opt(P, N, 1 << 16), scan + (1 << 16) / P.b);
        let one_pass = sort_agg_opt(P, N, 1 << 20);
        assert_eq!(one_pass, scan + 2 * scan + (1 << 20) / P.b);
        let two_pass = sort_agg_opt(P, N, 1 << 30);
        assert_eq!(two_pass, scan + 4 * scan + (1 << 30) / P.b);
    }

    #[test]
    fn monotone_in_n() {
        for f in [sort_agg, sort_agg_opt, hash_agg] {
            assert!(f(P, 1 << 20, 1 << 10) <= f(P, 1 << 24, 1 << 10));
        }
    }
}
