//! A set-associative, write-back, write-allocate LRU cache simulator.
//!
//! Used to *measure* the cache-line transfers of the instrumented
//! aggregation algorithms in [`crate::traced`] rather than only deriving
//! them on paper. Addresses are byte addresses in a simulated flat address
//! space; the simulator tracks tags only, never data.

/// Transfer statistics; a "transfer" in the external memory model is a line
/// moved between cache and memory, i.e. `misses + writebacks`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit a cached line.
    pub hits: u64,
    /// Accesses that missed and loaded a line from memory.
    pub misses: u64,
    /// Dirty lines written back to memory on eviction or flush.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total line transfers (the quantity the §2 formulas count).
    pub fn transfers(&self) -> u64 {
        self.misses + self.writebacks
    }
}

#[derive(Copy, Clone, Debug)]
struct Line {
    tag: u64,
    dirty: bool,
    /// Monotone counter value of the last touch; smallest = LRU victim.
    last_used: u64,
}

/// The simulator.
#[derive(Clone, Debug)]
pub struct CacheSim {
    line_bytes: u64,
    n_sets: u64,
    ways: usize,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: CacheStats,
}

impl CacheSim {
    /// Build a cache of `capacity_bytes` split into `ways`-associative sets
    /// of `line_bytes` lines. Capacity must divide evenly and the set count
    /// must be a power of two.
    pub fn new(capacity_bytes: u64, line_bytes: u64, ways: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(ways >= 1);
        assert_eq!(
            capacity_bytes % (line_bytes * ways as u64),
            0,
            "capacity must be a multiple of line_bytes * ways"
        );
        let n_sets = capacity_bytes / (line_bytes * ways as u64);
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        Self {
            line_bytes,
            n_sets,
            ways,
            sets: vec![Vec::with_capacity(ways); n_sets as usize],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// A fully associative cache of `capacity_bytes`, the closest concrete
    /// machine to the idealized external memory model.
    pub fn fully_associative(capacity_bytes: u64, line_bytes: u64) -> Self {
        let ways = (capacity_bytes / line_bytes) as usize;
        Self::new(capacity_bytes, line_bytes, ways)
    }

    /// Cache capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.line_bytes * self.n_sets * self.ways as u64
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Simulate one access of any width contained in a single line.
    pub fn access(&mut self, addr: u64, write: bool) {
        self.clock += 1;
        let line_no = addr / self.line_bytes;
        let set_ix = (line_no & (self.n_sets - 1)) as usize;
        let tag = line_no >> self.n_sets.trailing_zeros();
        let set = &mut self.sets[set_ix];

        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            self.stats.hits += 1;
            line.last_used = self.clock;
            line.dirty |= write;
            return;
        }

        self.stats.misses += 1;
        if set.len() == self.ways {
            // Evict the least recently used way.
            if let Some(victim_ix) =
                set.iter().enumerate().min_by_key(|(_, l)| l.last_used).map(|(i, _)| i)
            {
                let victim = set.swap_remove(victim_ix);
                if victim.dirty {
                    self.stats.writebacks += 1;
                }
            }
        }
        set.push(Line { tag, dirty: write, last_used: self.clock });
    }

    /// Read `bytes` starting at `addr`, touching every line in the range.
    pub fn read(&mut self, addr: u64, bytes: u64) {
        self.touch_range(addr, bytes, false);
    }

    /// Write `bytes` starting at `addr`, touching every line in the range.
    pub fn write(&mut self, addr: u64, bytes: u64) {
        self.touch_range(addr, bytes, true);
    }

    fn touch_range(&mut self, addr: u64, bytes: u64, write: bool) {
        let first = addr / self.line_bytes;
        let last = (addr + bytes.max(1) - 1) / self.line_bytes;
        for line in first..=last {
            self.access(line * self.line_bytes, write);
        }
    }

    /// Write back all dirty lines (end-of-run accounting) and empty the
    /// cache. Returns the number of lines flushed.
    pub fn flush(&mut self) -> u64 {
        let mut flushed = 0;
        for set in &mut self.sets {
            for line in set.drain(..) {
                if line.dirty {
                    self.stats.writebacks += 1;
                    flushed += 1;
                }
            }
        }
        flushed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scan_misses_once_per_line() {
        let mut c = CacheSim::new(4096, 64, 4);
        for i in 0..1024u64 {
            c.read(i * 8, 8);
        }
        // 1024 × 8 B = 8192 B = 128 lines.
        assert_eq!(c.stats().misses, 128);
        assert_eq!(c.stats().hits, 1024 - 128);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn working_set_within_capacity_hits() {
        let mut c = CacheSim::new(4096, 64, 4);
        for round in 0..10 {
            for i in 0..64u64 {
                c.read(i * 64, 8);
            }
            if round == 0 {
                assert_eq!(c.stats().misses, 64);
            }
        }
        assert_eq!(c.stats().misses, 64, "steady state must be all hits");
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = CacheSim::new(128, 64, 1); // 2 sets, direct mapped
        c.write(0, 8); // set 0
        c.write(128, 8); // set 0 again -> evicts dirty line 0
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = CacheSim::new(128, 64, 2); // 1 set, 2 ways
        c.read(0, 8); // A
        c.read(64, 8); // B
        c.read(0, 8); // touch A
        c.read(128, 8); // C evicts B (LRU)
        c.read(0, 8); // A must still hit
        let s = c.stats();
        assert_eq!(s.misses, 3);
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn flush_writes_back_dirty_lines_only() {
        let mut c = CacheSim::new(4096, 64, 4);
        c.write(0, 64);
        c.write(64, 64);
        c.read(128, 64);
        assert_eq!(c.flush(), 2);
        assert_eq!(c.stats().writebacks, 2);
    }

    #[test]
    fn range_access_spans_lines() {
        let mut c = CacheSim::new(4096, 64, 4);
        c.read(60, 8); // straddles the line boundary at 64
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn fully_associative_has_one_set() {
        let c = CacheSim::fully_associative(4096, 64);
        assert_eq!(c.n_sets, 1);
        assert_eq!(c.ways, 64);
        assert_eq!(c.capacity_bytes(), 4096);
    }

    #[test]
    fn transfers_is_misses_plus_writebacks() {
        let s = CacheStats { hits: 10, misses: 4, writebacks: 3 };
        assert_eq!(s.transfers(), 7);
    }
}
