//! A minimal named-column table for the examples.
//!
//! The operator itself works on raw column slices; `Table` exists so that
//! the examples can read like the SQL queries of the paper's introduction
//! (`SELECT k, SUM(v) FROM t GROUP BY k`) without dragging in a full
//! catalog. All columns are `u64`, as in the paper's experiments ("all
//! columns are 64-bit integers", §6.1).

/// A named `u64` column.
#[derive(Clone, Debug)]
pub struct Column {
    /// Column name (unique within its table).
    pub name: String,
    /// Values, one per row.
    pub data: Vec<u64>,
}

/// A named-column, fixed-row-count table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a column. The first column fixes the row count; later columns
    /// must match it and names must be unique.
    pub fn add_column(&mut self, name: impl Into<String>, data: Vec<u64>) -> &mut Self {
        let name = name.into();
        assert!(self.column(&name).is_none(), "duplicate column name {name:?}");
        if self.columns.is_empty() {
            self.rows = data.len();
        } else {
            assert_eq!(data.len(), self.rows, "column {name:?} row count mismatch");
        }
        self.columns.push(Column { name, data });
        self
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Borrow a column's values, panicking on unknown names (examples keep
    /// error handling out of the way; library users get `column`).
    pub fn col(&self, name: &str) -> &[u64] {
        &self.column(name).unwrap_or_else(|| panic!("no column named {name:?}")).data
    }

    /// Iterate over all columns.
    pub fn columns(&self) -> impl Iterator<Item = &Column> {
        self.columns.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut t = Table::new();
        t.add_column("k", vec![1, 2, 1]).add_column("v", vec![10, 20, 30]);
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.col("v"), &[10, 20, 30]);
        assert!(t.column("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn ragged_column_panics() {
        let mut t = Table::new();
        t.add_column("a", vec![1, 2]).add_column("b", vec![1]);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_name_panics() {
        let mut t = Table::new();
        t.add_column("a", vec![1]).add_column("a", vec![2]);
    }
}
