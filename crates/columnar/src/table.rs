//! A minimal named-column table for the examples.
//!
//! The operator itself works on raw column slices; `Table` exists so that
//! the examples can read like the SQL queries of the paper's introduction
//! (`SELECT k, SUM(v) FROM t GROUP BY k`) without dragging in a full
//! catalog. All columns are `u64`, as in the paper's experiments ("all
//! columns are 64-bit integers", §6.1).

use std::fmt;

/// A named `u64` column.
#[derive(Clone, Debug)]
pub struct Column {
    /// Column name (unique within its table).
    pub name: String,
    /// Values, one per row.
    pub data: Vec<u64>,
}

/// Why a column could not be added to a [`Table`].
///
/// The typed counterpart of the panics in [`Table::add_column`]: library
/// users get a value they can match on, examples keep the panicking
/// wrapper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableError {
    /// A column with this name already exists.
    DuplicateColumn {
        /// The offending name.
        name: String,
    },
    /// The column's length disagrees with the table's row count.
    RowCountMismatch {
        /// The offending column name.
        name: String,
        /// Rows the new column brought.
        got: usize,
        /// Rows the table has.
        expected: usize,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::DuplicateColumn { name } => {
                write!(f, "duplicate column name {name:?}")
            }
            TableError::RowCountMismatch { name, got, expected } => {
                write!(
                    f,
                    "column {name:?} row count mismatch: got {got} rows, table has {expected}"
                )
            }
        }
    }
}

impl std::error::Error for TableError {}

/// A named-column, fixed-row-count table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a column. The first column fixes the row count; later columns
    /// must match it and names must be unique.
    ///
    /// # Errors
    /// [`TableError::DuplicateColumn`] if the name is taken,
    /// [`TableError::RowCountMismatch`] if the length disagrees with the
    /// table's row count.
    pub fn try_add_column(
        &mut self,
        name: impl Into<String>,
        data: Vec<u64>,
    ) -> Result<&mut Self, TableError> {
        let name = name.into();
        if self.column(&name).is_some() {
            return Err(TableError::DuplicateColumn { name });
        }
        if self.columns.is_empty() {
            self.rows = data.len();
        } else if data.len() != self.rows {
            return Err(TableError::RowCountMismatch {
                name,
                got: data.len(),
                expected: self.rows,
            });
        }
        self.columns.push(Column { name, data });
        Ok(self)
    }

    /// Add a column, panicking on the errors of [`Table::try_add_column`]
    /// (examples keep error handling out of the way).
    pub fn add_column(&mut self, name: impl Into<String>, data: Vec<u64>) -> &mut Self {
        match self.try_add_column(name, data) {
            Ok(_) => self,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Borrow a column's values, panicking on unknown names (examples keep
    /// error handling out of the way; library users get `column`). The
    /// panic message lists the available columns.
    pub fn col(&self, name: &str) -> &[u64] {
        &self
            .column(name)
            .unwrap_or_else(|| {
                let available: Vec<&str> = self.columns.iter().map(|c| c.name.as_str()).collect();
                panic!("no column named {name:?} (available: {available:?})")
            })
            .data
    }

    /// Iterate over all columns.
    pub fn columns(&self) -> impl Iterator<Item = &Column> {
        self.columns.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut t = Table::new();
        t.add_column("k", vec![1, 2, 1]).add_column("v", vec![10, 20, 30]);
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.col("v"), &[10, 20, 30]);
        assert!(t.column("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn ragged_column_panics() {
        let mut t = Table::new();
        t.add_column("a", vec![1, 2]).add_column("b", vec![1]);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_name_panics() {
        let mut t = Table::new();
        t.add_column("a", vec![1]).add_column("a", vec![2]);
    }

    #[test]
    fn try_add_column_reports_duplicates() {
        let mut t = Table::new();
        t.try_add_column("a", vec![1]).unwrap();
        let err = t.try_add_column("a", vec![2]).unwrap_err();
        assert_eq!(err, TableError::DuplicateColumn { name: "a".into() });
        assert!(err.to_string().contains("duplicate column name"));
        assert_eq!(t.n_cols(), 1);
    }

    #[test]
    fn try_add_column_reports_ragged_rows() {
        let mut t = Table::new();
        t.try_add_column("a", vec![1, 2]).unwrap();
        let err = t.try_add_column("b", vec![1]).unwrap_err();
        assert_eq!(err, TableError::RowCountMismatch { name: "b".into(), got: 1, expected: 2 });
        assert!(err.to_string().contains("row count mismatch"));
        assert_eq!(t.n_cols(), 1);
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "no column named \"z\" (available: [\"a\", \"b\"])")]
    fn missing_column_panic_names_the_alternatives() {
        let mut t = Table::new();
        t.add_column("a", vec![1]).add_column("b", vec![2]);
        let _ = t.col("z");
    }
}
