//! Spillable run storage — the `RunStore` / `RunHandle` abstraction.
//!
//! The paper's framework is phrased over *runs* that need not fit in RAM
//! (§2's external-memory cost analysis treats hashing and sorting as the
//! same sequence of sequential run transfers). This module gives runs a
//! storage identity separate from their data: every sealed run, partition
//! output, and leftover-table flush travels as a [`RunHandle`] that is
//! either resident ([`RunHandle::Mem`]) or flushed to a spill file
//! ([`RunHandle::Spilled`]). Consumers call [`RunHandle::into_run`] to get
//! the rows back; a spilled run's file is deleted when its handle drops.
//!
//! Two backends, std-only:
//!
//! * **MemStore** — the degenerate store: handles wrap the run directly.
//!   [`RunStore::in_memory`] models it as "no file store configured".
//! * **[`FileStore`]** — a spill directory. Runs are written once,
//!   sequentially, column extent by column extent (key column first, then
//!   each state column), and read back the same way in bounded extents, so
//!   spill I/O is always bucket-sized sequential transfers — never random
//!   access.
//!
//! The file format is deliberately dumb: a fixed header of little-endian
//! `u64` words (magic, rows, n_cols, aggregated, source_rows, level)
//! followed by `rows` key words and `n_cols × rows` state words. No
//! compression, no framing — the files are process-private scratch, not an
//! interchange format.

use crate::chunked::ChunkedVec;
use crate::run::Run;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// File magic: "HSARUN01" as a little-endian u64.
const MAGIC: u64 = u64::from_le_bytes(*b"HSARUN01");

/// Words per read/write extent (64 KiB): large enough that spill I/O is
/// sequential-bandwidth bound, small enough that a restore never needs a
/// row-count-sized transient buffer.
#[cfg(not(miri))]
pub const EXTENT_WORDS: usize = 8192;
/// Under Miri a tiny extent keeps the boundary-straddling round-trip
/// property tests affordable while exercising the same chunking logic.
#[cfg(miri)]
pub const EXTENT_WORDS: usize = 16;

/// A spill directory that materializes runs as numbered scratch files.
///
/// Cloneable via `Arc`; the sequence counter makes concurrent spills from
/// many workers race-free without any locking.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    seq: AtomicU64,
}

impl FileStore {
    /// Open (creating if needed) a spill directory.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir, seq: AtomicU64::new(0) })
    }

    /// The directory spill files are written to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Write a run to a fresh spill file and return the handle metadata.
    ///
    /// The write is a single sequential pass: header, key extents, then
    /// each state column's extents. The returned [`SpilledRun`] owns the
    /// file and deletes it on drop.
    pub fn write(&self, run: &Run) -> io::Result<SpilledRun> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("run-{seq:08}.bin"));
        let file = File::create(&path)?;
        let mut w = BufWriter::new(file);
        let header = [
            MAGIC,
            run.len() as u64,
            run.n_cols() as u64,
            run.aggregated as u64,
            run.source_rows,
            run.level as u64,
        ];
        let mut bytes = 0u64;
        for word in header {
            w.write_all(&word.to_le_bytes())?;
            bytes += 8;
        }
        bytes += write_column(&mut w, &run.keys)?;
        for col in &run.cols {
            bytes += write_column(&mut w, col)?;
        }
        w.flush()?;
        Ok(SpilledRun {
            path,
            rows: run.len(),
            n_cols: run.n_cols(),
            aggregated: run.aggregated,
            source_rows: run.source_rows,
            level: run.level,
            bytes,
        })
    }

    /// Read a spilled run back into memory (sequential, extent by extent).
    fn read(&self, spilled: &SpilledRun) -> io::Result<Run> {
        let file = File::open(&spilled.path)?;
        let mut r = BufReader::new(file);
        let mut header = [0u64; 6];
        for word in header.iter_mut() {
            let mut buf = [0u8; 8];
            r.read_exact(&mut buf)?;
            *word = u64::from_le_bytes(buf);
        }
        if header[0] != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad spill file magic"));
        }
        let rows = header[1] as usize;
        let n_cols = header[2] as usize;
        if rows != spilled.rows || n_cols != spilled.n_cols {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "spill file shape mismatch"));
        }
        let keys = read_column(&mut r, rows)?;
        let mut cols = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            cols.push(read_column(&mut r, rows)?);
        }
        Ok(Run {
            keys,
            cols,
            aggregated: header[3] != 0,
            source_rows: header[4],
            level: header[5] as u32,
        })
    }
}

fn write_column(w: &mut impl Write, col: &ChunkedVec<u64>) -> io::Result<u64> {
    let mut buf = Vec::with_capacity(EXTENT_WORDS.min(col.len()).max(1) * 8);
    let mut bytes = 0u64;
    for chunk in col.chunks() {
        for extent in chunk.chunks(EXTENT_WORDS) {
            buf.clear();
            for v in extent {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            w.write_all(&buf)?;
            bytes += buf.len() as u64;
        }
    }
    Ok(bytes)
}

fn read_column(r: &mut impl Read, rows: usize) -> io::Result<ChunkedVec<u64>> {
    let mut out = ChunkedVec::new();
    let mut remaining = rows;
    let mut buf = vec![0u8; EXTENT_WORDS.min(rows.max(1)) * 8];
    let mut words = vec![0u64; EXTENT_WORDS.min(rows.max(1))];
    while remaining > 0 {
        let n = remaining.min(EXTENT_WORDS);
        r.read_exact(&mut buf[..n * 8])?;
        for (i, w) in words[..n].iter_mut().enumerate() {
            *w = u64::from_le_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
        }
        out.extend_from_slice(&words[..n]);
        remaining -= n;
    }
    Ok(out)
}

/// A run that lives in a spill file rather than in memory.
///
/// Carries the metadata the driver needs to schedule the run without
/// touching disk (row count, level, aggregation flag). Owns its file:
/// dropping the handle deletes the scratch file.
#[derive(Debug)]
pub struct SpilledRun {
    path: PathBuf,
    rows: usize,
    n_cols: usize,
    aggregated: bool,
    source_rows: u64,
    level: u32,
    bytes: u64,
}

impl SpilledRun {
    /// Bytes written to the spill file (header + payload).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Path of the backing scratch file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SpilledRun {
    fn drop(&mut self) {
        // Scratch cleanup is best-effort; a leaked file in a temp spill
        // dir must not turn a successful query into a panic.
        let _ = fs::remove_file(&self.path);
    }
}

/// A run behind a storage handle: resident in memory or spilled to disk.
#[derive(Debug)]
pub enum RunHandle {
    /// The run is resident; the handle owns its rows.
    Mem(Run),
    /// The run was flushed to a [`FileStore`]; the handle owns the file.
    Spilled(Arc<FileStore>, SpilledRun),
}

impl RunHandle {
    /// Number of rows in the run.
    pub fn len(&self) -> usize {
        match self {
            RunHandle::Mem(run) => run.len(),
            RunHandle::Spilled(_, s) => s.rows,
        }
    }

    /// True if the run holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of state columns.
    pub fn n_cols(&self) -> usize {
        match self {
            RunHandle::Mem(run) => run.n_cols(),
            RunHandle::Spilled(_, s) => s.n_cols,
        }
    }

    /// Whether the rows are partial aggregates (see [`Run::aggregated`]).
    pub fn aggregated(&self) -> bool {
        match self {
            RunHandle::Mem(run) => run.aggregated,
            RunHandle::Spilled(_, s) => s.aggregated,
        }
    }

    /// Original input rows this run represents (see [`Run::source_rows`]).
    pub fn source_rows(&self) -> u64 {
        match self {
            RunHandle::Mem(run) => run.source_rows,
            RunHandle::Spilled(_, s) => s.source_rows,
        }
    }

    /// Radix level of the run.
    pub fn level(&self) -> u32 {
        match self {
            RunHandle::Mem(run) => run.level,
            RunHandle::Spilled(_, s) => s.level,
        }
    }

    /// True if this handle is backed by a spill file.
    pub fn is_spilled(&self) -> bool {
        matches!(self, RunHandle::Spilled(..))
    }

    /// On-disk payload bytes for spilled handles, 0 for resident ones.
    pub fn spilled_bytes(&self) -> u64 {
        match self {
            RunHandle::Mem(_) => 0,
            RunHandle::Spilled(_, s) => s.bytes,
        }
    }

    /// Materialize the run, reading it back from disk if it was spilled.
    ///
    /// Consumes the handle; for spilled runs the scratch file is deleted
    /// once the returned [`Run`] is built.
    pub fn into_run(self) -> io::Result<Run> {
        match self {
            RunHandle::Mem(run) => Ok(run),
            RunHandle::Spilled(store, spilled) => store.read(&spilled),
        }
    }
}

/// The run storage policy for one operator invocation.
///
/// `in_memory()` is the MemStore backend: every handle stays resident and
/// budget exhaustion remains a hard denial. `spilling_to(dir)` attaches a
/// shared [`FileStore`] so run producers can downgrade a denied
/// reservation into a spill instead of failing the query.
#[derive(Clone, Debug, Default)]
pub struct RunStore {
    file: Option<Arc<FileStore>>,
}

impl RunStore {
    /// Memory-only storage: no spill capability.
    pub fn in_memory() -> Self {
        Self { file: None }
    }

    /// Storage backed by a spill directory (created if missing).
    pub fn spilling_to(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Ok(Self { file: Some(Arc::new(FileStore::new(dir)?)) })
    }

    /// True if a spill directory is configured.
    pub fn can_spill(&self) -> bool {
        self.file.is_some()
    }

    /// The backing file store, if any.
    pub fn file_store(&self) -> Option<&Arc<FileStore>> {
        self.file.as_ref()
    }

    /// Flush a run to the spill directory and return its handle.
    ///
    /// # Errors
    /// I/O errors from the write, or `Unsupported` if this is a
    /// memory-only store.
    pub fn spill(&self, run: &Run) -> io::Result<RunHandle> {
        let Some(store) = &self.file else {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no spill directory configured",
            ));
        };
        let spilled = store.write(run)?;
        Ok(RunHandle::Spilled(Arc::clone(store), spilled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hsa-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_run() -> Run {
        let mut run = Run::empty(3, 2, true);
        for i in 0..10_000u64 {
            run.keys.push(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            run.cols[0].push(i);
            run.cols[1].push(u64::MAX - i);
        }
        run.source_rows = 12_345;
        run
    }

    #[test]
    fn spill_round_trip_preserves_rows_and_meta() {
        let dir = temp_dir("roundtrip");
        let store = RunStore::spilling_to(&dir).unwrap();
        let run = sample_run();
        let handle = store.spill(&run).unwrap();
        assert!(handle.is_spilled());
        assert_eq!(handle.len(), run.len());
        assert_eq!(handle.level(), run.level);
        assert_eq!(handle.source_rows(), run.source_rows);
        assert!(handle.spilled_bytes() >= (run.len() as u64) * 8 * 3);
        let back = handle.into_run().unwrap();
        assert_eq!(back.keys, run.keys);
        assert_eq!(back.cols, run.cols);
        assert_eq!(back.aggregated, run.aggregated);
        assert_eq!(back.source_rows, run.source_rows);
        assert_eq!(back.level, run.level);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_zero_column_runs_round_trip() {
        let dir = temp_dir("shapes");
        let store = RunStore::spilling_to(&dir).unwrap();
        for run in [Run::empty(0, 0, false), Run::empty(7, 4, true)] {
            let back = store.spill(&run).unwrap().into_run().unwrap();
            assert_eq!(back.len(), 0);
            assert_eq!(back.n_cols(), run.n_cols());
            assert_eq!(back.level, run.level);
            assert_eq!(back.aggregated, run.aggregated);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropping_a_handle_deletes_the_scratch_file() {
        let dir = temp_dir("cleanup");
        let store = RunStore::spilling_to(&dir).unwrap();
        let handle = store.spill(&sample_run()).unwrap();
        let path = match &handle {
            RunHandle::Spilled(_, s) => s.path().to_path_buf(),
            RunHandle::Mem(_) => unreachable!(),
        };
        assert!(path.exists());
        drop(handle);
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_store_refuses_to_spill() {
        let store = RunStore::in_memory();
        assert!(!store.can_spill());
        let err = store.spill(&sample_run()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn mem_handles_are_transparent() {
        let run = sample_run();
        let (len, level) = (run.len(), run.level);
        let handle = RunHandle::Mem(run);
        assert!(!handle.is_spilled());
        assert_eq!(handle.spilled_bytes(), 0);
        assert_eq!(handle.len(), len);
        assert_eq!(handle.level(), level);
        assert_eq!(handle.into_run().unwrap().len(), len);
    }
}
