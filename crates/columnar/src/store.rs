//! Spillable run storage — the `RunStore` / `RunHandle` abstraction.
//!
//! The paper's framework is phrased over *runs* that need not fit in RAM
//! (§2's external-memory cost analysis treats hashing and sorting as the
//! same sequence of sequential run transfers). This module gives runs a
//! storage identity separate from their data: every sealed run, partition
//! output, and leftover-table flush travels as a [`RunHandle`] that is
//! either resident ([`RunHandle::Mem`]) or flushed to a spill file
//! ([`RunHandle::Spilled`]). Consumers call [`RunHandle::into_run`] to get
//! the rows back; a spilled run's file is deleted when its handle drops.
//!
//! Two backends, std-only:
//!
//! * **MemStore** — the degenerate store: handles wrap the run directly.
//!   [`RunStore::in_memory`] models it as "no file store configured".
//! * **[`FileStore`]** — a spill directory. Runs are written once,
//!   sequentially, column extent by column extent (key column first, then
//!   each state column), and read back the same way in bounded extents, so
//!   spill I/O is always bucket-sized sequential transfers — never random
//!   access.
//!
//! # Asynchronous pipeline
//!
//! Spill I/O is off the critical path by default. The store owns a small
//! [`IoPool`] of worker threads fed by a bounded channel; a spill is a
//! *submission* — [`FileStore::write`] reserves disk space, hands the run
//! to a worker, and returns a [`SpilledRun`] handle immediately, so the
//! compute thread keeps aggregating while the previous run streams to
//! disk (double buffering in the external-sort tradition). Symmetrically,
//! [`RunHandle::prefetch`] asks a worker to decode the *next* spilled run
//! while the current one is being merged. Every in-flight operation is
//! tracked by an [`IoTicket`] the handle carries; consuming the handle
//! synchronizes on the ticket. Worker-side write errors are recorded as
//! the store's first error and surface at the next synchronization point:
//! the next spill submission, an explicit [`RunStore::drain`], or the
//! failed handle's own `into_run` — never silently. `io_threads: 0` in
//! [`SpillConfig`] restores fully synchronous, in-line I/O.
//!
//! Runs that flush at one moment share one scratch file:
//! [`FileStore::write_batch`] lays every run of the batch out as a
//! self-contained verified stream (header/extents/footer, below) at its
//! own offset of a single file, under one disk reservation and one
//! sequential write. Producers that emit hundreds of small per-digit
//! runs per flush pay one file creation instead of hundreds — on
//! filesystems where inode creation dominates small writes (container
//! overlay mounts, ~400 µs per create) that is the difference between
//! spilling being viable and not. The file is reclaimed when the last
//! handle into it drops.
//!
//! # File format (`HSARUN03`)
//!
//! ```text
//! header   6 LE u64 words: magic, rows, n_cols, aggregated, source_rows, level
//! columns  1 + n_cols columns (keys first), each split into extents of
//!          up to EXTENT_WORDS words; every extent is framed as
//!            descriptor word   codec id (low 8 bits) | word count (bits
//!                              8..32) | encoded byte length (high 32)
//!            descriptor CRC    CRC32C of the descriptor's 8 LE bytes
//!            payload           the encoded words, zero-padded to an
//!                              8-byte boundary
//!            trailer word      low 32 bits CRC32C of the padded payload
//!                              bytes, high 32 bits the decoded word count
//! footer   4 LE u64 words: extent count, total bytes before the footer,
//!          CRC32C of every byte before the footer, magic again
//! ```
//!
//! Extent payloads are compressed per column (see [`SpillCodec`]): delta +
//! zigzag varint for near-sorted data, run-length for low-cardinality
//! columns, with a raw escape hatch whenever neither is strictly smaller —
//! Graefe's bandwidth-for-CPU trade applied to exactly the run/merge
//! machinery the paper analyses. The CRC is computed over the *encoded*
//! bytes, so a single bit flip anywhere in a compressed payload is still
//! detected before the decoder ever sees it; the decoder itself is total
//! and rejects malformed input as corruption, defence in depth behind the
//! checksum. `HSARUN02` files are not readable (spill files are
//! process-private scratch, so the break only invalidates files a crashed
//! v2 process left behind — the orphan sweep removes those wholesale).
//!
//! Every restore re-verifies all of it: magic, shape, each extent's
//! descriptor CRC, payload CRC and word count, and the footer's counts and
//! whole-file checksum — so corruption, truncation, and torn writes
//! surface as a typed `AggError::SpillCorrupt`, never as silently wrong
//! rows. Restored runs are therefore *verifiably* the runs that were
//! sealed.
//!
//! # Durability behaviour
//!
//! Writes reserve their file-size *upper bound* against the store's
//! [`DiskBudget`] at submit time — keeping `DiskBudgetExceeded` a
//! synchronous, attributable error — and shrink the reservation to the
//! actual encoded size once the worker finishes (the reservation rides
//! the [`SpilledRun`] and is fully released when the scratch file is
//! reclaimed). Transient I/O errors are retried from scratch under a
//! clockless bounded [`RetryPolicy`] with partial files truncated empty
//! on every failure path; a failed async write additionally shrinks its
//! reservation to zero immediately, so both budgets drain even while the
//! dead handle is still in flight. Reclaimed scratch files are truncated
//! to zero and parked — descriptor kept open — for the next spill to
//! reuse, because inode creation rather than data bytes dominates small
//! spills on some filesystems; whatever is still parked unlinks when the
//! store drops. `FileStore::new` sweeps the directory for spill files
//! orphaned by dead processes (liveness via a per-pid lock file, plus
//! `/proc` on Linux).

use crate::chunked::ChunkedVec;
use crate::codec::{self, SpillCodec};
use crate::crc::{crc32c, Crc32c};
use crate::run::Run;
use hsa_fault::{
    AggError, DiskBudget, DiskReservation, FaultInjector, RetryPolicy, SpillFaultKind,
};
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// File magic: "HSARUN03" as a little-endian u64. Version 3 compresses
/// extent payloads and frames each extent with a codec descriptor; v2
/// (`HSARUN02`, raw fixed-size extents) files are not readable.
const MAGIC: u64 = u64::from_le_bytes(*b"HSARUN03");

/// Header length in bytes (6 words).
const HEADER_BYTES: u64 = 48;
/// Footer length in bytes (4 words).
const FOOTER_BYTES: u64 = 32;
/// Fixed framing bytes per extent: descriptor + descriptor CRC + trailer.
const EXTENT_OVERHEAD_BYTES: u64 = 24;

/// Spill files are `hsarun-<pid>-<seq>.bin`; the pid makes files
/// attributable to their writing process so the orphan sweep can reclaim
/// scratch left behind by a crash.
const SPILL_PREFIX: &str = "hsarun-";

/// Most parked scratch files the reuse pool holds open at once. Reclaimed
/// files are truncated to zero and kept (with their descriptor) for the
/// next spill, because creating an inode costs ~40× a rewind on container
/// overlay filesystems; beyond this cap they are closed and unlinked so a
/// spill-heavy phase cannot pin an unbounded number of descriptors.
const FILE_POOL_CAP: usize = 128;

/// Words per read/write extent (64 KiB raw): large enough that spill I/O
/// is sequential-bandwidth bound, small enough that a restore never needs
/// a row-count-sized transient buffer.
#[cfg(not(miri))]
pub const EXTENT_WORDS: usize = 8192;
/// Under Miri a tiny extent keeps the boundary-straddling round-trip
/// property tests affordable while exercising the same chunking logic.
#[cfg(miri)]
pub const EXTENT_WORDS: usize = 16;

/// Storage policy knobs of one [`FileStore`]: which codec compresses
/// extent payloads and how many I/O worker threads overlap spill I/O
/// with compute (`0` = fully synchronous in-line I/O).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpillConfig {
    /// Per-extent compression policy (default: [`SpillCodec::Auto`]).
    pub codec: SpillCodec,
    /// I/O worker threads; `0` disables the async pipeline.
    pub io_threads: usize,
}

impl Default for SpillConfig {
    fn default() -> Self {
        Self { codec: SpillCodec::Auto, io_threads: 1 }
    }
}

/// I/O robustness counters of one [`FileStore`] (see
/// [`FileStore::io_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreIoStats {
    /// Spill writes re-attempted after a transient I/O error.
    pub spill_retries: u64,
    /// Restores re-attempted after a transient I/O error.
    pub restore_retries: u64,
    /// Spill operations abandoned: a permanent error, or retries
    /// exhausted.
    pub io_abandons: u64,
    /// Orphaned spill files reclaimed by the startup sweep.
    pub reclaimed_files: u64,
    /// Bytes those reclaimed files occupied.
    pub reclaimed_bytes: u64,
    /// Wall time the startup sweep took, in nanoseconds.
    pub reclaim_nanos: u64,
    /// Uncompressed payload bytes across all completed spill writes
    /// (rows × columns × 8; the pre-codec size).
    pub logical_bytes: u64,
    /// Bytes the encoded spill files actually occupied on disk
    /// (header + framed compressed extents + footer).
    pub encoded_bytes: u64,
    /// Nanoseconds I/O workers spent writing and reading spill files off
    /// the compute thread (0 with `io_threads: 0`).
    pub async_io_nanos: u64,
    /// Nanoseconds compute threads spent blocked on an in-flight ticket
    /// (the un-overlapped remainder of `async_io_nanos`).
    pub io_wait_nanos: u64,
}

/// Recover a poisoned lock: ticket and error state stay usable even if a
/// panicking thread died while holding the mutex (the data is plain state
/// with no broken invariants mid-update).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Where one spilled run's in-flight I/O currently stands.
#[derive(Debug)]
enum TicketState {
    /// The write job is queued or running. `read_requested` chains a
    /// prefetch: when the worker finishes the write it starts the read
    /// immediately instead of parking at `Written`.
    WritePending { read_requested: bool },
    /// The write failed permanently; the error waits for the consumer.
    WriteFailed(AggError),
    /// The file is on disk; no I/O in flight.
    Written,
    /// A prefetch read is queued or running.
    ReadPending,
    /// A prefetch finished; the decoded run (or its error) is parked
    /// here for the consumer.
    ReadDone(Box<Result<Run, AggError>>),
}

impl TicketState {
    fn is_pending(&self) -> bool {
        matches!(self, TicketState::WritePending { .. } | TicketState::ReadPending)
    }
}

/// The synchronization point between one spilled run's handle and the
/// I/O worker operating on its file: a tiny one-slot state machine.
#[derive(Debug)]
struct IoTicket {
    state: Mutex<TicketState>,
    cv: Condvar,
}

impl IoTicket {
    fn new(state: TicketState) -> Arc<Self> {
        Arc::new(Self { state: Mutex::new(state), cv: Condvar::new() })
    }

    fn lock(&self) -> MutexGuard<'_, TicketState> {
        lock(&self.state)
    }

    /// Publish a new state and wake every waiter.
    fn set(&self, state: TicketState) {
        *lock(&self.state) = state;
        self.cv.notify_all();
    }

    /// Block until no I/O is in flight, returning the guard plus the
    /// nanoseconds actually spent waiting (0 when the ticket was already
    /// idle — the fully overlapped case).
    fn wait_idle(&self) -> (MutexGuard<'_, TicketState>, u64) {
        let mut g = lock(&self.state);
        if !g.is_pending() {
            return (g, 0);
        }
        let t0 = Instant::now();
        while g.is_pending() {
            g = match self.cv.wait(g) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        (g, t0.elapsed().as_nanos() as u64)
    }
}

/// One scratch file, shared by every run of the batch that was written
/// into it. The last owner to drop (handle or in-flight job) reclaims
/// the file: truncated to zero and parked in the store's reuse pool, or
/// unlinked when the pool is full.
#[derive(Debug)]
struct SpillFile {
    /// Keeps the reuse pool reachable from whichever thread drops the
    /// last reference (StoreCore cannot drop first — we hold it).
    core: Arc<StoreCore>,
    path: PathBuf,
    /// The open scratch-file descriptor, shared between the submitting
    /// thread, the I/O worker, and the handles. `Some` from the first
    /// write attempt on (or from submission, when the file came out of
    /// the store's reuse pool); the lock serializes the writer against
    /// readers — and concurrent readers of sibling runs against each
    /// other, since they share the descriptor's cursor. Kept open across
    /// the file's whole life because `open(O_CREAT)` dominates small
    /// spills on some filesystems (container overlay mounts: ~400µs per
    /// inode vs ~10µs to rewind a kept descriptor).
    file: Mutex<Option<File>>,
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        // Truncate and park the file for reuse rather than unlinking it:
        // the next spill rewinds the kept descriptor instead of paying
        // `open(O_CREAT)`. An empty slot means the file was already
        // reclaimed (failed write) or never created — either way the
        // path may belong to a recycled successor, so leave it alone.
        match lock(&self.file).take() {
            Some(f) if f.set_len(0).is_ok() => {
                self.core.recycle(std::mem::take(&mut self.path), f);
            }
            Some(_) => {
                let _ = fs::remove_file(&self.path);
            }
            None => {}
        }
    }
}

/// Everything a worker needs to operate on one spilled run without
/// touching the run's handle.
#[derive(Clone, Debug)]
struct SpillMeta {
    /// The scratch file this run lives in, shared with its batch
    /// siblings.
    file: Arc<SpillFile>,
    /// This run's byte offset within the file. Published by the writer
    /// as it lays the batch out (encoding is deterministic, so retried
    /// attempts reproduce the same layout) and read only after the
    /// ticket settled, which orders the publication.
    offset: Arc<OnceLock<u64>>,
    rows: usize,
    n_cols: usize,
    aggregated: bool,
    source_rows: u64,
    level: u32,
    /// The reserved upper-bound size of this run's stream (also the
    /// torn-write detection reference for truncated files).
    nominal_bytes: u64,
}

impl SpillMeta {
    fn path(&self) -> &Path {
        &self.file.path
    }
}

/// One run of a batched spill write: payload, placement, and the ticket
/// its completion is published on.
struct WriteItem {
    run: Run,
    meta: SpillMeta,
    ticket: Arc<IoTicket>,
}

/// One unit of work for the I/O pool.
enum Job {
    /// Write every run of `batch` into its shared scratch file as one
    /// sequential stream, then settle each ticket (possibly chaining
    /// requested prefetch reads).
    Write {
        batch: Vec<WriteItem>,
        inject: Option<SpillFaultKind>,
        reservation: Arc<DiskReservation>,
    },
    /// Prefetch: decode `meta`'s stream into a parked `ReadDone`.
    Read { meta: SpillMeta, inject: Option<SpillFaultKind>, ticket: Arc<IoTicket> },
}

/// The spill I/O workers and the bounded channel that feeds them.
///
/// Workers never submit jobs themselves (chained prefetches run in-line
/// on the worker), so the pool cannot deadlock on its own channel; the
/// bounded depth (`2 × threads`) is the double-buffering backpressure —
/// a compute thread that out-runs the disk blocks on submission instead
/// of queueing unbounded run payloads.
#[derive(Debug)]
struct IoPool {
    /// `Some` for the pool's lifetime; taken in `Drop` so hanging up the
    /// channel (which stops the workers) precedes joining them.
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl IoPool {
    /// Spawn `threads` workers against `core`. Returns `None` when no
    /// worker could be spawned — the store then falls back to
    /// synchronous in-line I/O rather than failing.
    fn new(core: &Arc<StoreCore>, threads: usize) -> Option<Self> {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(threads.max(1) * 2);
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let core = Arc::clone(core);
            let rx = Arc::clone(&rx);
            let spawned = std::thread::Builder::new()
                .name(format!("hsa-spill-io-{i}"))
                .spawn(move || worker_loop(&core, &rx));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(_) => break,
            }
        }
        if workers.is_empty() {
            return None;
        }
        Some(Self { tx: Some(tx), workers })
    }

    /// Submit a job, handing it back if the workers are gone so the
    /// caller can run it in-line — a ticket must never be left pending
    /// with nobody to settle it.
    fn send(&self, job: Job) -> Result<(), Job> {
        match &self.tx {
            Some(tx) => tx.send(job).map_err(|e| e.0),
            None => Err(job),
        }
    }
}

impl Drop for IoPool {
    fn drop(&mut self) {
        // Hanging up the sender ends every worker's recv loop; joining
        // afterwards guarantees no thread outlives the store (and that
        // all queued I/O finished before the lock file retires).
        drop(self.tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(core: &Arc<StoreCore>, rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Job pickup is serialized by the receiver mutex (held only for
        // the recv itself); execution runs in parallel across workers.
        let job = {
            let guard = lock(rx);
            match guard.recv() {
                Ok(job) => job,
                Err(_) => return,
            }
        };
        run_job(core, job);
    }
}

/// Execute one pool job and publish its outcome on the ticket.
fn run_job(core: &StoreCore, job: Job) {
    match job {
        Job::Write { batch, inject, reservation } => {
            let t0 = Instant::now();
            let result = core.perform_write(&batch, inject, &reservation);
            // ORDERING: Relaxed — monotonic statistics counter.
            core.async_io_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            // Release the payload memory and this side's reservation
            // clone *before* publishing any terminal state: a consumer
            // that observed completion must also observe both budgets
            // drained (the chaos suite asserts exactly that).
            let settled: Vec<(SpillMeta, Arc<IoTicket>)> =
                batch.into_iter().map(|item| (item.meta, item.ticket)).collect();
            drop(reservation);
            match result {
                Ok(()) => {
                    for (meta, ticket) in settled {
                        settle_write_job(core, meta, &ticket);
                    }
                }
                Err(e) => {
                    core.note_error(&e);
                    // The whole batch shares the file and the fate of
                    // its write: every handle reports the same failure.
                    // Job-side file references drop first (the write's
                    // error path already reclaimed the file, so these
                    // are no-ops), then the failures publish.
                    let tickets: Vec<Arc<IoTicket>> =
                        settled.into_iter().map(|(_, ticket)| ticket).collect();
                    for ticket in tickets {
                        ticket.set(TicketState::WriteFailed(e.clone()));
                    }
                }
            }
        }
        Job::Read { meta, inject, ticket } => {
            let t0 = Instant::now();
            let read = core.perform_read(&meta, inject);
            // ORDERING: Relaxed — statistics counter.
            core.async_io_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            // Job-side file reference drops before the result publishes,
            // mirroring `settle_write_job`.
            drop(meta);
            ticket.set(TicketState::ReadDone(Box::new(read)));
        }
    }
}

/// Worker-side completion of one run of a successfully written batch.
///
/// Releases the job's file reference (`meta`) *before* publishing the
/// terminal state — the same discipline as the run payload and the disk
/// reservation: once a consumer observes completion, the handles are the
/// only remaining owners of the scratch file, so dropping the last
/// handle reclaims it deterministically. A prefetch requested while the
/// write was in flight is chained here on the same worker; its fault
/// ordinal is consumed at read time.
fn settle_write_job(core: &StoreCore, meta: SpillMeta, ticket: &Arc<IoTicket>) {
    let mut g = ticket.lock();
    debug_assert!(
        matches!(*g, TicketState::WritePending { .. }),
        "settling a non-pending ticket: {g:?}"
    );
    if matches!(*g, TicketState::WritePending { read_requested: true }) {
        *g = TicketState::ReadPending;
        drop(g);
        let inject = core.faults.spill_read_fault();
        let t0 = Instant::now();
        let read = core.perform_read(&meta, inject);
        // ORDERING: Relaxed — statistics counter.
        core.async_io_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        drop(meta);
        ticket.set(TicketState::ReadDone(Box::new(read)));
    } else {
        // The file reference drops while the consumer is still parked on
        // `WritePending`; any reclaim I/O this triggers (the batch's
        // last reference) finishes before the state flips to `Written`.
        drop(meta);
        *g = TicketState::Written;
        ticket.cv.notify_all();
    }
}

/// The store state shared between the owning [`FileStore`] and its I/O
/// workers: directory identity, policies, counters, and the deferred
/// first-error slot.
#[derive(Debug)]
struct StoreCore {
    dir: PathBuf,
    pid: u32,
    seq: AtomicU64,
    faults: FaultInjector,
    disk: DiskBudget,
    retry: RetryPolicy,
    codec: SpillCodec,
    io_threads: usize,
    spill_retries: AtomicU64,
    restore_retries: AtomicU64,
    io_abandons: AtomicU64,
    logical_bytes: AtomicU64,
    encoded_bytes: AtomicU64,
    async_io_nanos: AtomicU64,
    io_wait_nanos: AtomicU64,
    reclaimed_files: u64,
    reclaimed_bytes: u64,
    reclaim_nanos: u64,
    /// First worker-side write error, held until the next
    /// synchronization point surfaces it (submit, drain, or `into_run`).
    first_error: Mutex<Option<AggError>>,
    /// Reclaimed scratch files parked for reuse, already truncated to
    /// zero, capped at [`FILE_POOL_CAP`]. See [`SpillMeta::file`].
    free_files: Mutex<Vec<(PathBuf, File)>>,
}

impl Drop for StoreCore {
    fn drop(&mut self) {
        // The parked-file pool dies with the store: close and unlink each
        // file so a clean shutdown leaves the spill directory empty.
        for (path, file) in lock(&self.free_files).drain(..) {
            drop(file);
            let _ = fs::remove_file(path);
        }
    }
}

impl StoreCore {
    /// Park a reclaimed scratch file — already truncated to zero — for
    /// the next spill to reuse, or unlink it when the pool is full.
    fn recycle(&self, path: PathBuf, file: File) {
        {
            let mut pool = lock(&self.free_files);
            if pool.len() < FILE_POOL_CAP {
                pool.push((path, file));
                return;
            }
        }
        drop(file);
        let _ = fs::remove_file(path);
    }

    /// Record a worker-side failure for deferred surfacing; only the
    /// first error is kept (later ones are usually the same root cause,
    /// and the handle that owns each failure still reports it directly).
    fn note_error(&self, e: &AggError) {
        let mut slot = lock(&self.first_error);
        if slot.is_none() {
            *slot = Some(e.clone());
        }
    }

    /// The full retried write of one spill batch to its shared scratch
    /// file. On success the reservation shrinks to the actual encoded
    /// total; on permanent failure it shrinks to zero (the file is
    /// already truncated empty), so a failed async write drains the disk
    /// budget without waiting for the handles to drop.
    fn perform_write(
        &self,
        batch: &[WriteItem],
        injected: Option<SpillFaultKind>,
        reservation: &DiskReservation,
    ) -> Result<(), AggError> {
        let Some(first) = batch.first() else { return Ok(()) };
        let sf = &first.meta.file;
        let mut attempt = 0u32;
        loop {
            let inject = if attempt == 0 { injected } else { None };
            match self.write_attempt(batch, inject) {
                Ok(actual) => {
                    reservation.shrink_to(actual);
                    let logical: u64 = batch
                        .iter()
                        .map(|it| (1 + it.run.n_cols() as u64) * it.run.len() as u64 * 8)
                        .sum();
                    // ORDERING: Relaxed — monotonic statistics counters.
                    self.logical_bytes.fetch_add(logical, Ordering::Relaxed);
                    self.encoded_bytes.fetch_add(actual, Ordering::Relaxed);
                    return Ok(());
                }
                Err(e) => {
                    // A failed attempt must not leave torn bytes behind:
                    // truncate in place (keeping the descriptor for the
                    // retry), or unlink if the file never opened.
                    match lock(&sf.file).as_ref() {
                        Some(f) => {
                            let _ = f.set_len(0);
                        }
                        None => {
                            let _ = fs::remove_file(&sf.path);
                        }
                    }
                    if self.retry.should_retry(attempt, &e) {
                        // ORDERING: Relaxed — statistics counter.
                        self.spill_retries.fetch_add(1, Ordering::Relaxed);
                        self.retry.backoff(attempt);
                        attempt += 1;
                    } else {
                        // ORDERING: Relaxed — statistics counter.
                        self.io_abandons.fetch_add(1, Ordering::Relaxed);
                        reservation.shrink_to(0);
                        // Reclaim the (empty) file now; the SpillFile's
                        // drop sees the empty descriptor slot and leaves
                        // the path alone, so a recycled successor is
                        // safe.
                        match lock(&sf.file).take() {
                            Some(f) if f.set_len(0).is_ok() => {
                                self.recycle(sf.path.clone(), f);
                            }
                            Some(_) | None => {
                                let _ = fs::remove_file(&sf.path);
                            }
                        }
                        return Err(AggError::SpillFailed {
                            message: format!("{}: {e}", sf.path.display()),
                        });
                    }
                }
            }
        }
    }

    /// One full write attempt of a batch: every run's self-contained
    /// stream (header, framed extents, footer) laid out back to back in
    /// the shared file, each run's start offset published as it is
    /// reached. `inject` simulates the requested storage fault partway
    /// through the byte stream (or, when compression keeps the stream
    /// short of the trigger offset, right after the last footer).
    /// Returns the actual bytes written.
    ///
    /// The first attempt on a fresh file opens (and keeps) the
    /// descriptor; reused or retried files just rewind and truncate it.
    fn write_attempt(
        &self,
        batch: &[WriteItem],
        inject: Option<SpillFaultKind>,
    ) -> io::Result<u64> {
        let sf = match batch.first() {
            Some(first) => &first.meta.file,
            None => return Ok(0),
        };
        let nominal: u64 = batch.iter().map(|it| it.meta.nominal_bytes).sum();
        let mut slot = lock(&sf.file);
        if let Some(f) = slot.as_mut() {
            f.seek(SeekFrom::Start(0))?;
            f.set_len(0)?;
        } else {
            *slot = Some(
                OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(&sf.path)?,
            );
        }
        let file = slot.as_ref().ok_or_else(|| io::Error::other("spill descriptor missing"))?;
        let mut w = SpillWriter {
            inner: BufWriter::new(file),
            crc: Crc32c::new(),
            bytes: 0,
            // Fail mid-stream so partial-file handling is exercised.
            fail: inject.map(|k| (nominal / 2, k)),
        };
        for item in batch {
            // Offsets are deterministic across retries (same runs, same
            // codec), so the once-cell never sees a conflicting value.
            let _ = item.meta.offset.set(w.bytes);
            // Each run's stream carries its own rolling CRC; the footer
            // of the previous run must not leak into it.
            w.crc = Crc32c::new();
            let start = w.bytes;
            let run = &item.run;
            let header = [
                MAGIC,
                run.len() as u64,
                run.n_cols() as u64,
                run.aggregated as u64,
                run.source_rows,
                run.level as u64,
            ];
            for word in header {
                w.write_word(word)?;
            }
            let mut extents = write_column(&mut w, &run.keys, self.codec)?;
            for col in &run.cols {
                extents += write_column(&mut w, col, self.codec)?;
            }
            let body_bytes = w.bytes - start;
            let file_crc = w.crc.finalize() as u64;
            w.write_word(extents)?;
            w.write_word(body_bytes)?;
            w.write_word(file_crc)?;
            w.write_word(MAGIC)?;
        }
        w.fail_if_pending()?;
        debug_assert!(w.bytes <= nominal, "upper-bound size formula out of sync with writer");
        w.inner.flush()?;
        Ok(w.bytes)
    }

    /// The full retried read of one spilled run (sequential, extent by
    /// extent), verifying magic, shape, every extent's descriptor and
    /// payload CRC, and the footer. Transient I/O errors retry;
    /// verification failures are permanent and surface as
    /// [`AggError::SpillCorrupt`].
    fn perform_read(
        &self,
        meta: &SpillMeta,
        injected: Option<SpillFaultKind>,
    ) -> Result<Run, AggError> {
        if injected == Some(SpillFaultKind::ReadTruncate) {
            truncate_in_place(meta.path(), meta.offset.get().copied().unwrap_or(0));
        }
        let mut attempt = 0u32;
        loop {
            let inject = if attempt == 0 { injected } else { None };
            match self.read_attempt(meta, inject) {
                Ok(run) => return Ok(run),
                Err(ReadError::Corrupt { extent, expected, actual, what }) => {
                    // ORDERING: Relaxed — statistics counter.
                    self.io_abandons.fetch_add(1, Ordering::Relaxed);
                    return Err(AggError::SpillCorrupt {
                        path: meta.path().display().to_string(),
                        extent,
                        expected,
                        actual,
                        what: what.to_string(),
                    });
                }
                Err(ReadError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => {
                    // ORDERING: Relaxed — statistics counter.
                    self.io_abandons.fetch_add(1, Ordering::Relaxed);
                    let actual = fs::metadata(meta.path()).map(|m| m.len()).unwrap_or(0);
                    return Err(AggError::SpillCorrupt {
                        path: meta.path().display().to_string(),
                        extent: u64::MAX,
                        expected: meta.nominal_bytes,
                        actual,
                        what: "truncated".to_string(),
                    });
                }
                Err(ReadError::Io(e)) => {
                    if self.retry.should_retry(attempt, &e) {
                        // ORDERING: Relaxed — statistics counter.
                        self.restore_retries.fetch_add(1, Ordering::Relaxed);
                        self.retry.backoff(attempt);
                        attempt += 1;
                    } else {
                        // ORDERING: Relaxed — statistics counter.
                        self.io_abandons.fetch_add(1, Ordering::Relaxed);
                        return Err(AggError::SpillFailed {
                            message: format!("{}: {e}", meta.path().display()),
                        });
                    }
                }
            }
        }
    }

    /// One verified read attempt of a single run's stream, starting at
    /// its published offset within the shared scratch file.
    fn read_attempt(
        &self,
        meta: &SpillMeta,
        inject: Option<SpillFaultKind>,
    ) -> Result<Run, ReadError> {
        if inject == Some(SpillFaultKind::ReadEio) {
            return Err(ReadError::Io(io::Error::from_raw_os_error(5)));
        }
        let mut flip_pending = inject == Some(SpillFaultKind::ReadBitFlip);
        // The offset is published by the writer before the ticket
        // settles, and reads are gated on the settled ticket; an unset
        // cell (impossible on the normal path) degrades to offset 0,
        // where the magic check rejects a mispositioned read as
        // corruption rather than panicking.
        let offset = meta.offset.get().copied().unwrap_or(0);
        // Read through the kept write descriptor when there is one (the
        // seek is ~free; a fresh open is not on every filesystem),
        // falling back to an open by path. The descriptor lock serializes
        // this run's read against the writer and against sibling runs'
        // readers, which all share the cursor.
        let slot = lock(&meta.file.file);
        let opened;
        let mut file: &File = match slot.as_ref() {
            Some(f) => f,
            None => {
                opened = File::open(meta.path()).map_err(ReadError::Io)?;
                &opened
            }
        };
        file.seek(SeekFrom::Start(offset)).map_err(ReadError::Io)?;
        let mut r = SpillReader { inner: BufReader::new(file), crc: Crc32c::new(), bytes: 0 };
        let mut header = [0u64; 6];
        for word in header.iter_mut() {
            *word = r.read_word()?;
        }
        if header[0] != MAGIC {
            return Err(corrupt(u64::MAX, MAGIC, header[0], "magic"));
        }
        let rows = header[1] as usize;
        let n_cols = header[2] as usize;
        if rows != meta.rows {
            return Err(corrupt(u64::MAX, meta.rows as u64, rows as u64, "shape"));
        }
        if n_cols != meta.n_cols {
            return Err(corrupt(u64::MAX, meta.n_cols as u64, n_cols as u64, "shape"));
        }
        let mut extent = 0u64;
        let keys = read_column(&mut r, rows, &mut extent, &mut flip_pending)?;
        let mut cols = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            cols.push(read_column(&mut r, rows, &mut extent, &mut flip_pending)?);
        }
        let body_bytes = r.bytes;
        let mut file_crc = r.crc.finalize() as u64;
        if flip_pending {
            // A zero-extent file gave the injected bit flip no payload to
            // land in; corrupt the whole-file checksum instead so the
            // injection still proves the footer check fires.
            file_crc ^= 1;
        }
        let footer =
            [r.read_raw_word()?, r.read_raw_word()?, r.read_raw_word()?, r.read_raw_word()?];
        if footer[3] != MAGIC {
            return Err(corrupt(u64::MAX, MAGIC, footer[3], "footer magic"));
        }
        if footer[0] != extent {
            return Err(corrupt(u64::MAX, extent, footer[0], "extent count"));
        }
        if footer[1] != body_bytes {
            return Err(corrupt(u64::MAX, body_bytes, footer[1], "byte count"));
        }
        if footer[2] != file_crc {
            return Err(corrupt(u64::MAX, file_crc, footer[2], "file crc"));
        }
        Ok(Run {
            keys,
            cols,
            aggregated: header[3] != 0,
            source_rows: header[4],
            level: header[5] as u32,
        })
    }
}

/// A spill directory that materializes runs as per-process numbered
/// scratch files, streaming them through a small I/O worker pool.
///
/// Cloneable via `Arc`; the sequence counter makes concurrent spills from
/// many workers race-free without any locking.
#[derive(Debug)]
pub struct FileStore {
    core: Arc<StoreCore>,
    /// `None` = synchronous in-line I/O (`io_threads: 0`, or worker
    /// spawn failure).
    pool: Option<IoPool>,
}

impl FileStore {
    /// Open (creating if needed) a spill directory with no fault
    /// injection, no disk limit, and the default [`SpillConfig`].
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, AggError> {
        Self::with_env(dir, FaultInjector::none(), DiskBudget::unlimited())
    }

    /// Open a spill directory wired to an execution environment with the
    /// default [`SpillConfig`]; see [`FileStore::with_config`].
    pub fn with_env(
        dir: impl Into<PathBuf>,
        faults: FaultInjector,
        disk: DiskBudget,
    ) -> Result<Self, AggError> {
        Self::with_config(dir, faults, disk, SpillConfig::default())
    }

    /// Open a spill directory wired to an execution environment: spill
    /// writes reserve against `disk`, storage-level faults come from
    /// `faults`, `config` picks the codec and I/O thread count, and the
    /// directory is swept for scratch files orphaned by dead processes
    /// before any new file is written.
    pub fn with_config(
        dir: impl Into<PathBuf>,
        faults: FaultInjector,
        disk: DiskBudget,
        config: SpillConfig,
    ) -> Result<Self, AggError> {
        let dir = dir.into();
        let fail =
            |e: io::Error| AggError::SpillFailed { message: format!("{}: {e}", dir.display()) };
        fs::create_dir_all(&dir).map_err(fail)?;
        let pid = std::process::id();
        // The lock file marks this process as live so concurrent sweeps
        // by sibling processes leave our scratch alone. Removed on drop;
        // a crash leaves it behind, and the next sweep pairs it with a
        // liveness check before reclaiming.
        fs::write(dir.join(lock_name(pid)), pid.to_string()).map_err(fail)?;
        let t0 = Instant::now();
        let (reclaimed_files, reclaimed_bytes) = sweep_orphans(&dir, pid);
        let core = Arc::new(StoreCore {
            dir,
            pid,
            seq: AtomicU64::new(0),
            faults,
            disk,
            retry: RetryPolicy::default(),
            codec: config.codec,
            io_threads: config.io_threads,
            spill_retries: AtomicU64::new(0),
            restore_retries: AtomicU64::new(0),
            io_abandons: AtomicU64::new(0),
            logical_bytes: AtomicU64::new(0),
            encoded_bytes: AtomicU64::new(0),
            async_io_nanos: AtomicU64::new(0),
            io_wait_nanos: AtomicU64::new(0),
            reclaimed_files,
            reclaimed_bytes,
            reclaim_nanos: t0.elapsed().as_nanos() as u64,
            first_error: Mutex::new(None),
            free_files: Mutex::new(Vec::new()),
        });
        let pool =
            if config.io_threads == 0 { None } else { IoPool::new(&core, config.io_threads) };
        Ok(Self { core, pool })
    }

    /// The directory spill files are written to.
    pub fn dir(&self) -> &Path {
        &self.core.dir
    }

    /// The storage policy this store was opened with (`io_threads`
    /// reflects the request; a failed worker spawn degrades to
    /// synchronous I/O without changing it).
    pub fn config(&self) -> SpillConfig {
        SpillConfig { codec: self.core.codec, io_threads: self.core.io_threads }
    }

    /// This store's I/O robustness counters (retries, abandons, orphan
    /// reclamation, compression and overlap totals). Monotonic over the
    /// store's lifetime.
    pub fn io_stats(&self) -> StoreIoStats {
        StoreIoStats {
            // ORDERING: Relaxed — monotonic statistics counters read after
            // the operations they count; nothing is published through them.
            spill_retries: self.core.spill_retries.load(Ordering::Relaxed),
            restore_retries: self.core.restore_retries.load(Ordering::Relaxed),
            io_abandons: self.core.io_abandons.load(Ordering::Relaxed),
            reclaimed_files: self.core.reclaimed_files,
            reclaimed_bytes: self.core.reclaimed_bytes,
            reclaim_nanos: self.core.reclaim_nanos,
            logical_bytes: self.core.logical_bytes.load(Ordering::Relaxed),
            encoded_bytes: self.core.encoded_bytes.load(Ordering::Relaxed),
            async_io_nanos: self.core.async_io_nanos.load(Ordering::Relaxed),
            io_wait_nanos: self.core.io_wait_nanos.load(Ordering::Relaxed),
        }
    }

    /// The disk budget spill writes reserve against.
    pub fn disk_budget(&self) -> &DiskBudget {
        &self.core.disk
    }

    /// Upper bound on the on-disk size of `run`'s spill file, in bytes:
    /// the size when every extent escapes to the raw codec. The actual
    /// file is never larger ([`codec::encode`] only picks a compressed
    /// form when it is strictly smaller).
    fn file_size_upper(run: &Run) -> u64 {
        let rows = run.len() as u64;
        let columns = 1 + run.n_cols() as u64;
        let extents_per_col = rows.div_ceil(EXTENT_WORDS as u64);
        HEADER_BYTES
            + columns * rows * 8
            + columns * extents_per_col * EXTENT_OVERHEAD_BYTES
            + FOOTER_BYTES
    }

    /// Surface (and clear) the first deferred worker-side write error.
    ///
    /// Called automatically at the next spill submission; callers that
    /// stop spilling must drain once before trusting that all in-flight
    /// writes landed (`AggStream::finish` does).
    pub fn drain(&self) -> Result<(), AggError> {
        match lock(&self.core.first_error).take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Spill `run` to a scratch file of its own and return its handle;
    /// the single-run form of [`FileStore::write_batch`].
    pub fn write(&self, run: Run) -> Result<SpilledRun, AggError> {
        let mut handles = self.write_batch(vec![run])?;
        handles.pop().ok_or_else(|| AggError::SpillFailed {
            message: "spill batch returned no handle".to_string(),
        })
    }

    /// Spill a batch of runs into **one** shared scratch file — each
    /// run a self-contained verified stream at its own offset — and
    /// return their handles in submission order.
    ///
    /// Batching exists because inode creation, not data volume, dominates
    /// small spills on some filesystems: a sealed table flushing 256
    /// sub-bucket runs pays one `open(O_CREAT)` instead of 256. The file
    /// is reclaimed (truncated into the store's reuse pool) when the
    /// last of its handles drops.
    ///
    /// With an I/O pool this is **submit-and-continue**: the disk-budget
    /// reservation (at the batch's raw-size upper bound) and the fault
    /// ordinal are taken synchronously — so budget denials stay
    /// attributable to the submitting operator and injection order
    /// matches submission order — then the batch is handed to a worker
    /// and the call returns while the bytes stream out in the
    /// background. A worker-side failure fails every handle of the batch
    /// and is surfaced at the next synchronization point (the next
    /// write, [`FileStore::drain`], or a handle's `into_run`). Without a
    /// pool the write happens in-line and errors are returned directly.
    pub fn write_batch(&self, runs: Vec<Run>) -> Result<Vec<SpilledRun>, AggError> {
        self.drain()?;
        if runs.is_empty() {
            return Ok(Vec::new());
        }
        let nominals: Vec<u64> = runs.iter().map(Self::file_size_upper).collect();
        let total: u64 = nominals.iter().sum();
        let reservation = Arc::new(self.core.disk.try_reserve(total)?);
        // Prefer a parked reclaimed file (rewound, not re-created) over
        // minting a fresh name; the expensive open of a brand-new file
        // then happens on whichever thread performs the write.
        let (path, recycled) = match lock(&self.core.free_files).pop() {
            Some((path, file)) => (path, Some(file)),
            None => {
                // ORDERING: Relaxed — the RMW's atomicity alone makes
                // sequence numbers unique; no other memory rides on the
                // counter.
                let seq = self.core.seq.fetch_add(1, Ordering::Relaxed);
                (self.core.dir.join(format!("{SPILL_PREFIX}{}-{seq:08}.bin", self.core.pid)), None)
            }
        };
        let file =
            Arc::new(SpillFile { core: Arc::clone(&self.core), path, file: Mutex::new(recycled) });
        let tickets: Vec<Arc<IoTicket>> = runs
            .iter()
            .map(|_| {
                IoTicket::new(if self.pool.is_some() {
                    TicketState::WritePending { read_requested: false }
                } else {
                    TicketState::Written
                })
            })
            .collect();
        let batch: Vec<WriteItem> = runs
            .into_iter()
            .zip(&nominals)
            .zip(&tickets)
            .map(|((run, &nominal), ticket)| WriteItem {
                meta: SpillMeta {
                    file: Arc::clone(&file),
                    offset: Arc::new(OnceLock::new()),
                    rows: run.len(),
                    n_cols: run.n_cols(),
                    aggregated: run.aggregated,
                    source_rows: run.source_rows,
                    level: run.level,
                    nominal_bytes: nominal,
                },
                run,
                ticket: Arc::clone(ticket),
            })
            .collect();
        let handles: Vec<SpilledRun> = batch
            .iter()
            .map(|item| SpilledRun {
                meta: item.meta.clone(),
                _reservation: Arc::clone(&reservation),
                ticket: Arc::clone(&item.ticket),
            })
            .collect();
        // One storage-level fault ordinal per logical write operation
        // (the whole batch is one file write), consumed at submit time:
        // the injected misbehaviour hits the first attempt only, so a
        // transient flavor exercises exactly one retry.
        let inject = self.core.faults.spill_write_fault();
        if let Some(pool) = &self.pool {
            let job = Job::Write { batch, inject, reservation };
            if let Err(job) = pool.send(job) {
                // The workers are gone (shutdown race): run the job
                // in-line so no ticket can hang forever.
                run_job(&self.core, job);
            }
        } else {
            self.core.perform_write(&batch, inject, &reservation)?;
        }
        Ok(handles)
    }

    /// Ask an I/O worker to start decoding `spilled` in the background
    /// so the consumer's later `into_run` finds the rows already parked.
    ///
    /// A no-op on a synchronous store, on a ticket that already has I/O
    /// in flight, or after the run was prefetched. If the write is still
    /// in flight the read is chained onto it worker-side.
    fn prefetch(&self, spilled: &SpilledRun) {
        let Some(pool) = &self.pool else { return };
        let mut g = spilled.ticket.lock();
        match &mut *g {
            TicketState::WritePending { read_requested } => *read_requested = true,
            TicketState::Written => {
                *g = TicketState::ReadPending;
                drop(g);
                // The read fault ordinal is consumed at submit, mirroring
                // the write side: prefetch order = injection order.
                let inject = self.core.faults.spill_read_fault();
                let job = Job::Read {
                    meta: spilled.meta.clone(),
                    inject,
                    ticket: Arc::clone(&spilled.ticket),
                };
                if let Err(job) = pool.send(job) {
                    run_job(&self.core, job);
                }
            }
            // Failed, in-flight, or already prefetched: nothing to do.
            _ => {}
        }
    }

    /// Read a spilled run back into memory, synchronizing with any
    /// in-flight write or prefetch on its ticket first.
    fn read(&self, spilled: &SpilledRun) -> Result<Run, AggError> {
        let (mut g, waited) = spilled.ticket.wait_idle();
        if waited > 0 {
            // ORDERING: Relaxed — statistics counter.
            self.core.io_wait_nanos.fetch_add(waited, Ordering::Relaxed);
        }
        match std::mem::replace(&mut *g, TicketState::Written) {
            TicketState::ReadDone(parked) => *parked,
            TicketState::WriteFailed(e) => Err(e),
            TicketState::Written => {
                drop(g);
                // Not prefetched: decode in-line on the consumer, with
                // this restore's fault ordinal.
                let inject = self.core.faults.spill_read_fault();
                self.core.perform_read(&spilled.meta, inject)
            }
            // `wait_idle` cannot return a pending state; keep the error
            // typed rather than panicking in release builds.
            state @ (TicketState::WritePending { .. } | TicketState::ReadPending) => {
                debug_assert!(false, "wait_idle returned pending state {state:?}");
                *g = state;
                Err(AggError::SpillFailed {
                    message: "spill ticket still in flight after wait".to_string(),
                })
            }
        }
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        // Stop and join the I/O workers first: all queued writes land
        // (or fail and unlink) before the liveness marker retires, so a
        // sweeping sibling never sees live scratch without its lock.
        drop(self.pool.take());
        // A clean shutdown retires this process's liveness marker so a
        // later sweep can reclaim anything it failed to delete. Crashes
        // skip this — that is exactly the case the sweep's pid liveness
        // check covers.
        let _ = fs::remove_file(self.core.dir.join(lock_name(self.core.pid)));
    }
}

fn lock_name(pid: u32) -> String {
    format!("{SPILL_PREFIX}{pid}.lock")
}

/// Parse `hsarun-<pid>-<seq>.bin` / `hsarun-<pid>.lock` names into
/// `(pid, is_lock)`.
fn parse_spill_name(name: &str) -> Option<(u32, bool)> {
    let rest = name.strip_prefix(SPILL_PREFIX)?;
    if let Some(pid) = rest.strip_suffix(".lock") {
        return pid.parse().ok().map(|p| (p, true));
    }
    let stem = rest.strip_suffix(".bin")?;
    let (pid, _seq) = stem.split_once('-')?;
    pid.parse().ok().map(|p| (p, false))
}

/// Whether `pid` belongs to a live process. The lock file is the primary
/// signal; on Linux `/proc` breaks the tie for locks a crashed process
/// left behind. Elsewhere a present lock is trusted (conservative: a
/// crash that kept its lock leaks until a Linux sweep or manual cleanup).
fn pid_alive(dir: &Path, pid: u32) -> bool {
    if !dir.join(lock_name(pid)).exists() {
        return false;
    }
    if cfg!(target_os = "linux") {
        return Path::new(&format!("/proc/{pid}")).exists();
    }
    true
}

/// Remove spill files (and stale locks) of dead processes. Returns
/// `(files, bytes)` reclaimed; best-effort — an unreadable directory
/// reclaims nothing rather than failing the query.
fn sweep_orphans(dir: &Path, self_pid: u32) -> (u64, u64) {
    let Ok(entries) = fs::read_dir(dir) else { return (0, 0) };
    let mut files = 0u64;
    let mut bytes = 0u64;
    let mut stale_locks = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some((pid, is_lock)) = parse_spill_name(name) else { continue };
        if pid == self_pid || pid_alive(dir, pid) {
            continue;
        }
        if is_lock {
            // Locks go last: removing one mid-sweep would flip the
            // liveness verdict for that pid's remaining files.
            stale_locks.push(entry.path());
        } else {
            let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
            if fs::remove_file(entry.path()).is_ok() {
                files += 1;
                bytes += len;
            }
        }
    }
    for lock in stale_locks {
        let _ = fs::remove_file(lock);
    }
    (files, bytes)
}

/// Truncate the file mid-way through the run stream that starts at
/// `offset` (the `ReadTruncate` injection: simulates a torn write
/// discovered at restore time). The cut lands just past the stream's
/// header — inside its first extent, or its footer for an empty run —
/// so the targeted read always hits EOF no matter where the stream sits
/// in a shared batch file.
fn truncate_in_place(path: &Path, offset: u64) {
    if let Ok(file) = fs::OpenOptions::new().write(true).open(path) {
        let _ = file.set_len(offset + HEADER_BYTES + 8);
    }
}

/// Build a verification-mismatch error. Convention: `expected` is the
/// value the verifier required (recomputed checksum, counted words),
/// `actual` the value the file actually held.
fn corrupt(extent: u64, expected: u64, actual: u64, what: &'static str) -> ReadError {
    ReadError::Corrupt { extent, expected, actual, what }
}

/// Why a read attempt failed: plain I/O (maybe transient, retried) or a
/// verification mismatch (permanent).
enum ReadError {
    Io(io::Error),
    Corrupt { extent: u64, expected: u64, actual: u64, what: &'static str },
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Byte sink that maintains the rolling whole-file CRC and byte count,
/// and can simulate an injected failure partway through the stream.
struct SpillWriter<W: Write> {
    inner: W,
    crc: Crc32c,
    bytes: u64,
    /// Injected fault: once the stream reaches this byte offset, write
    /// only up to it and fail with the kind's error.
    fail: Option<(u64, SpillFaultKind)>,
}

impl<W: Write> SpillWriter<W> {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        if let Some((cap, kind)) = self.fail {
            if self.bytes + buf.len() as u64 > cap {
                // Torn write: a prefix reaches the file, then the error.
                let keep = (cap.saturating_sub(self.bytes)) as usize;
                let _ = self.inner.write_all(&buf[..keep]);
                let _ = self.inner.flush();
                self.bytes += keep as u64;
                return Err(injected_io_error(kind));
            }
        }
        self.inner.write_all(buf)?;
        self.crc.update(buf);
        self.bytes += buf.len() as u64;
        Ok(())
    }

    fn write_word(&mut self, word: u64) -> io::Result<()> {
        self.write_all(&word.to_le_bytes())
    }

    /// The trigger offset is half the *nominal* (raw upper-bound) size,
    /// so compression can finish the whole stream without ever crossing
    /// it. Fire any still-armed fault here, after the footer, so every
    /// planned write fault fires exactly once per attempt regardless of
    /// how well the run compressed.
    fn fail_if_pending(&mut self) -> io::Result<()> {
        match self.fail.take() {
            Some((_, kind)) => Err(injected_io_error(kind)),
            None => Ok(()),
        }
    }
}

fn injected_io_error(kind: SpillFaultKind) -> io::Error {
    match kind {
        // EIO by raw code so the taxonomy classifies it transient.
        SpillFaultKind::WriteEio | SpillFaultKind::ReadEio => io::Error::from_raw_os_error(5),
        SpillFaultKind::WriteShort => {
            io::Error::new(io::ErrorKind::Interrupted, "injected fault: short write")
        }
        // ENOSPC by raw code: permanent.
        SpillFaultKind::WriteEnospc => io::Error::from_raw_os_error(28),
        SpillFaultKind::ReadBitFlip | SpillFaultKind::ReadTruncate => {
            io::Error::new(io::ErrorKind::InvalidData, "injected fault: corruption")
        }
    }
}

/// Byte source mirroring [`SpillWriter`]: rolling CRC + byte count over
/// everything read through it (the footer bypasses via `read_raw_word`).
struct SpillReader<R: Read> {
    inner: R,
    crc: Crc32c,
    bytes: u64,
}

impl<R: Read> SpillReader<R> {
    fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_exact(buf)?;
        self.crc.update(buf);
        self.bytes += buf.len() as u64;
        Ok(())
    }

    fn read_word(&mut self) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        self.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Read a word without feeding the rolling checksum (footer words —
    /// the file CRC cannot cover itself).
    fn read_raw_word(&mut self) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        self.inner.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }
}

/// Write one column as fixed-boundary extents (the last may be short),
/// each encoded under `policy` and framed with descriptor, descriptor
/// CRC, padded payload, and trailer. Returns the extent count.
fn write_column<W: Write>(
    w: &mut SpillWriter<W>,
    col: &ChunkedVec<u64>,
    policy: SpillCodec,
) -> io::Result<u64> {
    let mut extents = 0u64;
    let mut words: Vec<u64> = Vec::with_capacity(EXTENT_WORDS.min(col.len()).max(1));
    let mut enc: Vec<u8> = Vec::new();
    // Extent boundaries are fixed at EXTENT_WORDS regardless of the
    // ChunkedVec's internal chunk boundaries: writer and reader must
    // agree on them for the per-extent framing to line up.
    for chunk in col.chunks() {
        let mut rest = chunk;
        while !rest.is_empty() {
            let take = (EXTENT_WORDS - words.len()).min(rest.len());
            words.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if words.len() == EXTENT_WORDS {
                flush_extent(w, &mut words, &mut enc, &mut extents, policy)?;
            }
        }
    }
    if !words.is_empty() {
        flush_extent(w, &mut words, &mut enc, &mut extents, policy)?;
    }
    Ok(extents)
}

fn flush_extent<W: Write>(
    w: &mut SpillWriter<W>,
    words: &mut Vec<u64>,
    enc: &mut Vec<u8>,
    extents: &mut u64,
    policy: SpillCodec,
) -> io::Result<()> {
    let codec_id = codec::encode(words, policy, enc);
    let n = words.len() as u64;
    let enc_len = enc.len() as u64;
    // Field widths: codec id 8 bits; word count ≤ EXTENT_WORDS fits the
    // 24 bits at 8..32; encoded length ≤ EXTENT_WORDS * 8 fits the high
    // 32. The descriptor gets its own CRC so a flipped codec id or
    // length is caught before it can misdirect the payload read.
    let desc = u64::from(codec_id) | (n << 8) | (enc_len << 32);
    let desc_crc = u64::from(crc32c(&desc.to_le_bytes()));
    // Zero-pad the payload to a word boundary: every frame field stays
    // 8-byte aligned and the raw escape hatch adds no padding at all.
    while !enc.len().is_multiple_of(8) {
        enc.push(0);
    }
    let trailer = crc32c(enc) as u64 | (n << 32);
    w.write_word(desc)?;
    w.write_word(desc_crc)?;
    w.write_all(enc)?;
    w.write_word(trailer)?;
    words.clear();
    *extents += 1;
    Ok(())
}

/// Read one column back, verifying each extent's descriptor CRC, payload
/// CRC, and word counts, then decoding the payload. `extent` is the
/// running global extent ordinal (for error reports); `flip_pending`
/// injects a single encoded-payload bit flip when set.
fn read_column<R: Read>(
    r: &mut SpillReader<R>,
    rows: usize,
    extent: &mut u64,
    flip_pending: &mut bool,
) -> Result<ChunkedVec<u64>, ReadError> {
    let mut out = ChunkedVec::new();
    let mut remaining = rows;
    let mut enc: Vec<u8> = Vec::new();
    let mut words: Vec<u64> = Vec::with_capacity(EXTENT_WORDS.min(rows.max(1)));
    while remaining > 0 {
        let n = remaining.min(EXTENT_WORDS);
        let desc = r.read_word()?;
        let desc_crc = r.read_word()?;
        let computed_desc_crc = u64::from(crc32c(&desc.to_le_bytes()));
        if desc_crc != computed_desc_crc {
            return Err(corrupt(*extent, computed_desc_crc, desc_crc, "extent header"));
        }
        let codec_id = (desc & 0xff) as u8;
        let stored_words = (desc >> 8) & 0xff_ffff;
        let enc_len = (desc >> 32) as usize;
        if stored_words != n as u64 {
            return Err(corrupt(*extent, n as u64, stored_words, "extent words"));
        }
        if enc_len > n * 8 {
            return Err(corrupt(*extent, (n * 8) as u64, enc_len as u64, "extent header"));
        }
        let padded = enc_len.div_ceil(8) * 8;
        enc.clear();
        enc.resize(padded, 0);
        r.read_exact(&mut enc)?;
        if *flip_pending && !enc.is_empty() {
            // The rolling file CRC already consumed the true bytes; the
            // flip lands in the encoded payload about to be CRC-checked,
            // proving the extent checksum catches compressed corruption.
            enc[0] ^= 1;
            *flip_pending = false;
        }
        let trailer = r.read_word()?;
        let stored_crc = trailer & 0xffff_ffff;
        let trailer_words = trailer >> 32;
        if trailer_words != n as u64 {
            return Err(corrupt(*extent, n as u64, trailer_words, "extent words"));
        }
        let actual_crc = crc32c(&enc) as u64;
        if stored_crc != actual_crc {
            return Err(corrupt(*extent, actual_crc, stored_crc, "extent crc"));
        }
        words.clear();
        if codec::decode(codec_id, &enc[..enc_len], n, &mut words).is_err() {
            // Defence in depth: a payload that passed its CRC but does
            // not decode to exactly `n` words (or names an unknown
            // codec) is still corruption, never garbage rows.
            return Err(corrupt(*extent, n as u64, u64::from(codec_id), "extent codec"));
        }
        out.extend_from_slice(&words);
        remaining -= n;
        *extent += 1;
    }
    Ok(out)
}

/// A run that lives in a spill file rather than in memory.
///
/// Carries the metadata the driver needs to schedule the run without
/// touching disk (row count, level, aggregation flag). Owns its file,
/// its disk-budget reservation, and the [`IoTicket`] of any in-flight
/// I/O: dropping the handle waits for the I/O to settle, reclaims the
/// scratch file (truncated into the store's reuse pool), and releases
/// the reserved bytes — exactly once, on every path, including a restore
/// that errored mid-read.
#[derive(Debug)]
pub struct SpilledRun {
    meta: SpillMeta,
    /// RAII only (hence the underscore): shared with the write job while
    /// it is in flight and with the batch's sibling handles; the budget
    /// bytes release when the last clone drops (or earlier, via
    /// `shrink_to` on completion/failure).
    _reservation: Arc<DiskReservation>,
    ticket: Arc<IoTicket>,
}

impl SpilledRun {
    /// Reserved upper-bound size of this run's spill stream (header +
    /// raw-size payload + framing + footer). The encoded stream on disk
    /// is never larger; see [`StoreIoStats::encoded_bytes`] for actual
    /// totals.
    pub fn bytes(&self) -> u64 {
        self.meta.nominal_bytes
    }

    /// Path of the backing scratch file (shared with the run's batch
    /// siblings, if any).
    pub fn path(&self) -> &Path {
        self.meta.path()
    }
}

impl Drop for SpilledRun {
    fn drop(&mut self) {
        // Wait out any in-flight job first: the worker released the run
        // payload and its reservation clone before publishing a terminal
        // state, so after this wait our `meta.file` reference may be the
        // last one — dropping it (a field) then reclaims the scratch
        // file via [`SpillFile::drop`], with batch siblings keeping it
        // alive until the last of them retires. The disk reservation
        // releases the same way, so file and bytes retire together.
        let (guard, _) = self.ticket.wait_idle();
        drop(guard);
    }
}

/// A run behind a storage handle: resident in memory or spilled to disk.
#[derive(Debug)]
pub enum RunHandle {
    /// The run is resident; the handle owns its rows.
    Mem(Run),
    /// The run was flushed to a [`FileStore`]; the handle owns the file.
    Spilled(Arc<FileStore>, SpilledRun),
}

impl RunHandle {
    /// Number of rows in the run.
    pub fn len(&self) -> usize {
        match self {
            RunHandle::Mem(run) => run.len(),
            RunHandle::Spilled(_, s) => s.meta.rows,
        }
    }

    /// True if the run holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of state columns.
    pub fn n_cols(&self) -> usize {
        match self {
            RunHandle::Mem(run) => run.n_cols(),
            RunHandle::Spilled(_, s) => s.meta.n_cols,
        }
    }

    /// Whether the rows are partial aggregates (see [`Run::aggregated`]).
    pub fn aggregated(&self) -> bool {
        match self {
            RunHandle::Mem(run) => run.aggregated,
            RunHandle::Spilled(_, s) => s.meta.aggregated,
        }
    }

    /// Original input rows this run represents (see [`Run::source_rows`]).
    pub fn source_rows(&self) -> u64 {
        match self {
            RunHandle::Mem(run) => run.source_rows,
            RunHandle::Spilled(_, s) => s.meta.source_rows,
        }
    }

    /// Radix level of the run.
    pub fn level(&self) -> u32 {
        match self {
            RunHandle::Mem(run) => run.level,
            RunHandle::Spilled(_, s) => s.meta.level,
        }
    }

    /// True if this handle is backed by a spill file.
    pub fn is_spilled(&self) -> bool {
        matches!(self, RunHandle::Spilled(..))
    }

    /// Reserved upper-bound spill bytes for spilled handles, 0 for
    /// resident ones. Restore accounting uses the same number, so
    /// spilled and restored byte totals stay comparable.
    pub fn spilled_bytes(&self) -> u64 {
        match self {
            RunHandle::Mem(_) => 0,
            RunHandle::Spilled(_, s) => s.bytes(),
        }
    }

    /// Hint that this handle will be consumed soon: start decoding it on
    /// an I/O worker so the eventual [`into_run`](Self::into_run) finds
    /// the rows already in memory. No-op for resident handles and
    /// synchronous stores; safe to call at most once per handle (extra
    /// calls are ignored).
    pub fn prefetch(&self) {
        if let RunHandle::Spilled(store, s) = self {
            store.prefetch(s);
        }
    }

    /// Materialize the run, reading it back from disk if it was spilled
    /// (or collecting the prefetched rows if a worker already did).
    ///
    /// Consumes the handle; for spilled runs the scratch file is deleted
    /// once the returned [`Run`] is built — or once the restore has
    /// failed (the handle's drop deletes it exactly once either way).
    ///
    /// # Errors
    /// [`AggError::SpillCorrupt`] when verification failed,
    /// [`AggError::SpillFailed`] for unrecoverable plain I/O trouble —
    /// including an asynchronous *write* failure not yet surfaced
    /// elsewhere.
    pub fn into_run(self) -> Result<Run, AggError> {
        match self {
            RunHandle::Mem(run) => Ok(run),
            RunHandle::Spilled(store, spilled) => store.read(&spilled),
        }
    }
}

/// The run storage policy for one operator invocation.
///
/// `in_memory()` is the MemStore backend: every handle stays resident and
/// budget exhaustion remains a hard denial. `spilling_to(dir)` attaches a
/// shared [`FileStore`] so run producers can downgrade a denied
/// reservation into a spill instead of failing the query.
#[derive(Clone, Debug, Default)]
pub struct RunStore {
    file: Option<Arc<FileStore>>,
}

impl RunStore {
    /// Memory-only storage: no spill capability.
    pub fn in_memory() -> Self {
        Self { file: None }
    }

    /// Storage backed by a spill directory (created if missing), with no
    /// fault injection, no disk limit, and the default [`SpillConfig`].
    pub fn spilling_to(dir: impl Into<PathBuf>) -> Result<Self, AggError> {
        Ok(Self { file: Some(Arc::new(FileStore::new(dir)?)) })
    }

    /// Storage backed by a spill directory wired to an execution
    /// environment (fault injector + disk budget) with the default
    /// [`SpillConfig`]; see [`FileStore::with_env`].
    pub fn spilling_with(
        dir: impl Into<PathBuf>,
        faults: FaultInjector,
        disk: DiskBudget,
    ) -> Result<Self, AggError> {
        Ok(Self { file: Some(Arc::new(FileStore::with_env(dir, faults, disk)?)) })
    }

    /// Storage backed by a spill directory with an explicit
    /// [`SpillConfig`]; see [`FileStore::with_config`].
    pub fn spilling_with_config(
        dir: impl Into<PathBuf>,
        faults: FaultInjector,
        disk: DiskBudget,
        config: SpillConfig,
    ) -> Result<Self, AggError> {
        Ok(Self { file: Some(Arc::new(FileStore::with_config(dir, faults, disk, config)?)) })
    }

    /// True if a spill directory is configured.
    pub fn can_spill(&self) -> bool {
        self.file.is_some()
    }

    /// The backing file store, if any.
    pub fn file_store(&self) -> Option<&Arc<FileStore>> {
        self.file.as_ref()
    }

    /// The backing store's I/O robustness counters, if any.
    pub fn io_stats(&self) -> Option<StoreIoStats> {
        self.file.as_ref().map(|s| s.io_stats())
    }

    /// Surface any deferred asynchronous write error (see
    /// [`FileStore::drain`]); `Ok` for memory-only stores.
    pub fn drain(&self) -> Result<(), AggError> {
        self.file.as_ref().map_or(Ok(()), |s| s.drain())
    }

    /// Flush a run to the spill directory and return its handle. With an
    /// I/O pool this submits and continues — the run's memory is handed
    /// to the worker and freed there once written.
    ///
    /// # Errors
    /// [`AggError::DiskBudgetExceeded`] when the spill budget denies the
    /// file's bytes, [`AggError::SpillFailed`] for unrecoverable I/O
    /// (including a memory-only store, which cannot spill at all, and
    /// deferred failures of earlier asynchronous writes).
    pub fn spill(&self, run: Run) -> Result<RunHandle, AggError> {
        let Some(store) = &self.file else {
            return Err(AggError::SpillFailed {
                message: "no spill directory configured".to_string(),
            });
        };
        let spilled = store.write(run)?;
        Ok(RunHandle::Spilled(Arc::clone(store), spilled))
    }

    /// Flush a batch of runs into **one** shared spill file and return
    /// their handles in submission order; see [`FileStore::write_batch`]
    /// for the layout and failure semantics. Producers that flush many
    /// small runs at once (a sealed table's per-digit sub-runs) use this
    /// to pay one file creation per flush instead of one per run.
    ///
    /// # Errors
    /// As [`RunStore::spill`]; a batch fails or succeeds as a unit.
    pub fn spill_batch(&self, runs: Vec<Run>) -> Result<Vec<RunHandle>, AggError> {
        let Some(store) = &self.file else {
            return Err(AggError::SpillFailed {
                message: "no spill directory configured".to_string(),
            });
        };
        let spilled = store.write_batch(runs)?;
        Ok(spilled.into_iter().map(|s| RunHandle::Spilled(Arc::clone(store), s)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_fault::{FaultPlan, SpillFault};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hsa-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_run() -> Run {
        let mut run = Run::empty(3, 2, true);
        for i in 0..10_000u64 {
            run.keys.push(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            run.cols[0].push(i);
            run.cols[1].push(u64::MAX - i);
        }
        run.source_rows = 12_345;
        run
    }

    /// Sorted keys, constant + slowly varying columns: every extent
    /// should compress well under Auto.
    fn compressible_run(rows: u64) -> Run {
        let mut run = Run::empty(1, 2, false);
        for i in 0..rows {
            run.keys.push(i * 16);
            run.cols[0].push(42);
            run.cols[1].push(i / 100);
        }
        run.source_rows = rows;
        run
    }

    fn rows_of(run: &Run) -> (Vec<u64>, Vec<Vec<u64>>) {
        (run.keys.to_vec(), run.cols.iter().map(|c| c.to_vec()).collect())
    }

    fn injected(kind: SpillFaultKind, nth: u64) -> FaultInjector {
        FaultInjector::new(FaultPlan {
            spill_io: Some(SpillFault { nth, kind }),
            ..FaultPlan::none()
        })
    }

    fn cfg(codec: SpillCodec, io_threads: usize) -> SpillConfig {
        SpillConfig { codec, io_threads }
    }

    /// A store with synchronous in-line I/O: files are fully on disk the
    /// moment `spill` returns, which several tests below rely on.
    fn sync_store(dir: &Path) -> RunStore {
        RunStore::spilling_with_config(
            dir,
            FaultInjector::none(),
            DiskBudget::unlimited(),
            cfg(SpillCodec::Auto, 0),
        )
        .unwrap()
    }

    fn handle_path(handle: &RunHandle) -> PathBuf {
        match handle {
            RunHandle::Spilled(_, s) => s.path().to_path_buf(),
            RunHandle::Mem(_) => unreachable!("expected a spilled handle"),
        }
    }

    /// Block until `handle`'s in-flight I/O (if any) has settled,
    /// without consuming it — test-only window into the ticket.
    fn settle(handle: &RunHandle) {
        if let RunHandle::Spilled(_, s) = handle {
            let (guard, _) = s.ticket.wait_idle();
            drop(guard);
        }
    }

    #[test]
    fn spill_round_trip_preserves_rows_and_meta() {
        let dir = temp_dir("roundtrip");
        let store = RunStore::spilling_to(&dir).unwrap();
        let run = sample_run();
        let handle = store.spill(run.clone()).unwrap();
        assert!(handle.is_spilled());
        assert_eq!(handle.len(), run.len());
        assert_eq!(handle.level(), run.level);
        assert_eq!(handle.source_rows(), run.source_rows);
        assert!(handle.spilled_bytes() >= (run.len() as u64) * 8 * 3);
        let back = handle.into_run().unwrap();
        assert_eq!(back.keys.to_vec(), run.keys.to_vec());
        for (b, r) in back.cols.iter().zip(&run.cols) {
            assert_eq!(b.to_vec(), r.to_vec());
        }
        assert_eq!(back.aggregated, run.aggregated);
        assert_eq!(back.source_rows, run.source_rows);
        assert_eq!(back.level, run.level);
        store.drain().unwrap();
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_zero_column_runs_round_trip() {
        let dir = temp_dir("shapes");
        let store = RunStore::spilling_to(&dir).unwrap();
        for run in [Run::empty(0, 0, false), Run::empty(7, 4, true)] {
            let (n_cols, level, aggregated) = (run.n_cols(), run.level, run.aggregated);
            let back = store.spill(run).unwrap().into_run().unwrap();
            assert_eq!(back.len(), 0);
            assert_eq!(back.n_cols(), n_cols);
            assert_eq!(back.level, level);
            assert_eq!(back.aggregated, aggregated);
        }
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropping_a_handle_parks_the_scratch_file_for_reuse() {
        let dir = temp_dir("cleanup");
        let store = sync_store(&dir);
        let handle = store.spill(sample_run()).unwrap();
        let path = handle_path(&handle);
        assert!(fs::metadata(&path).unwrap().len() > 0);
        drop(handle);
        // Reclaim truncates the file into the reuse pool...
        assert_eq!(fs::metadata(&path).unwrap().len(), 0, "reclaimed file is parked empty");
        // ...the next spill picks it up instead of minting a new name...
        let next = store.spill(sample_run()).unwrap();
        assert_eq!(handle_path(&next), path, "next spill reuses the parked file");
        drop(next);
        // ...and dropping the store unlinks whatever is still parked.
        drop(store);
        assert!(!path.exists(), "parked files retire with the store");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_store_refuses_to_spill() {
        let store = RunStore::in_memory();
        assert!(!store.can_spill());
        let err = store.spill(sample_run()).unwrap_err();
        assert!(matches!(err, AggError::SpillFailed { .. }), "{err:?}");
        store.drain().unwrap();
    }

    #[test]
    fn mem_handles_are_transparent() {
        let run = sample_run();
        let (len, level) = (run.len(), run.level);
        let handle = RunHandle::Mem(run);
        assert!(!handle.is_spilled());
        assert_eq!(handle.spilled_bytes(), 0);
        assert_eq!(handle.len(), len);
        assert_eq!(handle.level(), level);
        handle.prefetch(); // no-op for resident runs
        assert_eq!(handle.into_run().unwrap().len(), len);
    }

    #[test]
    fn upper_bound_is_exact_uncompressed_and_loose_compressed() {
        let dir = temp_dir("sizes");
        // Codec Off: every extent is raw, so the upper bound is exact.
        let off = RunStore::spilling_with_config(
            &dir,
            FaultInjector::none(),
            DiskBudget::unlimited(),
            cfg(SpillCodec::Off, 0),
        )
        .unwrap();
        for rows in [0usize, 1, EXTENT_WORDS - 1, EXTENT_WORDS, EXTENT_WORDS + 1, 3 * EXTENT_WORDS]
        {
            let mut run = Run::empty(0, 1, false);
            for i in 0..rows as u64 {
                run.keys.push(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                run.cols[0].push(i.rotate_left(7) ^ 0xdead_beef);
            }
            let handle = off.spill(run).unwrap();
            let on_disk = fs::metadata(handle_path(&handle)).unwrap().len();
            assert_eq!(on_disk, handle.spilled_bytes(), "rows {rows}");
            assert_eq!(handle.into_run().unwrap().len(), rows);
        }
        drop(off);
        // Codec Auto on compressible data: strictly under the bound.
        let auto = sync_store(&dir);
        let run = compressible_run(3 * EXTENT_WORDS as u64);
        let handle = auto.spill(run.clone()).unwrap();
        let on_disk = fs::metadata(handle_path(&handle)).unwrap().len();
        assert!(
            on_disk < handle.spilled_bytes() / 2,
            "compressible run should shrink well below the {} byte bound, got {on_disk}",
            handle.spilled_bytes()
        );
        let stats = auto.io_stats().unwrap();
        assert_eq!(stats.logical_bytes, 3 * run.len() as u64 * 8);
        assert_eq!(stats.encoded_bytes, on_disk);
        assert_eq!(rows_of(&handle.into_run().unwrap()), rows_of(&run));
        drop(auto);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_budget_tracks_the_encoded_file_while_it_lives() {
        let dir = temp_dir("diskbudget");
        let disk = DiskBudget::limited(1 << 20);
        let store = RunStore::spilling_with_config(
            &dir,
            FaultInjector::none(),
            disk.clone(),
            cfg(SpillCodec::Auto, 0),
        )
        .unwrap();
        let handle = store.spill(compressible_run(10_000)).unwrap();
        let on_disk = fs::metadata(handle_path(&handle)).unwrap().len();
        assert_eq!(disk.outstanding(), on_disk, "reservation shrank to the encoded size");
        assert!(disk.outstanding() <= handle.spilled_bytes());
        assert!(disk.high_water() >= handle.spilled_bytes(), "peak saw the nominal reservation");
        let run = handle.into_run().unwrap();
        assert_eq!(disk.outstanding(), 0, "restore consumed the handle and released the bytes");
        drop(run);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_budget_denial_is_typed_and_leaves_no_file() {
        let dir = temp_dir("diskdenied");
        let disk = DiskBudget::limited(64);
        let store = RunStore::spilling_with(&dir, FaultInjector::none(), disk.clone()).unwrap();
        let err = store.spill(sample_run()).unwrap_err();
        assert!(matches!(err, AggError::DiskBudgetExceeded { .. }), "{err:?}");
        assert_eq!(disk.outstanding(), 0);
        assert_eq!(spill_files_in(&dir), 0);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    fn spill_files_in(dir: &Path) -> usize {
        fs::read_dir(dir)
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| e.file_name().to_str().is_some_and(|n| n.ends_with(".bin")))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Spill files still holding bytes — parked reuse-pool files are
    /// truncated to zero, so only live (or torn) files count here.
    fn live_spill_files_in(dir: &Path) -> usize {
        fs::read_dir(dir)
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| e.file_name().to_str().is_some_and(|n| n.ends_with(".bin")))
                    .filter(|e| e.metadata().map(|m| m.len() > 0).unwrap_or(true))
                    .count()
            })
            .unwrap_or(0)
    }

    #[cfg(not(miri))]
    #[test]
    fn transient_write_faults_retry_to_success() {
        for kind in [SpillFaultKind::WriteEio, SpillFaultKind::WriteShort] {
            let dir = temp_dir(&format!("retry-{kind:?}"));
            let store =
                RunStore::spilling_with(&dir, injected(kind, 1), DiskBudget::unlimited()).unwrap();
            let run = sample_run();
            let back = store.spill(run.clone()).unwrap().into_run().unwrap();
            assert_eq!(back.keys.to_vec(), run.keys.to_vec(), "{kind:?}");
            assert_eq!(back.cols[1].to_vec(), run.cols[1].to_vec(), "{kind:?}");
            let stats = store.io_stats().unwrap();
            assert_eq!(stats.spill_retries, 1, "{kind:?}");
            assert_eq!(stats.io_abandons, 0, "{kind:?}");
            store.drain().expect("retried write is not an error");
            drop(store);
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[cfg(not(miri))]
    #[test]
    fn enospc_write_fault_is_permanent_and_unlinks_the_partial_file() {
        let dir = temp_dir("enospc");
        let disk = DiskBudget::limited(1 << 20);
        let store =
            RunStore::spilling_with(&dir, injected(SpillFaultKind::WriteEnospc, 1), disk.clone())
                .unwrap();
        // Async store: the submission succeeds, the failure surfaces when
        // the handle is consumed.
        let handle = store.spill(sample_run()).unwrap();
        settle(&handle);
        assert_eq!(disk.outstanding(), 0, "failed write drains the budget while in flight");
        let err = handle.into_run().unwrap_err();
        assert!(matches!(err, AggError::SpillFailed { .. }), "{err:?}");
        assert!(err.to_string().contains("os error 28"), "{err}");
        assert_eq!(live_spill_files_in(&dir), 0, "partial file must be truncated");
        let stats = store.io_stats().unwrap();
        assert_eq!(stats.io_abandons, 1);
        assert_eq!(stats.spill_retries, 0);
        drop(store);
        assert_eq!(spill_files_in(&dir), 0, "parked files retire with the store");
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(not(miri))]
    #[test]
    fn async_write_failure_surfaces_at_the_next_submission_and_at_drain() {
        let dir = temp_dir("asyncfail");
        let disk = DiskBudget::limited(1 << 20);
        let store =
            RunStore::spilling_with(&dir, injected(SpillFaultKind::WriteEnospc, 1), disk.clone())
                .unwrap();
        let doomed = store.spill(sample_run()).unwrap();
        settle(&doomed);
        // The *next* submission reports the earlier failure...
        let err = store.spill(compressible_run(64)).unwrap_err();
        assert!(matches!(err, AggError::SpillFailed { .. }), "{err:?}");
        assert!(err.to_string().contains("os error 28"), "{err}");
        // ...after which the slot is clear and spilling works again.
        store.drain().unwrap();
        let ok = store.spill(compressible_run(64)).unwrap();
        assert_eq!(ok.into_run().unwrap().len(), 64);
        // The doomed handle still reports its own failure on consumption.
        assert!(doomed.into_run().is_err());
        assert_eq!(disk.outstanding(), 0);
        drop(store);
        assert_eq!(spill_files_in(&dir), 0, "no leaked scratch after an async failure");
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(not(miri))]
    #[test]
    fn transient_read_fault_retries_to_success() {
        let dir = temp_dir("readretry");
        let store = RunStore::spilling_with(
            &dir,
            injected(SpillFaultKind::ReadEio, 1),
            DiskBudget::unlimited(),
        )
        .unwrap();
        let run = sample_run();
        let back = store.spill(run.clone()).unwrap().into_run().unwrap();
        assert_eq!(back.keys.to_vec(), run.keys.to_vec());
        let stats = store.io_stats().unwrap();
        assert_eq!(stats.restore_retries, 1);
        assert_eq!(stats.io_abandons, 0);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(not(miri))]
    #[test]
    fn bit_flip_on_read_surfaces_as_extent_crc_corruption() {
        let dir = temp_dir("bitflip");
        let store = RunStore::spilling_with(
            &dir,
            injected(SpillFaultKind::ReadBitFlip, 1),
            DiskBudget::unlimited(),
        )
        .unwrap();
        let err = store.spill(sample_run()).unwrap().into_run().unwrap_err();
        match err {
            AggError::SpillCorrupt { what, extent, .. } => {
                assert_eq!(what, "extent crc");
                assert_eq!(extent, 0, "the flip lands in the first extent");
            }
            other => panic!("expected SpillCorrupt, got {other:?}"),
        }
        assert_eq!(live_spill_files_in(&dir), 0, "failed restore still reclaims the file");
        drop(store);
        assert_eq!(spill_files_in(&dir), 0, "parked files retire with the store");
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(not(miri))]
    #[test]
    fn bit_flip_in_a_compressed_extent_is_still_detected() {
        let dir = temp_dir("bitflip-comp");
        let store = RunStore::spilling_with(
            &dir,
            injected(SpillFaultKind::ReadBitFlip, 1),
            DiskBudget::unlimited(),
        )
        .unwrap();
        // Every extent of this run compresses (delta/RLE), so the flip
        // necessarily lands in an encoded payload.
        let err = store.spill(compressible_run(10_000)).unwrap().into_run().unwrap_err();
        match err {
            AggError::SpillCorrupt { what, extent, .. } => {
                assert_eq!(what, "extent crc", "CRC over encoded bytes catches the flip");
                assert_eq!(extent, 0);
            }
            other => panic!("expected SpillCorrupt, got {other:?}"),
        }
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(not(miri))]
    #[test]
    fn truncate_on_read_surfaces_as_corruption() {
        let dir = temp_dir("truncate");
        let store = RunStore::spilling_with(
            &dir,
            injected(SpillFaultKind::ReadTruncate, 1),
            DiskBudget::unlimited(),
        )
        .unwrap();
        let err = store.spill(sample_run()).unwrap().into_run().unwrap_err();
        match err {
            AggError::SpillCorrupt { what, .. } => assert_eq!(what, "truncated"),
            other => panic!("expected SpillCorrupt, got {other:?}"),
        }
        assert_eq!(live_spill_files_in(&dir), 0);
        drop(store);
        assert_eq!(spill_files_in(&dir), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    /// The acceptance-criteria invariant: for every codec and thread
    /// count, spilled-and-restored rows are bit-identical to the
    /// synchronous uncompressed path.
    #[cfg(not(miri))]
    #[test]
    fn every_codec_and_thread_count_round_trips_bit_identically() {
        let runs =
            [sample_run(), compressible_run(2 * EXTENT_WORDS as u64 + 17), Run::empty(2, 1, true)];
        let expected: Vec<_> = runs.iter().map(rows_of).collect();
        for codec in [SpillCodec::Auto, SpillCodec::Delta, SpillCodec::Rle, SpillCodec::Off] {
            for io_threads in [0usize, 1, 2] {
                let dir = temp_dir(&format!("matrix-{codec}-{io_threads}"));
                let store = RunStore::spilling_with_config(
                    &dir,
                    FaultInjector::none(),
                    DiskBudget::unlimited(),
                    cfg(codec, io_threads),
                )
                .unwrap();
                let handles: Vec<_> =
                    runs.iter().map(|r| store.spill(r.clone()).unwrap()).collect();
                for h in &handles {
                    h.prefetch();
                }
                for (h, want) in handles.into_iter().zip(&expected) {
                    let got = rows_of(&h.into_run().unwrap());
                    assert_eq!(&got, want, "codec {codec} io_threads {io_threads}");
                }
                store.drain().unwrap();
                drop(store);
                let _ = fs::remove_dir_all(&dir);
            }
        }
    }

    #[cfg(not(miri))]
    #[test]
    fn prefetch_parks_rows_and_counts_background_nanos() {
        let dir = temp_dir("prefetch");
        let store = RunStore::spilling_to(&dir).unwrap();
        let run = sample_run();
        // Prefetch requested while the write may still be in flight:
        // the worker chains the read.
        let chained = store.spill(run.clone()).unwrap();
        chained.prefetch();
        assert_eq!(rows_of(&chained.into_run().unwrap()), rows_of(&run));
        // Prefetch on a settled handle: a standalone read job.
        let settled = store.spill(run.clone()).unwrap();
        settle(&settled);
        settled.prefetch();
        settled.prefetch(); // idempotent
        assert_eq!(rows_of(&settled.into_run().unwrap()), rows_of(&run));
        let stats = store.io_stats().unwrap();
        assert!(stats.async_io_nanos > 0, "worker time was recorded: {stats:?}");
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(not(miri))]
    #[test]
    fn concurrent_spills_and_prefetches_from_many_threads_round_trip() {
        let dir = temp_dir("mt");
        let store = RunStore::spilling_with_config(
            &dir,
            FaultInjector::none(),
            DiskBudget::unlimited(),
            cfg(SpillCodec::Auto, 2),
        )
        .unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let store = store.clone();
                scope.spawn(move || {
                    for i in 0..8u64 {
                        let run = compressible_run(1000 + t * 97 + i);
                        let want = rows_of(&run);
                        let handle = store.spill(run).unwrap();
                        if i % 2 == 0 {
                            handle.prefetch();
                        }
                        assert_eq!(rows_of(&handle.into_run().unwrap()), want);
                    }
                });
            }
        });
        store.drain().unwrap();
        drop(store);
        assert_eq!(spill_files_in(&dir), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(not(miri))]
    #[test]
    fn orphan_sweep_reclaims_files_of_dead_pids_and_spares_the_living() {
        let dir = temp_dir("sweep");
        fs::create_dir_all(&dir).unwrap();
        // A dead process: spill file present, no lock file (or, on Linux,
        // a lock whose pid does not exist — covered below).
        let dead = dir.join("hsarun-999999999-00000001.bin");
        fs::write(&dead, vec![0u8; 256]).unwrap();
        // Our own files are never swept, lock or not.
        let mine = dir.join(format!("hsarun-{}-99999999.bin", std::process::id()));
        fs::write(&mine, b"mine").unwrap();
        // Unrelated names are left alone.
        let other = dir.join("run-00000000.bin");
        fs::write(&other, b"legacy").unwrap();

        let store = FileStore::new(&dir).unwrap();
        let stats = store.io_stats();
        assert_eq!(stats.reclaimed_files, 1, "exactly the dead pid's file");
        assert_eq!(stats.reclaimed_bytes, 256);
        assert!(!dead.exists());
        assert!(mine.exists());
        assert!(other.exists());
        drop(store);
        assert!(
            !dir.join(lock_name(std::process::id())).exists(),
            "clean drop retires the lock file"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(all(not(miri), target_os = "linux"))]
    #[test]
    fn orphan_sweep_uses_proc_liveness_to_break_lock_ties() {
        let dir = temp_dir("sweep-proc");
        fs::create_dir_all(&dir).unwrap();
        // A crashed process left both its lock and a spill file; the pid
        // is not alive, so both must go.
        let pid = 999_999_998u32;
        fs::write(dir.join(lock_name(pid)), pid.to_string()).unwrap();
        let stale = dir.join(format!("hsarun-{pid}-00000003.bin"));
        fs::write(&stale, vec![1u8; 64]).unwrap();
        // Pid 1 is always alive on Linux: lock + file survive.
        fs::write(dir.join(lock_name(1)), "1").unwrap();
        let live = dir.join("hsarun-1-00000000.bin");
        fs::write(&live, b"live").unwrap();

        let store = FileStore::new(&dir).unwrap();
        assert_eq!(store.io_stats().reclaimed_files, 1);
        assert!(!stale.exists());
        assert!(!dir.join(lock_name(pid)).exists(), "stale lock swept too");
        assert!(live.exists(), "files of live processes are spared");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_name_parsing() {
        assert_eq!(parse_spill_name("hsarun-123-00000007.bin"), Some((123, false)));
        assert_eq!(parse_spill_name("hsarun-123.lock"), Some((123, true)));
        assert_eq!(parse_spill_name("run-00000007.bin"), None);
        assert_eq!(parse_spill_name("hsarun-x-00000007.bin"), None);
        assert_eq!(parse_spill_name("hsarun-123-7.tmp"), None);
    }
}
