//! Spillable run storage — the `RunStore` / `RunHandle` abstraction.
//!
//! The paper's framework is phrased over *runs* that need not fit in RAM
//! (§2's external-memory cost analysis treats hashing and sorting as the
//! same sequence of sequential run transfers). This module gives runs a
//! storage identity separate from their data: every sealed run, partition
//! output, and leftover-table flush travels as a [`RunHandle`] that is
//! either resident ([`RunHandle::Mem`]) or flushed to a spill file
//! ([`RunHandle::Spilled`]). Consumers call [`RunHandle::into_run`] to get
//! the rows back; a spilled run's file is deleted when its handle drops.
//!
//! Two backends, std-only:
//!
//! * **MemStore** — the degenerate store: handles wrap the run directly.
//!   [`RunStore::in_memory`] models it as "no file store configured".
//! * **[`FileStore`]** — a spill directory. Runs are written once,
//!   sequentially, column extent by column extent (key column first, then
//!   each state column), and read back the same way in bounded extents, so
//!   spill I/O is always bucket-sized sequential transfers — never random
//!   access.
//!
//! # File format (`HSARUN02`)
//!
//! ```text
//! header   6 LE u64 words: magic, rows, n_cols, aggregated, source_rows, level
//! columns  1 + n_cols columns (keys first), each split into extents of
//!          up to EXTENT_WORDS words; every extent is followed by one
//!          trailer word: low 32 bits CRC32C of the payload bytes, high
//!          32 bits the extent's word count
//! footer   4 LE u64 words: extent count, total bytes before the footer,
//!          CRC32C of every byte before the footer, magic again
//! ```
//!
//! Every restore re-verifies all of it: magic, shape, each extent's CRC
//! and word count, and the footer's counts and whole-file checksum — so
//! corruption, truncation, and torn writes surface as a typed
//! `AggError::SpillCorrupt`, never as silently wrong rows. Restored runs
//! are therefore *verifiably* the runs that were sealed.
//!
//! # Durability behaviour
//!
//! Writes reserve their exact file size against the store's
//! [`DiskBudget`] first (the reservation rides the [`SpilledRun`] and is
//! released when the scratch file is deleted), transient I/O errors are
//! retried from scratch under a clockless bounded [`RetryPolicy`] with
//! partial files unlinked on every failure path, and `FileStore::new`
//! sweeps the directory for spill files orphaned by dead processes
//! (liveness via a per-pid lock file, plus `/proc` on Linux).

use crate::chunked::ChunkedVec;
use crate::crc::{crc32c, Crc32c};
use crate::run::Run;
use hsa_fault::{
    AggError, DiskBudget, DiskReservation, FaultInjector, RetryPolicy, SpillFaultKind,
};
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// File magic: "HSARUN02" as a little-endian u64. Version 2 added the
/// per-extent CRC trailers and the sealed footer; v1 (`HSARUN01`) files
/// are not readable (spill files are process-private scratch, so the
/// break only invalidates files a crashed v1 process left behind — the
/// orphan sweep removes those wholesale).
const MAGIC: u64 = u64::from_le_bytes(*b"HSARUN02");

/// Header length in bytes (6 words).
const HEADER_BYTES: u64 = 48;
/// Footer length in bytes (4 words).
const FOOTER_BYTES: u64 = 32;

/// Spill files are `hsarun-<pid>-<seq>.bin`; the pid makes files
/// attributable to their writing process so the orphan sweep can reclaim
/// scratch left behind by a crash.
const SPILL_PREFIX: &str = "hsarun-";

/// Words per read/write extent (64 KiB): large enough that spill I/O is
/// sequential-bandwidth bound, small enough that a restore never needs a
/// row-count-sized transient buffer.
#[cfg(not(miri))]
pub const EXTENT_WORDS: usize = 8192;
/// Under Miri a tiny extent keeps the boundary-straddling round-trip
/// property tests affordable while exercising the same chunking logic.
#[cfg(miri)]
pub const EXTENT_WORDS: usize = 16;

/// I/O robustness counters of one [`FileStore`] (see
/// [`FileStore::io_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreIoStats {
    /// Spill writes re-attempted after a transient I/O error.
    pub spill_retries: u64,
    /// Restores re-attempted after a transient I/O error.
    pub restore_retries: u64,
    /// Spill operations abandoned: a permanent error, or retries
    /// exhausted.
    pub io_abandons: u64,
    /// Orphaned spill files reclaimed by the startup sweep.
    pub reclaimed_files: u64,
    /// Bytes those reclaimed files occupied.
    pub reclaimed_bytes: u64,
    /// Wall time the startup sweep took, in nanoseconds.
    pub reclaim_nanos: u64,
}

/// A spill directory that materializes runs as per-process numbered
/// scratch files.
///
/// Cloneable via `Arc`; the sequence counter makes concurrent spills from
/// many workers race-free without any locking.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    pid: u32,
    seq: AtomicU64,
    faults: FaultInjector,
    disk: DiskBudget,
    retry: RetryPolicy,
    spill_retries: AtomicU64,
    restore_retries: AtomicU64,
    io_abandons: AtomicU64,
    reclaimed_files: u64,
    reclaimed_bytes: u64,
    reclaim_nanos: u64,
}

impl FileStore {
    /// Open (creating if needed) a spill directory with no fault
    /// injection and no disk limit.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, AggError> {
        Self::with_env(dir, FaultInjector::none(), DiskBudget::unlimited())
    }

    /// Open a spill directory wired to an execution environment: spill
    /// writes reserve against `disk`, storage-level faults come from
    /// `faults`, and the directory is swept for scratch files orphaned by
    /// dead processes before any new file is written.
    pub fn with_env(
        dir: impl Into<PathBuf>,
        faults: FaultInjector,
        disk: DiskBudget,
    ) -> Result<Self, AggError> {
        let dir = dir.into();
        let fail =
            |e: io::Error| AggError::SpillFailed { message: format!("{}: {e}", dir.display()) };
        fs::create_dir_all(&dir).map_err(fail)?;
        let pid = std::process::id();
        // The lock file marks this process as live so concurrent sweeps
        // by sibling processes leave our scratch alone. Removed on drop;
        // a crash leaves it behind, and the next sweep pairs it with a
        // liveness check before reclaiming.
        fs::write(dir.join(lock_name(pid)), pid.to_string()).map_err(fail)?;
        let t0 = Instant::now();
        let (reclaimed_files, reclaimed_bytes) = sweep_orphans(&dir, pid);
        Ok(Self {
            dir,
            pid,
            seq: AtomicU64::new(0),
            faults,
            disk,
            retry: RetryPolicy::default(),
            spill_retries: AtomicU64::new(0),
            restore_retries: AtomicU64::new(0),
            io_abandons: AtomicU64::new(0),
            reclaimed_files,
            reclaimed_bytes,
            reclaim_nanos: t0.elapsed().as_nanos() as u64,
        })
    }

    /// The directory spill files are written to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// This store's I/O robustness counters (retries, abandons, orphan
    /// reclamation). Monotonic over the store's lifetime.
    pub fn io_stats(&self) -> StoreIoStats {
        StoreIoStats {
            // ORDERING: Relaxed — monotonic statistics counters read after
            // the operations they count; nothing is published through them.
            spill_retries: self.spill_retries.load(Ordering::Relaxed),
            restore_retries: self.restore_retries.load(Ordering::Relaxed),
            io_abandons: self.io_abandons.load(Ordering::Relaxed),
            reclaimed_files: self.reclaimed_files,
            reclaimed_bytes: self.reclaimed_bytes,
            reclaim_nanos: self.reclaim_nanos,
        }
    }

    /// The disk budget spill writes reserve against.
    pub fn disk_budget(&self) -> &DiskBudget {
        &self.disk
    }

    /// Exact on-disk size of `run`'s spill file, in bytes.
    fn file_size(run: &Run) -> u64 {
        let rows = run.len() as u64;
        let columns = 1 + run.n_cols() as u64;
        let extents_per_col = rows.div_ceil(EXTENT_WORDS as u64);
        HEADER_BYTES + columns * rows * 8 + columns * extents_per_col * 8 + FOOTER_BYTES
    }

    /// Write a run to a fresh spill file and return the handle metadata.
    ///
    /// The write reserves the file's exact size against the disk budget,
    /// then performs a single sequential pass: header, key extents, state
    /// column extents, footer. Transient I/O errors are retried from
    /// scratch (bounded, clockless backoff); the partial file is unlinked
    /// on *every* failure path, so an erroring write never leaks scratch.
    /// The returned [`SpilledRun`] owns the file and its disk
    /// reservation; dropping it deletes the file and releases the bytes.
    pub fn write(&self, run: &Run) -> Result<SpilledRun, AggError> {
        let total = Self::file_size(run);
        let reservation = self.disk.try_reserve(total)?;
        // ORDERING: Relaxed — the RMW's atomicity alone makes sequence
        // numbers unique; no other memory rides on the counter.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("{SPILL_PREFIX}{}-{seq:08}.bin", self.pid));
        // One storage-level fault ordinal per logical write operation:
        // the injected misbehaviour hits the first attempt only, so a
        // transient flavor exercises exactly one retry.
        let injected = self.faults.spill_write_fault();
        let mut attempt = 0u32;
        loop {
            let inject = if attempt == 0 { injected } else { None };
            match self.write_attempt(&path, run, total, inject) {
                Ok(()) => {
                    return Ok(SpilledRun {
                        path,
                        rows: run.len(),
                        n_cols: run.n_cols(),
                        aggregated: run.aggregated,
                        source_rows: run.source_rows,
                        level: run.level,
                        bytes: total,
                        _reservation: reservation,
                    });
                }
                Err(e) => {
                    // A failed attempt must not leave a torn file behind.
                    let _ = fs::remove_file(&path);
                    if self.retry.should_retry(attempt, &e) {
                        // ORDERING: Relaxed — statistics counter.
                        self.spill_retries.fetch_add(1, Ordering::Relaxed);
                        self.retry.backoff(attempt);
                        attempt += 1;
                    } else {
                        // ORDERING: Relaxed — statistics counter.
                        self.io_abandons.fetch_add(1, Ordering::Relaxed);
                        return Err(AggError::SpillFailed {
                            message: format!("{}: {e}", path.display()),
                        });
                    }
                }
            }
        }
    }

    /// One full-file write attempt. `inject` simulates the requested
    /// storage fault partway through the byte stream.
    fn write_attempt(
        &self,
        path: &Path,
        run: &Run,
        total: u64,
        inject: Option<SpillFaultKind>,
    ) -> io::Result<()> {
        let file = File::create(path)?;
        let mut w = SpillWriter {
            inner: BufWriter::new(file),
            crc: Crc32c::new(),
            bytes: 0,
            // Fail mid-stream so partial-file handling is exercised.
            fail: inject.map(|k| (total / 2, k)),
        };
        let header = [
            MAGIC,
            run.len() as u64,
            run.n_cols() as u64,
            run.aggregated as u64,
            run.source_rows,
            run.level as u64,
        ];
        for word in header {
            w.write_word(word)?;
        }
        let mut extents = write_column(&mut w, &run.keys)?;
        for col in &run.cols {
            extents += write_column(&mut w, col)?;
        }
        let body_bytes = w.bytes;
        let file_crc = w.crc.finalize() as u64;
        w.write_word(extents)?;
        w.write_word(body_bytes)?;
        w.write_word(file_crc)?;
        w.write_word(MAGIC)?;
        debug_assert_eq!(w.bytes, total, "file size formula out of sync with writer");
        w.inner.flush()
    }

    /// Read a spilled run back into memory (sequential, extent by
    /// extent), verifying magic, shape, every extent's CRC, and the
    /// footer. Transient I/O errors retry; verification failures are
    /// permanent and surface as [`AggError::SpillCorrupt`].
    fn read(&self, spilled: &SpilledRun) -> Result<Run, AggError> {
        // One fault ordinal per logical restore; first attempt only.
        let injected = self.faults.spill_read_fault();
        if injected == Some(SpillFaultKind::ReadTruncate) {
            truncate_in_place(&spilled.path);
        }
        let mut attempt = 0u32;
        loop {
            let inject = if attempt == 0 { injected } else { None };
            match self.read_attempt(spilled, inject) {
                Ok(run) => return Ok(run),
                Err(ReadError::Corrupt { extent, expected, actual, what }) => {
                    // ORDERING: Relaxed — statistics counter.
                    self.io_abandons.fetch_add(1, Ordering::Relaxed);
                    return Err(AggError::SpillCorrupt {
                        path: spilled.path.display().to_string(),
                        extent,
                        expected,
                        actual,
                        what: what.to_string(),
                    });
                }
                Err(ReadError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => {
                    // ORDERING: Relaxed — statistics counter.
                    self.io_abandons.fetch_add(1, Ordering::Relaxed);
                    let actual = fs::metadata(&spilled.path).map(|m| m.len()).unwrap_or(0);
                    return Err(AggError::SpillCorrupt {
                        path: spilled.path.display().to_string(),
                        extent: u64::MAX,
                        expected: spilled.bytes,
                        actual,
                        what: "truncated".to_string(),
                    });
                }
                Err(ReadError::Io(e)) => {
                    if self.retry.should_retry(attempt, &e) {
                        // ORDERING: Relaxed — statistics counter.
                        self.restore_retries.fetch_add(1, Ordering::Relaxed);
                        self.retry.backoff(attempt);
                        attempt += 1;
                    } else {
                        // ORDERING: Relaxed — statistics counter.
                        self.io_abandons.fetch_add(1, Ordering::Relaxed);
                        return Err(AggError::SpillFailed {
                            message: format!("{}: {e}", spilled.path.display()),
                        });
                    }
                }
            }
        }
    }

    /// One full-file verified read attempt.
    fn read_attempt(
        &self,
        spilled: &SpilledRun,
        inject: Option<SpillFaultKind>,
    ) -> Result<Run, ReadError> {
        if inject == Some(SpillFaultKind::ReadEio) {
            return Err(ReadError::Io(io::Error::from_raw_os_error(5)));
        }
        let mut flip_pending = inject == Some(SpillFaultKind::ReadBitFlip);
        let file = File::open(&spilled.path).map_err(ReadError::Io)?;
        let mut r = SpillReader { inner: BufReader::new(file), crc: Crc32c::new(), bytes: 0 };
        let mut header = [0u64; 6];
        for word in header.iter_mut() {
            *word = r.read_word()?;
        }
        if header[0] != MAGIC {
            return Err(corrupt(u64::MAX, MAGIC, header[0], "magic"));
        }
        let rows = header[1] as usize;
        let n_cols = header[2] as usize;
        if rows != spilled.rows {
            return Err(corrupt(u64::MAX, spilled.rows as u64, rows as u64, "shape"));
        }
        if n_cols != spilled.n_cols {
            return Err(corrupt(u64::MAX, spilled.n_cols as u64, n_cols as u64, "shape"));
        }
        let mut extent = 0u64;
        let keys = read_column(&mut r, rows, &mut extent, &mut flip_pending)?;
        let mut cols = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            cols.push(read_column(&mut r, rows, &mut extent, &mut flip_pending)?);
        }
        let body_bytes = r.bytes;
        let mut file_crc = r.crc.finalize() as u64;
        if flip_pending {
            // A zero-extent file gave the injected bit flip no payload to
            // land in; corrupt the whole-file checksum instead so the
            // injection still proves the footer check fires.
            file_crc ^= 1;
        }
        let footer =
            [r.read_raw_word()?, r.read_raw_word()?, r.read_raw_word()?, r.read_raw_word()?];
        if footer[3] != MAGIC {
            return Err(corrupt(u64::MAX, MAGIC, footer[3], "footer magic"));
        }
        if footer[0] != extent {
            return Err(corrupt(u64::MAX, footer[0], extent, "extent count"));
        }
        if footer[1] != body_bytes {
            return Err(corrupt(u64::MAX, footer[1], body_bytes, "byte count"));
        }
        if footer[2] != file_crc {
            return Err(corrupt(u64::MAX, footer[2], file_crc, "file crc"));
        }
        Ok(Run {
            keys,
            cols,
            aggregated: header[3] != 0,
            source_rows: header[4],
            level: header[5] as u32,
        })
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        // A clean shutdown retires this process's liveness marker so a
        // later sweep can reclaim anything it failed to delete. Crashes
        // skip this — that is exactly the case the sweep's pid liveness
        // check covers.
        let _ = fs::remove_file(self.dir.join(lock_name(self.pid)));
    }
}

fn lock_name(pid: u32) -> String {
    format!("{SPILL_PREFIX}{pid}.lock")
}

/// Parse `hsarun-<pid>-<seq>.bin` / `hsarun-<pid>.lock` names into
/// `(pid, is_lock)`.
fn parse_spill_name(name: &str) -> Option<(u32, bool)> {
    let rest = name.strip_prefix(SPILL_PREFIX)?;
    if let Some(pid) = rest.strip_suffix(".lock") {
        return pid.parse().ok().map(|p| (p, true));
    }
    let stem = rest.strip_suffix(".bin")?;
    let (pid, _seq) = stem.split_once('-')?;
    pid.parse().ok().map(|p| (p, false))
}

/// Whether `pid` belongs to a live process. The lock file is the primary
/// signal; on Linux `/proc` breaks the tie for locks a crashed process
/// left behind. Elsewhere a present lock is trusted (conservative: a
/// crash that kept its lock leaks until a Linux sweep or manual cleanup).
fn pid_alive(dir: &Path, pid: u32) -> bool {
    if !dir.join(lock_name(pid)).exists() {
        return false;
    }
    if cfg!(target_os = "linux") {
        return Path::new(&format!("/proc/{pid}")).exists();
    }
    true
}

/// Remove spill files (and stale locks) of dead processes. Returns
/// `(files, bytes)` reclaimed; best-effort — an unreadable directory
/// reclaims nothing rather than failing the query.
fn sweep_orphans(dir: &Path, self_pid: u32) -> (u64, u64) {
    let Ok(entries) = fs::read_dir(dir) else { return (0, 0) };
    let mut files = 0u64;
    let mut bytes = 0u64;
    let mut stale_locks = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some((pid, is_lock)) = parse_spill_name(name) else { continue };
        if pid == self_pid || pid_alive(dir, pid) {
            continue;
        }
        if is_lock {
            // Locks go last: removing one mid-sweep would flip the
            // liveness verdict for that pid's remaining files.
            stale_locks.push(entry.path());
        } else {
            let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
            if fs::remove_file(entry.path()).is_ok() {
                files += 1;
                bytes += len;
            }
        }
    }
    for lock in stale_locks {
        let _ = fs::remove_file(lock);
    }
    (files, bytes)
}

/// Truncate `path` to half its length in place (the `ReadTruncate`
/// injection: simulates a torn write discovered at restore time).
fn truncate_in_place(path: &Path) {
    if let Ok(meta) = fs::metadata(path) {
        if let Ok(file) = fs::OpenOptions::new().write(true).open(path) {
            let _ = file.set_len(meta.len() / 2);
        }
    }
}

fn corrupt(extent: u64, expected: u64, actual: u64, what: &'static str) -> ReadError {
    ReadError::Corrupt { extent, expected, actual, what }
}

/// Why a read attempt failed: plain I/O (maybe transient, retried) or a
/// verification mismatch (permanent).
enum ReadError {
    Io(io::Error),
    Corrupt { extent: u64, expected: u64, actual: u64, what: &'static str },
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Byte sink that maintains the rolling whole-file CRC and byte count,
/// and can simulate an injected failure partway through the stream.
struct SpillWriter<W: Write> {
    inner: W,
    crc: Crc32c,
    bytes: u64,
    /// Injected fault: once the stream reaches this byte offset, write
    /// only up to it and fail with the kind's error.
    fail: Option<(u64, SpillFaultKind)>,
}

impl<W: Write> SpillWriter<W> {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        if let Some((cap, kind)) = self.fail {
            if self.bytes + buf.len() as u64 > cap {
                // Torn write: a prefix reaches the file, then the error.
                let keep = (cap.saturating_sub(self.bytes)) as usize;
                let _ = self.inner.write_all(&buf[..keep]);
                let _ = self.inner.flush();
                self.bytes += keep as u64;
                return Err(injected_io_error(kind));
            }
        }
        self.inner.write_all(buf)?;
        self.crc.update(buf);
        self.bytes += buf.len() as u64;
        Ok(())
    }

    fn write_word(&mut self, word: u64) -> io::Result<()> {
        self.write_all(&word.to_le_bytes())
    }
}

fn injected_io_error(kind: SpillFaultKind) -> io::Error {
    match kind {
        // EIO by raw code so the taxonomy classifies it transient.
        SpillFaultKind::WriteEio | SpillFaultKind::ReadEio => io::Error::from_raw_os_error(5),
        SpillFaultKind::WriteShort => {
            io::Error::new(io::ErrorKind::Interrupted, "injected fault: short write")
        }
        // ENOSPC by raw code: permanent.
        SpillFaultKind::WriteEnospc => io::Error::from_raw_os_error(28),
        SpillFaultKind::ReadBitFlip | SpillFaultKind::ReadTruncate => {
            io::Error::new(io::ErrorKind::InvalidData, "injected fault: corruption")
        }
    }
}

/// Byte source mirroring [`SpillWriter`]: rolling CRC + byte count over
/// everything read through it (the footer bypasses via `read_raw_word`).
struct SpillReader<R: Read> {
    inner: R,
    crc: Crc32c,
    bytes: u64,
}

impl<R: Read> SpillReader<R> {
    fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_exact(buf)?;
        self.crc.update(buf);
        self.bytes += buf.len() as u64;
        Ok(())
    }

    fn read_word(&mut self) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        self.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Read a word without feeding the rolling checksum (footer words —
    /// the file CRC cannot cover itself).
    fn read_raw_word(&mut self) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        self.inner.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }
}

/// Write one column as fixed-size extents (the last may be short), each
/// followed by its CRC/word-count trailer. Returns the extent count.
fn write_column<W: Write>(w: &mut SpillWriter<W>, col: &ChunkedVec<u64>) -> io::Result<u64> {
    let mut extents = 0u64;
    let mut buf: Vec<u8> = Vec::with_capacity(EXTENT_WORDS.min(col.len()).max(1) * 8);
    // Extent boundaries are fixed at EXTENT_WORDS regardless of the
    // ChunkedVec's internal chunk boundaries: writer and reader must
    // agree on them for the per-extent CRCs to line up.
    for chunk in col.chunks() {
        let mut rest = chunk;
        while !rest.is_empty() {
            let room = EXTENT_WORDS - buf.len() / 8;
            let take = room.min(rest.len());
            for v in &rest[..take] {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            rest = &rest[take..];
            if buf.len() == EXTENT_WORDS * 8 {
                flush_extent(w, &mut buf, &mut extents)?;
            }
        }
    }
    if !buf.is_empty() {
        flush_extent(w, &mut buf, &mut extents)?;
    }
    Ok(extents)
}

fn flush_extent<W: Write>(
    w: &mut SpillWriter<W>,
    buf: &mut Vec<u8>,
    extents: &mut u64,
) -> io::Result<()> {
    let trailer = crc32c(buf) as u64 | (((buf.len() / 8) as u64) << 32);
    w.write_all(buf)?;
    w.write_word(trailer)?;
    buf.clear();
    *extents += 1;
    Ok(())
}

/// Read one column back, verifying each extent's CRC and word count.
/// `extent` is the running global extent ordinal (for error reports);
/// `flip_pending` injects a single payload bit flip when set.
fn read_column<R: Read>(
    r: &mut SpillReader<R>,
    rows: usize,
    extent: &mut u64,
    flip_pending: &mut bool,
) -> Result<ChunkedVec<u64>, ReadError> {
    let mut out = ChunkedVec::new();
    let mut remaining = rows;
    let mut buf = vec![0u8; EXTENT_WORDS.min(rows.max(1)) * 8];
    let mut words = vec![0u64; EXTENT_WORDS.min(rows.max(1))];
    while remaining > 0 {
        let n = remaining.min(EXTENT_WORDS);
        r.read_exact(&mut buf[..n * 8])?;
        if *flip_pending {
            // The rolling file CRC already consumed the true bytes; the
            // flip lands in the payload about to be CRC-checked, proving
            // the extent checksum is what catches it.
            buf[0] ^= 1;
            *flip_pending = false;
        }
        let trailer = r.read_word()?;
        let stored_crc = trailer & 0xffff_ffff;
        let stored_words = trailer >> 32;
        if stored_words != n as u64 {
            return Err(corrupt(*extent, stored_words, n as u64, "extent words"));
        }
        let actual_crc = crc32c(&buf[..n * 8]) as u64;
        if stored_crc != actual_crc {
            return Err(corrupt(*extent, stored_crc, actual_crc, "extent crc"));
        }
        for (i, w) in words[..n].iter_mut().enumerate() {
            let mut le = [0u8; 8];
            le.copy_from_slice(&buf[i * 8..i * 8 + 8]);
            *w = u64::from_le_bytes(le);
        }
        out.extend_from_slice(&words[..n]);
        remaining -= n;
        *extent += 1;
    }
    Ok(out)
}

/// A run that lives in a spill file rather than in memory.
///
/// Carries the metadata the driver needs to schedule the run without
/// touching disk (row count, level, aggregation flag). Owns its file
/// *and* its disk-budget reservation: dropping the handle deletes the
/// scratch file and releases the reserved bytes — exactly once, on every
/// path, including a restore that errored mid-read.
#[derive(Debug)]
pub struct SpilledRun {
    path: PathBuf,
    rows: usize,
    n_cols: usize,
    aggregated: bool,
    source_rows: u64,
    level: u32,
    bytes: u64,
    /// RAII only (hence the underscore): dropped with the run, releasing
    /// the reserved disk bytes back to the budget.
    _reservation: DiskReservation,
}

impl SpilledRun {
    /// Bytes written to the spill file (header + payload + footer).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Path of the backing scratch file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SpilledRun {
    fn drop(&mut self) {
        // Scratch cleanup is best-effort; a leaked file in a temp spill
        // dir must not turn a successful query into a panic. The disk
        // reservation (a field) releases right after this, so file and
        // bytes retire together.
        let _ = fs::remove_file(&self.path);
    }
}

/// A run behind a storage handle: resident in memory or spilled to disk.
#[derive(Debug)]
pub enum RunHandle {
    /// The run is resident; the handle owns its rows.
    Mem(Run),
    /// The run was flushed to a [`FileStore`]; the handle owns the file.
    Spilled(Arc<FileStore>, SpilledRun),
}

impl RunHandle {
    /// Number of rows in the run.
    pub fn len(&self) -> usize {
        match self {
            RunHandle::Mem(run) => run.len(),
            RunHandle::Spilled(_, s) => s.rows,
        }
    }

    /// True if the run holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of state columns.
    pub fn n_cols(&self) -> usize {
        match self {
            RunHandle::Mem(run) => run.n_cols(),
            RunHandle::Spilled(_, s) => s.n_cols,
        }
    }

    /// Whether the rows are partial aggregates (see [`Run::aggregated`]).
    pub fn aggregated(&self) -> bool {
        match self {
            RunHandle::Mem(run) => run.aggregated,
            RunHandle::Spilled(_, s) => s.aggregated,
        }
    }

    /// Original input rows this run represents (see [`Run::source_rows`]).
    pub fn source_rows(&self) -> u64 {
        match self {
            RunHandle::Mem(run) => run.source_rows,
            RunHandle::Spilled(_, s) => s.source_rows,
        }
    }

    /// Radix level of the run.
    pub fn level(&self) -> u32 {
        match self {
            RunHandle::Mem(run) => run.level,
            RunHandle::Spilled(_, s) => s.level,
        }
    }

    /// True if this handle is backed by a spill file.
    pub fn is_spilled(&self) -> bool {
        matches!(self, RunHandle::Spilled(..))
    }

    /// On-disk payload bytes for spilled handles, 0 for resident ones.
    pub fn spilled_bytes(&self) -> u64 {
        match self {
            RunHandle::Mem(_) => 0,
            RunHandle::Spilled(_, s) => s.bytes,
        }
    }

    /// Materialize the run, reading it back from disk if it was spilled.
    ///
    /// Consumes the handle; for spilled runs the scratch file is deleted
    /// once the returned [`Run`] is built — or once the restore has
    /// failed (the handle's drop deletes it exactly once either way).
    ///
    /// # Errors
    /// [`AggError::SpillCorrupt`] when verification failed,
    /// [`AggError::SpillFailed`] for unrecoverable plain I/O trouble.
    pub fn into_run(self) -> Result<Run, AggError> {
        match self {
            RunHandle::Mem(run) => Ok(run),
            RunHandle::Spilled(store, spilled) => store.read(&spilled),
        }
    }
}

/// The run storage policy for one operator invocation.
///
/// `in_memory()` is the MemStore backend: every handle stays resident and
/// budget exhaustion remains a hard denial. `spilling_to(dir)` attaches a
/// shared [`FileStore`] so run producers can downgrade a denied
/// reservation into a spill instead of failing the query.
#[derive(Clone, Debug, Default)]
pub struct RunStore {
    file: Option<Arc<FileStore>>,
}

impl RunStore {
    /// Memory-only storage: no spill capability.
    pub fn in_memory() -> Self {
        Self { file: None }
    }

    /// Storage backed by a spill directory (created if missing), with no
    /// fault injection and no disk limit.
    pub fn spilling_to(dir: impl Into<PathBuf>) -> Result<Self, AggError> {
        Ok(Self { file: Some(Arc::new(FileStore::new(dir)?)) })
    }

    /// Storage backed by a spill directory wired to an execution
    /// environment (fault injector + disk budget); see
    /// [`FileStore::with_env`].
    pub fn spilling_with(
        dir: impl Into<PathBuf>,
        faults: FaultInjector,
        disk: DiskBudget,
    ) -> Result<Self, AggError> {
        Ok(Self { file: Some(Arc::new(FileStore::with_env(dir, faults, disk)?)) })
    }

    /// True if a spill directory is configured.
    pub fn can_spill(&self) -> bool {
        self.file.is_some()
    }

    /// The backing file store, if any.
    pub fn file_store(&self) -> Option<&Arc<FileStore>> {
        self.file.as_ref()
    }

    /// The backing store's I/O robustness counters, if any.
    pub fn io_stats(&self) -> Option<StoreIoStats> {
        self.file.as_ref().map(|s| s.io_stats())
    }

    /// Flush a run to the spill directory and return its handle.
    ///
    /// # Errors
    /// [`AggError::DiskBudgetExceeded`] when the spill budget denies the
    /// file's bytes, [`AggError::SpillFailed`] for unrecoverable I/O
    /// (including a memory-only store, which cannot spill at all).
    pub fn spill(&self, run: &Run) -> Result<RunHandle, AggError> {
        let Some(store) = &self.file else {
            return Err(AggError::SpillFailed {
                message: "no spill directory configured".to_string(),
            });
        };
        let spilled = store.write(run)?;
        Ok(RunHandle::Spilled(Arc::clone(store), spilled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_fault::{FaultPlan, SpillFault};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hsa-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_run() -> Run {
        let mut run = Run::empty(3, 2, true);
        for i in 0..10_000u64 {
            run.keys.push(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            run.cols[0].push(i);
            run.cols[1].push(u64::MAX - i);
        }
        run.source_rows = 12_345;
        run
    }

    fn injected(kind: SpillFaultKind, nth: u64) -> FaultInjector {
        FaultInjector::new(FaultPlan {
            spill_io: Some(SpillFault { nth, kind }),
            ..FaultPlan::none()
        })
    }

    #[test]
    fn spill_round_trip_preserves_rows_and_meta() {
        let dir = temp_dir("roundtrip");
        let store = RunStore::spilling_to(&dir).unwrap();
        let run = sample_run();
        let handle = store.spill(&run).unwrap();
        assert!(handle.is_spilled());
        assert_eq!(handle.len(), run.len());
        assert_eq!(handle.level(), run.level);
        assert_eq!(handle.source_rows(), run.source_rows);
        assert!(handle.spilled_bytes() >= (run.len() as u64) * 8 * 3);
        let back = handle.into_run().unwrap();
        assert_eq!(back.keys.to_vec(), run.keys.to_vec());
        for (b, r) in back.cols.iter().zip(&run.cols) {
            assert_eq!(b.to_vec(), r.to_vec());
        }
        assert_eq!(back.aggregated, run.aggregated);
        assert_eq!(back.source_rows, run.source_rows);
        assert_eq!(back.level, run.level);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_and_zero_column_runs_round_trip() {
        let dir = temp_dir("shapes");
        let store = RunStore::spilling_to(&dir).unwrap();
        for run in [Run::empty(0, 0, false), Run::empty(7, 4, true)] {
            let back = store.spill(&run).unwrap().into_run().unwrap();
            assert_eq!(back.len(), 0);
            assert_eq!(back.n_cols(), run.n_cols());
            assert_eq!(back.level, run.level);
            assert_eq!(back.aggregated, run.aggregated);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropping_a_handle_deletes_the_scratch_file() {
        let dir = temp_dir("cleanup");
        let store = RunStore::spilling_to(&dir).unwrap();
        let handle = store.spill(&sample_run()).unwrap();
        let path = match &handle {
            RunHandle::Spilled(_, s) => s.path().to_path_buf(),
            RunHandle::Mem(_) => unreachable!(),
        };
        assert!(path.exists());
        drop(handle);
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_store_refuses_to_spill() {
        let store = RunStore::in_memory();
        assert!(!store.can_spill());
        let err = store.spill(&sample_run()).unwrap_err();
        assert!(matches!(err, AggError::SpillFailed { .. }), "{err:?}");
    }

    #[test]
    fn mem_handles_are_transparent() {
        let run = sample_run();
        let (len, level) = (run.len(), run.level);
        let handle = RunHandle::Mem(run);
        assert!(!handle.is_spilled());
        assert_eq!(handle.spilled_bytes(), 0);
        assert_eq!(handle.len(), len);
        assert_eq!(handle.level(), level);
        assert_eq!(handle.into_run().unwrap().len(), len);
    }

    #[test]
    fn file_size_formula_matches_reality() {
        let dir = temp_dir("sizes");
        let store = RunStore::spilling_to(&dir).unwrap();
        for rows in [0usize, 1, EXTENT_WORDS - 1, EXTENT_WORDS, EXTENT_WORDS + 1, 3 * EXTENT_WORDS]
        {
            let mut run = Run::empty(0, 1, false);
            for i in 0..rows as u64 {
                run.keys.push(i);
                run.cols[0].push(i * 3);
            }
            let handle = store.spill(&run).unwrap();
            let path = match &handle {
                RunHandle::Spilled(_, s) => s.path().to_path_buf(),
                RunHandle::Mem(_) => unreachable!(),
            };
            let on_disk = fs::metadata(&path).unwrap().len();
            assert_eq!(on_disk, handle.spilled_bytes(), "rows {rows}");
            let back = handle.into_run().unwrap();
            assert_eq!(back.len(), rows);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_budget_reserves_and_releases_with_the_run() {
        let dir = temp_dir("diskbudget");
        let disk = DiskBudget::limited(1 << 20);
        let store = RunStore::spilling_with(&dir, FaultInjector::none(), disk.clone()).unwrap();
        let handle = store.spill(&sample_run()).unwrap();
        assert_eq!(disk.outstanding(), handle.spilled_bytes());
        let run = handle.into_run().unwrap();
        assert_eq!(disk.outstanding(), 0, "restore consumed the handle and released the bytes");
        drop(run);
        assert!(disk.high_water() > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_budget_denial_is_typed_and_leaves_no_file() {
        let dir = temp_dir("diskdenied");
        let disk = DiskBudget::limited(64);
        let store = RunStore::spilling_with(&dir, FaultInjector::none(), disk.clone()).unwrap();
        let err = store.spill(&sample_run()).unwrap_err();
        assert!(matches!(err, AggError::DiskBudgetExceeded { .. }), "{err:?}");
        assert_eq!(disk.outstanding(), 0);
        assert_eq!(spill_files_in(&dir), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    fn spill_files_in(dir: &Path) -> usize {
        fs::read_dir(dir)
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| e.file_name().to_str().is_some_and(|n| n.ends_with(".bin")))
                    .count()
            })
            .unwrap_or(0)
    }

    #[cfg(not(miri))]
    #[test]
    fn transient_write_faults_retry_to_success() {
        for kind in [SpillFaultKind::WriteEio, SpillFaultKind::WriteShort] {
            let dir = temp_dir(&format!("retry-{kind:?}"));
            let store =
                RunStore::spilling_with(&dir, injected(kind, 1), DiskBudget::unlimited()).unwrap();
            let run = sample_run();
            let back = store.spill(&run).unwrap().into_run().unwrap();
            assert_eq!(back.keys.to_vec(), run.keys.to_vec(), "{kind:?}");
            assert_eq!(back.cols[1].to_vec(), run.cols[1].to_vec(), "{kind:?}");
            let stats = store.io_stats().unwrap();
            assert_eq!(stats.spill_retries, 1, "{kind:?}");
            assert_eq!(stats.io_abandons, 0, "{kind:?}");
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[cfg(not(miri))]
    #[test]
    fn enospc_write_fault_is_permanent_and_unlinks_the_partial_file() {
        let dir = temp_dir("enospc");
        let disk = DiskBudget::limited(1 << 20);
        let store =
            RunStore::spilling_with(&dir, injected(SpillFaultKind::WriteEnospc, 1), disk.clone())
                .unwrap();
        let err = store.spill(&sample_run()).unwrap_err();
        assert!(matches!(err, AggError::SpillFailed { .. }), "{err:?}");
        assert!(err.to_string().contains("os error 28"), "{err}");
        assert_eq!(spill_files_in(&dir), 0, "partial file must be unlinked");
        assert_eq!(disk.outstanding(), 0, "reservation released on abandon");
        let stats = store.io_stats().unwrap();
        assert_eq!(stats.io_abandons, 1);
        assert_eq!(stats.spill_retries, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(not(miri))]
    #[test]
    fn transient_read_fault_retries_to_success() {
        let dir = temp_dir("readretry");
        let store = RunStore::spilling_with(
            &dir,
            injected(SpillFaultKind::ReadEio, 1),
            DiskBudget::unlimited(),
        )
        .unwrap();
        let run = sample_run();
        let back = store.spill(&run).unwrap().into_run().unwrap();
        assert_eq!(back.keys.to_vec(), run.keys.to_vec());
        let stats = store.io_stats().unwrap();
        assert_eq!(stats.restore_retries, 1);
        assert_eq!(stats.io_abandons, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(not(miri))]
    #[test]
    fn bit_flip_on_read_surfaces_as_extent_crc_corruption() {
        let dir = temp_dir("bitflip");
        let store = RunStore::spilling_with(
            &dir,
            injected(SpillFaultKind::ReadBitFlip, 1),
            DiskBudget::unlimited(),
        )
        .unwrap();
        let err = store.spill(&sample_run()).unwrap().into_run().unwrap_err();
        match err {
            AggError::SpillCorrupt { what, extent, .. } => {
                assert_eq!(what, "extent crc");
                assert_eq!(extent, 0, "the flip lands in the first extent");
            }
            other => panic!("expected SpillCorrupt, got {other:?}"),
        }
        assert_eq!(spill_files_in(&dir), 0, "failed restore still deletes the file");
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(not(miri))]
    #[test]
    fn truncate_on_read_surfaces_as_corruption() {
        let dir = temp_dir("truncate");
        let store = RunStore::spilling_with(
            &dir,
            injected(SpillFaultKind::ReadTruncate, 1),
            DiskBudget::unlimited(),
        )
        .unwrap();
        let err = store.spill(&sample_run()).unwrap().into_run().unwrap_err();
        match err {
            AggError::SpillCorrupt { what, .. } => assert_eq!(what, "truncated"),
            other => panic!("expected SpillCorrupt, got {other:?}"),
        }
        assert_eq!(spill_files_in(&dir), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(not(miri))]
    #[test]
    fn orphan_sweep_reclaims_files_of_dead_pids_and_spares_the_living() {
        let dir = temp_dir("sweep");
        fs::create_dir_all(&dir).unwrap();
        // A dead process: spill file present, no lock file (or, on Linux,
        // a lock whose pid does not exist — covered below).
        let dead = dir.join("hsarun-999999999-00000001.bin");
        fs::write(&dead, vec![0u8; 256]).unwrap();
        // Our own files are never swept, lock or not.
        let mine = dir.join(format!("hsarun-{}-99999999.bin", std::process::id()));
        fs::write(&mine, b"mine").unwrap();
        // Unrelated names are left alone.
        let other = dir.join("run-00000000.bin");
        fs::write(&other, b"legacy").unwrap();

        let store = FileStore::new(&dir).unwrap();
        let stats = store.io_stats();
        assert_eq!(stats.reclaimed_files, 1, "exactly the dead pid's file");
        assert_eq!(stats.reclaimed_bytes, 256);
        assert!(!dead.exists());
        assert!(mine.exists());
        assert!(other.exists());
        drop(store);
        assert!(
            !dir.join(lock_name(std::process::id())).exists(),
            "clean drop retires the lock file"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(all(not(miri), target_os = "linux"))]
    #[test]
    fn orphan_sweep_uses_proc_liveness_to_break_lock_ties() {
        let dir = temp_dir("sweep-proc");
        fs::create_dir_all(&dir).unwrap();
        // A crashed process left both its lock and a spill file; the pid
        // is not alive, so both must go.
        let pid = 999_999_998u32;
        fs::write(dir.join(lock_name(pid)), pid.to_string()).unwrap();
        let stale = dir.join(format!("hsarun-{pid}-00000003.bin"));
        fs::write(&stale, vec![1u8; 64]).unwrap();
        // Pid 1 is always alive on Linux: lock + file survive.
        fs::write(dir.join(lock_name(1)), "1").unwrap();
        let live = dir.join("hsarun-1-00000000.bin");
        fs::write(&live, b"live").unwrap();

        let store = FileStore::new(&dir).unwrap();
        assert_eq!(store.io_stats().reclaimed_files, 1);
        assert!(!stale.exists());
        assert!(!dir.join(lock_name(pid)).exists(), "stale lock swept too");
        assert!(live.exists(), "files of live processes are spared");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_name_parsing() {
        assert_eq!(parse_spill_name("hsarun-123-00000007.bin"), Some((123, false)));
        assert_eq!(parse_spill_name("hsarun-123.lock"), Some((123, true)));
        assert_eq!(parse_spill_name("run-00000007.bin"), None);
        assert_eq!(parse_spill_name("hsarun-x-00000007.bin"), None);
        assert_eq!(parse_spill_name("hsarun-123-7.tmp"), None);
    }
}
