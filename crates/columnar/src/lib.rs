//! Columnar storage substrate for the aggregation operator.
//!
//! The paper's operator never materializes a contiguous output whose size it
//! would have to guess. Instead it produces **runs** backed by a **two-level
//! data structure — a list of arrays** (§4.2) — which grows in O(1) chunks
//! without relocation, giving the benefit of Wassenberg's virtual-memory
//! over-allocation trick "with only very low overhead" and without requiring
//! special memory management.
//!
//! * [`ChunkedVec`] — the two-level list-of-arrays, the backing store of
//!   every run and partition.
//! * [`Run`] — a sequence of rows (a key column plus any number of state
//!   columns) produced by one invocation of `HASHING` or `PARTITIONING`,
//!   carrying the metadata the framework needs: whether its rows are
//!   partial aggregates (so the *super-aggregate* function must be used to
//!   combine them, §3.1) and how many source rows it represents.
//! * [`Bucket`] — all runs that share a hash-digit prefix; the unit of
//!   recursion of Algorithm 2.
//! * [`Mapping`] — the per-run mapping vector of the column-wise processing
//!   model (§3.3, Figure 2): hashing emits slot indexes, partitioning emits
//!   radix digits.
//! * [`RunHandle`] / [`RunStore`] — the storage identity of a run: resident
//!   in memory or spilled to a [`FileStore`] scratch file, so the operator
//!   can degrade to disk instead of failing when its memory budget is
//!   exhausted.
//! * [`Table`] — a small named-column table used by the examples to stand in
//!   for a column-store relation.

mod chunked;
mod codec;
mod crc;
mod dictionary;
mod mapping;
mod run;
mod store;
mod table;

pub use chunked::{ChunkedVec, DEFAULT_CHUNK_LEN};
pub use codec::SpillCodec;
pub use crc::{crc32c, Crc32c};
pub use dictionary::{encode_composite, Dictionary};
pub use mapping::Mapping;
pub use run::{Bucket, Run};
pub use store::{
    FileStore, RunHandle, RunStore, SpillConfig, SpilledRun, StoreIoStats, EXTENT_WORDS,
};
pub use table::{Column, Table, TableError};
