//! Per-extent spill compression codecs (format `HSARUN03`).
//!
//! Spill extents are plain `u64` words, and the columns that dominate
//! spill volume are radix-partitioned keys and monotone aggregate state —
//! exactly the distributions that collapse under delta + varint or
//! run-length coding (Graefe's bandwidth-for-CPU trade on run/merge
//! machinery). Each extent is encoded independently so restores stay
//! bounded, sequential, and verifiable extent by extent.
//!
//! Three wire codecs, all std-only and branch-cheap:
//!
//! * **Raw (0)** — the escape hatch: words as little-endian bytes,
//!   bit-identical to an HSARUN02 payload. Never longer than the input.
//! * **Delta (1)** — first word as 8 raw LE bytes, then each successive
//!   word as the LEB128 varint of the zigzag-folded wrapping difference.
//!   Sorted/clustered keys encode in 1–2 bytes per word; the worst case
//!   (random deltas) costs 10 bytes per word, which auto-selection
//!   escapes to Raw.
//! * **RLE (2)** — `(varint value, varint run length)` pairs. Constant
//!   columns (COUNT state, partition digits) collapse to a few bytes.
//!
//! [`SpillCodec`] is the *policy* (what the writer may pick, including
//! `Auto`); the codec *byte* in the extent descriptor records what was
//! actually used, so readers never consult the policy. Encoding never
//! loses information: `decode(encode(words))` is the identity for every
//! input, and auto-selection only picks an encoding that is strictly
//! smaller than Raw.

use std::fmt;

/// Wire codec ids (the `codec` byte of an extent descriptor).
pub(crate) const CODEC_RAW: u8 = 0;
pub(crate) const CODEC_DELTA: u8 = 1;
pub(crate) const CODEC_RLE: u8 = 2;

/// Compression policy for spill-file extents (the CLI's
/// `--spill-compress`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpillCodec {
    /// Pick per extent: the smaller of Delta and RLE, or Raw when neither
    /// actually shrinks the payload.
    #[default]
    Auto,
    /// Delta + varint, escaping to Raw when it would grow the extent.
    Delta,
    /// Run-length coding, escaping to Raw when it would grow the extent.
    Rle,
    /// No compression: every extent is written Raw (HSARUN02-shaped
    /// payloads inside the HSARUN03 frame).
    Off,
}

impl SpillCodec {
    /// Parse a CLI/user spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "auto" => Some(SpillCodec::Auto),
            "delta" => Some(SpillCodec::Delta),
            "rle" => Some(SpillCodec::Rle),
            "off" | "raw" => Some(SpillCodec::Off),
            _ => None,
        }
    }
}

impl fmt::Display for SpillCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SpillCodec::Auto => "auto",
            SpillCodec::Delta => "delta",
            SpillCodec::Rle => "rle",
            SpillCodec::Off => "off",
        })
    }
}

/// Zigzag-fold a signed delta into an unsigned varint payload.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append `v` as a LEB128 varint (1–10 bytes).
#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded size of `v` as a LEB128 varint, in bytes.
#[inline]
fn varint_len(v: u64) -> usize {
    // 1 byte per started 7-bit group; v == 0 still takes one byte.
    (64 - (v | 1).leading_zeros() as usize).div_ceil(7)
}

/// Read one varint from `bytes[*pos..]`. `None` on truncation or a
/// value that overflows 64 bits (corrupt input).
#[inline]
fn get_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        // The 10th byte may only carry the top bit of the value.
        if shift == 63 && byte > 1 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

fn encode_raw(words: &[u64], out: &mut Vec<u8>) {
    out.reserve(words.len() * 8);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

fn encode_delta(words: &[u64], out: &mut Vec<u8>) {
    let Some((&first, rest)) = words.split_first() else { return };
    out.extend_from_slice(&first.to_le_bytes());
    let mut prev = first;
    for &w in rest {
        put_varint(out, zigzag(w.wrapping_sub(prev) as i64));
        prev = w;
    }
}

fn encode_rle(words: &[u64], out: &mut Vec<u8>) {
    let mut i = 0;
    while i < words.len() {
        let v = words[i];
        let mut len = 1u64;
        while i + (len as usize) < words.len() && words[i + len as usize] == v {
            len += 1;
        }
        put_varint(out, v);
        put_varint(out, len);
        i += len as usize;
    }
}

/// Exact encoded sizes `(delta, rle)` of `words`, computed in one pass
/// without materializing either encoding.
fn candidate_sizes(words: &[u64]) -> (usize, usize) {
    let mut delta = 0usize;
    let mut rle = 0usize;
    let mut prev = 0u64;
    let mut run_val = 0u64;
    let mut run_len = 0u64;
    for (i, &w) in words.iter().enumerate() {
        if i == 0 {
            delta += 8;
            run_val = w;
            run_len = 1;
        } else {
            delta += varint_len(zigzag(w.wrapping_sub(prev) as i64));
            if w == run_val {
                run_len += 1;
            } else {
                rle += varint_len(run_val) + varint_len(run_len);
                run_val = w;
                run_len = 1;
            }
        }
        prev = w;
    }
    if run_len > 0 {
        rle += varint_len(run_val) + varint_len(run_len);
    }
    (delta, rle)
}

/// Encode `words` under `policy` into `out` (cleared first). Returns the
/// wire codec id actually used. A compressed form is only chosen when it
/// is strictly smaller than the Raw payload, so `out.len() <=
/// words.len() * 8` always holds — the invariant the HSARUN03
/// upper-bound file size is built on.
pub(crate) fn encode(words: &[u64], policy: SpillCodec, out: &mut Vec<u8>) -> u8 {
    out.clear();
    let raw_len = words.len() * 8;
    let (delta_len, rle_len) = match policy {
        SpillCodec::Off => (usize::MAX, usize::MAX),
        SpillCodec::Delta => (candidate_sizes(words).0, usize::MAX),
        SpillCodec::Rle => (usize::MAX, candidate_sizes(words).1),
        SpillCodec::Auto => candidate_sizes(words),
    };
    if delta_len < raw_len && delta_len <= rle_len {
        encode_delta(words, out);
        debug_assert_eq!(out.len(), delta_len, "delta size formula out of sync");
        CODEC_DELTA
    } else if rle_len < raw_len {
        encode_rle(words, out);
        debug_assert_eq!(out.len(), rle_len, "rle size formula out of sync");
        CODEC_RLE
    } else {
        encode_raw(words, out);
        CODEC_RAW
    }
}

/// Decode `bytes` (codec id `codec`) into exactly `n_words` words,
/// appended to `out`. `Err(())` on an unknown codec id or a payload that
/// does not decode to exactly `n_words` — defence in depth behind the
/// extent CRC; the store surfaces it as `SpillCorrupt`.
pub(crate) fn decode(
    codec: u8,
    bytes: &[u8],
    n_words: usize,
    out: &mut Vec<u64>,
) -> Result<(), ()> {
    match codec {
        CODEC_RAW => {
            if bytes.len() != n_words * 8 {
                return Err(());
            }
            for chunk in bytes.chunks_exact(8) {
                let mut le = [0u8; 8];
                le.copy_from_slice(chunk);
                out.push(u64::from_le_bytes(le));
            }
            Ok(())
        }
        CODEC_DELTA => {
            if n_words == 0 {
                return if bytes.is_empty() { Ok(()) } else { Err(()) };
            }
            if bytes.len() < 8 {
                return Err(());
            }
            let mut le = [0u8; 8];
            le.copy_from_slice(&bytes[..8]);
            let mut prev = u64::from_le_bytes(le);
            out.push(prev);
            let mut pos = 8usize;
            for _ in 1..n_words {
                let d = get_varint(bytes, &mut pos).ok_or(())?;
                prev = prev.wrapping_add(unzigzag(d) as u64);
                out.push(prev);
            }
            if pos != bytes.len() {
                return Err(());
            }
            Ok(())
        }
        CODEC_RLE => {
            let mut pos = 0usize;
            let mut produced = 0usize;
            while pos < bytes.len() {
                let v = get_varint(bytes, &mut pos).ok_or(())?;
                let len = get_varint(bytes, &mut pos).ok_or(())?;
                if len == 0 || (len as usize) > n_words - produced {
                    return Err(());
                }
                for _ in 0..len {
                    out.push(v);
                }
                produced += len as usize;
            }
            if produced != n_words {
                return Err(());
            }
            Ok(())
        }
        _ => Err(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(words: &[u64], policy: SpillCodec) -> u8 {
        let mut enc = Vec::new();
        let codec = encode(words, policy, &mut enc);
        assert!(enc.len() <= words.len() * 8, "{policy:?} grew the payload");
        let mut back = Vec::new();
        decode(codec, &enc, words.len(), &mut back).unwrap();
        assert_eq!(back, words, "{policy:?} round trip");
        codec
    }

    /// The adversarial distribution lattice from the issue: constant,
    /// strictly increasing, saw-tooth, u64::MAX deltas, single-element,
    /// empty — under every policy.
    #[test]
    fn adversarial_distributions_round_trip_under_every_policy() {
        let n = if cfg!(miri) { 64 } else { 4096 };
        let cases: Vec<Vec<u64>> = vec![
            vec![],
            vec![42],
            vec![0; n],
            vec![u64::MAX; n],
            (0..n as u64).collect(),
            (0..n as u64).map(|i| i * 1_000_003).collect(),
            (0..n as u64).map(|i| if i % 2 == 0 { 0 } else { u64::MAX }).collect(),
            (0..n as u64).map(|i| i % 17).collect(),
            (0..n as u64).rev().collect(),
            (0..n as u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect(),
        ];
        for words in &cases {
            for policy in [SpillCodec::Auto, SpillCodec::Delta, SpillCodec::Rle, SpillCodec::Off] {
                round_trip(words, policy);
            }
        }
    }

    #[test]
    fn auto_picks_the_expected_codec_per_shape() {
        let n = 1024u64;
        let sorted: Vec<u64> = (0..n).collect();
        assert_eq!(round_trip(&sorted, SpillCodec::Auto), CODEC_DELTA);
        let constant = vec![7u64; n as usize];
        assert_eq!(round_trip(&constant, SpillCodec::Auto), CODEC_RLE);
        let random: Vec<u64> = (0..n).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)).collect();
        assert_eq!(round_trip(&random, SpillCodec::Auto), CODEC_RAW);
        assert_eq!(round_trip(&random, SpillCodec::Delta), CODEC_RAW, "delta escapes to raw");
        assert_eq!(round_trip(&random, SpillCodec::Rle), CODEC_RAW, "rle escapes to raw");
        assert_eq!(round_trip(&sorted, SpillCodec::Off), CODEC_RAW);
    }

    #[test]
    fn max_deltas_and_alternating_extremes_are_exact() {
        // Wrapping differences of ±u64::MAX exercise the zigzag fold at
        // both ends of the i64 range.
        let words = [0u64, u64::MAX, 0, u64::MAX, 1, u64::MAX - 1];
        for policy in [SpillCodec::Auto, SpillCodec::Delta, SpillCodec::Rle] {
            round_trip(&words, policy);
        }
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
        assert_eq!(unzigzag(zigzag(i64::MAX)), i64::MAX);
        assert_eq!(unzigzag(zigzag(0)), 0);
        assert_eq!(unzigzag(zigzag(-1)), -1);
    }

    #[test]
    fn varints_cover_the_full_u64_range() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX / 2, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "size formula for {v}");
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn corrupt_payloads_decode_to_errors_not_garbage() {
        let mut out = Vec::new();
        // Unknown codec id.
        assert!(decode(9, &[0; 8], 1, &mut out).is_err());
        // Raw with the wrong length.
        assert!(decode(CODEC_RAW, &[0; 7], 1, &mut out).is_err());
        // Delta truncated mid-varint.
        let mut enc = Vec::new();
        encode(&[0, u64::MAX / 3], SpillCodec::Delta, &mut enc);
        assert!(decode(CODEC_DELTA, &enc[..enc.len() - 1], 2, &mut Vec::new()).is_err());
        // Delta with trailing bytes.
        enc.push(0);
        assert!(decode(CODEC_DELTA, &enc, 2, &mut Vec::new()).is_err());
        // RLE overrunning the expected word count.
        let mut enc = Vec::new();
        put_varint(&mut enc, 5);
        put_varint(&mut enc, 100);
        assert!(decode(CODEC_RLE, &enc, 3, &mut Vec::new()).is_err());
        // RLE with a zero-length run.
        let mut enc = Vec::new();
        put_varint(&mut enc, 5);
        put_varint(&mut enc, 0);
        assert!(decode(CODEC_RLE, &enc, 3, &mut Vec::new()).is_err());
        // Varint that overflows 64 bits.
        let enc = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7f];
        let mut pos = 0;
        assert_eq!(get_varint(&enc, &mut pos), None);
    }

    /// Seeded-random fuzz: every encoding decodes back exactly, across
    /// policies and lengths including extent-boundary straddlers.
    #[test]
    fn random_round_trip_fuzz() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let trials = if cfg!(miri) { 8 } else { 200 };
        for t in 0..trials {
            let len = (next() % 300) as usize;
            let words: Vec<u64> = (0..len)
                .map(|_| match next() % 4 {
                    0 => next(),                       // uniform random
                    1 => next() % 16,                  // small alphabet (RLE-ish)
                    2 => t as u64 * 1000 + next() % 8, // clustered (delta-ish)
                    _ => u64::MAX - next() % 2,        // extremes
                })
                .collect();
            for policy in [SpillCodec::Auto, SpillCodec::Delta, SpillCodec::Rle, SpillCodec::Off] {
                round_trip(&words, policy);
            }
        }
    }
}
