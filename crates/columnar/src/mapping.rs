//! Mapping vectors for column-wise processing (§3.3, Figure 2).
//!
//! While producing a run of the grouping column, both routines emit a
//! mapping "for this run only", which is then applied to the corresponding
//! parts of the aggregate columns *before* the framework moves on — the
//! MonetDB/X100-style interleaving that keeps the mapping in cache instead
//! of materializing it to memory for the whole input.
//!
//! The two routines need different mapping shapes:
//!
//! * `HASHING` moves each row to a hash-table slot, so its mapping is a
//!   vector of **slot indexes** (`u32`: tables are cache-sized, so < 2³²).
//! * `PARTITIONING` appends each row to one of 256 partitions in input
//!   order, so knowing the **radix digit** (`u8`) of every row is enough:
//!   replaying the digits against a fresh set of write-combining buffers
//!   reproduces the exact output positions.

/// A per-run mapping vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mapping {
    /// One hash-table slot index per input row (hashing routine).
    Slots(Vec<u32>),
    /// One radix digit per input row (partitioning routine).
    Digits(Vec<u8>),
}

impl Mapping {
    /// Number of input rows covered by this mapping.
    pub fn len(&self) -> usize {
        match self {
            Mapping::Slots(v) => v.len(),
            Mapping::Digits(v) => v.len(),
        }
    }

    /// True if the mapping covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_dispatches() {
        assert_eq!(Mapping::Slots(vec![1, 2, 3]).len(), 3);
        assert_eq!(Mapping::Digits(vec![0; 5]).len(), 5);
        assert!(Mapping::Slots(vec![]).is_empty());
    }
}
