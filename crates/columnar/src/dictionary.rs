//! Dictionary encoding: arbitrary grouping keys → dense `u64` codes.
//!
//! The operator's kernels work on 64-bit integer keys (the paper's
//! experiments do too). Real column stores feed them anything — strings,
//! composite keys — through *dictionary encoding*, which is exactly what
//! systems like SAP HANA (the paper's context) do at the storage layer.
//! [`Dictionary`] provides the encode/decode pair:
//!
//! ```
//! use hsa_columnar::Dictionary;
//! let mut dict = Dictionary::new();
//! let codes: Vec<u64> =
//!     ["de", "fr", "de", "us"].iter().map(|s| dict.encode_str(s)).collect();
//! assert_eq!(codes, vec![0, 1, 0, 2]);
//! assert_eq!(dict.decode(1), Some("fr".as_bytes()));
//! ```
//!
//! [`encode_composite`] packs multi-column `GROUP BY (a, b, …)` keys into
//! one code column the same way.

use std::collections::HashMap;

/// An order-of-first-appearance dictionary from byte strings to dense ids.
#[derive(Clone, Debug, Default)]
pub struct Dictionary {
    ids: HashMap<Vec<u8>, u64>,
    values: Vec<Vec<u8>>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct values seen.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Encode one byte-string key, assigning the next dense id on first
    /// appearance.
    pub fn encode(&mut self, value: &[u8]) -> u64 {
        if let Some(&id) = self.ids.get(value) {
            return id;
        }
        let id = self.values.len() as u64;
        self.ids.insert(value.to_vec(), id);
        self.values.push(value.to_vec());
        id
    }

    /// Encode one string key.
    pub fn encode_str(&mut self, value: &str) -> u64 {
        self.encode(value.as_bytes())
    }

    /// Look up a code without inserting.
    pub fn code_of(&self, value: &[u8]) -> Option<u64> {
        self.ids.get(value).copied()
    }

    /// Decode an id back to its bytes.
    pub fn decode(&self, id: u64) -> Option<&[u8]> {
        self.values.get(id as usize).map(Vec::as_slice)
    }

    /// Decode an id to `&str` (None if the id is unknown or not UTF-8).
    pub fn decode_str(&self, id: u64) -> Option<&str> {
        self.decode(id).and_then(|b| std::str::from_utf8(b).ok())
    }

    /// Encode a whole column.
    pub fn encode_column<'a>(&mut self, values: impl IntoIterator<Item = &'a str>) -> Vec<u64> {
        values.into_iter().map(|v| self.encode_str(v)).collect()
    }
}

/// Fuse several `u64` key columns into one dense code column for
/// multi-column grouping. Returns the code column plus the distinct key
/// tuples indexed by code (for decoding result rows).
///
/// All columns must have equal length.
pub fn encode_composite(columns: &[&[u64]]) -> (Vec<u64>, Vec<Vec<u64>>) {
    assert!(!columns.is_empty(), "composite key needs at least one column");
    let rows = columns[0].len();
    for (i, c) in columns.iter().enumerate() {
        assert_eq!(c.len(), rows, "key column {i} row count mismatch");
    }
    let mut ids: HashMap<Vec<u64>, u64> = HashMap::new();
    let mut tuples: Vec<Vec<u64>> = Vec::new();
    let mut codes = Vec::with_capacity(rows);
    let mut tuple = Vec::with_capacity(columns.len());
    for r in 0..rows {
        tuple.clear();
        tuple.extend(columns.iter().map(|c| c[r]));
        let id = match ids.get(&tuple) {
            Some(&id) => id,
            None => {
                let id = tuples.len() as u64;
                ids.insert(tuple.clone(), id);
                tuples.push(tuple.clone());
                id
            }
        };
        codes.push(id);
    }
    (codes, tuples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let mut d = Dictionary::new();
        let ids: Vec<u64> = ["x", "y", "x", "z", "y"].iter().map(|s| d.encode_str(s)).collect();
        assert_eq!(ids, vec![0, 1, 0, 2, 1]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.decode_str(0), Some("x"));
        assert_eq!(d.decode_str(2), Some("z"));
        assert_eq!(d.decode_str(3), None);
        assert_eq!(d.code_of(b"y"), Some(1));
        assert_eq!(d.code_of(b"nope"), None);
    }

    #[test]
    fn empty_string_and_binary_keys() {
        let mut d = Dictionary::new();
        let a = d.encode(b"");
        let b = d.encode(&[0xff, 0x00, 0x7f]);
        assert_ne!(a, b);
        assert_eq!(d.decode(a), Some(&b""[..]));
        assert_eq!(d.decode(b), Some(&[0xff, 0x00, 0x7f][..]));
        assert_eq!(d.decode_str(b), None, "not UTF-8");
    }

    #[test]
    fn encode_column_helper() {
        let mut d = Dictionary::new();
        let codes = d.encode_column(["a", "b", "a"]);
        assert_eq!(codes, vec![0, 1, 0]);
    }

    #[test]
    fn composite_keys_are_dense_and_decodable() {
        let a = [1u64, 1, 2, 1];
        let b = [10u64, 20, 10, 10];
        let (codes, tuples) = encode_composite(&[&a, &b]);
        assert_eq!(codes, vec![0, 1, 2, 0]);
        assert_eq!(tuples, vec![vec![1, 10], vec![1, 20], vec![2, 10]]);
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn composite_rejects_ragged() {
        let _ = encode_composite(&[&[1, 2], &[1]]);
    }

    #[test]
    fn composite_single_column_is_dense_recode() {
        let a = [100u64, 50, 100];
        let (codes, tuples) = encode_composite(&[&a]);
        assert_eq!(codes, vec![0, 1, 0]);
        assert_eq!(tuples, vec![vec![100], vec![50]]);
    }
}
