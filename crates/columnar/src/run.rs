//! Runs and buckets — the intermediate currency of the framework (§3.1).
//!
//! "Both routines produce partitions in form of 'runs'": a run is a batch of
//! rows that share a hash-digit prefix. A [`Bucket`] collects all runs with
//! the same prefix; Algorithm 2 recurses bucket by bucket until each bucket
//! is a single, fully aggregated run.

use crate::chunked::ChunkedVec;

/// A run: a key column plus the state columns that travel with it.
#[derive(Clone, Debug, Default)]
pub struct Run {
    /// Grouping keys (the paper's rows are 64-bit integers).
    pub keys: ChunkedVec<u64>,
    /// Aggregate state columns. For raw input runs these are the raw
    /// aggregate input columns; once a run has passed through `HASHING`
    /// they are materialized aggregate states (one or two per aggregate
    /// function, e.g. AVG carries SUM and COUNT).
    pub cols: Vec<ChunkedVec<u64>>,
    /// `true` if the rows are partial aggregates, in which case combining
    /// them requires the super-aggregate function (§3.1: "the
    /// super-aggregate function of COUNT is SUM").
    pub aggregated: bool,
    /// Number of *original input* rows this run represents. Hashing can
    /// shrink a run (early aggregation) but `source_rows` is conserved,
    /// which is what lets tests assert no row is ever lost.
    pub source_rows: u64,
    /// Radix level: how many 8-bit hash digits all rows of this run share.
    pub level: u32,
}

impl Run {
    /// An empty run at the given level with `n_cols` state columns.
    pub fn empty(level: u32, n_cols: usize, aggregated: bool) -> Self {
        Self {
            keys: ChunkedVec::new(),
            cols: (0..n_cols).map(|_| ChunkedVec::new()).collect(),
            aggregated,
            source_rows: 0,
            level,
        }
    }

    /// Build a raw (non-aggregated) level-0 input run from slices.
    ///
    /// All column slices must have the same length as `keys`.
    pub fn from_rows(keys: &[u64], cols: &[&[u64]]) -> Self {
        for (i, c) in cols.iter().enumerate() {
            assert_eq!(c.len(), keys.len(), "column {i} length mismatch");
        }
        Self {
            keys: ChunkedVec::from_slice(keys),
            cols: cols.iter().map(|c| ChunkedVec::from_slice(c)).collect(),
            aggregated: false,
            source_rows: keys.len() as u64,
            level: 0,
        }
    }

    /// Number of rows currently in the run.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the run holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Number of state columns.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// Heap bytes this run holds across its key and state columns
    /// (chunk capacities — what the operator's memory budget accounts).
    pub fn mem_bytes(&self) -> u64 {
        self.keys.mem_bytes() + self.cols.iter().map(ChunkedVec::mem_bytes).sum::<u64>()
    }

    /// Internal consistency: every column as long as the key column.
    pub fn check_consistent(&self) -> Result<(), String> {
        for (i, c) in self.cols.iter().enumerate() {
            if c.len() != self.keys.len() {
                return Err(format!(
                    "column {i} has {} rows, keys have {}",
                    c.len(),
                    self.keys.len()
                ));
            }
        }
        Ok(())
    }
}

/// A bucket: all runs sharing the same hash-digit prefix. The `∪`-operations
/// of Algorithm 2 simply push runs into these vectors.
pub type Bucket = Vec<Run>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_builds_consistent_run() {
        let r = Run::from_rows(&[1, 2, 3], &[&[10, 20, 30], &[5, 5, 5]]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.n_cols(), 2);
        assert_eq!(r.source_rows, 3);
        assert!(!r.aggregated);
        assert!(r.check_consistent().is_ok());
    }

    #[test]
    #[should_panic(expected = "column 1 length mismatch")]
    fn from_rows_rejects_ragged_columns() {
        let _ = Run::from_rows(&[1, 2], &[&[1, 2], &[1]]);
    }

    #[test]
    fn check_consistent_detects_ragged() {
        let mut r = Run::from_rows(&[1, 2], &[&[1, 2]]);
        r.cols[0].push(3);
        assert!(r.check_consistent().is_err());
    }

    #[test]
    fn empty_run_shape() {
        let r = Run::empty(2, 3, true);
        assert!(r.is_empty());
        assert_eq!(r.level, 2);
        assert_eq!(r.n_cols(), 3);
        assert!(r.aggregated);
    }
}
