//! CRC32C (Castagnoli), slice-by-8, std-only.
//!
//! The checksum guarding spill-file extents. CRC32C is the conventional
//! storage-integrity polynomial (iSCSI, ext4, Btrfs) because it detects
//! all single-bit and all burst errors up to 32 bits, and the slice-by-8
//! table method keeps software throughput in the GB/s range — spill
//! verification must not turn sequential-bandwidth I/O into a CPU pass.
//!
//! The tables are computed at first use from the reflected polynomial
//! `0x82F63B78` and kept in a `OnceLock`; no build script, no constants
//! to audit byte-by-byte.

use std::sync::OnceLock;

/// Reflected CRC32C (Castagnoli) polynomial.
const POLY: u32 = 0x82F6_3B78;

/// 8 tables × 256 entries: table[j][b] advances a CRC whose next input
/// byte is `b` with `j` more bytes of zeros behind it.
fn tables() -> &'static [[u32; 256]; 8] {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for b in 0..256u32 {
            let mut crc = b;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            t[0][b as usize] = crc;
        }
        for j in 1..8 {
            for b in 0..256 {
                let prev = t[j - 1][b];
                t[j][b] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            }
        }
        t
    })
}

/// CRC32C of `data` in one call.
pub fn crc32c(data: &[u8]) -> u32 {
    let mut h = Crc32c::new();
    h.update(data);
    h.finalize()
}

/// Incremental CRC32C hasher.
///
/// `update` may be called with arbitrary splits of the input; the result
/// matches [`crc32c`] over the concatenation. The spill writer feeds it
/// every byte as it goes out, the reader every byte as it comes back, so
/// the whole-file check costs no extra pass.
#[derive(Clone, Debug)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// A fresh hasher (initial state, no bytes consumed).
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Consume `data`, advancing the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = tables();
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for c in chunks.by_ref() {
            // Fold the current CRC into the first 4 bytes, then look all
            // 8 bytes up in parallel tables (slice-by-8).
            let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
            crc = t[7][(lo & 0xff) as usize]
                ^ t[6][((lo >> 8) & 0xff) as usize]
                ^ t[5][((lo >> 16) & 0xff) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][c[4] as usize]
                ^ t[2][c[5] as usize]
                ^ t[1][c[6] as usize]
                ^ t[0][c[7] as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ t[0][((crc ^ b as u32) & 0xff) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything consumed so far.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-at-a-time reference implementation.
    fn crc32c_ref(data: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        // RFC 3720 / Intel reference vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"a"), 0xC1D0_4330);
        assert_eq!(crc32c(b"abc"), 0x364B_3FB7);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b"The quick brown fox jumps over the lazy dog"), 0x2262_0404);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0..32u8).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
    }

    #[test]
    fn slice_by_8_matches_bitwise_reference() {
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        for len in [0, 1, 7, 8, 9, 63, 64, 65, 255, 1024, 4093] {
            let data: Vec<u8> = (0..len).map(|_| next()).collect();
            assert_eq!(crc32c(&data), crc32c_ref(&data), "len {len}");
        }
    }

    #[test]
    fn incremental_updates_match_one_shot_under_any_split() {
        let data: Vec<u8> = (0..997u32).map(|i| (i.wrapping_mul(131) >> 3) as u8).collect();
        let whole = crc32c(&data);
        for split in [0, 1, 7, 8, 64, 500, 996, 997] {
            let mut h = Crc32c::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split {split}");
        }
        // Byte-at-a-time.
        let mut h = Crc32c::new();
        for b in &data {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), whole);
    }

    #[test]
    fn any_single_bit_flip_changes_the_checksum() {
        let data: Vec<u8> = (0..257u32).map(|i| (i * 7 + 3) as u8).collect();
        let clean = crc32c(&data);
        let mut corrupt = data.clone();
        for bit in 0..data.len() * 8 {
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32c(&corrupt), clean, "bit {bit} undetected");
            corrupt[bit / 8] ^= 1 << (bit % 8);
        }
    }
}
