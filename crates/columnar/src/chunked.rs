//! The two-level list-of-arrays (§4.2).
//!
//! Partitioning does not know the final size of its 256 outputs before
//! processing. The usual fix is a counting pre-pass (an extra scan) or
//! virtual-memory over-allocation (not available to an industry-grade
//! database's allocator). The paper instead appends to a *list of arrays*:
//! amortized O(1) growth, never relocates existing elements, and costs only
//! ~2% of partitioning bandwidth (Figure 3, `2lvl` vs over-allocation).

/// Default chunk length in elements. 4096 × 8 B = 32 KiB per chunk: big
/// enough that chunk bookkeeping vanishes, small enough that 256 partial
/// output partitions do not blow up memory.
pub const DEFAULT_CHUNK_LEN: usize = 4096;

/// Minimum capacity of a freshly grown chunk (must divide every larger
/// chunk size and be a multiple of the 8-element cache line).
const MIN_CHUNK_LEN: usize = 64;

/// A growable sequence stored as a list of arrays.
///
/// Chunk capacities double from `MIN_CHUNK_LEN` (64) up to the configured
/// `chunk_len` and stay there — a run holding 50 rows costs one 64-element
/// chunk, not a 4096-element one, which matters because a single
/// partitioning pass materializes up to 256 runs × columns of them. Each
/// chunk is filled completely before the next one is grown, so the
/// sequence is scanned in maximal contiguous slices via
/// [`ChunkedVec::chunks`] / [`ChunkedVec::tail_slice`].
#[derive(Clone, Debug)]
pub struct ChunkedVec<T> {
    chunks: Vec<Vec<T>>,
    chunk_len: usize,
    len: usize,
}

impl<T: Copy> Default for ChunkedVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> ChunkedVec<T> {
    /// Create an empty vector with the default chunk length.
    pub fn new() -> Self {
        Self::with_chunk_len(DEFAULT_CHUNK_LEN)
    }

    /// Create an empty vector with a custom chunk length (must be > 0).
    pub fn with_chunk_len(chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "chunk length must be positive");
        Self { chunks: Vec::new(), chunk_len, len: 0 }
    }

    /// Number of elements stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured chunk length.
    #[inline]
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// Remaining capacity in the tail chunk (0 if a new chunk is needed).
    #[inline]
    fn tail_room(&self) -> usize {
        match self.chunks.last() {
            Some(c) => c.capacity() - c.len(),
            None => 0,
        }
    }

    /// Add a fresh chunk: capacity doubles with the stored length, clamped
    /// to `[MIN_CHUNK_LEN, chunk_len]` (tiny vectors stay tiny, large ones
    /// settle on the configured chunk size).
    #[inline]
    fn grow(&mut self) {
        let target = self
            .len
            .max(1)
            .next_power_of_two()
            .clamp(MIN_CHUNK_LEN.min(self.chunk_len), self.chunk_len);
        self.chunks.push(Vec::with_capacity(target));
    }

    /// The tail chunk, guaranteed to have room for at least one element
    /// (grows first when full). Panic-free: `grow` always pushes a chunk.
    #[inline]
    fn tail_with_room(&mut self) -> &mut Vec<T> {
        if self.tail_room() == 0 {
            self.grow();
        }
        let last = self.chunks.len() - 1;
        &mut self.chunks[last]
    }

    /// Heap bytes held by the chunks (capacity, not length): the quantity
    /// the operator's memory budget accounts a materialized column at.
    pub fn mem_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| (c.capacity() * std::mem::size_of::<T>()) as u64).sum()
    }

    /// Append one element.
    #[inline]
    pub fn push(&mut self, value: T) {
        self.tail_with_room().push(value);
        self.len += 1;
    }

    /// Append a slice, splitting across chunk boundaries as needed.
    ///
    /// This is the hot append path: the software-write-combining flush
    /// appends one cache line (8 × u64) at a time, and since the chunk
    /// length is a multiple of 8 the split branch is almost never taken.
    #[inline]
    pub fn extend_from_slice(&mut self, mut values: &[T]) {
        self.len += values.len();
        while !values.is_empty() {
            let chunk = self.tail_with_room();
            let take = (chunk.capacity() - chunk.len()).min(values.len());
            let (head, rest) = values.split_at(take);
            chunk.extend_from_slice(head);
            values = rest;
        }
    }

    /// Append exactly `N` elements using a caller-supplied raw copy.
    ///
    /// This is the hook for the partitioning crate's non-temporal flush:
    /// when the tail chunk has contiguous room for the whole line, `copy`
    /// is invoked with a destination pointer valid for `N` writes and the
    /// line's source pointer, and may use streaming stores. Otherwise the
    /// line is appended through the ordinary (cached) path.
    ///
    /// `copy` must write exactly `N` elements from `src` to `dst` — it is
    /// handed raw pointers whose validity this method guarantees.
    #[inline]
    pub fn extend_with_line<const N: usize>(
        &mut self,
        line: &[T; N],
        copy: impl FnOnce(*mut T, *const T),
    ) {
        let mut room = self.tail_room();
        if room < N {
            if room == 0 && self.chunk_len >= N {
                self.grow();
                room = self.tail_room();
            }
            if room < N {
                // Chunk geometry can't host a whole line contiguously.
                self.extend_from_slice(line);
                return;
            }
        }
        debug_assert!(room >= N);
        // room ≥ N > 0 implies a tail chunk exists; the helper won't grow.
        let chunk = self.tail_with_room();
        let len = chunk.len();
        chunk.reserve(N);
        // SAFETY: `reserve` guarantees capacity for N more elements; `copy`
        // is contracted to initialize exactly N elements.
        unsafe {
            copy(chunk.as_mut_ptr().add(len), line.as_ptr());
            chunk.set_len(len + N);
        }
        self.len += N;
    }

    /// Random access (O(#chunks) walk; the kernels never use this — they
    /// scan contiguous slices).
    #[inline]
    pub fn get(&self, index: usize) -> Option<T> {
        if index >= self.len {
            return None;
        }
        let mut remaining = index;
        for c in &self.chunks {
            if remaining < c.len() {
                return Some(c[remaining]);
            }
            remaining -= c.len();
        }
        None
    }

    /// Iterate over the underlying contiguous slices.
    #[inline]
    pub fn chunks(&self) -> impl Iterator<Item = &[T]> {
        self.chunks.iter().map(|c| c.as_slice())
    }

    /// The contiguous slice starting at row `offset` and running to the end
    /// of the chunk containing it (empty iff `offset ≥ len`). Repeatedly
    /// advancing `offset` by the returned length walks the whole vector in
    /// maximal contiguous pieces — the aligned-block iteration the
    /// column-wise kernels use.
    #[inline]
    pub fn tail_slice(&self, offset: usize) -> &[T] {
        if offset >= self.len {
            return &[];
        }
        // Walk chunks; geometry may be irregular after `append`, so do not
        // assume uniform chunk lengths.
        let mut remaining = offset;
        for c in &self.chunks {
            if remaining < c.len() {
                return &c[remaining..];
            }
            remaining -= c.len();
        }
        &[]
    }

    /// Iterate contiguous slices starting at row `offset`.
    pub fn slices_from(&self, mut offset: usize) -> impl Iterator<Item = &[T]> {
        std::iter::from_fn(move || {
            let s = self.tail_slice(offset);
            if s.is_empty() {
                None
            } else {
                offset += s.len();
                Some(s)
            }
        })
    }

    /// Iterate over all elements.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.chunks().flat_map(|c| c.iter().copied())
    }

    /// Flatten into a contiguous `Vec` (test/diagnostic helper; the kernels
    /// never need contiguity).
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for c in self.chunks() {
            out.extend_from_slice(c);
        }
        out
    }

    /// Remove all elements, keeping the first chunk's allocation as a
    /// workhorse buffer.
    pub fn clear(&mut self) {
        self.chunks.truncate(1);
        if let Some(c) = self.chunks.first_mut() {
            c.clear();
        }
        self.len = 0;
    }

    /// Move all elements of `other` into `self`, leaving `other` empty.
    ///
    /// Chunks are moved wholesale when `self`'s tail chunk is full, so
    /// concatenating runs is O(#chunks), not O(#elements), in the common
    /// case where both sides use the same chunk length.
    pub fn append(&mut self, other: &mut Self) {
        if other.is_empty() {
            return;
        }
        if self.chunk_len == other.chunk_len && self.tail_room() == 0 {
            self.len += other.len;
            self.chunks.append(&mut other.chunks);
            other.len = 0;
            return;
        }
        // Slow path: element-wise copy; extend_from_slice maintains len.
        for chunk in std::mem::take(&mut other.chunks) {
            self.extend_from_slice(&chunk);
        }
        other.len = 0;
    }

    /// Build from a slice (convenience for tests and generators).
    pub fn from_slice(values: &[T]) -> Self {
        let mut v = Self::new();
        v.extend_from_slice(values);
        v
    }
}

impl<T: Copy + PartialEq> PartialEq for ChunkedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<T: Copy> FromIterator<T> for ChunkedVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for x in iter {
            v.push(x);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_across_chunks() {
        let mut v = ChunkedVec::with_chunk_len(4);
        for i in 0..11u64 {
            v.push(i);
        }
        assert_eq!(v.len(), 11);
        for i in 0..11u64 {
            assert_eq!(v.get(i as usize), Some(i));
        }
        assert_eq!(v.get(11), None);
    }

    #[test]
    fn extend_splits_across_boundary() {
        let mut v = ChunkedVec::with_chunk_len(8);
        v.extend_from_slice(&[1u64, 2, 3, 4, 5]);
        v.extend_from_slice(&[6, 7, 8, 9, 10, 11, 12]);
        assert_eq!(v.to_vec(), (1..=12).collect::<Vec<u64>>());
        // First chunk must be exactly full.
        assert_eq!(v.chunks().next().map(<[u64]>::len), Some(8));
    }

    #[test]
    fn extend_with_large_slice() {
        let mut v = ChunkedVec::with_chunk_len(4);
        let data: Vec<u64> = (0..37).collect();
        v.extend_from_slice(&data);
        assert_eq!(v.to_vec(), data);
    }

    #[test]
    fn chunks_are_uniform_except_last() {
        let mut v = ChunkedVec::with_chunk_len(16);
        v.extend_from_slice(&vec![7u64; 100]);
        let lens: Vec<usize> = v.chunks().map(<[u64]>::len).collect();
        assert_eq!(lens, vec![16, 16, 16, 16, 16, 16, 4]);
    }

    #[test]
    fn append_moves_chunks() {
        let mut a = ChunkedVec::with_chunk_len(4);
        a.extend_from_slice(&[1u64, 2, 3, 4]); // full tail
        let mut b = ChunkedVec::with_chunk_len(4);
        b.extend_from_slice(&[5u64, 6, 7, 8, 9]);
        a.append(&mut b);
        assert_eq!(a.to_vec(), vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert!(b.is_empty());
    }

    #[test]
    fn append_with_partial_tail_copies() {
        let mut a = ChunkedVec::with_chunk_len(4);
        a.extend_from_slice(&[1u64, 2, 3]); // partial tail
        let mut b = ChunkedVec::with_chunk_len(4);
        b.extend_from_slice(&[4u64, 5, 6, 7, 8]);
        a.append(&mut b);
        assert_eq!(a.to_vec(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(a.len(), 8);
        assert!(b.is_empty());
    }

    #[test]
    fn append_mismatched_chunk_len() {
        let mut a = ChunkedVec::with_chunk_len(3);
        a.extend_from_slice(&[1u64, 2, 3]);
        let mut b = ChunkedVec::with_chunk_len(5);
        b.extend_from_slice(&[4u64, 5, 6, 7]);
        a.append(&mut b);
        assert_eq!(a.to_vec(), vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn clear_keeps_workhorse_chunk() {
        let mut v = ChunkedVec::with_chunk_len(4);
        v.extend_from_slice(&[1u64, 2, 3, 4, 5]);
        v.clear();
        assert!(v.is_empty());
        v.push(9);
        assert_eq!(v.to_vec(), vec![9]);
    }

    #[test]
    fn equality_ignores_chunk_geometry() {
        let mut a = ChunkedVec::with_chunk_len(2);
        let mut b = ChunkedVec::with_chunk_len(7);
        for i in 0..20u64 {
            a.push(i);
            b.push(i);
        }
        assert_eq!(a, b);
        b.push(99);
        assert_ne!(a, b);
    }

    #[test]
    fn from_iterator() {
        let v: ChunkedVec<u64> = (0..100).collect();
        assert_eq!(v.len(), 100);
        assert_eq!(v.iter().sum::<u64>(), 4950);
    }

    #[test]
    #[should_panic(expected = "chunk length must be positive")]
    fn zero_chunk_len_panics() {
        let _ = ChunkedVec::<u64>::with_chunk_len(0);
    }

    #[test]
    fn tail_slice_walks_contiguously() {
        let mut v = ChunkedVec::with_chunk_len(4);
        v.extend_from_slice(&(0u64..11).collect::<Vec<_>>());
        assert_eq!(v.tail_slice(0), &[0, 1, 2, 3]);
        assert_eq!(v.tail_slice(2), &[2, 3]);
        assert_eq!(v.tail_slice(4), &[4, 5, 6, 7]);
        assert_eq!(v.tail_slice(9), &[9, 10]);
        assert_eq!(v.tail_slice(11), &[] as &[u64]);
        assert_eq!(v.tail_slice(100), &[] as &[u64]);
    }

    #[test]
    fn slices_from_reassembles_suffix() {
        let mut v = ChunkedVec::with_chunk_len(5);
        v.extend_from_slice(&(0u64..23).collect::<Vec<_>>());
        for offset in [0usize, 1, 5, 7, 22, 23] {
            let got: Vec<u64> = v.slices_from(offset).flatten().copied().collect();
            assert_eq!(got, (offset as u64..23).collect::<Vec<_>>(), "offset {offset}");
        }
    }

    #[test]
    fn tail_slice_survives_irregular_geometry_from_append() {
        let mut a = ChunkedVec::with_chunk_len(4);
        a.extend_from_slice(&[0u64, 1, 2, 3]);
        let mut b = ChunkedVec::with_chunk_len(4);
        b.extend_from_slice(&[4u64, 5]);
        a.append(&mut b); // tail chunk of length 2 in the middle of future appends
        a.extend_from_slice(&[6u64, 7, 8]);
        let got: Vec<u64> = a.slices_from(0).flatten().copied().collect();
        assert_eq!(got, (0..9).collect::<Vec<u64>>());
        // The partially-filled moved chunk was topped up to [4,5,6,7].
        assert_eq!(a.tail_slice(5), &[5, 6, 7]);
    }

    #[test]
    fn extend_with_line_fast_path() {
        let mut v = ChunkedVec::with_chunk_len(16);
        let line = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let mut used_fast = 0;
        for _ in 0..4 {
            v.extend_with_line(&line, |dst, src| {
                used_fast += 1;
                // SAFETY: `extend_with_line` passes `dst` valid for 8
                // writes and `src` is the 8-element line above.
                unsafe { std::ptr::copy_nonoverlapping(src, dst, 8) }
            });
        }
        assert_eq!(used_fast, 4, "all appends should take the raw path");
        assert_eq!(v.len(), 32);
        assert_eq!(v.to_vec(), line.repeat(4));
    }

    #[test]
    fn extend_with_line_falls_back_on_awkward_geometry() {
        // chunk_len 12 is not a multiple of 8: the second line straddles.
        let mut v = ChunkedVec::with_chunk_len(12);
        let line = [9u64; 8];
        // SAFETY: same contract as above — `dst` valid for 8 writes,
        // `src` is the 8-element line.
        v.extend_with_line(&line, |dst, src| unsafe { std::ptr::copy_nonoverlapping(src, dst, 8) });
        // SAFETY: as above.
        v.extend_with_line(&line, |dst, src| unsafe { std::ptr::copy_nonoverlapping(src, dst, 8) });
        assert_eq!(v.to_vec(), vec![9u64; 16]);
    }
}
