//! Property test: `FileStore` write→read is the identity on every run
//! shape `Run::check_consistent` accepts.
//!
//! The spill file format has no self-describing framing, so the only thing
//! standing between a spilled run and silent corruption is this invariant:
//! for any row count (including extent-boundary counts), any number of
//! state columns (including zero), any flag combination, and any key values
//! (including 0 and `u64::MAX`), reading a spill file back yields exactly
//! the run that was written.

use hsa_columnar::{Run, RunStore, EXTENT_WORDS};
use std::path::PathBuf;

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hsa-roundtrip-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_run(rng: &mut Rng, rows: usize, n_cols: usize, aggregated: bool, level: u32) -> Run {
    let mut run = Run::empty(level, n_cols, aggregated);
    for i in 0..rows {
        // First and last rows pin the extreme values; the rest are random.
        let key = match i {
            0 => 0,
            _ if i == rows - 1 => u64::MAX,
            _ => rng.next(),
        };
        run.keys.push(key);
        for col in run.cols.iter_mut() {
            col.push(rng.next());
        }
    }
    run.source_rows = rng.next();
    run
}

#[test]
fn every_accepted_run_shape_round_trips() {
    let dir = temp_dir("shapes");
    let store = RunStore::spilling_to(&dir).unwrap();
    let mut rng = Rng(0x0dd_ba11);

    // Row counts straddle the extent boundary on both sides (8192 words
    // natively; Miri runs against a shrunken extent so the same lattice
    // stays affordable under interpretation).
    let row_counts = [
        0usize,
        1,
        2,
        5,
        100,
        EXTENT_WORDS - 1,
        EXTENT_WORDS,
        EXTENT_WORDS + 1,
        EXTENT_WORDS * 2 + 5,
    ];
    #[cfg(not(miri))]
    let (col_counts, levels) = ([0usize, 1, 2, 5], [0u32, 3, 8]);
    #[cfg(miri)]
    let (col_counts, levels) = ([0usize, 2], [0u32, 3]);
    for &rows in &row_counts {
        for n_cols in col_counts {
            for aggregated in [false, true] {
                for level in levels {
                    let run = build_run(&mut rng, rows, n_cols, aggregated, level);
                    assert!(run.check_consistent().is_ok());
                    let handle = store.spill(run.clone()).unwrap();
                    assert_eq!(handle.len(), rows);
                    assert_eq!(handle.n_cols(), n_cols);
                    assert_eq!(handle.aggregated(), aggregated);
                    assert_eq!(handle.level(), level);
                    assert_eq!(handle.source_rows(), run.source_rows);
                    let back = handle.into_run().unwrap();
                    let tag = format!("rows {rows} cols {n_cols} agg {aggregated} lvl {level}");
                    assert_eq!(back.keys, run.keys, "{tag}");
                    assert_eq!(back.cols, run.cols, "{tag}");
                    assert_eq!(back.aggregated, run.aggregated, "{tag}");
                    assert_eq!(back.source_rows, run.source_rows, "{tag}");
                    assert_eq!(back.level, run.level, "{tag}");
                    assert!(back.check_consistent().is_ok(), "{tag}");
                }
            }
        }
    }

    // Restores consume the scratch files: anything left besides the
    // store's liveness lock is a parked reuse-pool file, truncated to
    // zero bytes (live spill bytes may not linger once reclaimed).
    let lingering = std::fs::read_dir(&dir)
        .map(|d| {
            d.flatten()
                .filter(|e| e.file_name().to_str().is_none_or(|n| !n.ends_with(".lock")))
                .filter(|e| e.metadata().map(|m| m.len() > 0).unwrap_or(true))
                .count()
        })
        .unwrap_or(0);
    assert_eq!(lingering, 0, "reclaimed spill files must be truncated empty");
    drop(store);
    let leftover = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    assert_eq!(leftover, 0, "dropping the store retires its lock and parked files");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_spills_do_not_collide() {
    let dir = temp_dir("concurrent");
    let store = RunStore::spilling_to(&dir).unwrap();
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let store = &store;
            scope.spawn(move || {
                // Fewer, smaller runs under Miri: same interleaving, a
                // fraction of the interpreted I/O.
                let (iters, max_rows) = if cfg!(miri) { (4, 50) } else { (16, 500) };
                let mut rng = Rng(t + 1);
                for _ in 0..iters {
                    let rows = (rng.next() % max_rows) as usize;
                    let run = build_run(&mut rng, rows, 2, false, 1);
                    let back = store.spill(run.clone()).unwrap().into_run().unwrap();
                    assert_eq!(back.keys, run.keys);
                    assert_eq!(back.cols, run.cols);
                }
            });
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
}
