//! Property test: every single-bit flip in a sealed spill file is
//! detected on restore.
//!
//! The HSARUN03 format layers four defences — a CRC32C over each extent
//! descriptor, a CRC32C trailer over each (possibly compressed) extent
//! payload, a header shape check against the in-memory metadata, and a
//! whole-file checksum in the footer — and their union must leave no
//! undetectable byte. Compression raises the stakes: a flipped bit in an
//! encoded payload can explode into many wrong words, so the payload CRC
//! is computed over the *encoded* bytes and checked before the decoder
//! runs. This suite flips one seeded-random bit per trial (plus targeted
//! flips in every structural region) across raw and compressed shapes and
//! requires `into_run` to answer with `AggError::SpillCorrupt` **every**
//! time: the acceptance bar is 100% detection, not "usually caught".
//!
//! All stores here run with `io_threads: 0` (synchronous in-line I/O):
//! the tests mutate scratch files directly, so the file must be complete
//! on disk the moment `spill` returns.

use hsa_columnar::{crc32c, Run, RunHandle, RunStore, SpillCodec, SpillConfig, EXTENT_WORDS};
use hsa_fault::{AggError, DiskBudget, FaultInjector};
use std::path::{Path, PathBuf};

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hsa-corrupt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Synchronous store: files are sealed on disk when `spill` returns.
fn sync_store(dir: &Path) -> RunStore {
    RunStore::spilling_with_config(
        dir,
        FaultInjector::none(),
        DiskBudget::unlimited(),
        SpillConfig { codec: SpillCodec::Auto, io_threads: 0 },
    )
    .unwrap()
}

/// Random keys and columns: every extent escapes to the raw codec.
fn build_run(rng: &mut Rng, rows: usize, n_cols: usize) -> Run {
    let mut run = Run::empty(1, n_cols, false);
    for _ in 0..rows {
        run.keys.push(rng.next());
        for col in run.cols.iter_mut() {
            col.push(rng.next());
        }
    }
    run.source_rows = rows as u64;
    run
}

/// Sorted keys + constant columns: every extent compresses (delta/RLE),
/// so random flips land in *encoded* payloads.
fn build_compressible_run(rows: usize, n_cols: usize) -> Run {
    let mut run = Run::empty(1, n_cols, false);
    for i in 0..rows as u64 {
        run.keys.push(i * 16);
        for col in run.cols.iter_mut() {
            col.push(7);
        }
    }
    run.source_rows = rows as u64;
    run
}

/// Spill `run` and return the handle plus the scratch file's path.
fn spill(store: &RunStore, run: &Run) -> (RunHandle, PathBuf) {
    let handle = store.spill(run.clone()).unwrap();
    let path = match &handle {
        RunHandle::Spilled(_, s) => s.path().to_path_buf(),
        RunHandle::Mem(_) => panic!("spilling store returned a resident handle"),
    };
    (handle, path)
}

fn flip_bit(path: &Path, bit: u64) {
    let mut bytes = std::fs::read(path).unwrap();
    bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
    std::fs::write(path, bytes).unwrap();
}

fn expect_corrupt(r: Result<Run, AggError>, context: &str) -> AggError {
    match r {
        Err(e @ AggError::SpillCorrupt { .. }) => e,
        Ok(_) => panic!("{context}: corruption restored as a valid run"),
        Err(other) => panic!("{context}: surfaced as {other:?}, not SpillCorrupt"),
    }
}

/// Flip one random bit per trial across many file shapes; detection must
/// be 100%. Shapes cover the degenerate empty file (header + footer
/// only), sub-extent columns, columns straddling extent boundaries, and
/// compressed (delta/RLE) extents alongside raw ones.
#[test]
fn every_single_bit_flip_is_detected() {
    let dir = temp_dir("bitflip");
    let store = sync_store(&dir);
    let mut rng = Rng(0xc0ffee);

    // (rows, n_cols, compressible)
    let (trials, shapes): (usize, &[(usize, usize, bool)]) = if cfg!(miri) {
        (8, &[(0, 0, false), (3, 1, false), (EXTENT_WORDS + 1, 1, true)])
    } else {
        (
            180,
            &[
                (0, 0, false),
                (1, 0, false),
                (7, 2, false),
                (100, 1, false),
                (EXTENT_WORDS - 1, 1, false),
                (EXTENT_WORDS + 3, 2, false),
                (1, 1, true),
                (100, 2, true),
                (EXTENT_WORDS + 3, 1, true),
            ],
        )
    };

    let mut detected = 0usize;
    for trial in 0..trials {
        let (rows, n_cols, compressible) = shapes[trial % shapes.len()];
        let run = if compressible {
            build_compressible_run(rows, n_cols)
        } else {
            build_run(&mut rng, rows, n_cols)
        };
        let (handle, path) = spill(&store, &run);
        let len = std::fs::metadata(&path).unwrap().len();
        let bit = rng.next() % (len * 8);
        flip_bit(&path, bit);
        expect_corrupt(
            handle.into_run(),
            &format!(
                "trial {trial} (rows {rows} cols {n_cols} comp {compressible}): \
                 bit {bit} of {len} bytes"
            ),
        );
        detected += 1;
    }
    assert_eq!(detected, trials, "every flipped bit must be caught");

    // The failed restores still consumed their scratch files.
    drop(store);
    let leftover = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    assert_eq!(leftover, 0, "corrupt scratch files must still be unlinked");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Targeted flips in each structural region, asserting the check that
/// catches them names itself correctly in the error's `what` field.
#[test]
fn structural_regions_name_their_failing_check() {
    let dir = temp_dir("regions");
    let store = sync_store(&dir);
    let mut rng = Rng(0xdecade);

    // A zero-column run whose single key column fits one extent. Random
    // keys escape to the raw codec, so the extent layout is fixed:
    // 48-byte header (magic, rows, n_cols, aggregated, source_rows,
    // level), then descriptor word, descriptor CRC word, rows*8 payload
    // bytes, trailer word, then the 32-byte footer (extent count, byte
    // count, file crc, magic).
    let rows = (EXTENT_WORDS / 2).min(64) as i64;
    let payload = 48 + 16; // first payload byte
    let trailer = payload + rows * 8;
    let cases: &[(i64, &[&str])] = &[
        (0, &["magic"]),                            // header magic
        (8, &["shape"]),                            // row count
        (16, &["shape"]),                           // column count
        (24, &["file crc"]),                        // aggregated flag: only the file hash sees it
        (32, &["file crc"]),                        // source_rows
        (40, &["file crc"]),                        // level
        (48, &["extent header"]),                   // extent descriptor (codec/count/length)
        (56, &["extent header"]),                   // descriptor CRC word
        (payload, &["extent crc"]),                 // first payload word of the key column
        (trailer - 8, &["extent crc"]),             // last payload word
        (trailer, &["extent crc", "extent words"]), // extent trailer
        (-32, &["extent count"]),                   // footer extent count
        (-24, &["byte count"]),                     // footer byte count
        (-16, &["file crc"]),                       // footer whole-file checksum
        (-8, &["footer magic"]),                    // footer magic
    ];

    for &(offset, expect) in cases {
        let run = build_run(&mut rng, rows as usize, 0);
        let (handle, path) = spill(&store, &run);
        let len = std::fs::metadata(&path).unwrap().len() as i64;
        assert_eq!(len, trailer + 8 + 32, "raw single-extent layout changed");
        let byte = if offset < 0 { len + offset } else { offset } as u64;
        flip_bit(&path, byte * 8 + (rng.next() % 8));
        let e = expect_corrupt(handle.into_run(), &format!("byte {byte}"));
        let AggError::SpillCorrupt { what, .. } = &e else { unreachable!() };
        assert!(
            expect.contains(&what.as_str()),
            "byte {byte}: caught by {what:?}, expected one of {expect:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A payload that passes its CRC but does not decode cleanly is still
/// corruption ("extent codec") — the decoder is the defence in depth
/// behind the checksum. Forged here by rewriting an extent with an
/// unknown codec id and refreshing every checksum the forgery touches.
#[test]
fn undecodable_payload_with_valid_checksums_is_extent_codec_corruption() {
    let dir = temp_dir("codec");
    let store = sync_store(&dir);
    let mut rng = Rng(0xfeed);
    let rows = 8usize;
    let run = build_run(&mut rng, rows, 0);
    let (handle, path) = spill(&store, &run);

    let mut bytes = std::fs::read(&path).unwrap();
    let word = |b: &[u8], at: usize| {
        let mut le = [0u8; 8];
        le.copy_from_slice(&b[at..at + 8]);
        u64::from_le_bytes(le)
    };
    // Rewrite the descriptor's codec id to an unknown value and re-seal
    // its CRC so only the decoder can object.
    let desc = word(&bytes, 48) | 0xff;
    bytes[48..56].copy_from_slice(&desc.to_le_bytes());
    let desc_crc = u64::from(crc32c(&desc.to_le_bytes()));
    bytes[56..64].copy_from_slice(&desc_crc.to_le_bytes());
    // Recompute the footer's whole-file CRC over the forged body.
    let body_end = bytes.len() - 32;
    let file_crc = u64::from(crc32c(&bytes[..body_end]));
    bytes[body_end + 16..body_end + 24].copy_from_slice(&file_crc.to_le_bytes());
    std::fs::write(&path, bytes).unwrap();

    let e = expect_corrupt(handle.into_run(), "unknown codec id");
    let AggError::SpillCorrupt { what, .. } = &e else { unreachable!() };
    assert_eq!(what, "extent codec");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncation at every seeded cut point — including mid-header,
/// mid-payload, mid-trailer, and mid-footer — is a typed corruption
/// error, never a short read that silently yields a smaller run.
#[test]
fn truncation_at_any_point_is_detected() {
    let dir = temp_dir("truncate");
    let store = sync_store(&dir);
    let mut rng = Rng(0x7525_5eed);

    let trials = if cfg!(miri) { 4 } else { 48 };
    for trial in 0..trials {
        // Alternate raw and compressed bodies so cuts land in both.
        let run =
            if trial % 2 == 0 { build_run(&mut rng, 50, 1) } else { build_compressible_run(50, 1) };
        let (handle, path) = spill(&store, &run);
        let len = std::fs::metadata(&path).unwrap().len();
        let keep = rng.next() % len; // strictly shorter than the file
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(keep as usize);
        std::fs::write(&path, bytes).unwrap();
        expect_corrupt(handle.into_run(), &format!("trial {trial}: truncated to {keep}/{len}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The public CRC32C implementation matches the published Castagnoli
/// reference vectors (RFC 3720 appendix / kernel test vectors).
#[test]
fn crc32c_matches_reference_vectors() {
    let vectors: &[(&[u8], u32)] = &[
        (b"", 0x0000_0000),
        (b"a", 0xC1D0_4330),
        (b"abc", 0x364B_3FB7),
        (b"123456789", 0xE306_9283),
        (b"The quick brown fox jumps over the lazy dog", 0x2262_0404),
    ];
    for &(input, expect) in vectors {
        assert_eq!(crc32c(input), expect, "crc32c({:?})", String::from_utf8_lossy(input));
    }
}
