//! Property test: every single-bit flip in a sealed spill file is
//! detected on restore.
//!
//! The HSARUN02 format layers three defences — per-extent CRC32C
//! trailers, a header shape check against the in-memory metadata, and a
//! whole-file checksum in the footer — and their union must leave no
//! undetectable byte. This suite flips one seeded-random bit per trial
//! (plus targeted flips in every structural region) and requires
//! `into_run` to answer with `AggError::SpillCorrupt` **every** time:
//! the acceptance bar is 100% detection, not "usually caught".

use hsa_columnar::{crc32c, Run, RunHandle, RunStore, EXTENT_WORDS};
use hsa_fault::AggError;
use std::path::{Path, PathBuf};

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hsa-corrupt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_run(rng: &mut Rng, rows: usize, n_cols: usize) -> Run {
    let mut run = Run::empty(1, n_cols, false);
    for _ in 0..rows {
        run.keys.push(rng.next());
        for col in run.cols.iter_mut() {
            col.push(rng.next());
        }
    }
    run.source_rows = rows as u64;
    run
}

/// Spill `run` and return the handle plus the scratch file's path.
fn spill(store: &RunStore, run: &Run) -> (RunHandle, PathBuf) {
    let handle = store.spill(run).unwrap();
    let path = match &handle {
        RunHandle::Spilled(_, s) => s.path().to_path_buf(),
        RunHandle::Mem(_) => panic!("spilling store returned a resident handle"),
    };
    (handle, path)
}

fn flip_bit(path: &Path, bit: u64) {
    let mut bytes = std::fs::read(path).unwrap();
    bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
    std::fs::write(path, bytes).unwrap();
}

fn expect_corrupt(r: Result<Run, AggError>, context: &str) -> AggError {
    match r {
        Err(e @ AggError::SpillCorrupt { .. }) => e,
        Ok(_) => panic!("{context}: corruption restored as a valid run"),
        Err(other) => panic!("{context}: surfaced as {other:?}, not SpillCorrupt"),
    }
}

/// Flip one random bit per trial across many file shapes; detection must
/// be 100%. Shapes cover the degenerate empty file (header + footer
/// only), sub-extent columns, and columns straddling extent boundaries.
#[test]
fn every_single_bit_flip_is_detected() {
    let dir = temp_dir("bitflip");
    let store = RunStore::spilling_to(&dir).unwrap();
    let mut rng = Rng(0xc0ffee);

    let (trials, shapes): (usize, &[(usize, usize)]) = if cfg!(miri) {
        (6, &[(0, 0), (3, 1), (EXTENT_WORDS + 1, 1)])
    } else {
        (160, &[(0, 0), (1, 0), (7, 2), (100, 1), (EXTENT_WORDS - 1, 1), (EXTENT_WORDS + 3, 2)])
    };

    let mut detected = 0usize;
    for trial in 0..trials {
        let (rows, n_cols) = shapes[trial % shapes.len()];
        let run = build_run(&mut rng, rows, n_cols);
        let (handle, path) = spill(&store, &run);
        let len = std::fs::metadata(&path).unwrap().len();
        let bit = rng.next() % (len * 8);
        flip_bit(&path, bit);
        expect_corrupt(
            handle.into_run(),
            &format!("trial {trial} (rows {rows} cols {n_cols}): bit {bit} of {} bytes", len),
        );
        detected += 1;
    }
    assert_eq!(detected, trials, "every flipped bit must be caught");

    // The failed restores still consumed their scratch files.
    drop(store);
    let leftover = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    assert_eq!(leftover, 0, "corrupt scratch files must still be unlinked");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Targeted flips in each structural region, asserting the check that
/// catches them names itself correctly in the error's `what` field.
#[test]
fn structural_regions_name_their_failing_check() {
    let dir = temp_dir("regions");
    let store = RunStore::spilling_to(&dir).unwrap();
    let mut rng = Rng(0xdecade);

    // (byte offset from start or negative-from-end, expected `what`s).
    // 48-byte header: magic, rows, n_cols, aggregated, source_rows,
    // level. 32-byte footer: extent count, byte count, file crc, magic.
    let rows = 64usize; // one extent per column, payload well inside it
    let cases: &[(i64, &[&str])] = &[
        (0, &["magic"]),                                // header magic
        (8, &["shape"]),                                // row count
        (16, &["shape"]),                               // column count
        (24, &["file crc"]),   // aggregated flag: only the file hash sees it
        (32, &["file crc"]),   // source_rows
        (48, &["extent crc"]), // first payload word of the key column
        (48 + 63 * 8, &["extent crc"]), // last payload word of the key column
        (48 + 64 * 8, &["extent crc", "extent words"]), // extent trailer
        (-32, &["extent count"]), // footer extent count
        (-24, &["byte count"]), // footer byte count
        (-16, &["file crc"]),  // footer whole-file checksum
        (-8, &["footer magic"]), // footer magic
    ];

    for &(offset, expect) in cases {
        let run = build_run(&mut rng, rows, 0);
        let (handle, path) = spill(&store, &run);
        let len = std::fs::metadata(&path).unwrap().len() as i64;
        let byte = if offset < 0 { len + offset } else { offset } as u64;
        flip_bit(&path, byte * 8 + (rng.next() % 8));
        let e = expect_corrupt(handle.into_run(), &format!("byte {byte}"));
        let AggError::SpillCorrupt { what, .. } = &e else { unreachable!() };
        assert!(
            expect.contains(&what.as_str()),
            "byte {byte}: caught by {what:?}, expected one of {expect:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncation at every seeded cut point — including mid-header,
/// mid-payload, mid-trailer, and mid-footer — is a typed corruption
/// error, never a short read that silently yields a smaller run.
#[test]
fn truncation_at_any_point_is_detected() {
    let dir = temp_dir("truncate");
    let store = RunStore::spilling_to(&dir).unwrap();
    let mut rng = Rng(0x7525_5eed);

    let trials = if cfg!(miri) { 4 } else { 48 };
    for trial in 0..trials {
        let run = build_run(&mut rng, 50, 1);
        let (handle, path) = spill(&store, &run);
        let len = std::fs::metadata(&path).unwrap().len();
        let keep = rng.next() % len; // strictly shorter than the file
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(keep as usize);
        std::fs::write(&path, bytes).unwrap();
        expect_corrupt(handle.into_run(), &format!("trial {trial}: truncated to {keep}/{len}"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The public CRC32C implementation matches the published Castagnoli
/// reference vectors (RFC 3720 appendix / kernel test vectors).
#[test]
fn crc32c_matches_reference_vectors() {
    let vectors: &[(&[u8], u32)] = &[
        (b"", 0x0000_0000),
        (b"a", 0xC1D0_4330),
        (b"abc", 0x364B_3FB7),
        (b"123456789", 0xE306_9283),
        (b"The quick brown fox jumps over the lazy dog", 0x2262_0404),
    ];
    for &(input, expect) in vectors {
        assert_eq!(crc32c(input), expect, "crc32c({:?})", String::from_utf8_lossy(input));
    }
}
