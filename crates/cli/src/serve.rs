//! `hsa serve`: a std-only concurrent aggregation service over the
//! shared worker runtime.
//!
//! The server speaks newline-delimited JSON over TCP. Each connection
//! drives at most one query at a time through three phases — submit,
//! stream rows, finish — while any number of connections run
//! concurrently on the process-wide runtime, each with its own
//! [`QueryGrant`] carved out of the server's global budgets by the
//! [`AdmissionController`]. A query is cancellable *by id* from any
//! connection, so a controller connection can reap a runaway query it
//! did not start.
//!
//! Requests (one JSON object per line):
//!
//! ```text
//! {"op":"submit","aggs":[["count"],["sum",0]],"threads":2,
//!  "mem_budget":8388608,"disk_budget":1048576,"timeout_ms":5000}
//! {"op":"rows","keys":[1,2,1],"cols":[[10,20,30]]}
//! {"op":"finish"}
//! {"op":"cancel","query_id":7}
//! ```
//!
//! Responses: `{"ok":"admitted","query_id":N}` (or a
//! `{"ok":"queued",...}` notice while the admission controller waits for
//! capacity), one `{"ok":"rows",...}` ack per chunk, then on finish a
//! stream of `{"block":{"keys":[...],"cols":[[...],...]}}` rows in
//! sorted-key order followed by `{"done":{"query_id":N,"report":{...}}}`
//! with the full v2 [`RunReport`]. Failures are
//! `{"error":"<detail>","class":"<label>","exit_class":K}` with the same
//! error taxonomy as the batch CLI, and leave the connection usable for
//! the next submit.

use crate::args::{parse_size, UsageError};
use crate::error::{CliError, ErrorClass};
use hashing_is_sorting::obs::json::{parse as parse_json, JsonValue};
use hashing_is_sorting::{
    AdmissionConfig, AdmissionController, AdmissionDenied, AdmissionOutcome, AdmissionRequest,
    AggSpec, AggStream, AggregateConfig, CancelToken, ExecEnv, ObsConfig, QueryGrant,
};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Result rows per `block` line; small enough that a slow client sees
/// steady progress, large enough that framing cost stays negligible.
const BLOCK_ROWS: usize = 1024;

/// Usage text shown by `hsa serve --help`.
pub const SERVE_USAGE: &str = "\
usage: hsa serve --listen <addr> [options]

Serve concurrent GROUP BY queries over newline-delimited JSON on a TCP
socket. Each connection submits one query at a time, streams rows in,
and receives result blocks plus the final run report; queries from all
connections execute concurrently on one shared worker runtime and can
be cancelled by id from any connection.

options:
  --listen <addr>         bind address, e.g. 127.0.0.1:7070 (required;
                          port 0 picks a free port, printed on stderr)
  --threads <n>           worker slots per query (default: all cores)
  --mem-total <size>      global memory pool carved into per-query
                          slices by the admission controller (K/M/G
                          suffixes; default unmetered)
  --disk-total <size>     global spill-disk pool (default unmetered)
  --max-queries <n>       concurrent-query cap (default unbounded)
  --spill-dir <path>      base scratch directory; each query spills
                          into a private subdirectory of it, removed
                          when the query finishes, fails, or is dropped
  --admit-timeout-ms <n>  how long a saturated server keeps a new query
                          queued before failing it (default 10000)
  --help                  this text";

/// Parsed `hsa serve` command line.
#[derive(Debug, Clone)]
pub struct ServeArgs {
    /// Bind address (`--listen`).
    pub listen: String,
    /// Worker slots per admitted query (`--threads`).
    pub threads: usize,
    /// Global memory pool (`--mem-total`).
    pub mem_total: Option<u64>,
    /// Global spill-disk pool (`--disk-total`).
    pub disk_total: Option<u64>,
    /// Concurrent-query cap (`--max-queries`).
    pub max_queries: Option<usize>,
    /// Base scratch directory (`--spill-dir`).
    pub spill_dir: Option<String>,
    /// Queue wait bound for saturated admission (`--admit-timeout-ms`).
    pub admit_timeout_ms: u64,
}

/// Parse the argument vector after the `serve` subcommand word.
pub fn parse_serve_args(argv: impl IntoIterator<Item = String>) -> Result<ServeArgs, UsageError> {
    let mut args = argv.into_iter();
    let mut listen = None;
    let mut threads = None;
    let mut mem_total = None;
    let mut disk_total = None;
    let mut max_queries = None;
    let mut spill_dir = None;
    let mut admit_timeout_ms = 10_000u64;
    let need = |flag: &str, v: Option<String>| {
        v.ok_or_else(|| UsageError(format!("{flag} needs a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(UsageError(SERVE_USAGE.to_string())),
            "--listen" => listen = Some(need("--listen", args.next())?),
            "--threads" => {
                let v = need("--threads", args.next())?;
                threads =
                    Some(v.parse().map_err(|_| UsageError(format!("bad thread count {v:?}")))?);
            }
            "--mem-total" => mem_total = Some(parse_size(&need("--mem-total", args.next())?)?),
            "--disk-total" => disk_total = Some(parse_size(&need("--disk-total", args.next())?)?),
            "--max-queries" => {
                let v = need("--max-queries", args.next())?;
                max_queries =
                    Some(v.parse().map_err(|_| UsageError(format!("bad query cap {v:?}")))?);
            }
            "--spill-dir" => spill_dir = Some(need("--spill-dir", args.next())?),
            "--admit-timeout-ms" => {
                let v = need("--admit-timeout-ms", args.next())?;
                admit_timeout_ms =
                    v.parse().map_err(|_| UsageError(format!("bad timeout {v:?}")))?;
            }
            other => return Err(UsageError(format!("unknown serve option {other:?}"))),
        }
    }
    Ok(ServeArgs {
        listen: listen.ok_or_else(|| UsageError("serve needs --listen <addr>".into()))?,
        threads: threads.unwrap_or_else(|| AggregateConfig::default().threads),
        mem_total,
        disk_total,
        max_queries,
        spill_dir,
        admit_timeout_ms,
    })
}

/// Shared server state: the admission ledger plus the cancel-by-id
/// registry spanning all connections.
struct ServeState {
    admission: AdmissionController,
    /// Live queries' cancel tokens, keyed by query id. Entries are
    /// removed when the owning query finishes or fails, on every path.
    cancels: Mutex<HashMap<u64, CancelToken>>,
    threads: usize,
    spill_dir: Option<PathBuf>,
    admit_timeout: Duration,
}

/// Bind and serve until the process dies. Returns only on bind failure.
pub fn serve(args: &ServeArgs) -> Result<(), CliError> {
    let listener = TcpListener::bind(&args.listen)
        .map_err(|e| CliError::new(ErrorClass::Io, format!("cannot bind {}: {e}", args.listen)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| CliError::new(ErrorClass::Io, format!("cannot read bound address: {e}")))?;
    eprintln!("[serve] listening on {addr}");
    serve_on(listener, args);
    Ok(())
}

/// Accept loop over an already-bound listener (tests bind port 0 first).
pub fn serve_on(listener: TcpListener, args: &ServeArgs) {
    let state = Arc::new(ServeState {
        admission: AdmissionController::new(AdmissionConfig {
            memory_bytes: args.mem_total,
            disk_bytes: args.disk_total,
            max_queries: args.max_queries,
        }),
        cancels: Mutex::new(HashMap::new()),
        threads: args.threads.max(1),
        spill_dir: args.spill_dir.as_ref().map(PathBuf::from),
        admit_timeout: Duration::from_millis(args.admit_timeout_ms),
    });
    for conn in listener.incoming() {
        let Ok(stream) = conn else { continue };
        let state = Arc::clone(&state);
        let _ = std::thread::Builder::new()
            .name("hsa-serve-conn".to_string())
            .spawn(move || handle_conn(stream, &state));
    }
}

/// One in-flight query on a connection.
struct ActiveQuery {
    id: u64,
    stream: AggStream,
    /// Holds this query's slice of the global pools until dropped.
    _grant: QueryGrant,
    /// Number of input columns the submitted specs reference.
    n_inputs: usize,
    scratch: Option<PathBuf>,
}

fn handle_conn(stream: TcpStream, state: &ServeState) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut active: Option<ActiveQuery> = None;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = match parse_json(&line) {
            Ok(v) => v,
            Err(e) => {
                let err = CliError::invalid(format!("bad request JSON: {e}"));
                if write_error(&mut writer, &err, None).is_err() {
                    break;
                }
                continue;
            }
        };
        let result = match request.get("op").and_then(JsonValue::as_str) {
            Some("submit") => op_submit(&request, &mut active, state, &mut writer),
            Some("rows") => op_rows(&request, &mut active, state, &mut writer),
            Some("finish") => op_finish(&mut active, state, &mut writer),
            Some("cancel") => op_cancel(&request, state, &mut writer),
            _ => {
                let err = CliError::invalid("missing or unknown \"op\"");
                write_error(&mut writer, &err, active.as_ref().map(|a| a.id))
            }
        };
        if result.is_err() {
            break; // the socket is gone; cleanup below
        }
    }
    // Connection torn down with a query in flight: release everything.
    if let Some(q) = active.take() {
        cleanup_query(q, state);
    }
}

/// Deregister the cancel token and remove the scratch directory; the
/// grant (and with it the global-pool slice) releases on drop.
fn cleanup_query(q: ActiveQuery, state: &ServeState) {
    if let Ok(mut cancels) = state.cancels.lock() {
        cancels.remove(&q.id);
    }
    drop(q.stream);
    if let Some(dir) = q.scratch {
        let _ = std::fs::remove_dir_all(dir);
    }
}

fn op_submit(
    request: &JsonValue,
    active: &mut Option<ActiveQuery>,
    state: &ServeState,
    writer: &mut TcpStream,
) -> std::io::Result<()> {
    if active.is_some() {
        let err = CliError::invalid("a query is already in flight on this connection");
        return write_error(writer, &err, active.as_ref().map(|a| a.id));
    }
    let specs = match parse_specs(request) {
        Ok(s) => s,
        Err(e) => return write_error(writer, &e, None),
    };
    let n_inputs = specs.iter().filter_map(|s| s.input).map(|i| i + 1).max().unwrap_or(0);
    let threads = match request.get("threads").and_then(JsonValue::as_u64) {
        // A query cannot claim more slots than the server allots.
        Some(n) => (n as usize).clamp(1, state.threads),
        None => state.threads,
    };
    let mut cfg = AggregateConfig { threads, ..AggregateConfig::default() };
    if let Some(kb) = request.get("cache_kb").and_then(JsonValue::as_u64) {
        cfg.cache_bytes = (kb.max(1) as usize) << 10;
    }
    let admission = AdmissionRequest {
        memory_bytes: request.get("mem_budget").and_then(JsonValue::as_u64),
        disk_bytes: request.get("disk_budget").and_then(JsonValue::as_u64),
        deadline: request.get("timeout_ms").and_then(JsonValue::as_u64).map(Duration::from_millis),
    };
    // First a non-blocking probe so the client hears "queued" instead of
    // silence, then the bounded blocking wait.
    let outcome = match state.admission.try_admit(&admission) {
        AdmissionOutcome::Queued { active: n, waiting_for } => {
            write_line(
                writer,
                &JsonValue::obj([
                    ("ok", JsonValue::str("queued")),
                    ("active", JsonValue::U64(n as u64)),
                    ("waiting_for", JsonValue::str(waiting_for)),
                ]),
            )?;
            state.admission.admit_blocking(&admission, Some(state.admit_timeout))
        }
        outcome => outcome,
    };
    let grant = match outcome {
        AdmissionOutcome::Admitted(grant) => grant,
        AdmissionOutcome::Denied(denied) => {
            let class = match denied {
                AdmissionDenied::ShuttingDown => ErrorClass::Internal,
                _ => ErrorClass::Budget,
            };
            return write_error(writer, &CliError::new(class, format!("denied: {denied}")), None);
        }
        AdmissionOutcome::Queued { waiting_for, .. } => {
            let err = CliError::new(
                ErrorClass::Budget,
                format!("admission timed out waiting for {waiting_for}"),
            );
            return write_error(writer, &err, None);
        }
    };
    let mut env = ExecEnv::unrestricted()
        .with_budget(grant.budget())
        .with_disk_budget(grant.disk())
        .with_cancel(grant.cancel());
    // The query id is only known once the stream exists, but the spill
    // store captures its directory at open — so scratch directories get
    // a process-unique sequence number instead of the query id. Each is
    // removed when its query completes, on every path.
    let scratch = match &state.spill_dir {
        Some(base) => {
            // ORDERING: Relaxed — a unique-name counter, nothing else is
            // published through it.
            let n = SCRATCH_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let dir = base.join(format!("scratch-{}-{n}", std::process::id()));
            if let Err(e) = std::fs::create_dir_all(&dir) {
                let err = CliError::new(ErrorClass::Io, format!("cannot create scratch dir: {e}"));
                return write_error(writer, &err, None);
            }
            env = env.with_spill_dir(&dir);
            Some(dir)
        }
        None => None,
    };
    let agg = match AggStream::new(&specs, &cfg, &env, &ObsConfig::disabled()) {
        Ok(s) => s,
        Err(e) => {
            if let Some(dir) = &scratch {
                let _ = std::fs::remove_dir_all(dir);
            }
            return write_error(writer, &CliError::from(e), None);
        }
    };
    let id = agg.query_id();
    if let Ok(mut cancels) = state.cancels.lock() {
        cancels.insert(id, grant.cancel());
    }
    *active = Some(ActiveQuery { id, stream: agg, _grant: grant, n_inputs, scratch });
    write_line(
        writer,
        &JsonValue::obj([("ok", JsonValue::str("admitted")), ("query_id", JsonValue::U64(id))]),
    )
}

/// Scratch-directory name counter shared by all connections.
static SCRATCH_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn op_rows(
    request: &JsonValue,
    active: &mut Option<ActiveQuery>,
    state: &ServeState,
    writer: &mut TcpStream,
) -> std::io::Result<()> {
    let Some(q) = active.as_mut() else {
        return write_error(writer, &CliError::invalid("no query in flight (submit first)"), None);
    };
    let Some(keys) = request.get("keys").and_then(u64_vec) else {
        return write_error(writer, &CliError::invalid("rows needs \"keys\": [u64]"), Some(q.id));
    };
    let cols: Vec<Vec<u64>> = match request.get("cols") {
        None => Vec::new(),
        Some(v) => match v.as_array().map(|a| a.iter().map(u64_vec).collect::<Option<Vec<_>>>()) {
            Some(Some(cols)) => cols,
            _ => {
                let err = CliError::invalid("rows needs \"cols\": [[u64]]");
                return write_error(writer, &err, Some(q.id));
            }
        },
    };
    if cols.len() < q.n_inputs {
        let err = CliError::invalid(format!(
            "query references {} input column(s), got {}",
            q.n_inputs,
            cols.len()
        ));
        return write_error(writer, &err, Some(q.id));
    }
    let col_refs: Vec<&[u64]> = cols.iter().map(Vec::as_slice).collect();
    match q.stream.push(&keys, &col_refs) {
        Ok(()) => {
            let ack = JsonValue::obj([
                ("ok", JsonValue::str("rows")),
                ("query_id", JsonValue::U64(q.id)),
                ("pushed", JsonValue::U64(keys.len() as u64)),
                ("total", JsonValue::U64(q.stream.rows_pushed())),
            ]);
            write_line(writer, &ack)
        }
        Err(e) => {
            // The stream is poisoned: tear the query down, keep the
            // connection; the client may submit a fresh query.
            let id = q.id;
            let q = active.take().expect("checked in-flight above");
            cleanup_query(q, state);
            write_error(writer, &CliError::from(e), Some(id))
        }
    }
}

fn op_finish(
    active: &mut Option<ActiveQuery>,
    state: &ServeState,
    writer: &mut TcpStream,
) -> std::io::Result<()> {
    let Some(q) = active.take() else {
        return write_error(writer, &CliError::invalid("no query in flight (submit first)"), None);
    };
    let ActiveQuery { id, stream, _grant, scratch, .. } = q;
    let finished = stream.finish();
    // The query is over either way: free the id and the scratch space
    // before streaming results (the output is already materialized).
    if let Ok(mut cancels) = state.cancels.lock() {
        cancels.remove(&id);
    }
    if let Some(dir) = &scratch {
        let _ = std::fs::remove_dir_all(dir);
    }
    let (out, report) = match finished {
        Ok(v) => v,
        Err(e) => return write_error(writer, &CliError::from(e), Some(id)),
    };
    drop(_grant);
    // Sorted-key order makes served output deterministic — bit-identical
    // across runs and to a sequential execution of the same query.
    let rows = out.sorted_rows();
    let n_cols = rows.first().map(|(_, vals)| vals.len()).unwrap_or(0);
    for block in rows.chunks(BLOCK_ROWS) {
        let keys = JsonValue::u64_array(block.iter().map(|(k, _)| *k));
        let cols = JsonValue::Array(
            (0..n_cols)
                .map(|c| JsonValue::u64_array(block.iter().map(|(_, vals)| vals[c])))
                .collect(),
        );
        let line = JsonValue::obj([("block", JsonValue::obj([("keys", keys), ("cols", cols)]))]);
        write_line(writer, &line)?;
    }
    let done = JsonValue::obj([(
        "done",
        JsonValue::obj([
            ("query_id", JsonValue::U64(id)),
            ("groups", JsonValue::U64(out.n_groups() as u64)),
            ("report", report.to_json()),
        ]),
    )]);
    write_line(writer, &done)
}

fn op_cancel(
    request: &JsonValue,
    state: &ServeState,
    writer: &mut TcpStream,
) -> std::io::Result<()> {
    let Some(id) = request.get("query_id").and_then(JsonValue::as_u64) else {
        return write_error(writer, &CliError::invalid("cancel needs \"query_id\""), None);
    };
    let token = state.cancels.lock().ok().and_then(|c| c.get(&id).cloned());
    match token {
        Some(token) => {
            token.cancel();
            write_line(
                writer,
                &JsonValue::obj([
                    ("ok", JsonValue::str("cancelled")),
                    ("query_id", JsonValue::U64(id)),
                ]),
            )
        }
        None => write_error(writer, &CliError::invalid(format!("no live query {id}")), None),
    }
}

/// Parse `"aggs": [["count"],["sum",0],...]` into specs. An omitted or
/// empty list is `DISTINCT` over the keys.
fn parse_specs(request: &JsonValue) -> Result<Vec<AggSpec>, CliError> {
    let Some(aggs) = request.get("aggs") else { return Ok(Vec::new()) };
    let Some(entries) = aggs.as_array() else {
        return Err(CliError::invalid("\"aggs\" must be an array of [fn, col?] pairs"));
    };
    let mut specs = Vec::with_capacity(entries.len());
    for entry in entries {
        let parts = entry.as_array();
        let func = parts
            .and_then(|p| p.first())
            .and_then(JsonValue::as_str)
            .ok_or_else(|| CliError::invalid("each agg needs a function name"))?;
        let col = parts.and_then(|p| p.get(1)).and_then(JsonValue::as_u64).unwrap_or(0) as usize;
        specs.push(match func {
            "count" => AggSpec::count(),
            "sum" => AggSpec::sum(col),
            "min" => AggSpec::min(col),
            "max" => AggSpec::max(col),
            "avg" => AggSpec::avg(col),
            other => return Err(CliError::invalid(format!("unknown aggregate {other:?}"))),
        });
    }
    Ok(specs)
}

fn u64_vec(v: &JsonValue) -> Option<Vec<u64>> {
    v.as_array()?.iter().map(JsonValue::as_u64).collect()
}

fn write_line(writer: &mut TcpStream, value: &JsonValue) -> std::io::Result<()> {
    let mut text = value.to_string_compact();
    text.push('\n');
    writer.write_all(text.as_bytes())
}

fn write_error(
    writer: &mut TcpStream,
    err: &CliError,
    query_id: Option<u64>,
) -> std::io::Result<()> {
    let mut pairs = vec![
        ("error".to_string(), JsonValue::str(&err.message)),
        ("class".to_string(), JsonValue::str(err.class.label())),
        ("exit_class".to_string(), JsonValue::U64(u64::from(err.class.exit_code()))),
    ];
    if let Some(id) = query_id {
        pairs.push(("query_id".to_string(), JsonValue::U64(id)));
    }
    write_line(writer, &JsonValue::Object(pairs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Result<ServeArgs, UsageError> {
        parse_serve_args(argv.iter().map(|s| s.to_string()))
    }

    #[test]
    fn serve_args_full() {
        let a = parse(&[
            "--listen",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--mem-total",
            "64M",
            "--disk-total",
            "1G",
            "--max-queries",
            "4",
            "--spill-dir",
            "/tmp/hsa-serve",
            "--admit-timeout-ms",
            "500",
        ])
        .unwrap();
        assert_eq!(a.listen, "127.0.0.1:0");
        assert_eq!(a.threads, 2);
        assert_eq!(a.mem_total, Some(64 << 20));
        assert_eq!(a.disk_total, Some(1 << 30));
        assert_eq!(a.max_queries, Some(4));
        assert_eq!(a.spill_dir.as_deref(), Some("/tmp/hsa-serve"));
        assert_eq!(a.admit_timeout_ms, 500);
    }

    #[test]
    fn serve_args_require_listen() {
        assert!(parse(&[]).unwrap_err().0.contains("--listen"));
        assert!(parse(&["--listen"]).is_err());
        assert!(parse(&["--listen", "x", "--frobnicate"]).is_err());
    }

    #[test]
    fn spec_parsing_accepts_the_protocol_forms() {
        let req = parse_json(r#"{"aggs":[["count"],["sum",0],["avg",1]]}"#).unwrap();
        let specs = parse_specs(&req).unwrap();
        assert_eq!(specs.len(), 3);
        let req = parse_json(r#"{"aggs":[["median",0]]}"#).unwrap();
        assert!(parse_specs(&req).is_err());
        let req = parse_json(r#"{}"#).unwrap();
        assert!(parse_specs(&req).unwrap().is_empty(), "no aggs = DISTINCT");
    }
}
