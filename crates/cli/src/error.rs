//! CLI failure classes and their process exit codes.

use hashing_is_sorting::AggError;
use std::fmt;

/// The failure class of one CLI invocation. Each class maps to a
/// distinct process exit code so scripts can react to *why* a query
/// failed (retry after a budget bump, extend the timeout, check the
/// disk) without parsing stderr.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// A resource budget was exhausted: operator memory (`--mem-budget`)
    /// or spill disk space (`--spill-limit`). Exit code 2.
    Budget,
    /// The query was cancelled: `--timeout-ms` elapsed or cancellation
    /// was requested. Exit code 3.
    Timeout,
    /// I/O failed: the input file could not be read, spill I/O failed
    /// permanently, or a spill file failed verification (corruption).
    /// Exit code 4.
    Io,
    /// The invocation itself was invalid: bad flags, malformed CSV,
    /// unknown columns, non-numeric aggregate inputs. Exit code 5.
    InvalidInput,
    /// An internal failure (e.g. a contained worker panic). Exit code 1.
    Internal,
}

impl ErrorClass {
    /// The process exit code of this class.
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorClass::Internal => 1,
            ErrorClass::Budget => 2,
            ErrorClass::Timeout => 3,
            ErrorClass::Io => 4,
            ErrorClass::InvalidInput => 5,
        }
    }

    /// Stable label used in `error: <class>: <detail>` lines.
    pub fn label(self) -> &'static str {
        match self {
            ErrorClass::Budget => "budget",
            ErrorClass::Timeout => "timeout",
            ErrorClass::Io => "io",
            ErrorClass::InvalidInput => "invalid-input",
            ErrorClass::Internal => "internal",
        }
    }
}

/// A classified CLI failure: the class decides the exit code, the
/// message is the one-line detail printed to stderr.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError {
    /// Failure class (decides the exit code).
    pub class: ErrorClass,
    /// One-line human-readable detail.
    pub message: String,
}

impl CliError {
    /// Build an error in `class` with a rendered `message`.
    pub fn new(class: ErrorClass, message: impl fmt::Display) -> Self {
        Self { class, message: message.to_string() }
    }

    /// Build an invalid-input error (the most common class).
    pub fn invalid(message: impl fmt::Display) -> Self {
        Self::new(ErrorClass::InvalidInput, message)
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.class.label(), self.message)
    }
}

impl std::error::Error for CliError {}

impl From<AggError> for CliError {
    fn from(e: AggError) -> Self {
        // Exhaustive on purpose — no wildcard arm. A new `AggError`
        // variant must pick its class (and exit code) here explicitly;
        // `hsa-lint`'s taxonomy check and the compiler both enforce it.
        let class = match &e {
            AggError::BudgetExceeded { .. } | AggError::DiskBudgetExceeded { .. } => {
                ErrorClass::Budget
            }
            AggError::Cancelled(_) => ErrorClass::Timeout,
            AggError::SpillFailed { .. } | AggError::SpillCorrupt { .. } => ErrorClass::Io,
            AggError::WorkerPanic { .. } => ErrorClass::Internal,
            // Input validation: the query or its data was malformed.
            AggError::RowCountMismatch { .. }
            | AggError::MissingInputColumn { .. }
            | AggError::SpecNeedsInput { .. }
            | AggError::MismatchedSpecs
            | AggError::UnknownColumn(_)
            | AggError::EmptyGroupBy => ErrorClass::InvalidInput,
        };
        Self::new(class, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hashing_is_sorting::CancelReason;

    #[test]
    fn exit_codes_are_distinct_and_stable() {
        let classes = [
            ErrorClass::Internal,
            ErrorClass::Budget,
            ErrorClass::Timeout,
            ErrorClass::Io,
            ErrorClass::InvalidInput,
        ];
        let codes: Vec<u8> = classes.iter().map(|c| c.exit_code()).collect();
        assert_eq!(codes, vec![1, 2, 3, 4, 5]);
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "exit codes must be distinct");
    }

    #[test]
    fn agg_errors_classify_by_recovery_action() {
        let budget = AggError::BudgetExceeded { requested: 1, limit: 1, reserved: 1 };
        assert_eq!(CliError::from(budget).class, ErrorClass::Budget);
        let disk = AggError::DiskBudgetExceeded { requested: 1, limit: 1, reserved: 1 };
        assert_eq!(CliError::from(disk).class, ErrorClass::Budget);
        let cancel = AggError::Cancelled(CancelReason::DeadlineExceeded);
        assert_eq!(CliError::from(cancel).class, ErrorClass::Timeout);
        let io = AggError::SpillFailed { message: "eio".into() };
        assert_eq!(CliError::from(io).class, ErrorClass::Io);
        let corrupt = AggError::SpillCorrupt {
            path: "p".into(),
            extent: 0,
            expected: 1,
            actual: 2,
            what: "extent crc".into(),
        };
        assert_eq!(CliError::from(corrupt).class, ErrorClass::Io);
        let panic = AggError::WorkerPanic { message: "boom".into() };
        assert_eq!(CliError::from(panic).class, ErrorClass::Internal);
        let input = AggError::EmptyGroupBy;
        assert_eq!(CliError::from(input).class, ErrorClass::InvalidInput);
    }

    #[test]
    fn display_is_class_prefixed_one_liner() {
        let e = CliError::invalid("no column named \"x\"");
        assert_eq!(e.to_string(), "invalid-input: no column named \"x\"");
        let e: CliError = AggError::Cancelled(CancelReason::DeadlineExceeded).into();
        assert!(e.to_string().starts_with("timeout: "), "{e}");
        assert_eq!(e.to_string().lines().count(), 1);
    }
}
