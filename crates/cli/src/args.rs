//! Hand-rolled argument parsing (no CLI dependency).

use hsa_core::{AdaptiveParams, AggregateConfig, SpillCodec, Strategy};
use std::fmt;

/// Invalid command line.
#[derive(Debug, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct CliArgs {
    /// CSV input path.
    pub file: String,
    /// Grouping columns, in order.
    pub group_by: Vec<String>,
    /// Aggregates: `(function, input column, output name)`; COUNT uses an
    /// empty input column string.
    pub aggs: Vec<(String, String, String)>,
    /// Operator configuration.
    pub config: AggregateConfig,
    /// Print the full run report after the result.
    pub show_stats: bool,
    /// Print the EXPLAIN ANALYZE phase tree after the result.
    pub explain: bool,
    /// Emit a live progress heartbeat to stderr every this many
    /// milliseconds (`--progress <ms>`).
    pub progress_ms: Option<u64>,
    /// Write the machine-readable run report (JSON) to this path.
    pub stats_json: Option<String>,
    /// Write a Chrome trace (load in Perfetto / `chrome://tracing`) to
    /// this path.
    pub trace: Option<String>,
    /// Cap on operator working memory in bytes (`--mem-budget`).
    pub mem_budget: Option<u64>,
    /// Wall-clock deadline for the aggregation in milliseconds
    /// (`--timeout-ms`).
    pub timeout_ms: Option<u64>,
    /// Spill directory for out-of-core aggregation (`--spill-dir`): runs
    /// that do not fit the budget are flushed here instead of failing.
    pub spill_dir: Option<String>,
    /// Byte cap for the spill directory (`--spill-limit`): spill writes
    /// beyond this degrade into a typed disk-budget error instead of
    /// filling the disk.
    pub spill_limit: Option<u64>,
    /// Feed the operator in chunks of this many rows (`--chunk-rows`)
    /// through the streaming API instead of one slice.
    pub chunk_rows: Option<usize>,
    /// Per-extent spill compression policy (`--spill-compress`): `auto`
    /// (default), `delta`, `rle`, or `off`.
    pub spill_codec: Option<SpillCodec>,
    /// Background spill I/O worker threads (`--spill-io-threads`); 0
    /// makes spill writes and restores fully synchronous.
    pub spill_io_threads: Option<usize>,
}

impl CliArgs {
    /// Whether any form of deep observability was requested.
    pub fn wants_metrics(&self) -> bool {
        self.show_stats || self.stats_json.is_some() || self.explain
    }
}

impl CliArgs {
    /// All column names the query references.
    pub fn all_column_refs(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.group_by.iter().map(String::as_str).collect();
        v.extend(self.aggs.iter().filter(|(f, ..)| f != "count").map(|(_, c, _)| c.as_str()));
        v
    }

    /// Column names that must be numeric (aggregate inputs).
    pub fn numeric_column_refs(&self) -> Vec<&str> {
        self.aggs.iter().filter(|(f, ..)| f != "count").map(|(_, c, _)| c.as_str()).collect()
    }
}

/// Usage text shown by `hsa --help`.
pub const USAGE: &str = "\
usage: hsa <file.csv> --group-by <col>[,<col>...] [aggregates] [options]
       hsa serve --listen <addr> [serve options]   (see hsa serve --help)

aggregates (repeatable):
  --count [NAME]          COUNT(*)
  --sum <col> [NAME]      SUM(col)
  --min <col> [NAME]      MIN(col)
  --max <col> [NAME]      MAX(col)
  --avg <col> [NAME]      AVG(col)

options:
  --threads <n>           worker threads (default: all cores)
  --strategy <s>          adaptive | hashing | partition:<passes>
  --kernel <k>            hot-loop kernel tier: auto | scalar | sse2 | avx2
                          (default: auto — best the CPU supports; requests
                          above that are clamped down)
  --mem-budget <size>     cap operator working memory (bytes; K/M/G
                          suffixes accepted, e.g. 512M)
  --timeout-ms <n>        abort the aggregation after <n> milliseconds
  --spill-dir <path>      out-of-core aggregation: runs that do not fit
                          --mem-budget are flushed to files under <path>
                          instead of failing the query
  --spill-limit <size>    cap the bytes the spill directory may hold
                          (K/M/G suffixes accepted); exceeding it fails
                          the query with a disk-budget error (exit 2)
                          instead of filling the disk
  --chunk-rows <n>        feed the operator <n> rows at a time through the
                          streaming API (bounds operator-side ingestion;
                          the CSV itself is still parsed in memory)
  --spill-compress <c>    per-extent spill compression: auto (default,
                          per extent the smaller of delta and rle, raw
                          when neither shrinks), delta, rle, or off
  --spill-io-threads <n>  background spill I/O workers overlapping spill
                          writes and restore prefetch with compute
                          (default 1; 0 = fully synchronous I/O)
  --stats                 print the full run report (per-level passes,
                          probe lengths, SWC flushes, switch alphas, ...)
  --explain               print the EXPLAIN ANALYZE operator tree: per
                          level and phase, exclusive time, % of wall
                          clock, rows in/out, and the observed reduction
                          factor alpha
  --progress <ms>         emit a live heartbeat line to stderr every <ms>
                          milliseconds (rows/s, current phases, budget
                          usage) from a background sampler thread
  --stats-json <path>     write the run report as JSON to <path>
  --trace <path>          write a Chrome trace of the task timeline to
                          <path> (open with Perfetto or chrome://tracing)
  --help                  this text

With no aggregates the query is SELECT DISTINCT over the group columns.";

fn is_flag(s: &str) -> bool {
    s.starts_with("--")
}

/// Consume the next argument as a flag value.
fn take_value<I: Iterator<Item = String>>(
    args: &mut std::iter::Peekable<I>,
    flag: &str,
) -> Result<String, UsageError> {
    match args.next() {
        Some(v) if !is_flag(&v) => Ok(v),
        _ => Err(UsageError(format!("{flag} needs a value"))),
    }
}

/// Consume the next argument as an optional output name.
fn optional_name<I: Iterator<Item = String>>(
    args: &mut std::iter::Peekable<I>,
    default: String,
) -> String {
    match args.peek() {
        Some(v) if !is_flag(v) => args.next().unwrap_or(default),
        _ => default,
    }
}

/// Parse an argument vector (without the program name).
pub fn parse_args(argv: impl IntoIterator<Item = String>) -> Result<CliArgs, UsageError> {
    let mut args = argv.into_iter().peekable();
    let mut file = None;
    let mut group_by = Vec::new();
    let mut aggs: Vec<(String, String, String)> = Vec::new();
    let mut config = AggregateConfig::default();
    let mut show_stats = false;
    let mut explain = false;
    let mut progress_ms = None;
    let mut stats_json = None;
    let mut trace = None;
    let mut mem_budget = None;
    let mut timeout_ms = None;
    let mut spill_dir = None;
    let mut spill_limit = None;
    let mut chunk_rows = None;
    let mut spill_codec = None;
    let mut spill_io_threads = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Err(UsageError(USAGE.to_string())),
            "--group-by" => {
                let v = take_value(&mut args, "--group-by")?;
                group_by.extend(v.split(',').map(str::trim).map(String::from));
            }
            "--count" => {
                let name = optional_name(&mut args, "count".to_string());
                aggs.push(("count".into(), String::new(), name));
            }
            "--sum" | "--min" | "--max" | "--avg" => {
                let func = arg.trim_start_matches("--").to_string();
                let col = take_value(&mut args, &arg)?;
                let name = optional_name(&mut args, format!("{func}({col})"));
                aggs.push((func, col, name));
            }
            "--threads" => {
                let v = take_value(&mut args, "--threads")?;
                config.threads =
                    v.parse().map_err(|_| UsageError(format!("bad thread count {v:?}")))?;
            }
            "--strategy" => {
                let v = take_value(&mut args, "--strategy")?;
                config.strategy = parse_strategy(&v)?;
            }
            "--kernel" => {
                let v = take_value(&mut args, "--kernel")?;
                config.kernel = v.parse().map_err(UsageError)?;
            }
            "--stats" => show_stats = true,
            "--explain" => explain = true,
            "--progress" => {
                let v = take_value(&mut args, "--progress")?;
                let ms: u64 =
                    v.parse().map_err(|_| UsageError(format!("bad progress interval {v:?}")))?;
                if ms == 0 {
                    return Err(UsageError("--progress must be at least 1 ms".into()));
                }
                progress_ms = Some(ms);
            }
            "--stats-json" => stats_json = Some(take_value(&mut args, "--stats-json")?),
            "--trace" => trace = Some(take_value(&mut args, "--trace")?),
            "--mem-budget" => {
                let v = take_value(&mut args, "--mem-budget")?;
                mem_budget = Some(parse_size(&v)?);
            }
            "--timeout-ms" => {
                let v = take_value(&mut args, "--timeout-ms")?;
                timeout_ms = Some(v.parse().map_err(|_| UsageError(format!("bad timeout {v:?}")))?);
            }
            "--spill-dir" => spill_dir = Some(take_value(&mut args, "--spill-dir")?),
            "--spill-limit" => {
                let v = take_value(&mut args, "--spill-limit")?;
                spill_limit = Some(parse_size(&v)?);
            }
            "--chunk-rows" => {
                let v = take_value(&mut args, "--chunk-rows")?;
                let n: usize =
                    v.parse().map_err(|_| UsageError(format!("bad chunk size {v:?}")))?;
                if n == 0 {
                    return Err(UsageError("--chunk-rows must be at least 1".into()));
                }
                chunk_rows = Some(n);
            }
            "--spill-compress" => {
                let v = take_value(&mut args, "--spill-compress")?;
                spill_codec = Some(SpillCodec::parse(&v).ok_or_else(|| {
                    UsageError(format!("unknown codec {v:?} (auto | delta | rle | off)"))
                })?);
            }
            "--spill-io-threads" => {
                let v = take_value(&mut args, "--spill-io-threads")?;
                spill_io_threads =
                    Some(v.parse().map_err(|_| UsageError(format!("bad I/O thread count {v:?}")))?);
            }
            other if is_flag(other) => {
                return Err(UsageError(format!("unknown option {other:?}")));
            }
            _ => {
                if file.replace(arg).is_some() {
                    return Err(UsageError("more than one input file".into()));
                }
            }
        }
    }

    let file = file.ok_or_else(|| UsageError("missing input file".into()))?;
    if group_by.is_empty() {
        return Err(UsageError("missing --group-by".into()));
    }
    Ok(CliArgs {
        file,
        group_by,
        aggs,
        config,
        show_stats,
        explain,
        progress_ms,
        stats_json,
        trace,
        mem_budget,
        timeout_ms,
        spill_dir,
        spill_limit,
        chunk_rows,
        spill_codec,
        spill_io_threads,
    })
}

/// Parse a byte size with an optional `K`/`M`/`G` suffix (powers of 1024).
pub(crate) fn parse_size(s: &str) -> Result<u64, UsageError> {
    let bad = || UsageError(format!("bad size {s:?} (expected bytes with optional K/M/G suffix)"));
    let (digits, shift) = match s.as_bytes().last() {
        Some(b'k' | b'K') => (&s[..s.len() - 1], 10),
        Some(b'm' | b'M') => (&s[..s.len() - 1], 20),
        Some(b'g' | b'G') => (&s[..s.len() - 1], 30),
        Some(_) => (s, 0),
        None => return Err(bad()),
    };
    let n: u64 = digits.parse().map_err(|_| bad())?;
    n.checked_shl(shift).filter(|v| v >> shift == n).ok_or_else(bad)
}

fn parse_strategy(s: &str) -> Result<Strategy, UsageError> {
    match s {
        "adaptive" => Ok(Strategy::Adaptive(AdaptiveParams::default())),
        "hashing" => Ok(Strategy::HashingOnly),
        other => {
            if let Some(passes) = other.strip_prefix("partition:") {
                let passes = passes
                    .parse()
                    .map_err(|_| UsageError(format!("bad pass count in {other:?}")))?;
                Ok(Strategy::PartitionAlways { passes })
            } else {
                Err(UsageError(format!(
                    "unknown strategy {other:?} (adaptive | hashing | partition:<n>)"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Result<CliArgs, UsageError> {
        parse_args(argv.iter().map(|s| s.to_string()))
    }

    #[test]
    fn full_invocation() {
        let a = parse(&[
            "data.csv",
            "--group-by",
            "country,city",
            "--count",
            "orders",
            "--sum",
            "amount",
            "--avg",
            "amount",
            "revenue_avg",
            "--threads",
            "3",
            "--strategy",
            "partition:2",
            "--stats",
        ])
        .unwrap();
        assert_eq!(a.file, "data.csv");
        assert_eq!(a.group_by, vec!["country", "city"]);
        assert_eq!(
            a.aggs,
            vec![
                ("count".into(), "".into(), "orders".into()),
                ("sum".into(), "amount".into(), "sum(amount)".into()),
                ("avg".into(), "amount".into(), "revenue_avg".into()),
            ]
        );
        assert_eq!(a.config.threads, 3);
        assert_eq!(a.config.strategy, Strategy::PartitionAlways { passes: 2 });
        assert!(a.show_stats);
    }

    #[test]
    fn defaults() {
        let a = parse(&["f.csv", "--group-by", "k"]).unwrap();
        assert!(a.aggs.is_empty());
        assert!(!a.show_stats);
        assert!(matches!(a.config.strategy, Strategy::Adaptive(_)));
    }

    #[test]
    fn count_without_name() {
        let a = parse(&["f.csv", "--group-by", "k", "--count", "--stats"]).unwrap();
        assert_eq!(a.aggs[0].2, "count");
        assert!(a.show_stats);
    }

    #[test]
    fn missing_file_and_group_by() {
        assert!(parse(&["--group-by", "k"]).unwrap_err().0.contains("input file"));
        assert!(parse(&["f.csv"]).unwrap_err().0.contains("--group-by"));
    }

    #[test]
    fn value_flags_require_values() {
        assert!(parse(&["f.csv", "--group-by"]).is_err());
        assert!(parse(&["f.csv", "--group-by", "k", "--sum", "--stats"]).is_err());
    }

    #[test]
    fn bad_strategy_and_unknown_flag() {
        assert!(parse(&["f.csv", "--group-by", "k", "--strategy", "magic"]).is_err());
        assert!(parse(&["f.csv", "--group-by", "k", "--frobnicate"]).is_err());
    }

    #[test]
    fn kernel_flag() {
        use hsa_core::KernelPref;
        let a = parse(&["f.csv", "--group-by", "k"]).unwrap();
        assert_eq!(a.config.kernel, KernelPref::Auto);
        for (arg, want) in [
            ("auto", KernelPref::Auto),
            ("scalar", KernelPref::Scalar),
            ("sse2", KernelPref::Sse2),
            ("avx2", KernelPref::Avx2),
        ] {
            let a = parse(&["f.csv", "--group-by", "k", "--kernel", arg]).unwrap();
            assert_eq!(a.config.kernel, want, "--kernel {arg}");
        }
        let e = parse(&["f.csv", "--group-by", "k", "--kernel", "avx1024"]).unwrap_err();
        assert!(e.0.contains("avx1024"), "{e}");
        assert!(parse(&["f.csv", "--group-by", "k", "--kernel"]).is_err());
    }

    #[test]
    fn observability_flags() {
        let a = parse(&[
            "f.csv",
            "--group-by",
            "k",
            "--stats-json",
            "report.json",
            "--trace",
            "trace.json",
        ])
        .unwrap();
        assert_eq!(a.stats_json.as_deref(), Some("report.json"));
        assert_eq!(a.trace.as_deref(), Some("trace.json"));
        assert!(!a.show_stats);
        assert!(a.wants_metrics(), "--stats-json implies metrics collection");

        let b = parse(&["f.csv", "--group-by", "k"]).unwrap();
        assert!(!b.wants_metrics());
        assert!(b.trace.is_none());

        assert!(parse(&["f.csv", "--group-by", "k", "--stats-json"]).is_err());
        assert!(parse(&["f.csv", "--group-by", "k", "--trace", "--stats"]).is_err());
    }

    #[test]
    fn explain_and_progress_flags() {
        let a = parse(&["f.csv", "--group-by", "k", "--explain", "--progress", "250"]).unwrap();
        assert!(a.explain);
        assert_eq!(a.progress_ms, Some(250));
        assert!(a.wants_metrics(), "--explain implies metrics collection");

        let b = parse(&["f.csv", "--group-by", "k"]).unwrap();
        assert!(!b.explain);
        assert_eq!(b.progress_ms, None);

        assert!(parse(&["f.csv", "--group-by", "k", "--progress"]).is_err());
        assert!(parse(&["f.csv", "--group-by", "k", "--progress", "soon"]).is_err());
        let e = parse(&["f.csv", "--group-by", "k", "--progress", "0"]).unwrap_err();
        assert!(e.0.contains("at least 1"), "{e}");
    }

    #[test]
    fn robustness_flags() {
        let a =
            parse(&["f.csv", "--group-by", "k", "--mem-budget", "512M", "--timeout-ms", "2500"])
                .unwrap();
        assert_eq!(a.mem_budget, Some(512 << 20));
        assert_eq!(a.timeout_ms, Some(2500));

        let b = parse(&["f.csv", "--group-by", "k"]).unwrap();
        assert_eq!(b.mem_budget, None);
        assert_eq!(b.timeout_ms, None);
    }

    #[test]
    fn spill_and_chunk_flags() {
        let a = parse(&[
            "f.csv",
            "--group-by",
            "k",
            "--spill-dir",
            "/tmp/spill",
            "--spill-limit",
            "64M",
            "--chunk-rows",
            "4096",
        ])
        .unwrap();
        assert_eq!(a.spill_dir.as_deref(), Some("/tmp/spill"));
        assert_eq!(a.spill_limit, Some(64 << 20));
        assert_eq!(a.chunk_rows, Some(4096));

        let b = parse(&["f.csv", "--group-by", "k"]).unwrap();
        assert_eq!(b.spill_dir, None);
        assert_eq!(b.spill_limit, None);
        assert_eq!(b.chunk_rows, None);
        assert_eq!(b.spill_codec, None);
        assert_eq!(b.spill_io_threads, None);

        assert!(parse(&["f.csv", "--group-by", "k", "--spill-dir"]).is_err());
        assert!(parse(&["f.csv", "--group-by", "k", "--spill-limit"]).is_err());
        assert!(parse(&["f.csv", "--group-by", "k", "--spill-limit", "lots"]).is_err());
        assert!(parse(&["f.csv", "--group-by", "k", "--chunk-rows", "zero"]).is_err());
        let e = parse(&["f.csv", "--group-by", "k", "--chunk-rows", "0"]).unwrap_err();
        assert!(e.0.contains("at least 1"), "{e}");
    }

    #[test]
    fn spill_io_flags() {
        let a = parse(&[
            "f.csv",
            "--group-by",
            "k",
            "--spill-compress",
            "rle",
            "--spill-io-threads",
            "2",
        ])
        .unwrap();
        assert_eq!(a.spill_codec, Some(SpillCodec::Rle));
        assert_eq!(a.spill_io_threads, Some(2));
        for (arg, want) in
            [("auto", SpillCodec::Auto), ("delta", SpillCodec::Delta), ("off", SpillCodec::Off)]
        {
            let a = parse(&["f.csv", "--group-by", "k", "--spill-compress", arg]).unwrap();
            assert_eq!(a.spill_codec, Some(want), "--spill-compress {arg}");
        }
        let zero = parse(&["f.csv", "--group-by", "k", "--spill-io-threads", "0"]).unwrap();
        assert_eq!(zero.spill_io_threads, Some(0), "0 selects synchronous I/O");

        let e = parse(&["f.csv", "--group-by", "k", "--spill-compress", "zip"]).unwrap_err();
        assert!(e.0.contains("zip"), "{e}");
        assert!(parse(&["f.csv", "--group-by", "k", "--spill-compress"]).is_err());
        assert!(parse(&["f.csv", "--group-by", "k", "--spill-io-threads", "many"]).is_err());
        assert!(parse(&["f.csv", "--group-by", "k", "--spill-io-threads"]).is_err());
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("1024").unwrap(), 1024);
        assert_eq!(parse_size("64k").unwrap(), 64 << 10);
        assert_eq!(parse_size("2K").unwrap(), 2 << 10);
        assert_eq!(parse_size("3m").unwrap(), 3 << 20);
        assert_eq!(parse_size("1G").unwrap(), 1 << 30);
        assert!(parse_size("").is_err());
        assert!(parse_size("12q").is_err());
        assert!(parse_size("-5").is_err());
        assert!(parse_size("99999999999G").is_err()); // overflow
    }

    #[test]
    fn bad_robustness_values() {
        assert!(parse(&["f.csv", "--group-by", "k", "--mem-budget", "lots"]).is_err());
        assert!(parse(&["f.csv", "--group-by", "k", "--mem-budget"]).is_err());
        assert!(parse(&["f.csv", "--group-by", "k", "--timeout-ms", "soon"]).is_err());
    }

    #[test]
    fn two_files_rejected() {
        assert!(parse(&["a.csv", "b.csv", "--group-by", "k"]).is_err());
    }
}
