//! A minimal RFC-4180-ish CSV parser (comma separator, `"` quoting with
//! `""` escapes, `\n` / `\r\n` records). Dependency-free on purpose.

use std::fmt;

/// CSV parse failure.
#[derive(Debug, PartialEq, Eq)]
pub enum CsvError {
    /// A quoted field was still open at end of input.
    UnterminatedQuote {
        /// 1-based line where the field started.
        line: usize,
    },
    /// A record has a different number of fields than the header.
    RaggedRow {
        /// 1-based record number.
        line: usize,
        /// Fields found.
        got: usize,
        /// Fields expected (header width).
        expected: usize,
    },
    /// Input had no header row.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting on line {line}")
            }
            CsvError::RaggedRow { line, got, expected } => {
                write!(f, "line {line}: {got} fields, header has {expected}")
            }
            CsvError::Empty => write!(f, "empty input (no header row)"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parse CSV text into records (first record = header). All records are
/// validated to the header's width.
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut quote_start_line = 1;
    let mut line = 1;
    let mut chars = text.chars().peekable();
    let mut any_char_in_record = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    field.push('\n');
                    line += 1;
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => {
                in_quotes = true;
                quote_start_line = line;
                any_char_in_record = true;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
                any_char_in_record = true;
            }
            '\r' => {} // swallowed; \n terminates
            '\n' => {
                line += 1;
                if any_char_in_record || !field.is_empty() || !record.is_empty() {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                any_char_in_record = false;
            }
            other => {
                field.push(other);
                any_char_in_record = true;
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line: quote_start_line });
    }
    if any_char_in_record || !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }

    let Some(header) = records.first() else {
        return Err(CsvError::Empty);
    };
    let expected = header.len();
    for (i, r) in records.iter().enumerate().skip(1) {
        if r.len() != expected {
            return Err(CsvError::RaggedRow { line: i + 1, got: r.len(), expected });
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_rows() {
        let r = parse_csv("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(r, vec![vec!["a", "b"], vec!["1", "2"], vec!["3", "4"]]);
    }

    #[test]
    fn no_trailing_newline() {
        let r = parse_csv("a,b\n1,2").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[1], vec!["1", "2"]);
    }

    #[test]
    fn crlf_and_empty_fields() {
        let r = parse_csv("a,b,c\r\n1,,3\r\n").unwrap();
        assert_eq!(r[1], vec!["1", "", "3"]);
    }

    #[test]
    fn quoted_fields_with_commas_newlines_and_escapes() {
        let r = parse_csv("a,b\n\"x,y\",\"line1\nline2\"\n\"he said \"\"hi\"\"\",2\n").unwrap();
        assert_eq!(r[1], vec!["x,y", "line1\nline2"]);
        assert_eq!(r[2], vec!["he said \"hi\"", "2"]);
    }

    #[test]
    fn ragged_row_is_an_error() {
        let err = parse_csv("a,b\n1\n").unwrap_err();
        assert_eq!(err, CsvError::RaggedRow { line: 2, got: 1, expected: 2 });
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let err = parse_csv("a\n\"oops\n").unwrap_err();
        assert!(matches!(err, CsvError::UnterminatedQuote { .. }));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(parse_csv(""), Err(CsvError::Empty));
    }

    #[test]
    fn single_header_only() {
        let r = parse_csv("a,b\n").unwrap();
        assert_eq!(r.len(), 1);
    }
}
