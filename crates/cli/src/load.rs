//! CSV records → a columnar [`Table`].
//!
//! Column typing is inferred: if every value of a column parses as `u64`
//! it becomes a numeric column; otherwise it is dictionary-encoded (the
//! codes group correctly, and results are decoded back to strings for
//! display). This mirrors how a column store would feed arbitrary keys to
//! the operator's integer kernels.

use hsa_columnar::{Dictionary, Table};
use std::fmt;

/// Load failure.
#[derive(Debug, PartialEq, Eq)]
pub enum LoadError {
    /// Header contains a duplicate column name.
    DuplicateColumn(String),
    /// Header contains an empty column name.
    EmptyColumnName,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::DuplicateColumn(name) => write!(f, "duplicate column name {name:?}"),
            LoadError::EmptyColumnName => write!(f, "empty column name in header"),
        }
    }
}

impl std::error::Error for LoadError {}

/// A loaded table plus the dictionaries of its non-numeric columns.
#[derive(Debug)]
pub struct LoadedTable {
    /// The columnar table (numeric values or dictionary codes).
    pub table: Table,
    dictionaries: Vec<(String, Dictionary)>,
}

impl LoadedTable {
    /// Dictionary of a column, if it was string-typed.
    pub fn dictionary_of(&self, column: &str) -> Option<&Dictionary> {
        self.dictionaries.iter().find(|(n, _)| n == column).map(|(_, d)| d)
    }
}

/// Build a [`LoadedTable`] from parsed CSV records (first record =
/// header).
pub fn load_table(records: &[Vec<String>]) -> Result<LoadedTable, LoadError> {
    let header = records.first().cloned().unwrap_or_default();
    for (i, name) in header.iter().enumerate() {
        if name.is_empty() {
            return Err(LoadError::EmptyColumnName);
        }
        if header[..i].contains(name) {
            return Err(LoadError::DuplicateColumn(name.clone()));
        }
    }

    let body = &records[1.min(records.len())..];
    let mut table = Table::new();
    let mut dictionaries = Vec::new();
    for (c, name) in header.iter().enumerate() {
        let values: Vec<&str> = body.iter().map(|r| r[c].as_str()).collect();
        let numeric: Option<Vec<u64>> =
            values.iter().map(|v| v.trim().parse::<u64>().ok()).collect();
        match numeric {
            Some(col) => {
                table.add_column(name.clone(), col);
            }
            None => {
                let mut dict = Dictionary::new();
                let col: Vec<u64> = values.iter().map(|v| dict.encode_str(v)).collect();
                table.add_column(name.clone(), col);
                dictionaries.push((name.clone(), dict));
            }
        }
    }
    Ok(LoadedTable { table, dictionaries })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(csv: &str) -> Vec<Vec<String>> {
        crate::parse_csv(csv).unwrap()
    }

    #[test]
    fn numeric_and_string_columns() {
        let t = load_table(&records("id,name\n1,ann\n2,bob\n3,ann\n")).unwrap();
        assert_eq!(t.table.col("id"), &[1, 2, 3]);
        assert_eq!(t.table.col("name"), &[0, 1, 0]);
        assert!(t.dictionary_of("id").is_none());
        assert_eq!(t.dictionary_of("name").unwrap().decode_str(1), Some("bob"));
    }

    #[test]
    fn mixed_values_force_dictionary() {
        let t = load_table(&records("v\n1\nx\n2\n")).unwrap();
        assert!(t.dictionary_of("v").is_some());
        assert_eq!(t.table.col("v"), &[0, 1, 2]);
    }

    #[test]
    fn whitespace_tolerant_numerics() {
        let t = load_table(&records("v\n 1 \n2\n")).unwrap();
        assert!(t.dictionary_of("v").is_none());
        assert_eq!(t.table.col("v"), &[1, 2]);
    }

    #[test]
    fn header_only_gives_empty_table() {
        let t = load_table(&records("a,b\n")).unwrap();
        assert_eq!(t.table.n_rows(), 0);
        assert_eq!(t.table.n_cols(), 2);
    }

    #[test]
    fn duplicate_header_rejected() {
        let err = load_table(&records("a,a\n1,2\n")).unwrap_err();
        assert_eq!(err, LoadError::DuplicateColumn("a".into()));
    }

    #[test]
    fn empty_header_name_rejected() {
        let err = load_table(&records("a,\n1,2\n")).unwrap_err();
        assert_eq!(err, LoadError::EmptyColumnName);
    }
}
