//! `hsa` — GROUP BY aggregation over CSV files from the command line.
//!
//! A small end-to-end application of the operator: load a CSV into
//! columns (numeric columns as `u64`, everything else dictionary-encoded),
//! run an aggregation query, print an aligned result table.
//!
//! ```text
//! hsa data.csv --group-by country,city --count orders --sum amount --avg amount
//! ```
//!
//! The binary lives in `src/main.rs`; everything here is library code so
//! the whole pipeline is unit-testable.

mod args;
mod csv;
mod error;
mod load;
mod serve;

pub use args::{parse_args, CliArgs, UsageError, USAGE};
pub use csv::{parse_csv, CsvError};
pub use error::{CliError, ErrorClass};
pub use load::{load_table, LoadedTable};
pub use serve::{parse_serve_args, serve, serve_on, ServeArgs, SERVE_USAGE};

use hashing_is_sorting::{
    CancelToken, DiskBudget, ExecEnv, MemoryBudget, ObsConfig, Query, RunReport, SpillConfig,
};
use std::time::Duration;

/// Everything one CLI invocation produced: the rendered result table plus
/// the run report behind `--stats` / `--stats-json` / `--trace`.
#[derive(Debug)]
pub struct CliRun {
    /// Aligned result table, with the pretty report appended when
    /// `--stats` was given.
    pub rendered: String,
    /// The operator's run report (deep sections populated only when
    /// requested).
    pub report: RunReport,
}

/// Run a parsed CLI invocation against CSV `text`.
///
/// Failures come back as a [`CliError`] whose class decides the process
/// exit code (budget 2, timeout 3, I/O 4, invalid input 5).
pub fn run_on_csv_text(text: &str, args: &CliArgs) -> Result<CliRun, CliError> {
    let rows = parse_csv(text).map_err(CliError::invalid)?;
    let loaded = load_table(&rows).map_err(CliError::invalid)?;

    for name in args.all_column_refs() {
        if loaded.table.column(name).is_none() {
            return Err(CliError::invalid(format!("no column named {name:?} in the input")));
        }
    }
    for name in &args.numeric_column_refs() {
        if loaded.dictionary_of(name).is_some() {
            return Err(CliError::invalid(format!(
                "column {name:?} is not numeric and cannot be aggregated (only grouped)"
            )));
        }
    }

    let obs = ObsConfig {
        metrics: args.wants_metrics(),
        trace: args.trace.is_some(),
        progress: args.progress_ms.map(Duration::from_millis),
        ..ObsConfig::disabled()
    };
    let mut env = ExecEnv::unrestricted();
    if let Some(bytes) = args.mem_budget {
        env = env.with_budget(MemoryBudget::limited(bytes));
    }
    if let Some(ms) = args.timeout_ms {
        env = env.with_cancel(CancelToken::with_timeout(Duration::from_millis(ms)));
    }
    if let Some(dir) = &args.spill_dir {
        env = env.with_spill_dir(dir);
    }
    if let Some(bytes) = args.spill_limit {
        env = env.with_disk_budget(DiskBudget::limited(bytes));
    }
    if args.spill_codec.is_some() || args.spill_io_threads.is_some() {
        let defaults = SpillConfig::default();
        env = env.with_spill_config(SpillConfig {
            codec: args.spill_codec.unwrap_or(defaults.codec),
            io_threads: args.spill_io_threads.unwrap_or(defaults.io_threads),
        });
    }
    let mut q =
        Query::over(&loaded.table).with_config(args.config.clone()).with_obs(obs).with_env(env);
    for g in &args.group_by {
        q = q.group_by(g);
    }
    for (func, col, name) in &args.aggs {
        q = match func.as_str() {
            "count" => q.count(name),
            "sum" => q.sum(col, name),
            "min" => q.min(col, name),
            "max" => q.max(col, name),
            "avg" => q.avg(col, name),
            other => return Err(CliError::invalid(format!("unknown aggregate {other:?}"))),
        };
    }
    // Operator errors carry their own class (budget, timeout, I/O, …).
    let result = match args.chunk_rows {
        Some(n) => q.try_run_streaming(n),
        None => q.try_run(),
    }?;

    let group_names = args.group_by.clone();
    let mut out =
        result.format_table(|col_ix, v| match loaded.dictionary_of(&group_names[col_ix]) {
            Some(dict) => dict.decode_str(v).unwrap_or("<?>").to_string(),
            None => v.to_string(),
        });
    if args.show_stats {
        out.push('\n');
        out.push_str(&result.report.pretty());
    }
    if args.explain {
        out.push('\n');
        out.push_str(&result.report.explain());
    }
    Ok(CliRun { rendered: out, report: result.report })
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "country,city,amount\n\
                       de,berlin,10\n\
                       de,munich,20\n\
                       fr,paris,30\n\
                       de,berlin,40\n";

    fn args(argv: &[&str]) -> CliArgs {
        parse_args(argv.iter().map(|s| s.to_string())).expect("valid args")
    }

    #[test]
    fn end_to_end_grouped_sum() {
        let a = args(&["x.csv", "--group-by", "country", "--count", "--sum", "amount"]);
        let out = run_on_csv_text(CSV, &a).unwrap().rendered;
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("country"));
        assert!(lines[1].contains("de") && lines[1].contains('3') && lines[1].contains("70"));
        assert!(lines[2].contains("fr") && lines[2].contains("30"));
    }

    #[test]
    fn composite_group_with_strings() {
        let a = args(&["x.csv", "--group-by", "country,city", "--sum", "amount"]);
        let out = run_on_csv_text(CSV, &a).unwrap().rendered;
        assert!(out.contains("berlin"));
        assert!(out.contains("50")); // berlin: 10 + 40
    }

    #[test]
    fn distinct_only() {
        let a = args(&["x.csv", "--group-by", "city"]);
        let out = run_on_csv_text(CSV, &a).unwrap().rendered;
        assert_eq!(out.lines().count(), 4); // header + 3 cities
    }

    #[test]
    fn rejects_aggregating_string_column() {
        let a = args(&["x.csv", "--group-by", "country", "--sum", "city"]);
        let err = run_on_csv_text(CSV, &a).unwrap_err();
        assert!(err.to_string().contains("not numeric"), "{err}");
        assert_eq!(err.class, ErrorClass::InvalidInput);
    }

    #[test]
    fn rejects_unknown_column() {
        let a = args(&["x.csv", "--group-by", "nope"]);
        let err = run_on_csv_text(CSV, &a).unwrap_err();
        assert!(err.to_string().contains("no column named"), "{err}");
        assert_eq!(err.class, ErrorClass::InvalidInput);
    }

    #[test]
    fn stats_flag_appends_the_full_report() {
        let a = args(&["x.csv", "--group-by", "country", "--stats"]);
        let run = run_on_csv_text(CSV, &a).unwrap();
        assert!(run.rendered.contains("rows in            4"), "{}", run.rendered);
        assert!(run.rendered.contains("groups out         2"), "{}", run.rendered);
        assert!(run.rendered.contains("passes used"), "{}", run.rendered);
        // --stats implies deep metrics; tracing stays off.
        assert!(run.report.metrics.is_some());
        assert!(run.report.trace_json.is_none());
    }

    #[test]
    fn explain_flag_appends_the_phase_tree() {
        let a = args(&["x.csv", "--group-by", "country", "--sum", "amount", "--explain"]);
        let run = run_on_csv_text(CSV, &a).unwrap();
        assert!(run.rendered.contains("query · wall"), "{}", run.rendered);
        assert!(run.rendered.contains("hash_insert"), "{}", run.rendered);
        assert!(run.rendered.contains("output"), "{}", run.rendered);
        // --explain implies deep metrics and a profile in the report.
        assert!(run.report.profile.is_some());
        let json = run.report.to_json().to_string_compact();
        assert!(json.contains("\"profile\""), "{json}");
    }

    #[test]
    fn progress_flag_runs_the_sampler_without_touching_stdout() {
        let a = args(&["x.csv", "--group-by", "country", "--count", "--progress", "1"]);
        let run = run_on_csv_text(CSV, &a).unwrap();
        assert!(run.rendered.contains("de"), "{}", run.rendered);
        // Progress alone requests no deep metrics.
        assert!(run.report.metrics.is_none());
        assert!(run.report.profile.is_none());
    }

    #[test]
    fn mem_budget_failure_is_one_line() {
        let a = args(&["x.csv", "--group-by", "country", "--mem-budget", "1k"]);
        let err = run_on_csv_text(CSV, &a).unwrap_err();
        assert!(err.to_string().contains("memory budget exceeded"), "{err}");
        assert_eq!(err.to_string().lines().count(), 1, "{err}");
        assert_eq!(err.class, ErrorClass::Budget);
        assert_eq!(err.class.exit_code(), 2);
    }

    #[test]
    fn zero_timeout_cancels() {
        let a = args(&["x.csv", "--group-by", "country", "--timeout-ms", "0"]);
        let err = run_on_csv_text(CSV, &a).unwrap_err();
        assert!(err.to_string().contains("cancelled"), "{err}");
        assert_eq!(err.class, ErrorClass::Timeout);
        assert_eq!(err.class.exit_code(), 3);
    }

    #[test]
    fn generous_budget_and_timeout_run_normally() {
        let a = args(&[
            "x.csv",
            "--group-by",
            "country",
            "--sum",
            "amount",
            "--mem-budget",
            "1G",
            "--timeout-ms",
            "60000",
        ]);
        let out = run_on_csv_text(CSV, &a).unwrap().rendered;
        assert!(out.contains("70"), "{out}");
    }

    #[test]
    fn tiny_budget_with_spill_dir_completes_out_of_core() {
        let dir = std::env::temp_dir().join(format!("hsa-cli-spill-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut csv = String::from("k,v\n");
        for i in 0..50_000u64 {
            let k = i.wrapping_mul(2654435761) % 20_000;
            csv.push_str(&format!("{k},{i}\n"));
        }

        let base = args(&["x.csv", "--group-by", "k", "--sum", "v"]);
        let unbudgeted = run_on_csv_text(&csv, &base).unwrap();

        let spill = dir.to_str().unwrap().to_string();
        let a = args(&[
            "x.csv",
            "--group-by",
            "k",
            "--sum",
            "v",
            "--mem-budget",
            "2M",
            "--spill-dir",
            &spill,
            "--chunk-rows",
            "4096",
        ]);
        let run = run_on_csv_text(&csv, &a).unwrap();
        assert_eq!(run.rendered, unbudgeted.rendered, "spilled run must match in-memory result");
        assert!(run.report.stats.spilled_runs() > 0, "stats: {:?}", run.report.stats);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_csv_is_one_line_error() {
        let a = args(&["x.csv", "--group-by", "k"]);
        let err = run_on_csv_text("a,b\n1\n", &a).unwrap_err();
        assert!(err.to_string().contains("fields"), "{err}");
        assert_eq!(err.to_string().lines().count(), 1, "{err}");
        assert_eq!(err.class, ErrorClass::InvalidInput);
        let err = run_on_csv_text("", &a).unwrap_err();
        assert!(err.to_string().contains("empty input"), "{err}");
    }

    #[test]
    fn spill_limit_exhaustion_is_a_budget_error() {
        let dir = std::env::temp_dir().join(format!("hsa-cli-disklimit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut csv = String::from("k,v\n");
        for i in 0..50_000u64 {
            let k = i.wrapping_mul(2654435761) % 20_000;
            csv.push_str(&format!("{k},{i}\n"));
        }
        let spill = dir.to_str().unwrap().to_string();
        // A spill limit too small for even one run: the degradation
        // ladder's last rung fails with a typed disk-budget error.
        let a = args(&[
            "x.csv",
            "--group-by",
            "k",
            "--sum",
            "v",
            "--mem-budget",
            "2M",
            "--spill-dir",
            &spill,
            "--spill-limit",
            "4k",
            "--chunk-rows",
            "4096",
        ]);
        let err = run_on_csv_text(&csv, &a).unwrap_err();
        assert!(err.to_string().contains("spill disk budget exceeded"), "{err}");
        assert_eq!(err.class, ErrorClass::Budget);
        // No partial spill files may be left behind (the lock file is
        // retired when the store drops with the failed query).
        let leftover = std::fs::read_dir(&dir)
            .map(|d| {
                d.flatten()
                    .filter(|e| e.file_name().to_str().is_some_and(|n| n.ends_with(".bin")))
                    .count()
            })
            .unwrap_or(0);
        assert_eq!(leftover, 0, "no spill files may survive a failed query");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generous_spill_limit_still_completes_out_of_core() {
        let dir = std::env::temp_dir().join(format!("hsa-cli-disklim-ok-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut csv = String::from("k,v\n");
        for i in 0..50_000u64 {
            let k = i.wrapping_mul(2654435761) % 20_000;
            csv.push_str(&format!("{k},{i}\n"));
        }
        let base = args(&["x.csv", "--group-by", "k", "--sum", "v"]);
        let unbudgeted = run_on_csv_text(&csv, &base).unwrap();
        let spill = dir.to_str().unwrap().to_string();
        let a = args(&[
            "x.csv",
            "--group-by",
            "k",
            "--sum",
            "v",
            "--mem-budget",
            "2M",
            "--spill-dir",
            &spill,
            "--spill-limit",
            "256M",
            "--chunk-rows",
            "4096",
        ]);
        let run = run_on_csv_text(&csv, &a).unwrap();
        assert_eq!(run.rendered, unbudgeted.rendered, "bounded spill must match in-memory");
        assert!(run.report.stats.spilled_runs() > 0);
        assert!(run.report.stats.disk_high_water_bytes > 0, "{:?}", run.report.stats);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_and_trace_are_valid_json() {
        use hashing_is_sorting::obs::json;
        let a = args(&[
            "x.csv",
            "--group-by",
            "country",
            "--count",
            "--stats-json",
            "r.json",
            "--trace",
            "t.json",
        ]);
        let run = run_on_csv_text(CSV, &a).unwrap();
        // No report text on stdout unless --stats was given...
        assert!(!run.rendered.contains("rows in"));
        // ...but both artifacts are present and valid JSON.
        let report = json::parse(&run.report.to_json().to_string_pretty(2)).unwrap();
        assert_eq!(report.get("rows_in").unwrap().as_u64(), Some(4));
        assert_eq!(report.get("groups_out").unwrap().as_u64(), Some(2));
        assert!(report.get("metrics").is_some());
        let trace = json::parse(run.report.trace_json.as_ref().unwrap()).unwrap();
        assert!(!trace.get("traceEvents").unwrap().as_array().unwrap().is_empty());
    }
}
