//! `hsa` binary: GROUP BY over CSV from the shell.
//!
//! Failures print a one-line `error: <class>: <detail>` to stderr and
//! exit with the class's code: 1 internal, 2 budget, 3 timeout, 4 I/O,
//! 5 invalid input (including usage errors). `--help` exits 0.

use hsa_cli::{
    parse_args, parse_serve_args, run_on_csv_text, serve, CliError, ErrorClass, UsageError,
    SERVE_USAGE, USAGE,
};
use std::process::ExitCode;

fn fail(e: &CliError) -> ExitCode {
    eprintln!("error: {e}");
    ExitCode::from(e.class.exit_code())
}

fn serve_main(argv: impl Iterator<Item = String>) -> ExitCode {
    let args = match parse_serve_args(argv) {
        Ok(a) => a,
        Err(UsageError(msg)) => {
            if msg == SERVE_USAGE {
                println!("{msg}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{msg}");
            return ExitCode::from(ErrorClass::InvalidInput.exit_code());
        }
    };
    match serve(&args) {
        // serve() only returns on a bind/setup failure.
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&e),
    }
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("serve") {
        argv.next();
        return serve_main(argv);
    }
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(UsageError(msg)) => {
            // --help is not an error: usage on stdout, exit 0.
            if msg == USAGE {
                println!("{msg}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{msg}");
            return ExitCode::from(ErrorClass::InvalidInput.exit_code());
        }
    };
    let text = match std::fs::read_to_string(&args.file) {
        Ok(t) => t,
        Err(e) => {
            return fail(&CliError::new(ErrorClass::Io, format!("cannot read {}: {e}", args.file)))
        }
    };
    let run = match run_on_csv_text(&text, &args) {
        Ok(run) => run,
        Err(e) => return fail(&e),
    };
    print!("{}", run.rendered);
    if let Some(path) = &args.stats_json {
        let json = run.report.to_json().to_string_pretty(2);
        if let Err(e) = std::fs::write(path, json) {
            return fail(&CliError::new(ErrorClass::Io, format!("cannot write {path}: {e}")));
        }
    }
    if let Some(path) = &args.trace {
        let trace = run.report.trace_json.as_deref().unwrap_or("{\"traceEvents\":[]}");
        if let Err(e) = std::fs::write(path, trace) {
            return fail(&CliError::new(ErrorClass::Io, format!("cannot write {path}: {e}")));
        }
    }
    ExitCode::SUCCESS
}
