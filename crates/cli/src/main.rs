//! `hsa` binary: GROUP BY over CSV from the shell.

use hsa_cli::{parse_args, run_on_csv_text, UsageError};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(UsageError(msg)) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&args.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    match run_on_csv_text(&text, &args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
