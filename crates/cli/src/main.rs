//! `hsa` binary: GROUP BY over CSV from the shell.

use hsa_cli::{parse_args, run_on_csv_text, UsageError};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(UsageError(msg)) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&args.file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", args.file);
            return ExitCode::FAILURE;
        }
    };
    let run = match run_on_csv_text(&text, &args) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", run.rendered);
    if let Some(path) = &args.stats_json {
        let json = run.report.to_json().to_string_pretty(2);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.trace {
        let trace = run.report.trace_json.as_deref().unwrap_or("{\"traceEvents\":[]}");
        if let Err(e) = std::fs::write(path, trace) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
