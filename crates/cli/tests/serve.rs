//! End-to-end tests of the `hsa serve` NDJSON protocol: an in-process
//! server on an OS-assigned port, real TCP clients, concurrent queries.
//!
//! The CI smoke job drives the same protocol against the released
//! binary; these tests pin the semantics — bit-identical concurrent
//! results, cancel-by-id isolation, typed budget failures, and zero
//! leaked scratch files.

use hashing_is_sorting::obs::json::{parse as parse_json, JsonValue};
use hsa_cli::{serve_on, ServeArgs};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

fn start_server(args: ServeArgs) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || serve_on(listener, &args));
    addr
}

fn default_args() -> ServeArgs {
    ServeArgs {
        listen: String::new(),
        threads: 2,
        mem_total: None,
        disk_total: None,
        max_queries: None,
        spill_dir: None,
        admit_timeout_ms: 2_000,
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        let writer = stream.try_clone().expect("clone");
        Self { reader: BufReader::new(stream), writer }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send");
    }

    fn recv(&mut self) -> JsonValue {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection");
        parse_json(&line).unwrap_or_else(|e| panic!("bad server JSON {line:?}: {e}"))
    }

    /// Submit, returning the assigned query id.
    fn submit(&mut self, spec: &str) -> u64 {
        self.send(spec);
        let mut reply = self.recv();
        // A saturated server says "queued" first, then resolves.
        if reply.get("ok").and_then(JsonValue::as_str) == Some("queued") {
            reply = self.recv();
        }
        assert_eq!(reply.get("ok").and_then(JsonValue::as_str), Some("admitted"), "{reply:?}");
        reply.get("query_id").and_then(JsonValue::as_u64).expect("query_id")
    }

    fn push_ok(&mut self, keys: &[u64], cols: &[&[u64]]) {
        self.send(&rows_line(keys, cols));
        let reply = self.recv();
        assert_eq!(reply.get("ok").and_then(JsonValue::as_str), Some("rows"), "{reply:?}");
    }

    /// Finish and collect `(sorted rows, final done object)`.
    fn finish(&mut self) -> (Vec<(u64, Vec<u64>)>, JsonValue) {
        self.send(r#"{"op":"finish"}"#);
        let mut rows = Vec::new();
        loop {
            let reply = self.recv();
            if let Some(block) = reply.get("block") {
                let keys = u64s(block.get("keys").expect("block keys"));
                let cols: Vec<Vec<u64>> = block
                    .get("cols")
                    .and_then(JsonValue::as_array)
                    .expect("block cols")
                    .iter()
                    .map(u64s)
                    .collect();
                for (i, k) in keys.iter().enumerate() {
                    rows.push((*k, cols.iter().map(|c| c[i]).collect()));
                }
                continue;
            }
            assert!(reply.get("done").is_some(), "unexpected reply {reply:?}");
            return (rows, reply);
        }
    }
}

fn u64s(v: &JsonValue) -> Vec<u64> {
    v.as_array().expect("array").iter().map(|x| x.as_u64().expect("u64")).collect()
}

fn rows_line(keys: &[u64], cols: &[&[u64]]) -> String {
    let fmt = |xs: &[u64]| {
        let inner = xs.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
        format!("[{inner}]")
    };
    let cols = cols.iter().map(|c| fmt(c)).collect::<Vec<_>>().join(",");
    format!(r#"{{"op":"rows","keys":{},"cols":[{cols}]}}"#, fmt(keys))
}

/// The workload every test reuses: skewed keys, deterministic values.
fn test_data(n: u64) -> (Vec<u64>, Vec<u64>) {
    let keys = (0..n).map(|i| i.wrapping_mul(2654435761) % 500).collect();
    let vals = (0..n).collect();
    (keys, vals)
}

fn expected_rows(keys: &[u64], vals: &[u64]) -> Vec<(u64, Vec<u64>)> {
    let specs = [hashing_is_sorting::AggSpec::count(), hashing_is_sorting::AggSpec::sum(0)];
    let cfg = hashing_is_sorting::AggregateConfig::default();
    let (out, _) = hashing_is_sorting::aggregate(keys, &[vals], &specs, &cfg);
    out.sorted_rows()
}

const SUBMIT: &str = r#"{"op":"submit","aggs":[["count"],["sum",0]]}"#;

#[test]
fn round_trip_single_query() {
    let addr = start_server(default_args());
    let (keys, vals) = test_data(20_000);
    let mut client = Client::connect(addr);
    let id = client.submit(SUBMIT);
    for chunk in keys.chunks(7_000).zip(vals.chunks(7_000)) {
        client.push_ok(chunk.0, &[chunk.1]);
    }
    let (rows, done) = client.finish();
    assert_eq!(rows, expected_rows(&keys, &vals));
    let done = done.get("done").unwrap();
    assert_eq!(done.get("query_id").and_then(JsonValue::as_u64), Some(id));
    let report = done.get("report").unwrap();
    assert_eq!(report.get("report_version").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(report.get("query_id").and_then(JsonValue::as_u64), Some(id));
    assert_eq!(report.get("rows_in").and_then(JsonValue::as_u64), Some(20_000));
}

#[test]
fn concurrent_queries_are_bit_identical_to_sequential() {
    let addr = start_server(default_args());
    let (keys, vals) = test_data(30_000);
    // Sequential reference through the same wire protocol.
    let sequential = {
        let mut c = Client::connect(addr);
        c.submit(SUBMIT);
        for chunk in keys.chunks(5_000).zip(vals.chunks(5_000)) {
            c.push_ok(chunk.0, &[chunk.1]);
        }
        c.finish().0
    };
    assert_eq!(sequential, expected_rows(&keys, &vals));
    // Now four at once, interleaving chunk pushes on their own threads.
    let results: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (keys, vals) = (&keys, &vals);
                s.spawn(move || {
                    let mut c = Client::connect(addr);
                    let id = c.submit(SUBMIT);
                    for chunk in keys.chunks(3_000).zip(vals.chunks(3_000)) {
                        c.push_ok(chunk.0, &[chunk.1]);
                    }
                    let (rows, done) = c.finish();
                    let done = done.get("done").unwrap().clone();
                    let report_rows = done
                        .get("report")
                        .and_then(|r| r.get("rows_in"))
                        .and_then(JsonValue::as_u64);
                    (id, rows, report_rows)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let mut seen_ids = Vec::new();
    for (id, rows, report_rows) in results {
        assert_eq!(rows, sequential, "concurrent result must be bit-identical to sequential");
        assert_eq!(report_rows, Some(30_000), "per-query stats must be conserved");
        seen_ids.push(id);
    }
    seen_ids.sort_unstable();
    seen_ids.dedup();
    assert_eq!(seen_ids.len(), 4, "every query got its own id");
}

#[test]
fn cancel_by_id_kills_only_its_query() {
    let addr = start_server(default_args());
    let (keys, vals) = test_data(10_000);

    let mut victim = Client::connect(addr);
    let victim_id = victim.submit(SUBMIT);
    victim.push_ok(&keys, &[&vals]);

    // A survivor in flight on another connection.
    let mut survivor = Client::connect(addr);
    survivor.submit(SUBMIT);
    survivor.push_ok(&keys, &[&vals]);

    // A third connection cancels the victim by id.
    let mut controller = Client::connect(addr);
    controller.send(&format!(r#"{{"op":"cancel","query_id":{victim_id}}}"#));
    let reply = controller.recv();
    assert_eq!(reply.get("ok").and_then(JsonValue::as_str), Some("cancelled"), "{reply:?}");

    // The victim's next step fails with the timeout/cancel class.
    victim.send(&rows_line(&keys, &[&vals]));
    let reply = victim.recv();
    let err = reply.get("error").and_then(JsonValue::as_str).expect("cancel error");
    assert!(err.contains("cancel"), "error: {err}");
    assert_eq!(reply.get("class").and_then(JsonValue::as_str), Some("timeout"), "{reply:?}");
    assert_eq!(reply.get("exit_class").and_then(JsonValue::as_u64), Some(3));

    // Cancelling again fails: the id is gone.
    controller.send(&format!(r#"{{"op":"cancel","query_id":{victim_id}}}"#));
    assert!(controller.recv().get("error").is_some());

    // The survivor is unaffected and its result is exact.
    survivor.push_ok(&keys, &[&vals]);
    let (rows, _) = survivor.finish();
    let doubled: Vec<u64> = keys.iter().chain(keys.iter()).copied().collect();
    let vals2: Vec<u64> = vals.iter().chain(vals.iter()).copied().collect();
    assert_eq!(rows, expected_rows(&doubled, &vals2));

    // The victim's connection survives for a fresh query.
    let id2 = victim.submit(SUBMIT);
    assert_ne!(id2, victim_id);
    victim.push_ok(&keys, &[&vals]);
    let (rows, _) = victim.finish();
    assert_eq!(rows, expected_rows(&keys, &vals));
}

#[test]
fn budget_slice_exhaustion_is_a_typed_budget_error() {
    let mut args = default_args();
    args.mem_total = Some(64 << 20);
    let addr = start_server(args);
    let (keys, vals) = test_data(50_000);
    let mut client = Client::connect(addr);
    // A 1 KiB slice cannot hold a single worker table and there is no
    // spill directory: the query must die with the budget class.
    client.submit(r#"{"op":"submit","aggs":[["count"],["sum",0]],"mem_budget":1024}"#);
    client.send(&rows_line(&keys, &[&vals]));
    let reply = client.recv();
    assert!(reply.get("error").is_some(), "{reply:?}");
    assert_eq!(reply.get("class").and_then(JsonValue::as_str), Some("budget"), "{reply:?}");
    assert_eq!(reply.get("exit_class").and_then(JsonValue::as_u64), Some(2));
    // The connection is reusable afterwards.
    client.submit(SUBMIT);
    client.push_ok(&keys, &[&vals]);
    let (rows, _) = client.finish();
    assert_eq!(rows, expected_rows(&keys, &vals));
}

#[test]
fn impossible_asks_are_denied_and_saturation_queues() {
    let mut args = default_args();
    args.mem_total = Some(1 << 20);
    args.max_queries = Some(1);
    args.admit_timeout_ms = 200;
    let addr = start_server(args);

    // An ask beyond the whole pool is denied outright.
    let mut client = Client::connect(addr);
    client.send(r#"{"op":"submit","aggs":[["count"]],"mem_budget":2097152}"#);
    let reply = client.recv();
    let err = reply.get("error").and_then(JsonValue::as_str).expect("denial");
    assert!(err.contains("denied"), "error: {err}");
    assert_eq!(reply.get("class").and_then(JsonValue::as_str), Some("budget"));

    // Saturation: one query holds the only slot; the next gets queued and
    // then times out with a typed error naming what it waited for.
    let mut holder = Client::connect(addr);
    holder.submit(r#"{"op":"submit","aggs":[["count"]]}"#);
    let mut waiter = Client::connect(addr);
    waiter.send(r#"{"op":"submit","aggs":[["count"]]}"#);
    let queued = waiter.recv();
    assert_eq!(queued.get("ok").and_then(JsonValue::as_str), Some("queued"), "{queued:?}");
    assert_eq!(queued.get("waiting_for").and_then(JsonValue::as_str), Some("queries"));
    let timed_out = waiter.recv();
    let err = timed_out.get("error").and_then(JsonValue::as_str).expect("queue timeout");
    assert!(err.contains("timed out"), "error: {err}");

    // The slot frees when the holder finishes; the waiter can come back.
    holder.push_ok(&[1, 2, 3], &[]);
    let (rows, _) = holder.finish();
    assert_eq!(rows.len(), 3);
    waiter.submit(r#"{"op":"submit","aggs":[["count"]]}"#);
}

#[test]
fn spilled_queries_leave_no_scratch_files() {
    let scratch = std::env::temp_dir().join(format!("hsa-serve-scratch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let mut args = default_args();
    args.spill_dir = Some(scratch.to_string_lossy().into_owned());
    let addr = start_server(args);

    // High-cardinality keys over a small cache slice and a budget smaller
    // than the working set: the stream must go out of core.
    let keys: Vec<u64> = (0..60_000u64).map(|i| i.wrapping_mul(2654435761) % 20_000).collect();
    let vals: Vec<u64> = (0..60_000).collect();
    let mut client = Client::connect(addr);
    client.submit(r#"{"op":"submit","aggs":[["sum",0]],"mem_budget":1048576,"cache_kb":128}"#);
    for chunk in keys.chunks(8_192).zip(vals.chunks(8_192)) {
        client.push_ok(chunk.0, &[chunk.1]);
    }
    let (rows, done) = client.finish();
    let specs = [hashing_is_sorting::AggSpec::sum(0)];
    let cfg = hashing_is_sorting::AggregateConfig::default();
    let (expected, _) = hashing_is_sorting::aggregate(&keys, &[&vals], &specs, &cfg);
    assert_eq!(rows, expected.sorted_rows(), "spilled result must be exact");
    let spilled = done
        .get("done")
        .and_then(|d| d.get("report"))
        .and_then(|r| r.get("stats"))
        .and_then(|s| s.get("spilled_runs"))
        .and_then(JsonValue::as_u64);
    assert!(spilled.unwrap_or(0) > 0, "workload must actually spill (got {spilled:?})");

    let leftovers: Vec<_> = std::fs::read_dir(&scratch)
        .expect("read scratch")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    assert!(leftovers.is_empty(), "leaked scratch files: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&scratch);
}
