//! End-to-end exit-code contract of the `hsa` binary.
//!
//! Scripts react to *why* a query failed by exit code alone: 0 success,
//! 2 budget, 3 timeout, 4 I/O, 5 invalid input. Every failure prints a
//! one-line `error: <class>: <detail>` to stderr (usage errors print the
//! offending flag plus nothing else on stdout).

use std::path::PathBuf;
use std::process::{Command, Output};

fn hsa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hsa")).args(args).output().expect("spawn hsa")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn write_csv(tag: &str, rows: u64) -> PathBuf {
    let path = std::env::temp_dir().join(format!("hsa-exit-{tag}-{}.csv", std::process::id()));
    let mut csv = String::from("k,v\n");
    for i in 0..rows {
        let k = i.wrapping_mul(2654435761) % (rows / 2).max(1);
        csv.push_str(&format!("{k},{i}\n"));
    }
    std::fs::write(&path, csv).unwrap();
    path
}

#[test]
fn success_is_zero() {
    let csv = write_csv("ok", 100);
    let out = hsa(&[csv.to_str().unwrap(), "--group-by", "k", "--sum", "v"]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    let _ = std::fs::remove_file(&csv);
}

#[test]
fn help_is_zero_and_prints_usage() {
    let out = hsa(&["--help"]);
    assert_eq!(code(&out), 0);
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: hsa"));
}

#[test]
fn usage_error_is_invalid_input() {
    let out = hsa(&["--frobnicate"]);
    assert_eq!(code(&out), 5, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("--frobnicate"), "{}", stderr(&out));
}

#[test]
fn unreadable_file_is_io() {
    let out = hsa(&["/nonexistent/nope.csv", "--group-by", "k"]);
    assert_eq!(code(&out), 4, "stderr: {}", stderr(&out));
    assert!(stderr(&out).starts_with("error: io: "), "{}", stderr(&out));
}

#[test]
fn unknown_column_is_invalid_input() {
    let csv = write_csv("badcol", 10);
    let out = hsa(&[csv.to_str().unwrap(), "--group-by", "nope"]);
    assert_eq!(code(&out), 5, "stderr: {}", stderr(&out));
    assert!(stderr(&out).starts_with("error: invalid-input: "), "{}", stderr(&out));
    let _ = std::fs::remove_file(&csv);
}

#[test]
fn budget_exhaustion_is_two() {
    let csv = write_csv("budget", 50_000);
    let out = hsa(&[csv.to_str().unwrap(), "--group-by", "k", "--sum", "v", "--mem-budget", "1k"]);
    assert_eq!(code(&out), 2, "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.starts_with("error: budget: "), "{err}");
    assert_eq!(err.trim_end().lines().count(), 1, "one-line error: {err}");
    let _ = std::fs::remove_file(&csv);
}

#[test]
fn spill_limit_exhaustion_is_two_and_leaves_no_files() {
    let csv = write_csv("disklimit", 50_000);
    let dir = std::env::temp_dir().join(format!("hsa-exit-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = hsa(&[
        csv.to_str().unwrap(),
        "--group-by",
        "k",
        "--sum",
        "v",
        "--mem-budget",
        "2M",
        "--spill-dir",
        dir.to_str().unwrap(),
        "--spill-limit",
        "4k",
        "--chunk-rows",
        "4096",
    ]);
    assert_eq!(code(&out), 2, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("spill disk budget exceeded"), "{}", stderr(&out));
    // The child exited cleanly, so nothing of its scratch survives —
    // spill files were unlinked on the failure path and the liveness
    // lock was retired on drop.
    let leftover = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    assert_eq!(leftover, 0, "no scratch may survive the failed child");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&csv);
}

#[test]
fn timeout_is_three() {
    let csv = write_csv("timeout", 1_000);
    let out = hsa(&[csv.to_str().unwrap(), "--group-by", "k", "--timeout-ms", "0"]);
    assert_eq!(code(&out), 3, "stderr: {}", stderr(&out));
    assert!(stderr(&out).starts_with("error: timeout: "), "{}", stderr(&out));
    let _ = std::fs::remove_file(&csv);
}
