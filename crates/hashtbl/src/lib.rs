//! Hash tables for cache-efficient aggregation.
//!
//! Two tables live here:
//!
//! * [`AggTable`] — the paper's table (§4.1): a **single-level,
//!   fixed-size, linear-probing** table sized to the cache and considered
//!   full at a **25% fill rate**, with probing confined to **blocks** so
//!   that a sealed table "cleanly splits into ranges for the recursive
//!   calls" — one range per radix digit. This is the `HASHING` building
//!   block of Algorithm 1.
//! * [`GrowTable`] — a conventional growable open-addressing aggregation
//!   table. The framework uses it only at the very bottom of the recursion
//!   (when all 64 hash bits are consumed); the §6.4 baselines use it as
//!   their per-thread table, which is exactly the design difference the
//!   paper exploits.
//!
//! Both tables are **struct-of-arrays**: the key column, an occupancy
//! bitmap, and one `u64` array per aggregate state column. State columns
//! are pre-filled with the state operation's identity so that the key pass
//! never touches them — the column-wise processing model of §3.3.

mod fixed;
mod grow;

pub use fixed::{AggTable, BatchInsert, Insert, TableConfig, TableMetrics};
pub use grow::GrowTable;

/// Identity element such that `op.apply(identity, v) == op.init(v)` and
/// `op.merge(identity, s) == s` for every [`hsa_agg::StateOp`] — what state
/// columns are pre-filled with.
pub fn identity_of(op: hsa_agg::StateOp) -> u64 {
    match op {
        hsa_agg::StateOp::Count | hsa_agg::StateOp::Sum | hsa_agg::StateOp::Max => 0,
        hsa_agg::StateOp::Min => u64::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsa_agg::StateOp;

    #[test]
    fn identities_are_identities() {
        for op in [StateOp::Count, StateOp::Sum, StateOp::Min, StateOp::Max] {
            let id = identity_of(op);
            for v in [0u64, 1, 42, u64::MAX] {
                assert_eq!(op.apply(id, v), op.init(v), "{op:?} apply({id}, {v})");
                assert_eq!(op.merge(id, v), v, "{op:?} merge({id}, {v})");
            }
        }
    }
}
