//! A conventional growable open-addressing aggregation table.
//!
//! The recursive framework needs this in exactly one place: when all 64
//! hash bits have been consumed (`level == MAX_LEVEL`) a bucket can no
//! longer be partitioned, so its groups — however many — must be merged in
//! one table. With a 64-bit Murmur hash this requires on the order of 2³²
//! distinct keys to ever happen, but correctness must not depend on hash
//! luck.
//!
//! The §6.4 baseline algorithms also build on this table: their design
//! point is "one (growable or pre-sized) table per thread", which is
//! precisely what the paper's recursive run-based design avoids.

use hsa_agg::StateOp;
use hsa_hash::{Hasher64, Murmur2};

/// Growable open-addressing table with linear probing at ≤ 50% fill,
/// aggregating state columns in place.
pub struct GrowTable {
    hasher: Murmur2,
    keys: Vec<u64>,
    occ: Vec<u64>,
    cols: Vec<Vec<u64>>,
    ops: Vec<StateOp>,
    len: usize,
    mask: usize,
}

impl GrowTable {
    /// Create with space for at least `capacity` groups before any rehash.
    pub fn with_capacity(capacity: usize, ops: &[StateOp]) -> Self {
        let slots = (capacity.max(8) * 2).next_power_of_two();
        Self {
            hasher: Murmur2::default(),
            keys: vec![0; slots],
            occ: vec![0; slots / 64 + 1],
            cols: ops.iter().map(|&op| vec![crate::identity_of(op); slots]).collect(),
            ops: ops.to_vec(),
            len: 0,
            mask: slots - 1,
        }
    }

    /// Upper bound on the heap bytes a table created with `capacity` will
    /// hold while absorbing up to `rows` distinct keys, including the
    /// transient old-plus-new footprint of the final doubling (old table =
    /// half the new one, hence the 3/2). The operator's memory budget
    /// charges this before building a fallback-merge table.
    pub fn mem_bytes_upper(capacity: usize, rows: usize, n_state_cols: usize) -> u64 {
        let initial = (capacity.max(8) * 2).next_power_of_two();
        let needed = (rows.saturating_add(1).saturating_mul(2)).next_power_of_two();
        let slots = initial.max(needed) as u64;
        (slots * 3 / 2) * (8 * (1 + n_state_cols as u64) + 1)
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no groups are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline(always)]
    fn is_occupied(occ: &[u64], slot: usize) -> bool {
        occ[slot >> 6] & (1u64 << (slot & 63)) != 0
    }

    /// Find the slot of `key`, growing if needed. Returns the slot index.
    #[inline]
    fn upsert_slot(&mut self, key: u64) -> usize {
        if (self.len + 1) * 2 > self.keys.len() {
            self.grow();
        }
        let mut slot = (self.hasher.hash_u64(key) as usize) & self.mask;
        loop {
            if !Self::is_occupied(&self.occ, slot) {
                self.keys[slot] = key;
                self.occ[slot >> 6] |= 1u64 << (slot & 63);
                self.len += 1;
                return slot;
            }
            if self.keys[slot] == key {
                return slot;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    #[cold]
    fn grow(&mut self) {
        let new_slots = self.keys.len() * 2;
        let mut new_keys = vec![0u64; new_slots];
        let mut new_occ = vec![0u64; new_slots / 64 + 1];
        let mut new_cols: Vec<Vec<u64>> =
            self.ops.iter().map(|&op| vec![crate::identity_of(op); new_slots]).collect();
        let mask = new_slots - 1;
        for slot in 0..self.keys.len() {
            if !Self::is_occupied(&self.occ, slot) {
                continue;
            }
            let key = self.keys[slot];
            let mut ns = (self.hasher.hash_u64(key) as usize) & mask;
            while Self::is_occupied(&new_occ, ns) {
                ns = (ns + 1) & mask;
            }
            new_keys[ns] = key;
            new_occ[ns >> 6] |= 1u64 << (ns & 63);
            for (nc, oc) in new_cols.iter_mut().zip(&self.cols) {
                nc[ns] = oc[slot];
            }
        }
        self.keys = new_keys;
        self.occ = new_occ;
        self.cols = new_cols;
        self.mask = mask;
    }

    /// Fold one row in. `values[i]` feeds state column `i`; for raw rows
    /// (`aggregated == false`) the ops' `apply` is used, otherwise the
    /// super-aggregate `merge`.
    pub fn accumulate(&mut self, key: u64, values: &[u64], aggregated: bool) {
        debug_assert_eq!(values.len(), self.ops.len());
        let slot = self.upsert_slot(key);
        for ((col, &op), &v) in self.cols.iter_mut().zip(&self.ops).zip(values) {
            col[slot] = op.combine(col[slot], v, aggregated);
        }
    }

    /// Drain into `(key, states)` pairs in unspecified order.
    pub fn drain(self) -> impl Iterator<Item = (u64, Vec<u64>)> {
        let Self { keys, occ, cols, .. } = self;
        (0..keys.len()).filter_map(move |slot| {
            if Self::is_occupied(&occ, slot) {
                Some((keys[slot], cols.iter().map(|c| c[slot]).collect()))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn grows_past_initial_capacity() {
        let mut t = GrowTable::with_capacity(4, &[StateOp::Count]);
        for k in 0..10_000u64 {
            t.accumulate(k, &[0], false);
        }
        assert_eq!(t.len(), 10_000);
        let mut keys: Vec<u64> = t.drain().map(|(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn aggregates_match_reference() {
        let mut t = GrowTable::with_capacity(
            16,
            &[StateOp::Sum, StateOp::Min, StateOp::Max, StateOp::Count],
        );
        let mut reference: BTreeMap<u64, (u64, u64, u64, u64)> = BTreeMap::new();
        let mut state = 12345u64;
        for _ in 0..50_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let k = (state >> 33) % 500;
            let v = state % 1000;
            t.accumulate(k, &[v, v, v, 0], false);
            let e = reference.entry(k).or_insert((0, u64::MAX, 0, 0));
            e.0 += v;
            e.1 = e.1.min(v);
            e.2 = e.2.max(v);
            e.3 += 1;
        }
        let got: BTreeMap<u64, (u64, u64, u64, u64)> =
            t.drain().map(|(k, s)| (k, (s[0], s[1], s[2], s[3]))).collect();
        assert_eq!(got, reference);
    }

    #[test]
    fn merge_mode_uses_super_aggregate() {
        let mut t = GrowTable::with_capacity(4, &[StateOp::Count]);
        // Two partial counts of 5 and 7 must merge to 12, not 2.
        t.accumulate(1, &[5], true);
        t.accumulate(1, &[7], true);
        let out: Vec<_> = t.drain().collect();
        assert_eq!(out, vec![(1, vec![12])]);
    }

    #[test]
    fn mixed_raw_and_aggregated_rows() {
        let mut t = GrowTable::with_capacity(4, &[StateOp::Count]);
        t.accumulate(1, &[0], false); // raw row -> count 1
        t.accumulate(1, &[4], true); // partial count 4 -> 5
        t.accumulate(1, &[0], false); // raw row -> 6
        let out: Vec<_> = t.drain().collect();
        assert_eq!(out, vec![(1, vec![6])]);
    }

    #[test]
    fn empty_drains_empty() {
        let t = GrowTable::with_capacity(4, &[StateOp::Sum]);
        assert!(t.is_empty());
        assert_eq!(t.drain().count(), 0);
    }
}
